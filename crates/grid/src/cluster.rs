//! The shared-nothing grid simulator (§2.7, §2.11–§2.13).
//!
//! A [`Cluster`] holds distributed arrays sharded over `n` simulated nodes.
//! Placement follows an [`EpochPartitioning`] — data is placed by the
//! scheme in force at its arrival time and *stays there* (the paper's "a
//! first partitioning scheme is used for time less than T and a second
//! partitioning scheme for time > T"), unless an explicit
//! [`Cluster::rebalance`] migrates it. Every operation meters the
//! quantities the paper argues about: per-node scan load (balance), cells
//! moved over the network (join movement, rebalance cost), and nodes
//! touched.
//!
//! Distributed aggregation uses the mergeable partial states of
//! [`scidb_core::udf::AggState`], the standard shared-nothing strategy.
//!
//! # Fault model
//!
//! Nodes carry a [`NodeState`] (`Up`/`Degraded`/`Down`), driven either by a
//! deterministic [`FaultPlan`] keyed to the cluster's logical operation
//! index, or directly via [`Cluster::fail_node`] / [`Cluster::recover_node`].
//! Arrays created with [`Cluster::create_replicated_array`] store every cell
//! on all nodes named by a [`ReplicatedPlacement`]; distributed reads fail
//! over from a down home node to a surviving replica, retry flaky nodes
//! with bounded attempt-counted backoff, and return
//! [`Error::Unavailable`] only when every copy of a requested cell is
//! gone. Recovery runs a re-replication pass that restores the replication
//! factor. Failover work is recorded as `failover`/`retry`/`degraded`
//! events on the attached `scidb-obs` span, so `explain analyze` shows it.

use crate::fault::{FaultEvent, FaultKind, FaultPlan, NodeState, MAX_RETRIES};
use crate::partition::{EpochPartitioning, PartitionScheme};
use crate::replication::ReplicatedPlacement;
use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::geometry::HyperRect;
use scidb_core::ops::structural;
use scidb_core::registry::Registry;
use scidb_core::schema::ArraySchema;
use scidb_core::value::{Record, Value};
use scidb_obs::{
    AttrValue, RenderOptions, Span, Trace, EVENT_DEGRADED, EVENT_FAILOVER, EVENT_NODE,
    EVENT_REREPLICATE, EVENT_RETRY, LAYER_GRID,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Metering for one distributed operation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Nodes that scanned data.
    pub nodes_touched: usize,
    /// Cells scanned across nodes (inflated by slow-node factors).
    pub cells_scanned: usize,
    /// Cells returned to the coordinator.
    pub cells_returned: usize,
    /// Cells shipped between nodes (join redistribution / rebalance).
    pub cells_moved: usize,
    /// Cells served from a surviving replica because the home was down.
    pub failovers: usize,
    /// Transient-failure retries performed against flaky nodes.
    pub retries: usize,
}

/// One array sharded across the cluster.
#[derive(Debug)]
struct DistributedArray {
    schema: Arc<ArraySchema>,
    partitioning: EpochPartitioning,
    shards: Vec<Array>,
    /// k-copy / overlap placement for fault tolerance (replicated arrays).
    replication: Option<ReplicatedPlacement>,
    /// Cells whose every copy died with a crashed node — the permanent-loss
    /// ledger behind [`Error::Unavailable`].
    lost: BTreeSet<Vec<i64>>,
    /// Durable backing copy ([`Cluster::attach_durable_seed`]): cells a
    /// re-replication pass may restore even after every in-memory copy is
    /// gone, modelling a node whose page file + WAL survived the crash.
    seed: Option<BTreeMap<Vec<i64>, Record>>,
    /// The scheme under which every cell currently sits at its home, when
    /// known — lets [`Cluster::rebalance`] short-circuit the no-op case.
    clean_under: Option<PartitionScheme>,
    /// Arrival time of the most recent load (governs which epoch places
    /// new data).
    last_load_time: i64,
}

/// A simulated shared-nothing grid.
#[derive(Debug)]
pub struct Cluster {
    n_nodes: usize,
    arrays: HashMap<String, DistributedArray>,
    /// Accumulated per-node scan work (cells scanned).
    node_load: Vec<f64>,
    /// Total cells shipped between nodes since creation.
    total_cells_moved: usize,
    /// Per-node health.
    node_states: Vec<NodeState>,
    /// Per-node slowdown factor (1 = full speed).
    slow_factor: Vec<u32>,
    /// Remaining transient failures a flaky node will inject.
    flaky_budget: Vec<u32>,
    /// Installed fault schedule, keyed by logical operation index.
    fault_plan: Option<FaultPlan>,
    /// Events of `fault_plan` already fired.
    fault_cursor: usize,
    /// Logical operation counter: every distributed operation (each
    /// workload query counts separately) increments it — the deterministic
    /// clock fault schedules are keyed to.
    op_index: u64,
    /// Optional telemetry parent: when attached, distributed operations
    /// open child spans tagged with per-node events.
    span: Option<Span>,
}

impl Cluster {
    /// Creates a cluster of `n_nodes` empty, healthy nodes.
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "cluster needs at least one node");
        Cluster {
            n_nodes,
            arrays: HashMap::new(),
            node_load: vec![0.0; n_nodes],
            total_cells_moved: 0,
            node_states: vec![NodeState::Up; n_nodes],
            slow_factor: vec![1; n_nodes],
            flaky_budget: vec![0; n_nodes],
            fault_plan: None,
            fault_cursor: 0,
            op_index: 0,
            span: None,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Attaches a telemetry parent span: subsequent distributed operations
    /// open `grid.*` child spans under it, each tagged with one `node`
    /// event per node that did work (so fan-out is attributable per node)
    /// plus `failover`/`retry`/`degraded` events for recovery work.
    pub fn attach_span(&mut self, span: Span) {
        self.span = Some(span);
    }

    /// Detaches the telemetry parent (operations stop emitting spans).
    pub fn detach_span(&mut self) -> Option<Span> {
        self.span.take()
    }

    /// Opens a child span for one distributed operation, when attached.
    fn op_span(&self, name: &str, array: &str) -> Option<Span> {
        self.span.as_ref().map(|parent| {
            let s = parent.child(name, LAYER_GRID);
            s.set_attr("array", array);
            s
        })
    }

    /// Records one node's contribution on an operation span.
    fn node_event(span: &Option<Span>, node: usize, cells: usize) {
        if let Some(s) = span {
            s.add_event(
                EVENT_NODE,
                vec![
                    ("node".to_string(), AttrValue::Uint(node as u64)),
                    ("cells".to_string(), AttrValue::Uint(cells as u64)),
                ],
            );
        }
    }

    // ------------------------------------------------------------------
    // Fault machinery
    // ------------------------------------------------------------------

    /// Installs a deterministic fault schedule. Events fire as the logical
    /// operation counter passes their `at_op`; installing resets the
    /// schedule cursor (already-executed operation indices never re-fire —
    /// events scheduled at or before the current index fire on the next
    /// operation).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
        self.fault_cursor = 0;
    }

    /// Removes the installed fault schedule (node states are untouched).
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_cursor = 0;
        self.fault_plan.take()
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Per-node health.
    pub fn node_states(&self) -> &[NodeState] {
        &self.node_states
    }

    /// Health of one node.
    pub fn node_state(&self, node: usize) -> Option<NodeState> {
        self.node_states.get(node).copied()
    }

    /// Logical operations executed so far (the clock fault plans key on).
    pub fn op_index(&self) -> u64 {
        self.op_index
    }

    /// Fail-stops a node: its state becomes [`NodeState::Down`] and its
    /// shard data is lost (the GFS-era disk-loss model). Cells whose last
    /// copy lived there enter the permanent-loss ledger and subsequent
    /// reads touching them return [`Error::Unavailable`]. Returns the
    /// number of cells wiped on the node.
    pub fn fail_node(&mut self, node: usize) -> Result<usize> {
        if node >= self.n_nodes {
            return Err(Error::dimension(format!(
                "node {node} out of range (cluster has {})",
                self.n_nodes
            )));
        }
        let span = self.op_span("grid.fail_node", "*");
        let wiped = self.crash_node(node);
        if let Some(s) = &span {
            s.set_attr("node", node);
            s.set_attr("cells_wiped", wiped);
            s.finish();
        }
        Ok(wiped)
    }

    /// Recovers a node: state returns to [`NodeState::Up`] (slowdown and
    /// flakiness cleared) and a re-replication pass restores the
    /// replication factor of every replicated array — each cell is copied
    /// back to every live placement node missing it. Returns the number of
    /// cells re-replicated.
    pub fn recover_node(&mut self, node: usize) -> Result<usize> {
        if node >= self.n_nodes {
            return Err(Error::dimension(format!(
                "node {node} out of range (cluster has {})",
                self.n_nodes
            )));
        }
        let span = self.op_span("grid.recover_node", "*");
        let copied = self.revive_node(node)?;
        if let Some(s) = &span {
            s.set_attr("node", node);
            s.set_attr("cells_rereplicated", copied);
            s.add_event(
                EVENT_REREPLICATE,
                vec![
                    ("node".to_string(), AttrValue::Uint(node as u64)),
                    ("cells".to_string(), AttrValue::Uint(copied as u64)),
                ],
            );
            s.finish();
        }
        Ok(copied)
    }

    /// Fail-stop: mark down, wipe the shard, ledger cells that lost their
    /// last copy.
    fn crash_node(&mut self, node: usize) -> usize {
        self.node_states[node] = NodeState::Down;
        self.slow_factor[node] = 1;
        self.flaky_budget[node] = 0;
        let mut wiped = 0usize;
        for da in self.arrays.values_mut() {
            let cells: Vec<Vec<i64>> = da.shards[node].cells().map(|(c, _)| c).collect();
            for coords in &cells {
                let survives = da
                    .shards
                    .iter()
                    .enumerate()
                    .any(|(m, s)| m != node && s.exists(coords));
                if !survives {
                    da.lost.insert(coords.clone());
                }
            }
            wiped += cells.len();
            da.shards[node] = Array::from_arc(Arc::clone(&da.schema));
        }
        wiped
    }

    /// Recovery: mark up, clear degradation, restore replication factor.
    fn revive_node(&mut self, node: usize) -> Result<usize> {
        self.node_states[node] = NodeState::Up;
        self.slow_factor[node] = 1;
        self.flaky_budget[node] = 0;
        self.rereplicate()
    }

    /// Attaches a durable backing copy to a distributed array: a cell map
    /// read back from node-local durable storage (page file + WAL). From
    /// then on, re-replication passes treat seeded cells as recoverable —
    /// a cell whose every in-memory copy died is restored from the seed
    /// instead of staying in the permanent-loss ledger. Returns the number
    /// of currently-lost cells the seed can resurrect immediately (they
    /// are restored on the next [`Cluster::recover_node`]).
    pub fn attach_durable_seed(
        &mut self,
        name: &str,
        cells: impl IntoIterator<Item = (Vec<i64>, Record)>,
    ) -> Result<usize> {
        let da = self
            .arrays
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
        let seed: BTreeMap<Vec<i64>, Record> = cells.into_iter().collect();
        let recoverable = da.lost.iter().filter(|c| seed.contains_key(*c)).count();
        da.seed = Some(seed);
        Ok(recoverable)
    }

    /// Copies every live cell of every replicated array to each live
    /// placement node missing it, restoring the replication factor after a
    /// recovery; lost cells with a durable seed copy are restored from the
    /// seed first. Returns cells copied (counted as network movement).
    fn rereplicate(&mut self) -> Result<usize> {
        let mut copied = 0usize;
        let mut seeded = 0usize;
        let states = self.node_states.clone();
        for da in self.arrays.values_mut() {
            let Some(rp) = da.replication.clone() else {
                continue;
            };
            // Durable resurrection: a cell in the loss ledger whose bytes
            // survive in the attached seed regains a live copy, exactly as
            // if one node's disk had outlived its process.
            if let Some(seed) = &da.seed {
                let recovered: Vec<(Vec<i64>, Record)> = da
                    .lost
                    .iter()
                    .filter_map(|c| seed.get(c).map(|r| (c.clone(), r.clone())))
                    .collect();
                for (coords, rec) in recovered {
                    let mut placed = false;
                    for p in rp.placements(&coords) {
                        if states[p] == NodeState::Down {
                            continue;
                        }
                        da.shards[p].set_cell(&coords, rec.clone())?;
                        placed = true;
                    }
                    if placed {
                        da.lost.remove(&coords);
                        seeded += 1;
                    }
                }
            }
            let mut live: BTreeMap<Vec<i64>, Record> = BTreeMap::new();
            for shard in &da.shards {
                for (coords, rec) in shard.cells() {
                    live.entry(coords).or_insert(rec);
                }
            }
            for (coords, rec) in live {
                for p in rp.placements(&coords) {
                    if states[p] == NodeState::Down || da.shards[p].exists(&coords) {
                        continue;
                    }
                    da.shards[p].set_cell(&coords, rec.clone())?;
                    copied += 1;
                }
            }
        }
        self.total_cells_moved += copied + seeded;
        scidb_obs::global()
            .counter("scidb.grid.cells_rereplicated")
            .inc(copied as u64);
        scidb_obs::global()
            .counter("scidb.grid.cells_seeded_from_disk")
            .inc(seeded as u64);
        Ok(copied + seeded)
    }

    /// Starts one logical operation: advances the operation clock, fires
    /// due fault events, and computes per-node availability for this
    /// operation — retrying flaky nodes with bounded, attempt-counted
    /// backoff and recording `retry`/`degraded` events on `span`. Returns
    /// the availability mask and the retries performed.
    fn op_begin(&mut self, span: &Option<Span>) -> Result<(Vec<bool>, usize)> {
        self.op_index += 1;
        self.apply_due_faults()?;
        let mut avail = vec![false; self.n_nodes];
        let mut retries = 0usize;
        for (n, up) in avail.iter_mut().enumerate() {
            match self.node_states[n] {
                NodeState::Down => {}
                NodeState::Up => *up = true,
                NodeState::Degraded => {
                    let mut attempt = 0u32;
                    while self.flaky_budget[n] > 0 && attempt < MAX_RETRIES {
                        self.flaky_budget[n] -= 1;
                        attempt += 1;
                        retries += 1;
                        if let Some(s) = span {
                            s.add_event(
                                EVENT_RETRY,
                                vec![
                                    ("node".to_string(), AttrValue::Uint(n as u64)),
                                    ("attempt".to_string(), AttrValue::Uint(u64::from(attempt))),
                                    (
                                        "backoff".to_string(),
                                        AttrValue::Uint(1u64 << attempt.min(16)),
                                    ),
                                ],
                            );
                        }
                    }
                    if self.flaky_budget[n] == 0 {
                        *up = true;
                        if self.slow_factor[n] > 1 {
                            if let Some(s) = span {
                                s.add_event(
                                    EVENT_DEGRADED,
                                    vec![
                                        ("node".to_string(), AttrValue::Uint(n as u64)),
                                        (
                                            "factor".to_string(),
                                            AttrValue::Uint(u64::from(self.slow_factor[n])),
                                        ),
                                    ],
                                );
                            }
                        } else {
                            // Flakiness exhausted and no slowdown: healed.
                            self.node_states[n] = NodeState::Up;
                        }
                    }
                    // Budget left after MAX_RETRIES: unavailable this op.
                }
            }
        }
        Ok((avail, retries))
    }

    /// Fires every scheduled fault whose `at_op` has been reached.
    fn apply_due_faults(&mut self) -> Result<()> {
        loop {
            let Some(e) = self
                .fault_plan
                .as_ref()
                .and_then(|p| p.events().get(self.fault_cursor))
                .copied()
            else {
                return Ok(());
            };
            if e.at_op > self.op_index {
                return Ok(());
            }
            self.fault_cursor += 1;
            self.apply_fault(e)?;
        }
    }

    fn apply_fault(&mut self, e: FaultEvent) -> Result<()> {
        if e.node >= self.n_nodes {
            return Ok(()); // plan generated for a larger cluster: ignore
        }
        match e.kind {
            FaultKind::Crash => {
                self.crash_node(e.node);
            }
            FaultKind::Restart => {
                self.revive_node(e.node)?;
            }
            FaultKind::Slow { factor } => {
                self.slow_factor[e.node] = factor.max(1);
                if self.node_states[e.node] != NodeState::Down && factor > 1 {
                    self.node_states[e.node] = NodeState::Degraded;
                }
            }
            FaultKind::Flaky { failures } => {
                self.flaky_budget[e.node] += failures;
                if self.node_states[e.node] != NodeState::Down && failures > 0 {
                    self.node_states[e.node] = NodeState::Degraded;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Registers a distributed array.
    pub fn create_array(
        &mut self,
        name: &str,
        schema: ArraySchema,
        partitioning: EpochPartitioning,
    ) -> Result<()> {
        self.create_array_inner(name, schema, partitioning, None)
    }

    /// Registers a fault-tolerant distributed array: every cell is stored
    /// on all nodes named by `placement` (its home plus k-copy ring
    /// successors plus any overlap-margin copies), and distributed reads
    /// fail over to surviving copies when nodes die.
    pub fn create_replicated_array(
        &mut self,
        name: &str,
        schema: ArraySchema,
        placement: ReplicatedPlacement,
    ) -> Result<()> {
        let partitioning = EpochPartitioning::fixed(placement.scheme().clone());
        self.create_array_inner(name, schema, partitioning, Some(placement))
    }

    fn create_array_inner(
        &mut self,
        name: &str,
        schema: ArraySchema,
        partitioning: EpochPartitioning,
        replication: Option<ReplicatedPlacement>,
    ) -> Result<()> {
        if self.arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        for (_, scheme) in partitioning.epochs() {
            if scheme.n_nodes() > self.n_nodes {
                return Err(Error::dimension(format!(
                    "scheme addresses {} nodes, cluster has {}",
                    scheme.n_nodes(),
                    self.n_nodes
                )));
            }
        }
        let clean_under = Some(partitioning.latest().clone());
        let schema = Arc::new(schema);
        let shards = (0..self.n_nodes)
            .map(|_| Array::from_arc(Arc::clone(&schema)))
            .collect();
        self.arrays.insert(
            name.to_string(),
            DistributedArray {
                schema,
                partitioning,
                shards,
                replication,
                lost: BTreeSet::new(),
                seed: None,
                clean_under,
                last_load_time: i64::MIN,
            },
        );
        Ok(())
    }

    fn array(&self, name: &str) -> Result<&DistributedArray> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    fn array_mut(&mut self, name: &str) -> Result<&mut DistributedArray> {
        self.arrays
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// Loads cells arriving at `time`; placement follows the epoch scheme
    /// in force at that time. Replicated arrays store each cell on every
    /// live placement node; a cell with no live placement joins the
    /// permanent-loss ledger.
    pub fn load_at(
        &mut self,
        name: &str,
        time: i64,
        cells: impl IntoIterator<Item = (Vec<i64>, Record)>,
    ) -> Result<usize> {
        let states = self.node_states.clone();
        let da = self.array_mut(name)?;
        let scheme = da.partitioning.scheme_at(time).clone();
        if da
            .clean_under
            .as_ref()
            .is_some_and(|s| !s.same_placement(&scheme))
        {
            da.clean_under = None;
        }
        da.last_load_time = da.last_load_time.max(time);
        let mut n = 0;
        for (coords, rec) in cells {
            match &da.replication {
                None => {
                    let node = scheme.node_of(&coords);
                    if states[node] == NodeState::Down {
                        da.lost.insert(coords);
                    } else {
                        da.shards[node].set_cell(&coords, rec)?;
                    }
                }
                Some(rp) => {
                    let mut placed = false;
                    for p in rp.placements(&coords) {
                        if states[p] == NodeState::Down {
                            continue;
                        }
                        da.shards[p].set_cell(&coords, rec.clone())?;
                        placed = true;
                    }
                    if !placed {
                        da.lost.insert(coords);
                    }
                }
            }
            n += 1;
        }
        Ok(n)
    }

    /// Adds a partitioning epoch starting at `time` (data already loaded
    /// stays put — see [`Cluster::rebalance`]).
    pub fn add_epoch(&mut self, name: &str, time: i64, scheme: PartitionScheme) -> Result<()> {
        if scheme.n_nodes() > self.n_nodes {
            return Err(Error::dimension("scheme addresses more nodes than cluster"));
        }
        self.array_mut(name)?.partitioning.add_epoch(time, scheme)
    }

    /// Migrates all cells to their home under the *latest* epoch scheme,
    /// returning the number of cells moved (the rebalance cost of E2).
    ///
    /// When every cell already sits at its latest-scheme home — no epoch
    /// change since the last load or rebalance — this is a metered no-op:
    /// nothing is scanned, nothing moves. Replicated arrays never
    /// rebalance: their placement is authoritative.
    pub fn rebalance(&mut self, name: &str) -> Result<usize> {
        let span = self.op_span("grid.rebalance", name);
        let da = self.array_mut(name)?;
        let scheme = da.partitioning.latest().clone();
        if da.replication.is_some()
            || da
                .clean_under
                .as_ref()
                .is_some_and(|s| s.same_placement(&scheme))
        {
            if let Some(s) = &span {
                s.set_attr("cells_moved", 0usize);
                s.set_attr("noop", true);
                s.finish();
            }
            return Ok(0);
        }
        let mut moved = 0usize;
        let mut relocations: Vec<(usize, Vec<i64>, Record)> = Vec::new();
        for (node, shard) in da.shards.iter_mut().enumerate() {
            let mut to_remove = Vec::new();
            for (coords, rec) in shard.cells() {
                let home = scheme.node_of(&coords);
                if home != node {
                    relocations.push((home, coords.clone(), rec));
                    to_remove.push(coords);
                }
            }
            for coords in to_remove {
                shard.delete_cell(&coords)?;
            }
        }
        for (home, coords, rec) in relocations {
            da.shards[home].set_cell(&coords, rec)?;
            moved += 1;
        }
        da.clean_under = Some(scheme);
        self.total_cells_moved += moved;
        scidb_obs::global()
            .counter("scidb.grid.cells_moved")
            .inc(moved as u64);
        if let Some(s) = &span {
            s.set_attr("cells_moved", moved);
            s.finish();
        }
        Ok(moved)
    }

    /// Per-node cell counts for an array (the data-balance metric; for
    /// replicated arrays this counts copies, not distinct cells).
    pub fn distribution(&self, name: &str) -> Result<Vec<usize>> {
        Ok(self
            .array(name)?
            .shards
            .iter()
            .map(Array::cell_count)
            .collect())
    }

    /// Total cells of an array (copies included for replicated arrays).
    pub fn cell_count(&self, name: &str) -> Result<usize> {
        Ok(self.distribution(name)?.iter().sum())
    }

    /// Cells of an array permanently lost to node crashes (no live copy).
    pub fn lost_cells(&self, name: &str) -> Result<usize> {
        Ok(self.array(name)?.lost.len())
    }

    // ------------------------------------------------------------------
    // Distributed reads (with failover)
    // ------------------------------------------------------------------

    /// Chooses the serving copy of every distinct cell visible on available
    /// nodes: the home copy when readable, otherwise the lowest-numbered
    /// surviving replica. Returns `coords -> (serving node, record)`.
    fn serving_cells(
        da: &DistributedArray,
        avail: &[bool],
        region: Option<&HyperRect>,
    ) -> BTreeMap<Vec<i64>, (usize, Record)> {
        let mut served: BTreeMap<Vec<i64>, (usize, Record)> = BTreeMap::new();
        for (node, shard) in da.shards.iter().enumerate() {
            if !avail[node] {
                continue;
            }
            let cells: Box<dyn Iterator<Item = (Vec<i64>, Record)>> = match region {
                Some(r) => Box::new(shard.cells_in(r)),
                None => Box::new(shard.cells()),
            };
            for (coords, rec) in cells {
                let home = match &da.replication {
                    Some(rp) => rp.home(&coords),
                    None => node,
                };
                match served.get(&coords) {
                    None => {
                        served.insert(coords, (node, rec));
                    }
                    Some(&(cur, _)) if node == home && cur != home => {
                        served.insert(coords, (node, rec));
                    }
                    Some(_) => {}
                }
            }
        }
        served
    }

    /// Cells unreachable for this operation: permanently lost cells plus
    /// cells whose only copies sit on nodes unavailable right now.
    fn unreachable_cells(
        da: &DistributedArray,
        avail: &[bool],
        region: Option<&HyperRect>,
        served: &BTreeMap<Vec<i64>, (usize, Record)>,
    ) -> usize {
        let mut unreachable: BTreeSet<Vec<i64>> = da
            .lost
            .iter()
            .filter(|c| region.is_none_or(|r| r.contains(c)))
            .cloned()
            .collect();
        for (node, shard) in da.shards.iter().enumerate() {
            if avail[node] {
                continue;
            }
            let cells: Box<dyn Iterator<Item = (Vec<i64>, Record)>> = match region {
                Some(r) => Box::new(shard.cells_in(r)),
                None => Box::new(shard.cells()),
            };
            for (coords, _) in cells {
                if !served.contains_key(&coords) {
                    unreachable.insert(coords);
                }
            }
        }
        unreachable.len()
    }

    /// Records aggregated failover events (`from` home → `to` replica with
    /// the number of redirected cells) and returns the total.
    fn record_failovers(
        span: &Option<Span>,
        da: &DistributedArray,
        served: &BTreeMap<Vec<i64>, (usize, Record)>,
    ) -> usize {
        let Some(rp) = &da.replication else {
            return 0;
        };
        let mut pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (coords, &(node, _)) in served {
            let home = rp.home(coords);
            if node != home {
                *pairs.entry((home, node)).or_default() += 1;
            }
        }
        let total = pairs.values().sum();
        if let Some(s) = span {
            for ((from, to), cells) in &pairs {
                s.add_event(
                    EVENT_FAILOVER,
                    vec![
                        ("from".to_string(), AttrValue::Uint(*from as u64)),
                        ("to".to_string(), AttrValue::Uint(*to as u64)),
                        ("cells".to_string(), AttrValue::Uint(*cells as u64)),
                    ],
                );
            }
        }
        total
    }

    /// Scans a region, accumulating per-node load; returns the collected
    /// result and stats. Reads fail over to surviving replicas; if any
    /// requested cell has no live copy, returns [`Error::Unavailable`].
    pub fn query_region(&mut self, name: &str, region: &HyperRect) -> Result<(Array, ExecStats)> {
        let span = self.op_span("grid.query_region", name);
        let (avail, retries) = self.op_begin(&span)?;
        let da = self
            .arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
        let served = Self::serving_cells(da, &avail, Some(region));
        let lost = Self::unreachable_cells(da, &avail, Some(region), &served);
        if lost > 0 {
            if let Some(s) = &span {
                s.set_attr("lost_cells", lost);
                s.finish();
            }
            return Err(Error::unavailable(lost));
        }
        let mut stats = ExecStats {
            retries,
            ..ExecStats::default()
        };
        stats.failovers = Self::record_failovers(&span, da, &served);
        let mut out = Array::from_arc(Arc::clone(&da.schema));
        let mut loads = vec![0usize; self.n_nodes];
        for (coords, (node, rec)) in served {
            loads[node] += 1;
            out.set_cell(&coords, rec)?;
            stats.cells_returned += 1;
        }
        for (node, &l) in loads.iter().enumerate() {
            let weighted = l * self.slow_factor[node] as usize;
            self.node_load[node] += weighted as f64;
            stats.cells_scanned += weighted;
            if l > 0 {
                stats.nodes_touched += 1;
                Self::node_event(&span, node, l);
            }
        }
        if let Some(s) = &span {
            s.set_attr("nodes_touched", stats.nodes_touched);
            s.set_attr("cells_scanned", stats.cells_scanned);
            s.set_attr("cells_returned", stats.cells_returned);
            if stats.failovers > 0 {
                s.set_attr("failovers", stats.failovers);
            }
            s.finish();
        }
        Ok((out, stats))
    }

    /// Runs a whole workload of region queries, returning cumulative stats
    /// (used by the E2 balance experiment). Each query is one logical
    /// operation with full failover semantics; the first query that touches
    /// an unreachable cell aborts the workload with
    /// [`Error::Unavailable`].
    pub fn run_workload(
        &mut self,
        name: &str,
        workload: &crate::workload::Workload,
    ) -> Result<ExecStats> {
        let span = self.op_span("grid.run_workload", name);
        let mut total = ExecStats::default();
        for q in &workload.queries {
            let (avail, retries) = self.op_begin(&span)?;
            total.retries += retries;
            let da = self
                .arrays
                .get(name)
                .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
            let mut loads = vec![0usize; self.n_nodes];
            if da.replication.is_none() && da.lost.is_empty() && avail.iter().all(|&a| a) {
                // Healthy, unreplicated: every cell has exactly one copy, so
                // skip the serving-copy map and just count (the E2 hot path).
                for (node, shard) in da.shards.iter().enumerate() {
                    loads[node] = shard.cells_in(&q.region).count();
                }
            } else {
                let served = Self::serving_cells(da, &avail, Some(&q.region));
                let lost = Self::unreachable_cells(da, &avail, Some(&q.region), &served);
                if lost > 0 {
                    if let Some(s) = &span {
                        s.set_attr("lost_cells", lost);
                        s.finish();
                    }
                    return Err(Error::unavailable(lost));
                }
                total.failovers += Self::record_failovers(&span, da, &served);
                for &(node, _) in served.values() {
                    loads[node] += 1;
                }
            }
            for (node, &l) in loads.iter().enumerate() {
                let weighted = l as f64 * q.weight * f64::from(self.slow_factor[node]);
                self.node_load[node] += weighted;
                total.cells_scanned += l * self.slow_factor[node] as usize;
            }
            total.nodes_touched = total
                .nodes_touched
                .max(loads.iter().filter(|&&l| l > 0).count());
        }
        if let Some(s) = &span {
            s.set_attr("queries", workload.queries.len());
            s.set_attr("cells_scanned", total.cells_scanned);
            s.finish();
        }
        Ok(total)
    }

    /// Distributed aggregation of one attribute: per-node partials merged
    /// at the coordinator. Each distinct cell contributes exactly once —
    /// from its home copy when readable, otherwise from a surviving
    /// replica.
    pub fn aggregate(
        &mut self,
        name: &str,
        agg_name: &str,
        attr: &str,
        registry: &Registry,
    ) -> Result<(Value, ExecStats)> {
        let span = self.op_span("grid.aggregate", name);
        let (avail, retries) = self.op_begin(&span)?;
        let da = self
            .arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
        let attr_idx = da.schema.require_attr(attr)?;
        let agg = registry.aggregate(agg_name)?;
        let served = Self::serving_cells(da, &avail, None);
        let lost = Self::unreachable_cells(da, &avail, None, &served);
        if lost > 0 {
            if let Some(s) = &span {
                s.set_attr("lost_cells", lost);
                s.finish();
            }
            return Err(Error::unavailable(lost));
        }
        let mut stats = ExecStats {
            retries,
            ..ExecStats::default()
        };
        stats.failovers = Self::record_failovers(&span, da, &served);
        // Per-node partial states over the cells each node serves, merged
        // at the coordinator in node order.
        let mut partials: Vec<Vec<&Record>> = vec![Vec::new(); self.n_nodes];
        for (node, rec) in served.values() {
            partials[*node].push(rec);
        }
        let mut coordinator = agg.create();
        for (node, recs) in partials.iter().enumerate() {
            if recs.is_empty() {
                continue;
            }
            let mut local = agg.create();
            for rec in recs {
                local.update(&rec[attr_idx])?;
            }
            // Only the partial state crosses the network.
            coordinator.merge(&local.partial())?;
            let weighted = recs.len() * self.slow_factor[node] as usize;
            self.node_load[node] += weighted as f64;
            stats.cells_scanned += weighted;
            stats.nodes_touched += 1;
            Self::node_event(&span, node, recs.len());
        }
        if let Some(s) = &span {
            s.set_attr("agg", agg_name);
            s.set_attr("nodes_touched", stats.nodes_touched);
            s.set_attr("cells_scanned", stats.cells_scanned);
            if stats.failovers > 0 {
                s.set_attr("failovers", stats.failovers);
            }
            s.finish();
        }
        Ok((coordinator.finalize(), stats))
    }

    /// Distributed structural join on dimension pairs (§2.2.1 Sjoin).
    ///
    /// Both inputs are redistributed (if necessary) by hashing their join
    /// coordinates under the **left** array's latest scheme; co-partitioned
    /// inputs (same placement) move nothing (§2.7 co-partitioning). The
    /// per-node local joins are concatenated at the coordinator. Each
    /// distinct cell of either side participates exactly once, read from
    /// its serving copy (failover applies).
    pub fn sjoin(
        &mut self,
        left: &str,
        right: &str,
        on: &[(&str, &str)],
    ) -> Result<(Array, ExecStats)> {
        let span = self.op_span("grid.sjoin", left);
        let (avail, retries) = self.op_begin(&span)?;
        let la = self
            .arrays
            .get(left)
            .ok_or_else(|| Error::not_found(format!("array '{left}'")))?;
        let ra = self
            .arrays
            .get(right)
            .ok_or_else(|| Error::not_found(format!("array '{right}'")))?;
        let target = la.partitioning.latest().clone();
        let mut stats = ExecStats {
            retries,
            ..ExecStats::default()
        };

        let l_served = Self::serving_cells(la, &avail, None);
        let r_served = Self::serving_cells(ra, &avail, None);
        let lost = Self::unreachable_cells(la, &avail, None, &l_served)
            + Self::unreachable_cells(ra, &avail, None, &r_served);
        if lost > 0 {
            if let Some(s) = &span {
                s.set_attr("lost_cells", lost);
                s.finish();
            }
            return Err(Error::unavailable(lost));
        }
        stats.failovers = Self::record_failovers(&span, la, &l_served)
            + Self::record_failovers(&span, ra, &r_served);

        // Join-key dimension indices on each side.
        let mut l_dims = Vec::new();
        let mut r_dims = Vec::new();
        for (dl, dr) in on {
            l_dims.push(la.schema.require_dim(dl)?);
            r_dims.push(ra.schema.require_dim(dr)?);
        }

        // Redistribute: a cell's join home is the owner of its join-key
        // coordinates (projected onto the left schema's dimension space).
        let l_rank = la.schema.rank();
        let place = |coords_full: &[i64], dims: &[usize], l_dims: &[usize]| -> Vec<i64> {
            // Build a left-rank coordinate vector carrying join coords in
            // the left join dims; other dims pinned to 1 so Grid/Range
            // schemes see consistent positions.
            let mut v = vec![1i64; l_rank];
            for (k, &ld) in l_dims.iter().enumerate() {
                v[ld] = coords_full[dims[k]];
            }
            v
        };

        let mut l_parts: Vec<Array> = (0..self.n_nodes)
            .map(|_| Array::from_arc(Arc::clone(&la.schema)))
            .collect();
        let mut r_parts: Vec<Array> = (0..self.n_nodes)
            .map(|_| Array::from_arc(Arc::clone(&ra.schema)))
            .collect();

        for (coords, (node, rec)) in &l_served {
            let home = target.node_of(&place(coords, &l_dims, &l_dims));
            if home != *node {
                stats.cells_moved += 1;
            }
            l_parts[home].set_cell(coords, rec.clone())?;
        }
        for (coords, (node, rec)) in &r_served {
            let home = target.node_of(&place(coords, &r_dims, &l_dims));
            if home != *node {
                stats.cells_moved += 1;
            }
            r_parts[home].set_cell(coords, rec.clone())?;
        }
        self.total_cells_moved += stats.cells_moved;

        // Local joins, concatenated at the coordinator.
        let mut result: Option<Array> = None;
        for node in 0..self.n_nodes {
            if l_parts[node].is_empty() || r_parts[node].is_empty() {
                continue;
            }
            stats.nodes_touched += 1;
            let local_cells = l_parts[node].cell_count() + r_parts[node].cell_count();
            stats.cells_scanned += local_cells * self.slow_factor[node] as usize;
            Self::node_event(&span, node, local_cells);
            let local = structural::sjoin(&l_parts[node], &r_parts[node], on)?;
            match &mut result {
                None => result = Some(local),
                Some(acc) => {
                    for (coords, rec) in local.cells() {
                        acc.set_cell(&coords, rec)?;
                    }
                }
            }
        }
        let result = match result {
            Some(r) => r,
            None => {
                // Empty join: synthesize the output schema via core sjoin on
                // empty arrays.
                let la = self.array(left)?;
                let ra = self.array(right)?;
                structural::sjoin(
                    &Array::from_arc(Arc::clone(&la.schema)),
                    &Array::from_arc(Arc::clone(&ra.schema)),
                    on,
                )?
            }
        };
        stats.cells_returned = result.cell_count();
        scidb_obs::global()
            .counter("scidb.grid.cells_moved")
            .inc(stats.cells_moved as u64);
        if let Some(s) = &span {
            s.set_attr("right", right);
            s.set_attr("cells_moved", stats.cells_moved);
            s.set_attr("nodes_touched", stats.nodes_touched);
            s.set_attr("cells_returned", stats.cells_returned);
            if stats.failovers > 0 {
                s.set_attr("failovers", stats.failovers);
            }
            s.finish();
        }
        Ok((result, stats))
    }

    /// Runs `query_region` under a fresh trace and renders the grid span
    /// tree — the grid-layer counterpart of the AQL `explain analyze`
    /// statement, with `failover`/`retry`/`degraded` events inline. With
    /// `times: false` the report is byte-stable (golden-testable).
    pub fn explain_analyze_region(
        &mut self,
        name: &str,
        region: &HyperRect,
        opts: &RenderOptions,
    ) -> Result<(Array, String)> {
        let prev = self.detach_span();
        let trace = Trace::new();
        let root = trace.root("statement", LAYER_GRID);
        self.attach_span(root.clone());
        let out = self.query_region(name, region);
        root.finish();
        self.span = prev;
        let report = trace.finish().render_tree(opts);
        Ok((out?.0, report))
    }

    /// Accumulated per-node load (weighted cells scanned).
    pub fn node_loads(&self) -> &[f64] {
        &self.node_load
    }

    /// Load imbalance: `max / mean` of per-node load (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.node_load.iter().cloned().fold(0.0, f64::max);
        let mean = self.node_load.iter().sum::<f64>() / self.n_nodes as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Resets load accounting (between experiment phases).
    pub fn reset_loads(&mut self) {
        self.node_load.iter_mut().for_each(|l| *l = 0.0);
    }

    /// Total cells moved since creation (joins, rebalances, and
    /// re-replication passes).
    pub fn total_cells_moved(&self) -> usize {
        self.total_cells_moved
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;
    use scidb_core::schema::SchemaBuilder;
    use scidb_core::value::{record, ScalarType};

    fn space(n: i64) -> HyperRect {
        HyperRect::new(vec![1, 1], vec![n, n]).unwrap()
    }

    fn schema2(n: i64) -> ArraySchema {
        SchemaBuilder::new("A")
            .attr("v", ScalarType::Float64)
            .dim("I", n)
            .dim("J", n)
            .build()
            .unwrap()
    }

    fn grid_cluster(n_nodes: usize, n: i64) -> Cluster {
        let mut c = Cluster::new(n_nodes);
        let scheme = PartitionScheme::grid(space(n), vec![2, 2], n_nodes).unwrap();
        c.create_array("A", schema2(n), EpochPartitioning::fixed(scheme))
            .unwrap();
        c
    }

    fn dense_cells(n: i64) -> Vec<(Vec<i64>, Record)> {
        let mut cells = Vec::new();
        for i in 1..=n {
            for j in 1..=n {
                cells.push((vec![i, j], record([Value::from((i * 100 + j) as f64)])));
            }
        }
        cells
    }

    #[test]
    fn load_distributes_by_scheme() {
        let mut c = grid_cluster(4, 16);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let dist = c.distribution("A").unwrap();
        assert_eq!(dist, vec![64, 64, 64, 64]);
        assert_eq!(c.cell_count("A").unwrap(), 256);
    }

    #[test]
    fn query_region_collects_correct_cells() {
        let mut c = grid_cluster(4, 16);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let (out, stats) = c
            .query_region("A", &HyperRect::new(vec![1, 1], vec![4, 16]).unwrap())
            .unwrap();
        assert_eq!(out.cell_count(), 64);
        assert_eq!(out.get_f64(0, &[2, 5]), Some(205.0));
        assert_eq!(stats.cells_returned, 64);
        assert_eq!(stats.nodes_touched, 2, "strip spans two grid tiles");
    }

    #[test]
    fn distributed_aggregate_matches_local() {
        let mut c = grid_cluster(4, 8);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        let r = Registry::with_builtins();
        let (v, stats) = c.aggregate("A", "avg", "v", &r).unwrap();
        let expect: f64 = dense_cells(8)
            .iter()
            .map(|(_, rec)| rec[0].as_f64().unwrap())
            .sum::<f64>()
            / 64.0;
        assert!((v.as_f64().unwrap() - expect).abs() < 1e-9);
        assert_eq!(stats.nodes_touched, 4);
        assert_eq!(stats.cells_scanned, 64);
    }

    #[test]
    fn copartitioned_join_moves_nothing() {
        let mut c = Cluster::new(4);
        let scheme = PartitionScheme::grid(space(8), vec![2, 2], 4).unwrap();
        c.create_array("L", schema2(8), EpochPartitioning::fixed(scheme.clone()))
            .unwrap();
        c.create_array("R", schema2(8), EpochPartitioning::fixed(scheme))
            .unwrap();
        c.load_at("L", 0, dense_cells(8)).unwrap();
        c.load_at("R", 0, dense_cells(8)).unwrap();
        let (out, stats) = c.sjoin("L", "R", &[("I", "I"), ("J", "J")]).unwrap();
        assert_eq!(stats.cells_moved, 0, "co-partitioned: no movement");
        assert_eq!(out.cell_count(), 64);
    }

    #[test]
    fn mismatched_partitioning_forces_movement() {
        let mut c = Cluster::new(4);
        let g = PartitionScheme::grid(space(8), vec![2, 2], 4).unwrap();
        let h = PartitionScheme::Hash {
            dims: vec![0, 1],
            n_nodes: 4,
        };
        c.create_array("L", schema2(8), EpochPartitioning::fixed(g))
            .unwrap();
        c.create_array("R", schema2(8), EpochPartitioning::fixed(h))
            .unwrap();
        c.load_at("L", 0, dense_cells(8)).unwrap();
        c.load_at("R", 0, dense_cells(8)).unwrap();
        let (out, stats) = c.sjoin("L", "R", &[("I", "I"), ("J", "J")]).unwrap();
        assert!(stats.cells_moved > 0, "hash-placed R must move");
        assert_eq!(out.cell_count(), 64, "join result identical regardless");
    }

    #[test]
    fn epoch_change_and_rebalance() {
        let mut c = Cluster::new(4);
        let g1 = PartitionScheme::range(0, vec![4, 8, 12]).unwrap();
        c.create_array("A", schema2(16), EpochPartitioning::fixed(g1))
            .unwrap();
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let before = c.distribution("A").unwrap();
        assert_eq!(before, vec![64, 64, 64, 64]);

        // New epoch concentrates old rows on fewer nodes; new data obeys it.
        let g2 = PartitionScheme::range(0, vec![8, 12, 14]).unwrap();
        c.add_epoch("A", 100, g2).unwrap();
        // Old data stayed put (epoch semantics).
        assert_eq!(c.distribution("A").unwrap(), before);

        // Eager rebalance moves exactly the cells whose home changed.
        let moved = c.rebalance("A").unwrap();
        assert!(moved > 0);
        let after = c.distribution("A").unwrap();
        assert_eq!(after.iter().sum::<usize>(), 256);
        assert_eq!(after, vec![128, 64, 32, 32]);
        assert_eq!(c.total_cells_moved(), moved);
    }

    #[test]
    fn imbalance_metric() {
        let mut c = grid_cluster(4, 16);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        assert_eq!(c.imbalance(), 1.0, "no load yet");
        // Hot corner: only node owning tile (1,1) works.
        for _ in 0..10 {
            c.query_region("A", &HyperRect::new(vec![1, 1], vec![4, 4]).unwrap())
                .unwrap();
        }
        assert!(c.imbalance() > 3.0, "single hot node: {}", c.imbalance());
        c.reset_loads();
        assert_eq!(c.imbalance(), 1.0);
    }

    #[test]
    fn attached_span_tags_operations_with_node_ids() {
        let mut c = grid_cluster(4, 16);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let trace = scidb_obs::Trace::new();
        let root = trace.root("statement", scidb_obs::LAYER_QUERY);
        c.attach_span(root.clone());
        c.query_region("A", &HyperRect::new(vec![1, 1], vec![4, 16]).unwrap())
            .unwrap();
        let r = Registry::with_builtins();
        c.aggregate("A", "sum", "v", &r).unwrap();
        assert!(c.detach_span().is_some());
        // Detached: no more spans.
        c.query_region("A", &HyperRect::new(vec![1, 1], vec![2, 2]).unwrap())
            .unwrap();
        root.finish();
        let td = trace.finish();
        assert_eq!(td.spans.len(), 3, "root + query_region + aggregate");
        let qr = &td.spans[1];
        assert_eq!(qr.name, "grid.query_region");
        assert_eq!(qr.layer, scidb_obs::LAYER_GRID);
        assert_eq!(qr.parent, Some(td.spans[0].id));
        assert_eq!(
            qr.attr("nodes_touched").and_then(AttrValue::as_u64),
            Some(2)
        );
        let node_ids: Vec<u64> = qr
            .events
            .iter()
            .filter(|e| e.name == "node")
            .filter_map(|e| {
                e.attrs
                    .iter()
                    .find(|(k, _)| k == "node")
                    .and_then(|(_, v)| v.as_u64())
            })
            .collect();
        assert_eq!(node_ids.len(), 2, "one event per node that scanned");
        assert!(node_ids.windows(2).all(|w| w[0] < w[1]), "{node_ids:?}");
        let agg = &td.spans[2];
        assert_eq!(agg.name, "grid.aggregate");
        assert_eq!(
            agg.events.iter().filter(|e| e.name == "node").count(),
            4,
            "all four nodes contribute partials"
        );
    }

    #[test]
    fn duplicate_and_missing_arrays_rejected() {
        let mut c = grid_cluster(2, 4);
        assert!(c
            .create_array(
                "A",
                schema2(4),
                EpochPartitioning::fixed(PartitionScheme::range(0, vec![2]).unwrap())
            )
            .is_err());
        assert!(c.distribution("nope").is_err());
        assert!(c.rebalance("nope").is_err());
    }

    #[test]
    fn scheme_wider_than_cluster_rejected() {
        let mut c = Cluster::new(2);
        let scheme = PartitionScheme::range(0, vec![1, 2, 3]).unwrap(); // 4 nodes
        assert!(c
            .create_array("A", schema2(4), EpochPartitioning::fixed(scheme))
            .is_err());
    }

    // ------------------------------------------------------------------
    // Fault injection & failover
    // ------------------------------------------------------------------

    fn replicated_cluster(n_nodes: usize, n: i64, replicas: usize) -> Cluster {
        let mut c = Cluster::new(n_nodes);
        let scheme = PartitionScheme::grid(space(n), vec![2, 2], n_nodes).unwrap();
        let placement = ReplicatedPlacement::with_replicas(scheme, 0, replicas);
        c.create_replicated_array("A", schema2(n), placement)
            .unwrap();
        c
    }

    #[test]
    fn crash_failover_serves_identical_results() {
        let mut healthy = replicated_cluster(4, 16, 2);
        healthy.load_at("A", 0, dense_cells(16)).unwrap();
        let region = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
        let (want, _) = healthy.query_region("A", &region).unwrap();

        let mut c = replicated_cluster(4, 16, 2);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let wiped = c.fail_node(1).unwrap();
        assert!(wiped > 0, "node 1 held data");
        assert_eq!(c.node_state(1), Some(NodeState::Down));
        let (got, stats) = c.query_region("A", &region).unwrap();
        assert!(want.same_cells(&got), "failover result byte-identical");
        assert!(stats.failovers > 0, "some cells served off-home");
        assert_eq!(c.lost_cells("A").unwrap(), 0, "k=2 survives one crash");
    }

    #[test]
    fn total_loss_returns_unavailable() {
        let mut c = grid_cluster(4, 8); // unreplicated
        c.load_at("A", 0, dense_cells(8)).unwrap();
        c.fail_node(0).unwrap();
        let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
        match c.query_region("A", &region) {
            Err(Error::Unavailable { lost_cells }) => {
                assert_eq!(lost_cells, 16, "one of four tiles is gone")
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        // A region not touching the dead tile still answers.
        let alive = HyperRect::new(vec![1, 5], vec![4, 8]).unwrap();
        assert!(c.query_region("A", &alive).is_ok());
    }

    #[test]
    fn recover_rereplicates_to_full_factor() {
        let mut c = replicated_cluster(4, 16, 2);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let full = c.cell_count("A").unwrap();
        assert_eq!(full, 512, "256 cells × 2 copies");
        c.fail_node(2).unwrap();
        assert!(c.cell_count("A").unwrap() < full);
        let copied = c.recover_node(2).unwrap();
        assert!(copied > 0, "re-replication restored copies");
        assert_eq!(c.cell_count("A").unwrap(), full, "factor restored");
        assert_eq!(c.node_state(2), Some(NodeState::Up));
        // Everything still readable, now with no failover needed.
        let region = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
        let (_, stats) = c.query_region("A", &region).unwrap();
        assert_eq!(stats.failovers, 0);
    }

    #[test]
    fn durable_seed_resurrects_lost_cells() {
        // Lose both ring copies of a tile: the cells are permanently lost…
        let mut c = replicated_cluster(4, 16, 2);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        c.fail_node(0).unwrap();
        c.fail_node(1).unwrap();
        assert!(c.lost_cells("A").unwrap() > 0);
        // …unless a durable backing copy survives on disk.
        let recoverable = c.attach_durable_seed("A", dense_cells(16)).unwrap();
        assert_eq!(recoverable, c.lost_cells("A").unwrap());
        c.recover_node(0).unwrap();
        c.recover_node(1).unwrap();
        assert_eq!(c.lost_cells("A").unwrap(), 0, "seed resurrected the tile");
        let region = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
        let (got, _) = c.query_region("A", &region).unwrap();
        let mut healthy = replicated_cluster(4, 16, 2);
        healthy.load_at("A", 0, dense_cells(16)).unwrap();
        let (want, _) = healthy.query_region("A", &region).unwrap();
        assert!(want.same_cells(&got), "restored state is byte-identical");
    }

    #[test]
    fn durable_seed_without_losses_changes_nothing() {
        let mut c = replicated_cluster(4, 16, 2);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        assert_eq!(c.attach_durable_seed("A", dense_cells(16)).unwrap(), 0);
        c.fail_node(3).unwrap();
        let copied = c.recover_node(3).unwrap();
        assert!(copied > 0, "ordinary re-replication still runs");
        assert_eq!(c.lost_cells("A").unwrap(), 0);
    }

    #[test]
    fn fault_plan_fires_on_logical_op_clock() {
        let mut c = replicated_cluster(4, 16, 2);
        c.load_at("A", 0, dense_cells(16)).unwrap();
        c.set_fault_plan(FaultPlan::new(0).crash(2, 1).restart(3, 1));
        let region = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
        // Op 1: before the crash — no failover.
        let (_, s1) = c.query_region("A", &region).unwrap();
        assert_eq!(s1.failovers, 0);
        assert_eq!(c.node_state(1), Some(NodeState::Up));
        // Op 2: crash fires first — replica serves node 1's cells.
        let (_, s2) = c.query_region("A", &region).unwrap();
        assert!(s2.failovers > 0);
        assert_eq!(c.node_state(1), Some(NodeState::Down));
        // Op 3: restart fires — re-replicated, healthy again.
        let (_, s3) = c.query_region("A", &region).unwrap();
        assert_eq!(s3.failovers, 0);
        assert_eq!(c.node_state(1), Some(NodeState::Up));
        assert_eq!(c.op_index(), 3);
    }

    #[test]
    fn flaky_node_retries_within_budget() {
        let mut c = grid_cluster(4, 8);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        c.set_fault_plan(FaultPlan::new(0).flaky(1, 0, 2));
        let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
        let (out, stats) = c.query_region("A", &region).unwrap();
        assert_eq!(out.cell_count(), 64, "retries absorbed the failures");
        assert_eq!(stats.retries, 2);
        assert_eq!(c.node_state(0), Some(NodeState::Up), "healed after drain");
    }

    #[test]
    fn flaky_beyond_retry_budget_is_transient_unavailability() {
        let mut c = grid_cluster(4, 8);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        // 7 failures: op1 retries 3 (4 left), op2 retries 3 (1 left),
        // op3 retries 1 (0 left) and serves.
        c.set_fault_plan(FaultPlan::new(0).flaky(1, 0, 7));
        let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
        assert!(matches!(
            c.query_region("A", &region),
            Err(Error::Unavailable { .. })
        ));
        assert!(matches!(
            c.query_region("A", &region),
            Err(Error::Unavailable { .. })
        ));
        let (out, stats) = c.query_region("A", &region).unwrap();
        assert_eq!(out.cell_count(), 64);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn slow_node_inflates_scan_load() {
        let mut c = grid_cluster(4, 8);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
        let (_, before) = c.query_region("A", &region).unwrap();
        c.set_fault_plan(FaultPlan::new(0).slow(2, 0, 4));
        let (out, after) = c.query_region("A", &region).unwrap();
        assert_eq!(out.cell_count(), 64, "slow node still answers correctly");
        assert_eq!(c.node_state(0), Some(NodeState::Degraded));
        assert_eq!(
            after.cells_scanned,
            before.cells_scanned + 3 * 16,
            "node 0's 16 cells cost 4× the work"
        );
    }

    #[test]
    fn rebalance_noop_short_circuits() {
        let mut c = Cluster::new(4);
        let g1 = PartitionScheme::range(0, vec![4, 8, 12]).unwrap();
        c.create_array("A", schema2(16), EpochPartitioning::fixed(g1))
            .unwrap();
        c.load_at("A", 0, dense_cells(16)).unwrap();
        // No epoch change since load: nothing to do, nothing moved.
        assert_eq!(c.rebalance("A").unwrap(), 0);
        assert_eq!(c.total_cells_moved(), 0);
        // After a real epoch change + rebalance, a second rebalance is free.
        let g2 = PartitionScheme::range(0, vec![8, 12, 14]).unwrap();
        c.add_epoch("A", 100, g2).unwrap();
        let moved = c.rebalance("A").unwrap();
        assert!(moved > 0);
        assert_eq!(c.rebalance("A").unwrap(), 0, "second pass is a no-op");
        assert_eq!(c.total_cells_moved(), moved);
    }

    #[test]
    fn load_after_epoch_change_invalidates_noop_cache() {
        let mut c = Cluster::new(4);
        let g1 = PartitionScheme::range(0, vec![4, 8, 12]).unwrap();
        c.create_array("A", schema2(16), EpochPartitioning::fixed(g1))
            .unwrap();
        c.load_at("A", 0, dense_cells(16)).unwrap();
        let g2 = PartitionScheme::range(0, vec![8, 12, 14]).unwrap();
        c.add_epoch("A", 100, g2).unwrap();
        // Loading under the *new* epoch leaves old cells misplaced: the
        // rebalance after it must still move them.
        c.load_at("A", 200, vec![(vec![1, 1], record([Value::from(0.0)]))])
            .unwrap();
        assert!(c.rebalance("A").unwrap() > 0);
    }

    #[test]
    fn replicated_array_never_rebalances() {
        let mut c = replicated_cluster(4, 8, 2);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        assert_eq!(c.rebalance("A").unwrap(), 0);
        assert_eq!(c.total_cells_moved(), 0);
    }

    #[test]
    fn explain_analyze_shows_failover_events() {
        let mut c = replicated_cluster(4, 8, 2);
        c.load_at("A", 0, dense_cells(8)).unwrap();
        c.fail_node(3).unwrap();
        c.set_fault_plan(FaultPlan::new(0).flaky(1, 0, 1));
        let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
        let (out, report) = c
            .explain_analyze_region(
                "A",
                &region,
                &RenderOptions {
                    times: false,
                    events: true,
                },
            )
            .unwrap();
        assert_eq!(out.cell_count(), 64);
        assert!(report.contains("grid.query_region"), "{report}");
        assert!(report.contains("failover"), "{report}");
        assert!(report.contains("retry"), "{report}");
    }

    #[test]
    fn fail_recover_out_of_range_rejected() {
        let mut c = Cluster::new(2);
        assert!(c.fail_node(2).is_err());
        assert!(c.recover_node(9).is_err());
        assert!(c.fail_node(1).is_ok());
        assert_eq!(c.node_states(), &[NodeState::Up, NodeState::Down]);
    }
}
