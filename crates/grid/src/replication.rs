//! Overlap replication for uncertain positions (§2.13, PanSTARRS).
//!
//! "The PanSTARRS DBAs have identified the maximum possible location error.
//! Since they have a fixed partitioning schema between nodes, they can
//! redundantly place an observation in multiple partitions if the
//! observation is close to a partition boundary. In this way, they ensure
//! that 'uncertain' spatial joins can be performed without moving data
//! elements."
//!
//! [`ReplicatedPlacement`] wraps a [`PartitionScheme`] with a replication
//! margin: an observation is placed on its home node plus every node owning
//! cells within `margin` of it. Experiment E11 measures the fraction of
//! uncertain matches resolvable with zero movement versus the margin (in
//! multiples of the maximum positional error) and the storage overhead paid
//! for it.

use crate::partition::PartitionScheme;
use scidb_core::geometry::HyperRect;
use std::collections::BTreeSet;

/// A partitioning with boundary-overlap replication and an optional k-copy
/// fault-tolerance factor.
#[derive(Debug, Clone)]
pub struct ReplicatedPlacement {
    scheme: PartitionScheme,
    margin: i64,
    /// Fault-tolerance copies per observation (≥ 1). Copy `i` lives on the
    /// `i`-th successor of the home node, ring-ordered over the scheme's
    /// nodes, so losing any `replicas − 1` non-adjacent nodes loses no data.
    replicas: usize,
}

impl ReplicatedPlacement {
    /// Wraps `scheme` with a replication `margin` in cells (typically
    /// `k × σ_max`, the identified maximum location error).
    pub fn new(scheme: PartitionScheme, margin: i64) -> Self {
        Self::with_replicas(scheme, margin, 1)
    }

    /// Wraps `scheme` with both an overlap `margin` and a k-copy
    /// fault-tolerance factor: every observation is stored on its home node
    /// and the next `replicas − 1` ring-successor nodes (§2.11 node-failure
    /// recovery), in addition to any margin-induced boundary copies.
    /// `replicas` is clamped to the scheme's node count.
    pub fn with_replicas(scheme: PartitionScheme, margin: i64, replicas: usize) -> Self {
        assert!(margin >= 0, "margin must be non-negative");
        assert!(replicas >= 1, "need at least one copy");
        let replicas = replicas.min(scheme.n_nodes());
        ReplicatedPlacement {
            scheme,
            margin,
            replicas,
        }
    }

    /// The home node (authoritative copy).
    pub fn home(&self, coords: &[i64]) -> usize {
        self.scheme.node_of(coords)
    }

    /// All nodes receiving a copy: the owners of every cell within the
    /// margin box around `coords`. Checking the corners and the center of
    /// the margin box suffices for the convex tile/range schemes used here,
    /// but we scan the box edges coarsely to stay scheme-agnostic.
    pub fn placements(&self, coords: &[i64]) -> Vec<usize> {
        let mut nodes = BTreeSet::new();
        let home = self.home(coords);
        nodes.insert(home);
        // k-copy fault-tolerance replicas on the home's ring successors.
        let n = self.scheme.n_nodes();
        for i in 1..self.replicas {
            nodes.insert((home + i) % n);
        }
        if self.margin > 0 {
            let rect = HyperRect::cell(coords).expanded(self.margin);
            // Probe the corner points and axis-aligned extremes of the box.
            let rank = coords.len();
            let n_corners = 1usize << rank;
            for mask in 0..n_corners {
                let corner: Vec<i64> = (0..rank)
                    .map(|d| {
                        if mask >> d & 1 == 1 {
                            rect.high[d]
                        } else {
                            rect.low[d]
                        }
                    })
                    .collect();
                nodes.insert(self.scheme.node_of(&corner));
            }
            // Axis midpoints catch thin-tile schemes.
            for d in 0..rank {
                for &edge in &[rect.low[d], rect.high[d]] {
                    let mut probe = coords.to_vec();
                    probe[d] = edge;
                    nodes.insert(self.scheme.node_of(&probe));
                }
            }
        }
        nodes.into_iter().collect()
    }

    /// Replication factor for one observation.
    pub fn copies(&self, coords: &[i64]) -> usize {
        self.placements(coords).len()
    }

    /// True if two observations share at least one node — i.e. their
    /// uncertain spatial join resolves without data movement.
    pub fn join_local(&self, a: &[i64], b: &[i64]) -> bool {
        let pa = self.placements(a);
        let pb = self.placements(b);
        pa.iter().any(|n| pb.contains(n))
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// The margin.
    pub fn margin(&self) -> i64 {
        self.margin
    }

    /// The k-copy fault-tolerance factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Nodes addressed by the wrapped scheme.
    pub fn n_nodes(&self) -> usize {
        self.scheme.n_nodes()
    }
}

/// Storage overhead of replication over a set of observations:
/// `total copies / observations` (1.0 = no overhead).
pub fn replication_overhead(placement: &ReplicatedPlacement, obs: &[Vec<i64>]) -> f64 {
    if obs.is_empty() {
        return 1.0;
    }
    let copies: usize = obs.iter().map(|o| placement.copies(o)).sum();
    copies as f64 / obs.len() as f64
}

/// Fraction of observation pairs whose join is node-local.
pub fn local_join_fraction(placement: &ReplicatedPlacement, pairs: &[(Vec<i64>, Vec<i64>)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let local = pairs
        .iter()
        .filter(|(a, b)| placement.join_local(a, b))
        .count();
    local as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn space(n: i64) -> HyperRect {
        HyperRect::new(vec![1, 1], vec![n, n]).unwrap()
    }

    fn grid4(n: i64) -> PartitionScheme {
        PartitionScheme::grid(space(n), vec![2, 2], 4).unwrap()
    }

    #[test]
    fn interior_observation_has_one_copy() {
        let p = ReplicatedPlacement::new(grid4(100), 3);
        assert_eq!(p.copies(&[25, 25]), 1);
    }

    #[test]
    fn boundary_observation_is_replicated() {
        let p = ReplicatedPlacement::new(grid4(100), 3);
        // Tile boundary at 50/51 along each dimension.
        assert_eq!(p.copies(&[50, 25]), 2);
        assert_eq!(p.copies(&[50, 50]), 4, "corner gets all four tiles");
        // Beyond the margin: single copy again.
        assert_eq!(p.copies(&[46, 25]), 1);
    }

    #[test]
    fn zero_margin_never_replicates() {
        let p = ReplicatedPlacement::new(grid4(100), 0);
        for x in [1i64, 50, 51, 100] {
            assert_eq!(p.copies(&[x, x]), 1);
        }
    }

    #[test]
    fn join_local_for_nearby_boundary_pairs() {
        let margin = 3;
        let p = ReplicatedPlacement::new(grid4(100), margin);
        // Same object observed twice, straddling the boundary by < margin.
        assert!(p.join_local(&[50, 25], &[52, 25]));
        // Without replication the same pair is remote.
        let bare = ReplicatedPlacement::new(grid4(100), 0);
        assert!(!bare.join_local(&[50, 25], &[52, 25]));
        // Interior pairs are always local.
        assert!(bare.join_local(&[10, 10], &[12, 12]));
    }

    #[test]
    fn local_fraction_increases_with_margin() {
        // Pairs: same object jittered by up to sigma_max = 2 cells.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut pairs = Vec::new();
        for _ in 0..2000 {
            let x = rng.gen_range(3..=98i64);
            let y = rng.gen_range(3..=98i64);
            let dx = rng.gen_range(-2..=2i64);
            let dy = rng.gen_range(-2..=2i64);
            pairs.push((
                vec![x, y],
                vec![(x + dx).clamp(1, 100), (y + dy).clamp(1, 100)],
            ));
        }
        let f0 = local_join_fraction(&ReplicatedPlacement::new(grid4(100), 0), &pairs);
        let f2 = local_join_fraction(&ReplicatedPlacement::new(grid4(100), 2), &pairs);
        assert!(f0 < 1.0, "some boundary pairs are remote: {f0}");
        assert_eq!(f2, 1.0, "margin = sigma_max localizes every join");
        assert!(f2 > f0);
    }

    #[test]
    fn overhead_grows_with_margin_but_stays_modest() {
        let mut rng = SmallRng::seed_from_u64(13);
        let obs: Vec<Vec<i64>> = (0..5000)
            .map(|_| vec![rng.gen_range(1..=100i64), rng.gen_range(1..=100i64)])
            .collect();
        let o0 = replication_overhead(&ReplicatedPlacement::new(grid4(100), 0), &obs);
        let o2 = replication_overhead(&ReplicatedPlacement::new(grid4(100), 2), &obs);
        let o5 = replication_overhead(&ReplicatedPlacement::new(grid4(100), 5), &obs);
        assert_eq!(o0, 1.0);
        assert!(o2 > 1.0 && o2 < 1.3, "small margin, small overhead: {o2}");
        assert!(o5 > o2, "more margin, more copies: {o5} > {o2}");
    }

    #[test]
    fn k_copy_replicas_on_ring_successors() {
        let p = ReplicatedPlacement::with_replicas(grid4(100), 0, 2);
        assert_eq!(p.replicas(), 2);
        assert_eq!(p.n_nodes(), 4);
        // Interior observation: home plus one ring successor.
        let placements = p.placements(&[25, 25]);
        assert_eq!(placements.len(), 2);
        let home = p.home(&[25, 25]);
        assert!(placements.contains(&home));
        assert!(placements.contains(&((home + 1) % 4)));
        // Corner observation: margin copies and ring copies combine.
        let corner = ReplicatedPlacement::with_replicas(grid4(100), 3, 2);
        assert!(corner.copies(&[50, 50]) >= 4);
        assert!(corner.copies(&[50, 50]) <= 4, "never exceeds node count");
    }

    #[test]
    fn replicas_clamped_to_node_count() {
        let p = ReplicatedPlacement::with_replicas(grid4(100), 0, 99);
        assert_eq!(p.replicas(), 4);
        assert_eq!(p.copies(&[10, 10]), 4);
    }

    #[test]
    fn range_scheme_replication() {
        let scheme = PartitionScheme::range(0, vec![25, 50, 75]).unwrap();
        let p = ReplicatedPlacement::new(scheme, 2);
        assert_eq!(p.copies(&[10, 1]), 1);
        assert_eq!(p.copies(&[25, 1]), 2);
        assert_eq!(p.copies(&[26, 1]), 2);
        assert_eq!(p.copies(&[28, 1]), 1);
    }
}
