//! A provenance query language (§2.12).
//!
//! "Recording the log and establishing a metadata repository is
//! straightforward. The hard part is to create a provenance query language
//! and efficient implementation." This module provides that language over
//! a derivation [`Pipeline`]:
//!
//! ```text
//! trace backward summary[1, 1]
//! trace forward  raw[3, 3]
//! rederive raw[1, 1] = (100.0)
//! ```
//!
//! `trace backward` answers search requirement 1 (what created this data
//! element), `trace forward` requirement 2 (everything downstream of it),
//! and `rederive` performs the §2.12 correction workflow, returning the
//! replacement values without overwriting anything.

use crate::pipeline::Pipeline;
use crate::rederive::{rederive_forward, Rederivation};
use crate::trace::{backward_trace, forward_trace, TraceMode, TraceResult};
use scidb_core::error::{Error, Result};
use scidb_core::value::Value;

/// Result of one provenance query.
#[derive(Debug)]
pub enum QlResult {
    /// A backward or forward trace.
    Trace(TraceResult),
    /// The replacement values of a re-derivation.
    Rederived(Rederivation),
}

impl QlResult {
    /// Human-readable rendering (cells per array, in name order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            QlResult::Trace(t) => {
                for (array, cells) in &t.cells {
                    out.push_str(&format!("{array}: {} cell(s)\n", cells.len()));
                    for c in cells.iter().take(8) {
                        out.push_str(&format!("  {c:?}\n"));
                    }
                    if cells.len() > 8 {
                        out.push_str(&format!("  … {} more\n", cells.len() - 8));
                    }
                }
            }
            QlResult::Rederived(r) => {
                for (array, cells) in r {
                    out.push_str(&format!("{array}: {} replacement(s)\n", cells.len()));
                    for (c, rec) in cells.iter().take(8) {
                        let vals: Vec<String> = rec.iter().map(|v| v.to_string()).collect();
                        out.push_str(&format!("  {c:?} -> ({})\n", vals.join(", ")));
                    }
                }
            }
        }
        out
    }
}

/// Parses and runs one provenance query against a pipeline.
pub fn query(pipeline: &Pipeline, text: &str) -> Result<QlResult> {
    let mut p = Lexer::new(text);
    let head = p.word()?;
    match head.to_ascii_lowercase().as_str() {
        "trace" => {
            let direction = p.word()?.to_ascii_lowercase();
            let (array, coords) = p.cell_ref()?;
            p.end()?;
            pipeline.array(&array)?; // unknown arrays error, not empty traces
            let result = match direction.as_str() {
                "backward" => backward_trace(pipeline, &array, &coords, TraceMode::Replay)?,
                "forward" => forward_trace(pipeline, &array, &coords)?,
                other => {
                    return Err(Error::parse(format!(
                        "expected 'backward' or 'forward', found '{other}'"
                    )))
                }
            };
            Ok(QlResult::Trace(result))
        }
        "rederive" => {
            let (array, coords) = p.cell_ref()?;
            p.expect('=')?;
            p.expect('(')?;
            let mut record = Vec::new();
            loop {
                record.push(Value::from(p.number()?));
                if !p.try_char(',') {
                    break;
                }
            }
            p.expect(')')?;
            p.end()?;
            pipeline.array(&array)?;
            Ok(QlResult::Rederived(rederive_forward(
                pipeline, &array, &coords, record,
            )?))
        }
        other => Err(Error::parse(format!(
            "unknown provenance command '{other}' (expected 'trace' or 'rederive')"
        ))),
    }
}

/// A tiny hand-rolled lexer: words, `array[c1, c2]` references, numbers.
struct Lexer<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { text, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn word(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len() {
            let c = self.text.as_bytes()[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(Error::parse(format!(
                "expected a word at offset {start} of provenance query"
            )));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.pos < self.text.len() && self.text.as_bytes()[self.pos] as char == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected '{c}' in provenance query")))
        }
    }

    fn try_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.pos < self.text.len() && self.text.as_bytes()[self.pos] as char == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.text.len() {
            let c = self.text.as_bytes()[self.pos] as char;
            if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.text[start..self.pos]
            .parse()
            .map_err(|_| Error::parse("expected a number in provenance query"))
    }

    fn cell_ref(&mut self) -> Result<(String, Vec<i64>)> {
        let array = self.word()?;
        self.expect('[')?;
        let mut coords = vec![self.number()? as i64];
        while self.try_char(',') {
            coords.push(self.number()? as i64);
        }
        self.expect(']')?;
        Ok((array, coords))
    }

    fn end(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.text.len() {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "trailing input in provenance query: '{}'",
                &self.text[self.pos..]
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StepOp;
    use scidb_core::array::Array;

    fn pipeline() -> Pipeline {
        let rows: Vec<Vec<f64>> = (1..=4)
            .map(|i| (1..=4).map(|j| (i * 10 + j) as f64).collect())
            .collect();
        let mut p = Pipeline::new(vec![("raw".into(), Array::f64_2d("raw", "v", &rows))]);
        p.run_step(
            StepOp::Regrid {
                factors: vec![2, 2],
                agg: "sum".into(),
            },
            &["raw"],
            "summary",
            None,
        )
        .unwrap();
        p
    }

    #[test]
    fn trace_backward_query() {
        let p = pipeline();
        let r = query(&p, "trace backward summary[1, 1]").unwrap();
        match r {
            QlResult::Trace(t) => {
                assert_eq!(t.cells_of("raw").len(), 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_forward_query_and_render() {
        let p = pipeline();
        let r = query(&p, "TRACE FORWARD raw[3, 3]").unwrap();
        let text = r.render();
        assert!(text.contains("summary: 1 cell(s)"), "{text}");
        assert!(text.contains("[2, 2]"), "{text}");
    }

    #[test]
    fn rederive_query() {
        let p = pipeline();
        let r = query(&p, "rederive raw[1, 1] = (100.0)").unwrap();
        match r {
            QlResult::Rederived(red) => {
                assert_eq!(red["summary"][0].1[0], Value::from(155.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_clean() {
        let p = pipeline();
        assert!(query(&p, "trace sideways x[1]").is_err());
        assert!(query(&p, "frobnicate x[1]").is_err());
        assert!(query(&p, "trace backward summary[1, 1] extra").is_err());
        assert!(query(&p, "rederive raw[1] = ").is_err());
        assert!(query(&p, "").is_err());
        // Unknown arrays surface engine errors, not panics.
        assert!(query(&p, "trace forward nope[1, 1]").is_err());
    }
}
