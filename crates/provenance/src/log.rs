//! The provenance command log and metadata repository (§2.12).
//!
//! "For a sequence of processing steps inside SciDB, one merely needs to
//! record a log of the commands that were run to create A. For arrays that
//! are loaded externally, scientists want a metadata repository in which
//! they can enter programs that were run along with their run-time
//! parameters." Both structures support the two search requirements: find
//! the steps that created a data element, and find everything downstream
//! of one.

use std::collections::HashMap;

/// One logged engine command.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Monotonic id (execution order).
    pub id: u64,
    /// Logical timestamp (injected; see DESIGN.md §4).
    pub timestamp: i64,
    /// Canonical command text (AQL rendering of the parse tree).
    pub command: String,
    /// Input arrays, with the history version consumed.
    pub inputs: Vec<(String, i64)>,
    /// Output array, with the history version produced.
    pub output: (String, i64),
}

/// Append-only command log.
#[derive(Debug, Default)]
pub struct CommandLog {
    entries: Vec<LogEntry>,
}

impl CommandLog {
    /// An empty log.
    pub fn new() -> Self {
        CommandLog::default()
    }

    /// Appends a command, returning its id.
    pub fn append(
        &mut self,
        timestamp: i64,
        command: impl Into<String>,
        inputs: Vec<(String, i64)>,
        output: (String, i64),
    ) -> u64 {
        let id = self.entries.len() as u64;
        self.entries.push(LogEntry {
            id,
            timestamp,
            command: command.into(),
            inputs,
            output,
        });
        id
    }

    /// All entries in execution order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// The entry that produced `array` at (or most recently before)
    /// version `version` — the paper's "look at the time of the update
    /// that produced the item in question. That identifies the command."
    pub fn producer_of(&self, array: &str, version: i64) -> Option<&LogEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.output.0 == array && e.output.1 <= version)
    }

    /// Entries that consumed `array` at or after `version` — the starting
    /// set for forward tracing.
    pub fn consumers_of(&self, array: &str, version: i64) -> Vec<&LogEntry> {
        self.entries
            .iter()
            .filter(|e| e.inputs.iter().any(|(n, v)| n == array && *v >= version))
            .collect()
    }

    /// Entries after a given id, in order (used when iterating a forward
    /// trace through the log).
    pub fn after(&self, id: u64) -> &[LogEntry] {
        let idx = (id as usize + 1).min(self.entries.len());
        &self.entries[idx..]
    }

    /// Approximate byte size of the log (for the E6 space comparison).
    pub fn byte_size(&self) -> usize {
        self.entries
            .iter()
            .map(|e| {
                48 + e.command.len()
                    + e.inputs.iter().map(|(n, _)| n.len() + 16).sum::<usize>()
                    + e.output.0.len()
            })
            .sum()
    }
}

/// A record of an external program run (data cooked outside the engine,
/// §2.10/§2.12).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRun {
    /// Monotonic id.
    pub id: u64,
    /// Logical timestamp.
    pub timestamp: i64,
    /// Program name/identifier (e.g. a container digest).
    pub program: String,
    /// Run-time parameters.
    pub params: Vec<(String, String)>,
    /// Input datasets (external names or array names).
    pub inputs: Vec<String>,
    /// Output datasets.
    pub outputs: Vec<String>,
}

/// The metadata repository for externally cooked data.
#[derive(Debug, Default)]
pub struct MetadataRepository {
    runs: Vec<ProgramRun>,
    by_output: HashMap<String, Vec<u64>>,
    by_input: HashMap<String, Vec<u64>>,
}

impl MetadataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        MetadataRepository::default()
    }

    /// Registers a program run.
    pub fn record(
        &mut self,
        timestamp: i64,
        program: impl Into<String>,
        params: Vec<(String, String)>,
        inputs: Vec<String>,
        outputs: Vec<String>,
    ) -> u64 {
        let id = self.runs.len() as u64;
        for o in &outputs {
            self.by_output.entry(o.clone()).or_default().push(id);
        }
        for i in &inputs {
            self.by_input.entry(i.clone()).or_default().push(id);
        }
        self.runs.push(ProgramRun {
            id,
            timestamp,
            program: program.into(),
            params,
            inputs,
            outputs,
        });
        id
    }

    /// All runs.
    pub fn runs(&self) -> &[ProgramRun] {
        &self.runs
    }

    /// Runs that produced a dataset (search requirement 1).
    pub fn producers(&self, dataset: &str) -> Vec<&ProgramRun> {
        self.by_output
            .get(dataset)
            .map(|ids| ids.iter().map(|&i| &self.runs[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Runs that consumed a dataset (search requirement 2).
    pub fn consumers(&self, dataset: &str) -> Vec<&ProgramRun> {
        self.by_input
            .get(dataset)
            .map(|ids| ids.iter().map(|&i| &self.runs[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Transitive upstream datasets of `dataset` (derivation ancestry
    /// across program runs).
    pub fn upstream(&self, dataset: &str) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![dataset.to_string()];
        while let Some(d) = stack.pop() {
            for run in self.producers(&d) {
                for i in &run.inputs {
                    if seen.insert(i.clone()) {
                        stack.push(i.clone());
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Transitive downstream datasets of `dataset`.
    pub fn downstream(&self, dataset: &str) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![dataset.to_string()];
        while let Some(d) = stack.pop() {
            for run in self.consumers(&d) {
                for o in &run.outputs {
                    if seen.insert(o.clone()) {
                        stack.push(o.clone());
                    }
                }
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_finds_producers() {
        let mut log = CommandLog::new();
        log.append(
            10,
            "store filter(raw, v > 0) into cooked",
            vec![("raw".into(), 1)],
            ("cooked".into(), 1),
        );
        log.append(
            20,
            "store regrid(cooked, [4,4], avg) into summary",
            vec![("cooked".into(), 1)],
            ("summary".into(), 1),
        );
        log.append(
            30,
            "insert into cooked …",
            vec![("raw".into(), 2)],
            ("cooked".into(), 2),
        );

        let p = log.producer_of("cooked", 1).unwrap();
        assert_eq!(p.id, 0);
        let p = log.producer_of("cooked", 2).unwrap();
        assert_eq!(p.id, 2);
        assert!(log.producer_of("nope", 1).is_none());
    }

    #[test]
    fn log_finds_consumers_and_after() {
        let mut log = CommandLog::new();
        log.append(1, "a", vec![("x".into(), 1)], ("y".into(), 1));
        log.append(2, "b", vec![("y".into(), 1)], ("z".into(), 1));
        log.append(3, "c", vec![("x".into(), 1)], ("w".into(), 1));
        let consumers = log.consumers_of("x", 1);
        assert_eq!(consumers.len(), 2);
        assert_eq!(log.after(0).len(), 2);
        assert_eq!(log.after(5).len(), 0);
        assert!(log.byte_size() > 0);
    }

    #[test]
    fn repository_traces_lineage_across_runs() {
        let mut repo = MetadataRepository::new();
        repo.record(
            1,
            "calibrate-v2",
            vec![("dark_frame".into(), "d013".into())],
            vec!["raw_scan".into()],
            vec!["calibrated".into()],
        );
        repo.record(
            2,
            "mosaic",
            vec![("cloud_algo".into(), "min_cover".into())],
            vec!["calibrated".into()],
            vec!["composite".into()],
        );
        assert_eq!(repo.producers("composite").len(), 1);
        assert_eq!(repo.producers("composite")[0].program, "mosaic");
        assert_eq!(repo.upstream("composite"), vec!["calibrated", "raw_scan"]);
        assert_eq!(repo.downstream("raw_scan"), vec!["calibrated", "composite"]);
        assert!(repo.producers("unknown").is_empty());
    }

    #[test]
    fn repository_params_preserved() {
        let mut repo = MetadataRepository::new();
        let id = repo.record(
            5,
            "p",
            vec![("k".into(), "v".into())],
            vec![],
            vec!["o".into()],
        );
        assert_eq!(repo.runs()[id as usize].params[0].1, "v");
    }
}
