//! Backward and forward provenance traces (§2.12).
//!
//! The two search requirements:
//!
//! 1. "For a given data element D, find the collection of processing steps
//!    that created it from input data" — [`backward_trace`], walking
//!    producers and recomputing contributors (replay mode), looking them up
//!    (Trio mode), or mixing both (hybrid with a cache).
//! 2. "For a given data element D, find all the 'downstream' data elements
//!    whose value is impacted by the value of D" — [`forward_trace`],
//!    re-running the derivation chain with added dimension qualification
//!    and iterating "until there is no further activity".
//!
//! The hybrid mode implements the paper's closing idea: "one can cache
//!   these named versions in case the derivation is run again at a later
//!   time. This amounts to storing a portion of the Trio item level data
//!   structure and re-deriving the portions that are not stored."

use crate::pipeline::{Pipeline, TrioStore};
use scidb_core::error::Result;
use scidb_core::geometry::Coords;
use std::collections::{BTreeMap, BTreeSet};

/// How lineage is obtained during a backward trace.
pub enum TraceMode<'a> {
    /// Minimal storage: recompute contributors analytically (replay).
    Replay,
    /// Item-level storage: look up a [`TrioStore`].
    Trio(&'a TrioStore),
    /// Cache-on-trace: look up the cache, replay on miss, fill the cache.
    Hybrid(&'a mut TrioStore),
}

/// Result of a trace: per-array sets of cells, plus probe accounting.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TraceResult {
    /// Cells per array (sorted for determinism).
    pub cells: BTreeMap<String, BTreeSet<Coords>>,
    /// Lineage relationships resolved by recomputation.
    pub replayed: usize,
    /// Lineage relationships resolved from storage/cache.
    pub looked_up: usize,
}

impl TraceResult {
    /// Total cells across arrays.
    pub fn total_cells(&self) -> usize {
        self.cells.values().map(BTreeSet::len).sum()
    }

    /// Cells recorded for one array.
    pub fn cells_of(&self, array: &str) -> Vec<Coords> {
        self.cells
            .get(array)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// Traces a cell of `array` backwards to the pipeline's sources.
pub fn backward_trace(
    pipeline: &Pipeline,
    array: &str,
    cell: &[i64],
    mut mode: TraceMode<'_>,
) -> Result<TraceResult> {
    let mut result = TraceResult::default();
    let mut frontier: Vec<(String, Coords)> = vec![(array.to_string(), cell.to_vec())];
    let mut seen: BTreeSet<(String, Coords)> = frontier.iter().cloned().collect();
    result
        .cells
        .entry(array.to_string())
        .or_default()
        .insert(cell.to_vec());

    while let Some((a, c)) = frontier.pop() {
        let Some((_, step)) = pipeline.producer(&a) else {
            continue; // reached a source array
        };
        // Resolve contributors under the requested mode.
        let contribs: Vec<(String, Coords)> = match &mut mode {
            TraceMode::Replay => {
                result.replayed += 1;
                step.op
                    .contributors(&c)
                    .into_iter()
                    .map(|(idx, cc)| (step.inputs[idx].clone(), cc))
                    .collect()
            }
            TraceMode::Trio(store) => match store.lookup(&a, &c) {
                Some(l) => {
                    result.looked_up += 1;
                    l.to_vec()
                }
                None => {
                    result.replayed += 1;
                    step.op
                        .contributors(&c)
                        .into_iter()
                        .map(|(idx, cc)| (step.inputs[idx].clone(), cc))
                        .collect()
                }
            },
            TraceMode::Hybrid(cache) => {
                if let Some(l) = cache.lookup(&a, &c) {
                    result.looked_up += 1;
                    l.to_vec()
                } else {
                    result.replayed += 1;
                    let l: Vec<(String, Coords)> = step
                        .op
                        .contributors(&c)
                        .into_iter()
                        .map(|(idx, cc)| (step.inputs[idx].clone(), cc))
                        .collect();
                    cache.insert(&a, &c, l.clone());
                    l
                }
            }
        };
        for (src, cc) in contribs {
            result
                .cells
                .entry(src.clone())
                .or_default()
                .insert(cc.clone());
            if seen.insert((src.clone(), cc.clone())) {
                frontier.push((src, cc));
            }
        }
    }
    Ok(result)
}

/// Traces a source cell forward through every consuming step, iterating
/// until no further activity — the paper's forward algorithm. "This
/// solution requires no extra space at all, but has a substantial running
/// time."
pub fn forward_trace(pipeline: &Pipeline, array: &str, cell: &[i64]) -> Result<TraceResult> {
    let mut result = TraceResult::default();
    let mut frontier: Vec<(String, Coords)> = vec![(array.to_string(), cell.to_vec())];
    let mut seen: BTreeSet<(String, Coords)> = frontier.iter().cloned().collect();
    result
        .cells
        .entry(array.to_string())
        .or_default()
        .insert(cell.to_vec());

    while let Some((a, c)) = frontier.pop() {
        for (_, step) in pipeline.consumers(&a) {
            // Which input slot(s) does this array fill?
            for (idx, input) in step.inputs.iter().enumerate() {
                if input != &a {
                    continue;
                }
                result.replayed += 1;
                for out_cell in step.op.affected(idx, &c) {
                    // Only propagate through cells the output actually has.
                    if pipeline.array(&step.output)?.exists(&out_cell) {
                        result
                            .cells
                            .entry(step.output.clone())
                            .or_default()
                            .insert(out_cell.clone());
                        if seen.insert((step.output.clone(), out_cell.clone())) {
                            frontier.push((step.output.clone(), out_cell));
                        }
                    }
                }
            }
        }
    }
    Ok(result)
}

impl TrioStore {
    /// Inserts a lineage record (used by the hybrid cache).
    pub fn insert(&mut self, array: &str, cell: &[i64], contribs: Vec<(String, Coords)>) {
        self.lineage_mut()
            .insert((array.to_string(), cell.to_vec()), contribs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StepOp;
    use scidb_core::array::Array;
    use scidb_core::expr::Expr;

    /// raw(8×8) → calibrated (apply) → masked (filter) → summary (regrid 2×2).
    fn cooking_pipeline(trio: Option<&mut TrioStore>) -> Pipeline {
        let rows: Vec<Vec<f64>> = (1..=8)
            .map(|i| (1..=8).map(|j| (i * 10 + j) as f64).collect())
            .collect();
        let mut p = Pipeline::new(vec![("raw".into(), Array::f64_2d("raw", "v", &rows))]);
        let mut trio = trio;
        let step = |p: &mut Pipeline,
                    op,
                    inputs: &[&str],
                    output: &str,
                    t: &mut Option<&mut TrioStore>| {
            match t {
                Some(store) => p.run_step(op, inputs, output, Some(store)).unwrap(),
                None => p.run_step(op, inputs, output, None).unwrap(),
            }
        };
        step(
            &mut p,
            StepOp::Apply {
                name: "cal".into(),
                expr: Expr::attr("v").mul(Expr::lit(2.0)),
            },
            &["raw"],
            "calibrated",
            &mut trio,
        );
        step(
            &mut p,
            StepOp::Filter {
                pred: Expr::attr("cal").gt(Expr::lit(0.0)),
            },
            &["calibrated"],
            "masked",
            &mut trio,
        );
        step(
            &mut p,
            StepOp::Regrid {
                factors: vec![2, 2],
                agg: "avg".into(),
            },
            &["masked"],
            "summary",
            &mut trio,
        );
        p
    }

    #[test]
    fn backward_trace_reaches_raw_block() {
        let p = cooking_pipeline(None);
        let r = backward_trace(&p, "summary", &[1, 1], TraceMode::Replay).unwrap();
        // summary(1,1) ← masked{(1,1)..(2,2)} ← calibrated same ← raw same.
        assert_eq!(r.cells_of("raw").len(), 4);
        assert!(r.cells_of("raw").contains(&vec![2, 2]));
        assert_eq!(r.cells_of("masked").len(), 4);
        assert_eq!(r.cells_of("calibrated").len(), 4);
        assert!(r.looked_up == 0 && r.replayed > 0);
    }

    #[test]
    fn backward_trace_trio_mode_uses_storage() {
        let mut store = TrioStore::new();
        let p = cooking_pipeline(Some(&mut store));
        let r = backward_trace(&p, "summary", &[1, 1], TraceMode::Trio(&store)).unwrap();
        assert_eq!(r.cells_of("raw").len(), 4);
        assert!(r.looked_up > 0);
        assert_eq!(r.replayed, 0, "all lineage is stored");
    }

    #[test]
    fn hybrid_cache_fills_on_first_trace() {
        let p = cooking_pipeline(None);
        let mut cache = TrioStore::new();
        let r1 = backward_trace(&p, "summary", &[2, 2], TraceMode::Hybrid(&mut cache)).unwrap();
        assert!(r1.replayed > 0);
        assert_eq!(r1.looked_up, 0);
        assert!(!cache.is_empty());
        // Second identical trace is served from the cache.
        let r2 = backward_trace(&p, "summary", &[2, 2], TraceMode::Hybrid(&mut cache)).unwrap();
        assert_eq!(r2.replayed, 0);
        assert!(r2.looked_up > 0);
        assert_eq!(r1.cells, r2.cells);
    }

    #[test]
    fn forward_trace_finds_downstream_closure() {
        let p = cooking_pipeline(None);
        let r = forward_trace(&p, "raw", &[3, 3]).unwrap();
        assert_eq!(r.cells_of("calibrated"), vec![vec![3, 3]]);
        assert_eq!(r.cells_of("masked"), vec![vec![3, 3]]);
        // (3,3) lands in summary block (2,2).
        assert_eq!(r.cells_of("summary"), vec![vec![2, 2]]);
    }

    #[test]
    fn forward_and_backward_are_consistent() {
        let p = cooking_pipeline(None);
        // Everything backward-reachable from summary(1,1) must forward-reach
        // summary(1,1).
        let back = backward_trace(&p, "summary", &[1, 1], TraceMode::Replay).unwrap();
        for cell in back.cells_of("raw") {
            let fwd = forward_trace(&p, "raw", &cell).unwrap();
            assert!(
                fwd.cells_of("summary").contains(&vec![1, 1]),
                "raw {cell:?} must affect summary (1,1)"
            );
        }
    }

    #[test]
    fn source_cells_trace_to_themselves() {
        let p = cooking_pipeline(None);
        let r = backward_trace(&p, "raw", &[5, 5], TraceMode::Replay).unwrap();
        assert_eq!(r.total_cells(), 1);
        assert_eq!(r.cells_of("raw"), vec![vec![5, 5]]);
    }

    #[test]
    fn trio_space_exceeds_log_space() {
        // The E6 shape: item-level lineage dwarfs the replay mode's
        // (zero) storage.
        let mut store = TrioStore::new();
        let _p = cooking_pipeline(Some(&mut store));
        // 64 + 64 + 16 output cells have lineage records.
        assert_eq!(store.len(), 64 + 64 + 16);
        assert!(store.byte_size() > 10_000, "bytes: {}", store.byte_size());
    }
}
