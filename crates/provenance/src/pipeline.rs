//! Derivation pipelines and the recording executor mode (§2.12).
//!
//! A [`Pipeline`] is a sequence of derivation steps (the cooking process of
//! §2.10 expressed inside the engine). Each [`StepOp`] knows not only how
//! to *run*, but how to answer the two provenance questions analytically:
//!
//! * [`StepOp::contributors`] — which input cells produced a given output
//!   cell. This is the engine's "special executor mode that will record all
//!   items that contributed to the incorrect item": no lineage is stored;
//!   the relationship is recomputed on demand (the paper's minimal-storage
//!   solution).
//! * [`StepOp::affected`] — which output cells a given input cell affects,
//!   the "dimension qualification" used by forward tracing.
//!
//! [`TrioStore`] is the opposite end of the spectrum: Trio-style explicit
//! item-level lineage, whose "space cost … is way too high" — experiment E6
//! measures exactly how high, against the replay cost of the minimal
//! solution.

use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::expr::Expr;
use scidb_core::geometry::Coords;
use scidb_core::ops;
use scidb_core::registry::Registry;
use scidb_core::value::ScalarType;
use std::collections::HashMap;

/// One derivation operator with analytic lineage.
#[derive(Debug, Clone)]
pub enum StepOp {
    /// Per-cell computation appending an attribute (calibration etc.).
    Apply {
        /// New attribute name.
        name: String,
        /// The expression.
        expr: Expr,
    },
    /// Per-cell predicate (cloud masking etc.).
    Filter {
        /// The predicate.
        pred: Expr,
    },
    /// Block aggregation (resolution reduction).
    Regrid {
        /// Per-dimension factors.
        factors: Vec<i64>,
        /// Aggregate name.
        agg: String,
    },
    /// Cell-wise combination of two aligned arrays (e.g. subtract dark
    /// frame): output cell (c) depends on cell (c) of both inputs.
    Combine {
        /// Expression over the concatenated record (left attrs first,
        /// right attrs renamed `_r` on clash).
        expr: Expr,
        /// Output attribute name.
        name: String,
    },
}

impl StepOp {
    /// Number of input arrays the operator takes.
    pub fn arity(&self) -> usize {
        match self {
            StepOp::Combine { .. } => 2,
            _ => 1,
        }
    }

    /// Executes the step.
    pub fn run(&self, inputs: &[&Array], registry: &Registry) -> Result<Array> {
        match self {
            StepOp::Apply { name, expr } => {
                ops::apply(inputs[0], name, expr, ScalarType::Float64, Some(registry))
            }
            StepOp::Filter { pred } => ops::filter(inputs[0], pred, Some(registry)),
            StepOp::Regrid { factors, agg } => ops::regrid(inputs[0], factors, agg, registry),
            StepOp::Combine { expr, name } => {
                if inputs.len() != 2 {
                    return Err(Error::eval("combine takes two inputs"));
                }
                let (a, b) = (inputs[0], inputs[1]);
                // Cell-wise join on all dimensions, then compute + project.
                let on: Vec<(&str, &str)> = a
                    .schema()
                    .dims()
                    .iter()
                    .zip(b.schema().dims())
                    .map(|(da, db)| (da.name.as_str(), db.name.as_str()))
                    .collect();
                let joined = ops::sjoin(a, b, &on)?;
                let applied = ops::apply(&joined, name, expr, ScalarType::Float64, Some(registry))?;
                ops::project(&applied, &[name])
            }
        }
    }

    /// Input cells contributing to `out_cell` — recomputed analytically,
    /// no stored lineage. Returns `(input_index, coords)` pairs.
    pub fn contributors(&self, out_cell: &[i64]) -> Vec<(usize, Coords)> {
        match self {
            StepOp::Apply { .. } | StepOp::Filter { .. } => vec![(0, out_cell.to_vec())],
            StepOp::Regrid { factors, .. } => {
                // Output cell c covers input block ((c-1)*f+1 ..= c*f).
                let lows: Vec<i64> = out_cell
                    .iter()
                    .zip(factors)
                    .map(|(&c, &f)| (c - 1) * f + 1)
                    .collect();
                let highs: Vec<i64> = out_cell.iter().zip(factors).map(|(&c, &f)| c * f).collect();
                scidb_core::geometry::HyperRect {
                    low: lows,
                    high: highs,
                }
                .iter_cells()
                .map(|c| (0, c))
                .collect()
            }
            StepOp::Combine { .. } => {
                vec![(0, out_cell.to_vec()), (1, out_cell.to_vec())]
            }
        }
    }

    /// Output cells affected by a change to `in_cell` of input
    /// `input_idx` — the forward "dimension qualification".
    pub fn affected(&self, input_idx: usize, in_cell: &[i64]) -> Vec<Coords> {
        match self {
            StepOp::Apply { .. } | StepOp::Filter { .. } => {
                debug_assert_eq!(input_idx, 0);
                vec![in_cell.to_vec()]
            }
            StepOp::Regrid { factors, .. } => {
                vec![in_cell
                    .iter()
                    .zip(factors)
                    .map(|(&c, &f)| (c - 1) / f + 1)
                    .collect()]
            }
            StepOp::Combine { .. } => vec![in_cell.to_vec()],
        }
    }
}

/// One named step of a pipeline.
#[derive(Debug, Clone)]
pub struct Step {
    /// The operator.
    pub op: StepOp,
    /// Input array names (length = `op.arity()`).
    pub inputs: Vec<String>,
    /// Output array name.
    pub output: String,
}

/// Trio-style explicit item-level lineage: for every output cell of every
/// step, the full contributor list.
#[derive(Debug, Default)]
pub struct TrioStore {
    /// `(output array, output cell)` → `(input array, input cell)` list.
    lineage: HashMap<(String, Coords), Vec<(String, Coords)>>,
}

impl TrioStore {
    /// Empty store.
    pub fn new() -> Self {
        TrioStore::default()
    }

    /// Looks up stored lineage.
    pub fn lookup(&self, array: &str, cell: &[i64]) -> Option<&[(String, Coords)]> {
        self.lineage
            .get(&(array.to_string(), cell.to_vec()))
            .map(Vec::as_slice)
    }

    /// Number of lineage records.
    pub fn len(&self) -> usize {
        self.lineage.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.lineage.is_empty()
    }

    /// Mutable access for the hybrid trace cache.
    pub(crate) fn lineage_mut(&mut self) -> &mut HashMap<(String, Coords), Vec<(String, Coords)>> {
        &mut self.lineage
    }

    /// Approximate heap bytes — the E6 "space cost … way too high" number.
    pub fn byte_size(&self) -> usize {
        self.lineage
            .iter()
            .map(|((a, c), contribs)| {
                a.len()
                    + c.len() * 8
                    + 48
                    + contribs
                        .iter()
                        .map(|(n, cc)| n.len() + cc.len() * 8 + 32)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// A materialized derivation pipeline over named arrays.
pub struct Pipeline {
    steps: Vec<Step>,
    arrays: HashMap<String, Array>,
    registry: Registry,
}

impl Pipeline {
    /// Creates a pipeline seeded with source arrays.
    pub fn new(sources: Vec<(String, Array)>) -> Self {
        Pipeline {
            steps: Vec::new(),
            arrays: sources.into_iter().collect(),
            registry: Registry::with_builtins(),
        }
    }

    /// The function registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A named array's current state.
    pub fn array(&self, name: &str) -> Result<&Array> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// The executed steps, in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Runs one step, materializing its output. With `trio`, item-level
    /// lineage is recorded for every output cell (the expensive mode).
    pub fn run_step(
        &mut self,
        op: StepOp,
        inputs: &[&str],
        output: &str,
        trio: Option<&mut TrioStore>,
    ) -> Result<()> {
        if inputs.len() != op.arity() {
            return Err(Error::eval(format!(
                "step takes {} inputs, got {}",
                op.arity(),
                inputs.len()
            )));
        }
        let input_arrays: Vec<&Array> = inputs
            .iter()
            .map(|n| self.array(n))
            .collect::<Result<_>>()?;
        let result = op.run(&input_arrays, &self.registry)?;
        if let Some(store) = trio {
            for (coords, _) in result.cells() {
                let contribs: Vec<(String, Coords)> = op
                    .contributors(&coords)
                    .into_iter()
                    .map(|(idx, c)| (inputs[idx].to_string(), c))
                    .collect();
                store.lineage.insert((output.to_string(), coords), contribs);
            }
        }
        self.steps.push(Step {
            op,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
        });
        self.arrays.insert(output.to_string(), result);
        Ok(())
    }

    /// The step that produced `array`, if any (latest wins).
    pub fn producer(&self, array: &str) -> Option<(usize, &Step)> {
        self.steps
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.output == array)
    }

    /// Steps consuming `array`, in order.
    pub fn consumers(&self, array: &str) -> Vec<(usize, &Step)> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| s.inputs.iter().any(|i| i == array))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_core::value::Value;

    fn ramp(name: &str, n: i64) -> Array {
        let rows: Vec<Vec<f64>> = (1..=n)
            .map(|i| (1..=n).map(|j| (i * 10 + j) as f64).collect())
            .collect();
        Array::f64_2d(name, "v", &rows)
    }

    #[test]
    fn pipeline_runs_steps_in_order() {
        let mut p = Pipeline::new(vec![("raw".into(), ramp("raw", 4))]);
        p.run_step(
            StepOp::Apply {
                name: "cal".into(),
                expr: Expr::attr("v").mul(Expr::lit(2.0)),
            },
            &["raw"],
            "calibrated",
            None,
        )
        .unwrap();
        p.run_step(
            StepOp::Regrid {
                factors: vec![2, 2],
                agg: "avg".into(),
            },
            &["calibrated"],
            "summary",
            None,
        )
        .unwrap();
        let s = p.array("summary").unwrap();
        assert_eq!(s.cell_count(), 4);
        // Block (1,1): raw values 11,12,21,22 → ×2 → avg = 33.
        assert_eq!(s.get_f64(1, &[1, 1]), Some(33.0));
        assert_eq!(p.steps().len(), 2);
        assert_eq!(p.producer("summary").unwrap().0, 1);
        assert_eq!(p.consumers("calibrated").len(), 1);
    }

    #[test]
    fn contributors_apply_filter_identity() {
        let op = StepOp::Filter {
            pred: Expr::attr("v").gt(Expr::lit(0.0)),
        };
        assert_eq!(op.contributors(&[3, 4]), vec![(0, vec![3, 4])]);
        assert_eq!(op.affected(0, &[3, 4]), vec![vec![3, 4]]);
    }

    #[test]
    fn contributors_regrid_block() {
        let op = StepOp::Regrid {
            factors: vec![2, 3],
            agg: "sum".into(),
        };
        let c = op.contributors(&[2, 1]);
        // Output (2,1) covers inputs (3..4, 1..3): 6 cells.
        assert_eq!(c.len(), 6);
        assert!(c.contains(&(0, vec![3, 1])));
        assert!(c.contains(&(0, vec![4, 3])));
        // Forward: input (4, 3) lands in output (2, 1).
        assert_eq!(op.affected(0, &[4, 3]), vec![vec![2, 1]]);
    }

    #[test]
    fn combine_depends_on_both_inputs() {
        let mut p = Pipeline::new(vec![("a".into(), ramp("a", 2)), ("b".into(), ramp("b", 2))]);
        let op = StepOp::Combine {
            expr: Expr::attr("v").sub(Expr::attr("v_r")),
            name: "diff".into(),
        };
        assert_eq!(
            op.contributors(&[1, 2]),
            vec![(0, vec![1, 2]), (1, vec![1, 2])]
        );
        p.run_step(op, &["a", "b"], "diff", None).unwrap();
        let d = p.array("diff").unwrap();
        assert_eq!(d.get_cell(&[2, 2]), Some(vec![Value::from(0.0)]));
        assert_eq!(d.schema().attrs().len(), 1);
    }

    #[test]
    fn trio_mode_records_item_level_lineage() {
        let mut p = Pipeline::new(vec![("raw".into(), ramp("raw", 4))]);
        let mut store = TrioStore::new();
        p.run_step(
            StepOp::Regrid {
                factors: vec![2, 2],
                agg: "sum".into(),
            },
            &["raw"],
            "sum4",
            Some(&mut store),
        )
        .unwrap();
        assert_eq!(store.len(), 4);
        let lin = store.lookup("sum4", &[1, 1]).unwrap();
        assert_eq!(lin.len(), 4);
        assert!(lin.contains(&("raw".to_string(), vec![2, 2])));
        assert!(store.byte_size() > 0);
        assert!(store.lookup("sum4", &[9, 9]).is_none());
    }

    #[test]
    fn arity_checked() {
        let mut p = Pipeline::new(vec![("raw".into(), ramp("raw", 2))]);
        let op = StepOp::Combine {
            expr: Expr::attr("v"),
            name: "x".into(),
        };
        assert!(p.run_step(op, &["raw"], "x", None).is_err());
    }
}
