//! # scidb-provenance
//!
//! Provenance and repeatability of data derivation (paper §2.12):
//!
//! * [`log`] — the append-only command log and the metadata repository for
//!   externally cooked data.
//! * [`pipeline`] — derivation pipelines whose operators answer lineage
//!   questions analytically (the minimal-storage replay mode) and the
//!   Trio-style item-level [`pipeline::TrioStore`].
//! * [`trace`] — backward traces (replay / Trio / hybrid-cached) and
//!   dimension-qualified forward traces iterated to closure.
//! * [`rederive`] — the correction workflow: recompute only the affected
//!   downstream cells and commit the replacements into named versions.
//! * [`ql`] — the provenance query language the paper calls "the hard
//!   part": `trace backward A[i, j]`, `trace forward …`, `rederive … = (…)`.

#![warn(missing_docs)]

pub mod log;
pub mod pipeline;
pub mod ql;
pub mod rederive;
pub mod trace;

pub use log::{CommandLog, LogEntry, MetadataRepository, ProgramRun};
pub use pipeline::{Pipeline, Step, StepOp, TrioStore};
pub use ql::{query as provenance_query, QlResult};
pub use rederive::{commit_rederivation, rederive_forward, Rederivation};
pub use trace::{backward_trace, forward_trace, TraceMode, TraceResult};
