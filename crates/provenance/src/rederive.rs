//! Re-derivation after an error is found (§2.12).
//!
//! "Assuming the scientist ascertains that the data element is wrong and
//! finds the culprit in the derivation process, then he wants to rerun (a
//! portion of) the derivation to generate a replacement value or values.
//! Of course, this re-derivation will not overwrite old data, but will
//! produce new value(s) at the current time. … A named version can be
//! created to hold the results of these updates."
//!
//! [`rederive_forward`] applies a corrected value to a source cell,
//! recomputes exactly the downstream cells the forward trace identifies
//! (not whole arrays), and returns the replacement values per array —
//! optionally committing them into a [`VersionTree`] named version so the
//! original derivation stays intact.

use crate::pipeline::{Pipeline, StepOp};
use crate::trace::forward_trace;
use scidb_core::error::{Error, Result};
use scidb_core::expr::EvalContext;
use scidb_core::geometry::Coords;
use scidb_core::history::Transaction;
use scidb_core::value::{Record, Value};
use scidb_core::versions::VersionTree;
use std::collections::BTreeMap;

/// The replacement values produced by a re-derivation: per array, the
/// cells whose values changed under the correction.
pub type Rederivation = BTreeMap<String, Vec<(Coords, Record)>>;

/// Recomputes the downstream closure of `(array, cell)` under a corrected
/// record. Only the affected cells are recomputed; everything else is read
/// from the pipeline's materialized state. Nothing in the pipeline is
/// overwritten.
pub fn rederive_forward(
    pipeline: &Pipeline,
    array: &str,
    cell: &[i64],
    corrected: Record,
) -> Result<Rederivation> {
    // Which cells change, per array (including the source itself).
    let affected = forward_trace(pipeline, array, cell)?;

    // Patched views: per array, the corrected/recomputed cells so far.
    let mut patched: Rederivation = BTreeMap::new();
    patched
        .entry(array.to_string())
        .or_default()
        .push((cell.to_vec(), corrected));

    // Walk steps in execution order; a step recomputes its affected output
    // cells from (possibly patched) inputs.
    for step in pipeline.steps() {
        let Some(out_cells) = affected.cells.get(&step.output) else {
            continue;
        };
        let mut new_cells: Vec<(Coords, Record)> = Vec::new();
        for out_cell in out_cells {
            let rec = recompute_cell(pipeline, step, out_cell, &patched)?;
            if let Some(rec) = rec {
                let old = pipeline.array(&step.output)?.get_cell(out_cell);
                if old.as_ref() != Some(&rec) {
                    new_cells.push((out_cell.clone(), rec));
                }
            }
        }
        if !new_cells.is_empty() {
            patched
                .entry(step.output.clone())
                .or_default()
                .extend(new_cells);
        }
    }
    Ok(patched)
}

/// Commits a re-derivation into named versions (one per changed array) of
/// the supplied version trees, creating `"<array>:<suffix>"` versions —
/// the paper's "named version … to hold the results of these updates".
pub fn commit_rederivation(
    rederivation: &Rederivation,
    trees: &mut BTreeMap<String, VersionTree>,
    suffix: &str,
) -> Result<Vec<String>> {
    let mut created = Vec::new();
    for (array, cells) in rederivation {
        let tree = trees
            .get_mut(array)
            .ok_or_else(|| Error::not_found(format!("version tree for '{array}'")))?;
        let vname = format!("{array}:{suffix}");
        tree.create_version(&vname, None)?;
        let mut txn = Transaction::new();
        for (coords, rec) in cells {
            txn.put(coords, rec.clone());
        }
        tree.commit(&vname, txn)?;
        created.push(vname);
    }
    Ok(created)
}

/// Reads a cell through the patch overlay, falling back to the pipeline's
/// materialized array.
fn read_patched(
    pipeline: &Pipeline,
    patched: &Rederivation,
    array: &str,
    coords: &[i64],
) -> Result<Option<Record>> {
    if let Some(cells) = patched.get(array) {
        // Later patches win.
        if let Some((_, rec)) = cells.iter().rev().find(|(c, _)| c == coords) {
            return Ok(Some(rec.clone()));
        }
    }
    Ok(pipeline.array(array)?.get_cell(coords))
}

/// Recomputes one output cell of one step from patched inputs.
fn recompute_cell(
    pipeline: &Pipeline,
    step: &crate::pipeline::Step,
    out_cell: &[i64],
    patched: &Rederivation,
) -> Result<Option<Record>> {
    let registry = pipeline.registry();
    match &step.op {
        StepOp::Apply { name: _, expr } => {
            let input = &step.inputs[0];
            let Some(in_rec) = read_patched(pipeline, patched, input, out_cell)? else {
                return Ok(None);
            };
            let in_schema = pipeline.array(input)?.schema();
            let ctx = EvalContext {
                schema: in_schema,
                coords: out_cell,
                record: &in_rec,
                registry: Some(registry),
            };
            let v = expr.eval(&ctx)?;
            let mut out = in_rec;
            out.push(v);
            Ok(Some(out))
        }
        StepOp::Filter { pred } => {
            let input = &step.inputs[0];
            let Some(in_rec) = read_patched(pipeline, patched, input, out_cell)? else {
                return Ok(None);
            };
            let in_schema = pipeline.array(input)?.schema();
            let ctx = EvalContext {
                schema: in_schema,
                coords: out_cell,
                record: &in_rec,
                registry: Some(registry),
            };
            let keep = pred.eval_bool(&ctx)?.unwrap_or(false);
            if keep {
                Ok(Some(in_rec))
            } else {
                Ok(Some(vec![Value::Null; in_rec.len()]))
            }
        }
        StepOp::Regrid { factors, agg } => {
            // Recompute the block aggregate from (patched) input cells.
            let input = &step.inputs[0];
            let in_arr = pipeline.array(input)?;
            let n_attrs = in_arr.schema().attrs().len();
            let agg_fn = registry.aggregate(agg)?;
            let mut states: Vec<Box<dyn scidb_core::udf::AggState>> =
                (0..n_attrs).map(|_| agg_fn.create()).collect();
            let lows: Vec<i64> = out_cell
                .iter()
                .zip(factors)
                .map(|(&c, &f)| (c - 1) * f + 1)
                .collect();
            let highs: Vec<i64> = out_cell.iter().zip(factors).map(|(&c, &f)| c * f).collect();
            let block = scidb_core::geometry::HyperRect {
                low: lows,
                high: highs,
            };
            let mut any = false;
            for coords in block.iter_cells() {
                if let Some(rec) = read_patched(pipeline, patched, input, &coords)? {
                    any = true;
                    for (s, v) in states.iter_mut().zip(&rec) {
                        s.update(v)?;
                    }
                }
            }
            if !any {
                return Ok(None);
            }
            Ok(Some(states.iter().map(|s| s.finalize()).collect()))
        }
        StepOp::Combine { expr, name: _ } => {
            let (a, b) = (&step.inputs[0], &step.inputs[1]);
            let (Some(ra), Some(rb)) = (
                read_patched(pipeline, patched, a, out_cell)?,
                read_patched(pipeline, patched, b, out_cell)?,
            ) else {
                return Ok(None);
            };
            // Combined record evaluated against the step's output-producing
            // join schema: rebuild a minimal combined schema on the fly.
            let sa = pipeline.array(a)?.schema();
            let sb = pipeline.array(b)?.schema();
            let mut attrs = sa.attrs().to_vec();
            for attr in sb.attrs() {
                let mut def = attr.clone();
                if sa.attr_index(&attr.name).is_some() {
                    def.name = format!("{}_r", attr.name);
                }
                attrs.push(def);
            }
            let combined =
                scidb_core::schema::ArraySchema::new("combined", attrs, sa.dims().to_vec())?;
            let mut rec = ra;
            rec.extend(rb);
            let ctx = EvalContext {
                schema: &combined,
                coords: out_cell,
                record: &rec,
                registry: Some(registry),
            };
            let v = expr.eval(&ctx)?;
            Ok(Some(vec![v]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_core::array::Array;
    use scidb_core::expr::Expr;

    /// raw(4×4, v = 10i+j) → cal (×2) → summary (regrid 2×2 sum).
    fn pipeline() -> Pipeline {
        let rows: Vec<Vec<f64>> = (1..=4)
            .map(|i| (1..=4).map(|j| (i * 10 + j) as f64).collect())
            .collect();
        let mut p = Pipeline::new(vec![("raw".into(), Array::f64_2d("raw", "v", &rows))]);
        p.run_step(
            StepOp::Apply {
                name: "cal".into(),
                expr: Expr::attr("v").mul(Expr::lit(2.0)),
            },
            &["raw"],
            "cal",
            None,
        )
        .unwrap();
        p.run_step(
            StepOp::Regrid {
                factors: vec![2, 2],
                agg: "sum".into(),
            },
            &["cal"],
            "summary",
            None,
        )
        .unwrap();
        p
    }

    #[test]
    fn rederive_propagates_a_correction_downstream() {
        let p = pipeline();
        // Correct raw[1,1] from 11 to 100.
        let red = rederive_forward(&p, "raw", &[1, 1], vec![Value::from(100.0)]).unwrap();
        // raw, cal, and summary each carry replacement values.
        assert_eq!(red.len(), 3);
        let cal = &red["cal"];
        assert_eq!(cal.len(), 1);
        assert_eq!(cal[0].0, vec![1, 1]);
        assert_eq!(cal[0].1[1], Value::from(200.0)); // corrected & recalibrated
        let summary = &red["summary"];
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].0, vec![1, 1]);
        // Block (1,1) over cal: v-sums unchanged except raw[1,1]:
        // old cal v values: 11,12,21,22 → corrected: 100,12,21,22.
        // summary attr 0 sums v, attr 1 sums cal.
        assert_eq!(summary[0].1[0], Value::from(155.0));
        assert_eq!(summary[0].1[1], Value::from(310.0));
        // The pipeline's own arrays are untouched (no overwrite).
        assert_eq!(
            p.array("summary").unwrap().get_cell(&[1, 1]).unwrap()[0],
            Value::from(66.0)
        );
    }

    #[test]
    fn rederive_untouched_blocks_produce_no_changes() {
        let p = pipeline();
        let red = rederive_forward(&p, "raw", &[4, 4], vec![Value::from(44.0)]).unwrap();
        // Same value written back: downstream cells recompute to identical
        // values and are therefore not reported as changes.
        assert_eq!(red["raw"].len(), 1);
        assert!(!red.contains_key("summary") || red["summary"].is_empty());
    }

    #[test]
    fn commit_into_named_versions() {
        let p = pipeline();
        let red = rederive_forward(&p, "raw", &[1, 1], vec![Value::from(100.0)]).unwrap();

        // Version trees seeded from the pipeline's current arrays.
        let mut trees: BTreeMap<String, VersionTree> = BTreeMap::new();
        for name in ["raw", "cal", "summary"] {
            let arr = p.array(name).unwrap();
            let mut tree = VersionTree::new(arr.schema().renamed(name)).unwrap();
            let mut txn = Transaction::new();
            for (coords, rec) in arr.cells() {
                txn.put(&coords, rec);
            }
            tree.base_mut().commit(txn).unwrap();
            trees.insert(name.to_string(), tree);
        }
        let created = commit_rederivation(&red, &mut trees, "fix_2026_07_07").unwrap();
        assert_eq!(created.len(), 3);
        // The version sees the corrected value; the base does not.
        let summary_tree = &trees["summary"];
        assert_eq!(
            summary_tree
                .get("summary:fix_2026_07_07", &[1, 1])
                .unwrap()
                .unwrap()[0],
            Value::from(155.0)
        );
        assert_eq!(
            summary_tree.get_base(&[1, 1]).unwrap()[0],
            Value::from(66.0)
        );
    }
}
