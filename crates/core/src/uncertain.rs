//! Uncertainty support (§2.13).
//!
//! The paper reports "near universal consensus" among science users on a
//! *simple* uncertainty model: normal distributions, i.e. "error bars"
//! (standard deviations) attached to data elements, with the executor
//! performing error-propagating arithmetic when uncertain elements are
//! combined. SciDB therefore supports `uncertain x` for any scalar type `x`;
//! this module provides the numeric kernel.
//!
//! Two propagation modes are provided:
//!
//! * [`Uncertain`] — Gaussian (first-order) propagation: independent normal
//!   errors combine in quadrature. This is the default executor behaviour.
//! * [`Interval`] — conservative interval arithmetic over
//!   `[mean - k·sigma, mean + k·sigma]` bounds, which the paper mentions as
//!   the requested executor behaviour ("interval arithmetic when combining
//!   uncertain elements"). Both are exposed so benches can compare overheads.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A normally distributed value: mean plus one standard deviation ("error
/// bar"). The distribution is assumed independent of other values when
/// combined.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Uncertain {
    /// Best-estimate value (the mean of the normal distribution).
    pub mean: f64,
    /// One standard deviation. Always non-negative.
    pub sigma: f64,
}

impl Uncertain {
    /// Creates an uncertain value. The sigma is stored as `|sigma|`.
    pub fn new(mean: f64, sigma: f64) -> Self {
        Uncertain {
            mean,
            sigma: sigma.abs(),
        }
    }

    /// An exact value: sigma = 0.
    pub fn exact(mean: f64) -> Self {
        Uncertain { mean, sigma: 0.0 }
    }

    /// True if this value carries no uncertainty.
    pub fn is_exact(&self) -> bool {
        self.sigma == 0.0
    }

    /// The `k`-sigma interval around the mean.
    pub fn interval(&self, k: f64) -> Interval {
        Interval {
            lo: self.mean - k * self.sigma,
            hi: self.mean + k * self.sigma,
        }
    }

    /// Relative uncertainty `sigma / |mean|`; infinite for a zero mean with
    /// nonzero sigma.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            if self.sigma == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sigma / self.mean.abs()
        }
    }

    /// Inverse-variance weighted combination of two independent measurements
    /// of the same quantity — the canonical "combine two observations of one
    /// star" operation in survey pipelines.
    pub fn combine(&self, other: &Uncertain) -> Uncertain {
        if self.sigma == 0.0 && other.sigma == 0.0 {
            return Uncertain::exact(0.5 * (self.mean + other.mean));
        }
        if self.sigma == 0.0 {
            return *self;
        }
        if other.sigma == 0.0 {
            return *other;
        }
        let wa = 1.0 / (self.sigma * self.sigma);
        let wb = 1.0 / (other.sigma * other.sigma);
        let w = wa + wb;
        Uncertain {
            mean: (self.mean * wa + other.mean * wb) / w,
            sigma: (1.0 / w).sqrt(),
        }
    }

    /// Applies a differentiable unary function via first-order propagation:
    /// `sigma_out = |f'(mean)| * sigma`.
    pub fn map(&self, f: impl Fn(f64) -> f64, dfdx: impl Fn(f64) -> f64) -> Uncertain {
        Uncertain::new(f(self.mean), dfdx(self.mean).abs() * self.sigma)
    }

    /// Square root with propagated error.
    pub fn sqrt(&self) -> Uncertain {
        self.map(f64::sqrt, |x| 0.5 / x.sqrt())
    }

    /// Natural logarithm with propagated error.
    pub fn ln(&self) -> Uncertain {
        self.map(f64::ln, |x| 1.0 / x)
    }

    /// Scales by an exact constant.
    pub fn scale(&self, c: f64) -> Uncertain {
        Uncertain::new(self.mean * c, self.sigma * c.abs())
    }

    /// Probability mass of the distribution below `x`, via the error
    /// function approximation (Abramowitz & Stegun 7.1.26). Used by
    /// uncertainty-aware filters ("P(value < threshold) > 0.95").
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sigma == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        let z = (x - self.mean) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// Abramowitz & Stegun 7.1.26 rational approximation of the error function;
/// max absolute error 1.5e-7, ample for filter-probability semantics.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

impl Add for Uncertain {
    type Output = Uncertain;
    fn add(self, rhs: Uncertain) -> Uncertain {
        Uncertain::new(self.mean + rhs.mean, self.sigma.hypot(rhs.sigma))
    }
}

impl Sub for Uncertain {
    type Output = Uncertain;
    fn sub(self, rhs: Uncertain) -> Uncertain {
        Uncertain::new(self.mean - rhs.mean, self.sigma.hypot(rhs.sigma))
    }
}

impl Mul for Uncertain {
    type Output = Uncertain;
    fn mul(self, rhs: Uncertain) -> Uncertain {
        let mean = self.mean * rhs.mean;
        // First-order: sigma^2 = (b·sa)^2 + (a·sb)^2.
        let s = (rhs.mean * self.sigma).hypot(self.mean * rhs.sigma);
        Uncertain::new(mean, s)
    }
}

impl Div for Uncertain {
    type Output = Uncertain;
    fn div(self, rhs: Uncertain) -> Uncertain {
        let mean = self.mean / rhs.mean;
        let s = (self.sigma / rhs.mean).hypot(self.mean * rhs.sigma / (rhs.mean * rhs.mean));
        Uncertain::new(mean, s)
    }
}

impl Neg for Uncertain {
    type Output = Uncertain;
    fn neg(self) -> Uncertain {
        Uncertain {
            mean: -self.mean,
            sigma: self.sigma,
        }
    }
}

impl PartialOrd for Uncertain {
    /// Ordering compares means only; use [`Uncertain::cdf`] for
    /// probability-aware comparisons.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.mean.partial_cmp(&other.mean)
    }
}

impl fmt::Display for Uncertain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sigma == 0.0 {
            write!(f, "{}", self.mean)
        } else {
            write!(f, "{}±{}", self.mean, self.sigma)
        }
    }
}

/// A closed interval `[lo, hi]`, the alternative propagation mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval; bounds are swapped if given out of order.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Degenerate point interval.
    pub fn point(x: f64) -> Self {
        Interval { lo: x, hi: x }
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// True if `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// True if the two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        Interval {
            lo: c.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: c.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn addition_combines_in_quadrature() {
        let a = Uncertain::new(10.0, 3.0);
        let b = Uncertain::new(20.0, 4.0);
        let c = a + b;
        assert!(close(c.mean, 30.0));
        assert!(close(c.sigma, 5.0)); // sqrt(9+16)
    }

    #[test]
    fn subtraction_also_adds_variances() {
        let c = Uncertain::new(10.0, 3.0) - Uncertain::new(20.0, 4.0);
        assert!(close(c.mean, -10.0));
        assert!(close(c.sigma, 5.0));
    }

    #[test]
    fn multiplication_first_order() {
        let c = Uncertain::new(10.0, 1.0) * Uncertain::new(5.0, 0.5);
        assert!(close(c.mean, 50.0));
        // sqrt((5*1)^2 + (10*0.5)^2) = sqrt(50)
        assert!(close(c.sigma, 50f64.sqrt()));
    }

    #[test]
    fn division_first_order() {
        let c = Uncertain::new(10.0, 1.0) / Uncertain::new(5.0, 0.0);
        assert!(close(c.mean, 2.0));
        assert!(close(c.sigma, 0.2));
    }

    #[test]
    fn exact_values_propagate_exactly() {
        let c = Uncertain::exact(3.0) + Uncertain::exact(4.0);
        assert!(c.is_exact());
        assert!(close(c.mean, 7.0));
    }

    #[test]
    fn inverse_variance_combine_prefers_precise_input() {
        let precise = Uncertain::new(10.0, 0.1);
        let vague = Uncertain::new(20.0, 10.0);
        let c = precise.combine(&vague);
        assert!((c.mean - 10.0).abs() < 0.01, "mean {} hugs precise", c.mean);
        assert!(c.sigma < 0.1);
    }

    #[test]
    fn combine_symmetric_equal_sigmas_averages() {
        let a = Uncertain::new(0.0, 2.0);
        let b = Uncertain::new(4.0, 2.0);
        let c = a.combine(&b);
        assert!(close(c.mean, 2.0));
        assert!(close(c.sigma, 2.0 / 2f64.sqrt()));
    }

    #[test]
    fn cdf_at_mean_is_half() {
        let u = Uncertain::new(5.0, 2.0);
        assert!((u.cdf(5.0) - 0.5).abs() < 1e-6);
        assert!(u.cdf(100.0) > 0.999999);
        assert!(u.cdf(-100.0) < 1e-6);
    }

    #[test]
    fn cdf_exact_is_step() {
        let u = Uncertain::exact(5.0);
        assert_eq!(u.cdf(4.9), 0.0);
        assert_eq!(u.cdf(5.0), 1.0);
    }

    #[test]
    fn sqrt_propagation() {
        let u = Uncertain::new(16.0, 0.8).sqrt();
        assert!(close(u.mean, 4.0));
        assert!(close(u.sigma, 0.8 * 0.5 / 4.0));
    }

    #[test]
    fn ordering_is_by_mean() {
        assert!(Uncertain::new(1.0, 100.0) < Uncertain::new(2.0, 0.0));
    }

    #[test]
    fn display_formats_error_bar() {
        assert_eq!(Uncertain::new(1.5, 0.25).to_string(), "1.5±0.25");
        assert_eq!(Uncertain::exact(2.0).to_string(), "2");
    }

    #[test]
    fn interval_add_sub() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a + b, Interval::new(11.0, 22.0));
        assert_eq!(b - a, Interval::new(8.0, 19.0));
    }

    #[test]
    fn interval_mul_handles_signs() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-1.0, 4.0);
        let c = a * b;
        assert_eq!(c, Interval::new(-8.0, 12.0));
    }

    #[test]
    fn interval_overlap_and_contains() {
        let a = Interval::new(0.0, 1.0);
        assert!(a.contains(0.5));
        assert!(!a.contains(1.5));
        assert!(a.overlaps(&Interval::new(0.9, 2.0)));
        assert!(!a.overlaps(&Interval::new(1.1, 2.0)));
    }

    #[test]
    fn k_sigma_interval() {
        let u = Uncertain::new(10.0, 2.0);
        assert_eq!(u.interval(3.0), Interval::new(4.0, 16.0));
    }
}
