//! Enhanced arrays (§2.1): user-defined functions applied to dimensions.
//!
//! "Any function that accepts integer arguments can be applied to the
//! dimensions of an array to enhance the array by transposition, scaling,
//! translation, and other co-ordinate transformations." Each enhancement
//! adds *pseudo-coordinates*: a second addressing system. The basic integer
//! system stays valid and is addressed `A[7, 8]`; enhanced coordinates are
//! addressed `A{20, 50}` (resolved through the enhancement's inverse).
//!
//! Pseudo-coordinates "do not have to be integer-valued and do not have to
//! be contiguous" — they are [`PseudoValue`]s. The paper's examples are all
//! provided as built-ins: `Scale10`, general affine transforms, irregular
//! coordinate maps (`16.3, 27.6, 48.2, …`), Mercator geometry, and the
//! wall-clock mapping of the history dimension (§2.5).

use crate::error::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// A pseudo-coordinate value in an enhanced addressing system.
#[derive(Debug, Clone, PartialEq)]
pub enum PseudoValue {
    /// Integer pseudo-coordinate.
    Int(i64),
    /// Real-valued pseudo-coordinate (irregular grids, Mercator degrees).
    Float(f64),
    /// Symbolic pseudo-coordinate.
    Str(String),
}

impl PseudoValue {
    /// Numeric view (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PseudoValue::Int(v) => Some(*v as f64),
            PseudoValue::Float(v) => Some(*v),
            PseudoValue::Str(_) => None,
        }
    }
}

impl fmt::Display for PseudoValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PseudoValue::Int(v) => write!(f, "{v}"),
            PseudoValue::Float(v) => write!(f, "{v}"),
            PseudoValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for PseudoValue {
    fn from(v: i64) -> Self {
        PseudoValue::Int(v)
    }
}
impl From<f64> for PseudoValue {
    fn from(v: f64) -> Self {
        PseudoValue::Float(v)
    }
}

/// An enhancement function: maps basic integer coordinates to
/// pseudo-coordinates and (where invertible) back.
///
/// This is the engine-facing trait behind the paper's
/// `Define function Scale10 (integer I, integer J) returns (integer K,
/// integer L) file_handle` — see DESIGN.md §4 for the object-code
/// substitution rationale.
pub trait EnhancementFn: fmt::Debug + Send + Sync {
    /// Function name, used in `Enhance A with <name>`.
    fn name(&self) -> &str;

    /// Names of the output pseudo-dimensions (e.g. `["K", "L"]`).
    fn output_names(&self) -> &[String];

    /// Maps basic coordinates to pseudo-coordinates.
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>>;

    /// Maps pseudo-coordinates back to basic coordinates. Returns
    /// `Ok(None)` when the pseudo-coordinates address no cell.
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>>;
}

/// Shared handle to an enhancement function.
pub type EnhancementRef = Arc<dyn EnhancementFn>;

fn check_rank(name: &str, expected: usize, got: usize) -> Result<()> {
    if expected != got {
        Err(Error::dimension(format!(
            "enhancement '{name}' expects {expected} coordinates, got {got}"
        )))
    } else {
        Ok(())
    }
}

/// Integer scaling of every dimension by a constant factor. `Scale(10)` is
/// the paper's `Scale10` example: `Enhance My_remote with Scale10` makes
/// `A{70, 80}` address the same cell as `A[7, 8]`.
#[derive(Debug)]
pub struct Scale {
    name: String,
    factor: i64,
    out_names: Vec<String>,
}

impl Scale {
    /// Creates a scale enhancement for `rank` dimensions.
    pub fn new(name: impl Into<String>, factor: i64, rank: usize) -> Self {
        assert!(factor != 0, "scale factor must be nonzero");
        Scale {
            name: name.into(),
            factor,
            out_names: (0..rank).map(|d| format!("scaled_{d}")).collect(),
        }
    }

    /// The paper's `Scale10` for a given rank.
    pub fn scale10(rank: usize) -> Self {
        Scale::new("Scale10", 10, rank)
    }
}

impl EnhancementFn for Scale {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, self.out_names.len(), basic.len())?;
        Ok(basic
            .iter()
            .map(|&c| PseudoValue::Int(c * self.factor))
            .collect())
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, self.out_names.len(), pseudo.len())?;
        let mut out = Vec::with_capacity(pseudo.len());
        for p in pseudo {
            match p {
                PseudoValue::Int(v) if v % self.factor == 0 => out.push(v / self.factor),
                PseudoValue::Int(_) => return Ok(None),
                _ => {
                    return Err(Error::dimension(format!(
                        "enhancement '{}' takes integer pseudo-coordinates",
                        self.name
                    )))
                }
            }
        }
        Ok(Some(out))
    }
}

/// Per-dimension integer affine transform `out = a·x + b` — covers the
/// paper's "transposition, scaling, translation" when combined with
/// [`Permute`].
#[derive(Debug)]
pub struct Affine {
    name: String,
    coeffs: Vec<(i64, i64)>,
    out_names: Vec<String>,
}

impl Affine {
    /// Creates an affine enhancement with per-dimension `(a, b)` pairs.
    pub fn new(name: impl Into<String>, coeffs: Vec<(i64, i64)>) -> Self {
        assert!(coeffs.iter().all(|&(a, _)| a != 0), "a must be nonzero");
        let out_names = (0..coeffs.len()).map(|d| format!("affine_{d}")).collect();
        Affine {
            name: name.into(),
            coeffs,
            out_names,
        }
    }

    /// Pure translation by per-dimension offsets.
    pub fn translate(name: impl Into<String>, offsets: &[i64]) -> Self {
        Affine::new(name, offsets.iter().map(|&b| (1, b)).collect())
    }
}

impl EnhancementFn for Affine {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, self.coeffs.len(), basic.len())?;
        Ok(basic
            .iter()
            .zip(&self.coeffs)
            .map(|(&x, &(a, b))| PseudoValue::Int(a * x + b))
            .collect())
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, self.coeffs.len(), pseudo.len())?;
        let mut out = Vec::with_capacity(pseudo.len());
        for (p, &(a, b)) in pseudo.iter().zip(&self.coeffs) {
            match p {
                PseudoValue::Int(v) => {
                    let num = v - b;
                    if num % a != 0 {
                        return Ok(None);
                    }
                    out.push(num / a);
                }
                _ => {
                    return Err(Error::dimension(format!(
                        "enhancement '{}' takes integer pseudo-coordinates",
                        self.name
                    )))
                }
            }
        }
        Ok(Some(out))
    }
}

/// Dimension permutation (transposition).
#[derive(Debug)]
pub struct Permute {
    name: String,
    perm: Vec<usize>,
    out_names: Vec<String>,
}

impl Permute {
    /// Creates a permutation enhancement; `perm[i]` is the basic dimension
    /// appearing at output position `i`.
    pub fn new(name: impl Into<String>, perm: Vec<usize>) -> Result<Self> {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            if p >= perm.len() || seen[p] {
                return Err(Error::dimension("invalid permutation"));
            }
            seen[p] = true;
        }
        let out_names = (0..perm.len()).map(|d| format!("perm_{d}")).collect();
        Ok(Permute {
            name: name.into(),
            perm,
            out_names,
        })
    }
}

impl EnhancementFn for Permute {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, self.perm.len(), basic.len())?;
        Ok(self
            .perm
            .iter()
            .map(|&p| PseudoValue::Int(basic[p]))
            .collect())
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, self.perm.len(), pseudo.len())?;
        let mut out = vec![0i64; pseudo.len()];
        for (i, p) in pseudo.iter().enumerate() {
            match p {
                PseudoValue::Int(v) => out[self.perm[i]] = *v,
                _ => return Err(Error::dimension("integer pseudo-coordinates required")),
            }
        }
        Ok(Some(out))
    }
}

/// Irregular per-dimension coordinate maps: the paper's 1-D array with
/// coordinates `16.3, 27.6, 48.2, …`. Basic index `i` (1-based) maps to
/// `coords[d][i-1]`; the inverse finds an exact float match by binary search
/// over the (strictly increasing) coordinate list.
#[derive(Debug)]
pub struct IrregularMap {
    name: String,
    coords: Vec<Vec<f64>>,
    out_names: Vec<String>,
}

impl IrregularMap {
    /// Creates an irregular map; each dimension's coordinates must be
    /// strictly increasing.
    pub fn new(
        name: impl Into<String>,
        out_names: Vec<String>,
        coords: Vec<Vec<f64>>,
    ) -> Result<Self> {
        if out_names.len() != coords.len() {
            return Err(Error::dimension("output name per dimension required"));
        }
        for c in &coords {
            if c.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::dimension(
                    "irregular coordinates must be strictly increasing",
                ));
            }
        }
        Ok(IrregularMap {
            name: name.into(),
            coords,
            out_names,
        })
    }

    /// Nearest-cell lookup: maps a float pseudo-coordinate to the basic
    /// index whose mapped value is closest (used by `A{16.3, 48.2}`-style
    /// addressing with measured values).
    pub fn nearest(&self, dim: usize, value: f64) -> Option<i64> {
        let c = &self.coords[dim];
        if c.is_empty() {
            return None;
        }
        let i = c.partition_point(|&x| x < value);
        let candidates = [i.saturating_sub(1), i.min(c.len() - 1)];
        let best = candidates
            .iter()
            .min_by(|&&a, &&b| {
                (c[a] - value)
                    .abs()
                    .partial_cmp(&(c[b] - value).abs())
                    .unwrap()
            })
            .unwrap();
        Some(*best as i64 + 1)
    }
}

impl EnhancementFn for IrregularMap {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, self.coords.len(), basic.len())?;
        basic
            .iter()
            .zip(&self.coords)
            .map(|(&i, c)| {
                let idx = i - 1;
                if idx < 0 || idx as usize >= c.len() {
                    Err(Error::dimension(format!(
                        "index {i} outside irregular map '{}'",
                        self.name
                    )))
                } else {
                    Ok(PseudoValue::Float(c[idx as usize]))
                }
            })
            .collect()
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, self.coords.len(), pseudo.len())?;
        let mut out = Vec::with_capacity(pseudo.len());
        for (p, c) in pseudo.iter().zip(&self.coords) {
            let v = p
                .as_f64()
                .ok_or_else(|| Error::dimension("numeric pseudo-coordinate required"))?;
            match c.binary_search_by(|x| x.partial_cmp(&v).unwrap()) {
                Ok(i) => out.push(i as i64 + 1),
                Err(_) => return Ok(None),
            }
        }
        Ok(Some(out))
    }
}

/// Mercator geometry for a 2-D (row, col) array over a regular lat/lon grid:
/// pseudo-coordinates are (latitude°, longitude°) with the Mercator
/// projection applied along the latitude axis — the paper's example of a
/// dimension "in some well-known co-ordinate system, e.g.
/// Mercator-latitude".
#[derive(Debug)]
pub struct Mercator {
    name: String,
    rows: i64,
    cols: i64,
    out_names: Vec<String>,
}

impl Mercator {
    /// Creates a Mercator enhancement for a `rows × cols` world grid
    /// spanning latitude (−85°, 85°) and longitude (−180°, 180°).
    pub fn new(name: impl Into<String>, rows: i64, cols: i64) -> Self {
        Mercator {
            name: name.into(),
            rows,
            cols,
            out_names: vec!["lat".into(), "lon".into()],
        }
    }

    const MAX_LAT: f64 = 85.05112878; // Web-Mercator cutoff

    fn row_to_lat(&self, row: i64) -> f64 {
        // Rows map uniformly in Mercator y; invert the Gudermannian.
        let y_max = Self::MAX_LAT.to_radians().tan().asinh();
        let frac = (row as f64 - 0.5) / self.rows as f64; // cell center
        let y = y_max - 2.0 * y_max * frac;
        y.sinh().atan().to_degrees()
    }

    fn lat_to_row(&self, lat: f64) -> Option<i64> {
        if lat.abs() > Self::MAX_LAT {
            return None;
        }
        let y_max = Self::MAX_LAT.to_radians().tan().asinh();
        let y = lat.to_radians().tan().asinh();
        let frac = (y_max - y) / (2.0 * y_max);
        let row = (frac * self.rows as f64 + 0.5).round() as i64;
        (1..=self.rows).contains(&row).then_some(row)
    }
}

impl EnhancementFn for Mercator {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, 2, basic.len())?;
        let lat = self.row_to_lat(basic[0]);
        let lon = -180.0 + 360.0 * (basic[1] as f64 - 0.5) / self.cols as f64;
        Ok(vec![PseudoValue::Float(lat), PseudoValue::Float(lon)])
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, 2, pseudo.len())?;
        let lat = pseudo[0]
            .as_f64()
            .ok_or_else(|| Error::dimension("lat must be numeric"))?;
        let lon = pseudo[1]
            .as_f64()
            .ok_or_else(|| Error::dimension("lon must be numeric"))?;
        let Some(row) = self.lat_to_row(lat) else {
            return Ok(None);
        };
        let col = ((lon + 180.0) / 360.0 * self.cols as f64 + 0.5).round() as i64;
        if !(1..=self.cols).contains(&col) {
            return Ok(None);
        }
        Ok(Some(vec![row, col]))
    }
}

/// Wall-clock mapping for the history dimension (§2.5): "enhance the history
/// dimension with a mapping between the integers … and wall clock time".
/// History value `h` maps to `base + (h-1) · step` (a logical clock; see
/// DESIGN.md §4 on timestamp injection).
#[derive(Debug)]
pub struct WallClock {
    name: String,
    base: i64,
    step: i64,
    out_names: Vec<String>,
}

impl WallClock {
    /// Creates a wall-clock enhancement with epoch `base` and `step`
    /// seconds between history versions.
    pub fn new(name: impl Into<String>, base: i64, step: i64) -> Self {
        assert!(step > 0, "step must be positive");
        WallClock {
            name: name.into(),
            base,
            step,
            out_names: vec!["time".into()],
        }
    }
}

impl EnhancementFn for WallClock {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_names(&self) -> &[String] {
        &self.out_names
    }
    fn forward(&self, basic: &[i64]) -> Result<Vec<PseudoValue>> {
        check_rank(&self.name, 1, basic.len())?;
        Ok(vec![PseudoValue::Int(
            self.base + (basic[0] - 1) * self.step,
        )])
    }
    fn inverse(&self, pseudo: &[PseudoValue]) -> Result<Option<Vec<i64>>> {
        check_rank(&self.name, 1, pseudo.len())?;
        let t = match &pseudo[0] {
            PseudoValue::Int(t) => *t,
            PseudoValue::Float(t) => *t as i64,
            _ => return Err(Error::dimension("time must be numeric")),
        };
        if t < self.base {
            return Ok(None);
        }
        // Round down to the latest version at or before t.
        Ok(Some(vec![(t - self.base) / self.step + 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale10_matches_paper_semantics() {
        let s = Scale::scale10(2);
        assert_eq!(
            s.forward(&[7, 8]).unwrap(),
            vec![PseudoValue::Int(70), PseudoValue::Int(80)]
        );
        assert_eq!(
            s.inverse(&[PseudoValue::Int(20), PseudoValue::Int(50)])
                .unwrap(),
            Some(vec![2, 5])
        );
        // Off-grid pseudo-coordinates address no cell.
        assert_eq!(
            s.inverse(&[PseudoValue::Int(21), PseudoValue::Int(50)])
                .unwrap(),
            None
        );
    }

    #[test]
    fn scale_rank_checked() {
        let s = Scale::scale10(2);
        assert!(s.forward(&[7]).is_err());
        assert!(s.inverse(&[PseudoValue::Int(10)]).is_err());
    }

    #[test]
    fn affine_translate_roundtrip() {
        let t = Affine::translate("shift", &[100, -5]);
        assert_eq!(
            t.forward(&[1, 10]).unwrap(),
            vec![PseudoValue::Int(101), PseudoValue::Int(5)]
        );
        assert_eq!(
            t.inverse(&[PseudoValue::Int(101), PseudoValue::Int(5)])
                .unwrap(),
            Some(vec![1, 10])
        );
    }

    #[test]
    fn affine_non_divisible_is_none() {
        let a = Affine::new("a", vec![(3, 1)]);
        assert_eq!(a.inverse(&[PseudoValue::Int(5)]).unwrap(), None); // (5-1)%3 != 0
        assert_eq!(a.inverse(&[PseudoValue::Int(7)]).unwrap(), Some(vec![2]));
    }

    #[test]
    fn permute_transposes() {
        let p = Permute::new("t", vec![1, 0]).unwrap();
        assert_eq!(
            p.forward(&[3, 9]).unwrap(),
            vec![PseudoValue::Int(9), PseudoValue::Int(3)]
        );
        assert_eq!(
            p.inverse(&[PseudoValue::Int(9), PseudoValue::Int(3)])
                .unwrap(),
            Some(vec![3, 9])
        );
    }

    #[test]
    fn permute_rejects_invalid() {
        assert!(Permute::new("p", vec![0, 0]).is_err());
        assert!(Permute::new("p", vec![2, 0]).is_err());
    }

    #[test]
    fn irregular_map_matches_paper_example() {
        // "coordinates 16.3, 27.6, 48.2, …"
        let m = IrregularMap::new("irr", vec!["pos".into()], vec![vec![16.3, 27.6, 48.2]]).unwrap();
        assert_eq!(m.forward(&[1]).unwrap(), vec![PseudoValue::Float(16.3)]);
        assert_eq!(m.forward(&[3]).unwrap(), vec![PseudoValue::Float(48.2)]);
        assert_eq!(
            m.inverse(&[PseudoValue::Float(27.6)]).unwrap(),
            Some(vec![2])
        );
        assert_eq!(m.inverse(&[PseudoValue::Float(27.0)]).unwrap(), None);
        assert!(m.forward(&[4]).is_err());
    }

    #[test]
    fn irregular_map_nearest() {
        let m = IrregularMap::new("irr", vec!["pos".into()], vec![vec![16.3, 27.6, 48.2]]).unwrap();
        assert_eq!(m.nearest(0, 17.0), Some(1));
        assert_eq!(m.nearest(0, 30.0), Some(2));
        assert_eq!(m.nearest(0, 100.0), Some(3));
    }

    #[test]
    fn irregular_map_requires_increasing() {
        assert!(IrregularMap::new("bad", vec!["p".into()], vec![vec![2.0, 1.0]]).is_err());
    }

    #[test]
    fn mercator_roundtrip_cell_centers() {
        let m = Mercator::new("merc", 180, 360);
        for &row in &[1i64, 45, 90, 135, 180] {
            for &col in &[1i64, 180, 360] {
                let p = m.forward(&[row, col]).unwrap();
                let back = m.inverse(&p).unwrap().unwrap();
                assert_eq!(back, vec![row, col], "row {row} col {col}");
            }
        }
    }

    #[test]
    fn mercator_rejects_out_of_range() {
        let m = Mercator::new("merc", 180, 360);
        assert_eq!(
            m.inverse(&[PseudoValue::Float(89.9), PseudoValue::Float(0.0)])
                .unwrap(),
            None
        );
    }

    #[test]
    fn wall_clock_maps_history_to_time() {
        let w = WallClock::new("clock", 1_000_000, 3600);
        assert_eq!(w.forward(&[1]).unwrap(), vec![PseudoValue::Int(1_000_000)]);
        assert_eq!(w.forward(&[3]).unwrap(), vec![PseudoValue::Int(1_007_200)]);
        // Time between versions resolves to the latest version before it.
        assert_eq!(
            w.inverse(&[PseudoValue::Int(1_005_000)]).unwrap(),
            Some(vec![2])
        );
        assert_eq!(w.inverse(&[PseudoValue::Int(999)]).unwrap(), None);
    }
}
