//! The chunk-parallel execution context.
//!
//! SciDB's unit of physical storage — the chunk — is also its unit of
//! parallelism. An [`ExecContext`] carries a thread budget and per-query
//! metrics through the executor into the operator kernels; chunk-separable
//! kernels (Subsample, Filter, Apply, Project, Aggregate, Regrid) fan their
//! chunk lists out over [`par_map`]-style scoped threads and combine the
//! per-chunk results deterministically, so serial (`threads = 1`) and
//! parallel runs produce identical arrays.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::error::Result;
use crate::sync::{ranks, OrderedMutex};

/// Metrics for one operator invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMetrics {
    /// Operator name (`filter`, `aggregate`, …).
    pub op: String,
    /// Input chunks scanned (after structural pruning).
    pub chunks_scanned: u64,
    /// Present cells touched.
    pub cells_touched: u64,
    /// Wall time of the kernel.
    pub wall: Duration,
}

/// Accumulated metrics for the statements run under one context.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// One entry per operator invocation, in execution order.
    pub ops: Vec<OpMetrics>,
}

impl QueryMetrics {
    /// Derives metrics from a finished trace: one [`OpMetrics`] per
    /// `kernel` span event, in execution (sequence) order. This is the
    /// thin-view direction — the trace is the source of truth and the
    /// metrics struct is a projection of it.
    pub fn from_trace(trace: &scidb_obs::TraceData) -> QueryMetrics {
        let ops = trace
            .kernel_events()
            .into_iter()
            .map(|e| OpMetrics {
                op: e.op,
                chunks_scanned: e.chunks,
                cells_touched: e.cells,
                wall: e.wall,
            })
            .collect();
        QueryMetrics { ops }
    }

    /// [`QueryMetrics::from_trace`] over several traces, concatenated in
    /// trace order (e.g. one trace per statement of a session).
    pub fn from_traces<'a>(
        traces: impl IntoIterator<Item = &'a scidb_obs::TraceData>,
    ) -> QueryMetrics {
        let mut all = QueryMetrics::default();
        for t in traces {
            all.ops.extend(QueryMetrics::from_trace(t).ops);
        }
        all
    }

    /// Total chunks scanned across operators.
    pub fn chunks_scanned(&self) -> u64 {
        self.ops.iter().map(|o| o.chunks_scanned).sum()
    }

    /// Total cells touched across operators.
    pub fn cells_touched(&self) -> u64 {
        self.ops.iter().map(|o| o.cells_touched).sum()
    }

    /// Total operator wall time (sum, not elapsed span).
    pub fn total_wall(&self) -> Duration {
        self.ops.iter().map(|o| o.wall).sum()
    }

    /// A compact one-line-per-operator report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for o in &self.ops {
            let _ = writeln!(
                s,
                "{:<12} chunks={:<6} cells={:<10} wall={:?}",
                o.op, o.chunks_scanned, o.cells_touched, o.wall
            );
        }
        s
    }
}

/// Thread budget + metrics sink threaded from the executor down into the
/// operator kernels.
#[derive(Debug)]
pub struct ExecContext {
    threads: usize,
    metrics: OrderedMutex<QueryMetrics>,
    span: OrderedMutex<Option<scidb_obs::Span>>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new()
    }
}

impl ExecContext {
    /// A context sized to the machine (`available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ExecContext::with_threads(threads)
    }

    /// A context with an explicit thread budget (`0` means auto-size).
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        ExecContext {
            threads,
            metrics: OrderedMutex::new(ranks::EXEC, QueryMetrics::default()),
            span: OrderedMutex::new(ranks::EXEC, None),
        }
    }

    /// The single-threaded escape hatch.
    pub fn serial() -> Self {
        ExecContext::with_threads(1)
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs `span` as the current kernel span, returning the previous
    /// one. While a span is installed, [`record`](Self::record) also
    /// forwards each operator invocation to it as a `kernel` event, so
    /// per-kernel timing lands in the enclosing trace. Executors should
    /// restore the previous span when the kernel call returns.
    pub fn set_current_span(&self, span: Option<scidb_obs::Span>) -> Option<scidb_obs::Span> {
        std::mem::replace(&mut *self.span.lock(), span)
    }

    /// The currently installed kernel span, if any.
    pub fn current_span(&self) -> Option<scidb_obs::Span> {
        self.span.lock().clone()
    }

    /// Records one operator invocation (and forwards it to the current
    /// span as a `kernel` event when one is installed).
    pub fn record(&self, op: &str, chunks_scanned: u64, cells_touched: u64, wall: Duration) {
        if let Some(span) = self.current_span() {
            span.record_kernel(op, chunks_scanned, cells_touched, wall);
        }
        let mut m = self.metrics.lock();
        m.ops.push(OpMetrics {
            op: op.to_string(),
            chunks_scanned,
            cells_touched,
            wall,
        });
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> QueryMetrics {
        self.metrics.lock().clone()
    }

    /// Drains and returns the accumulated metrics.
    pub fn take_metrics(&self) -> QueryMetrics {
        std::mem::take(&mut *self.metrics.lock())
    }

    /// Maps `f` over `items`, in parallel when the budget allows.
    /// Results are returned in item order regardless of scheduling.
    pub fn par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        par_map_threads(self.threads, items, f)
    }

    /// Fallible [`par_map`](Self::par_map): returns the first error in
    /// *item order* (deterministic across thread schedules).
    pub fn try_par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> Result<R> + Sync,
    {
        par_map_threads(self.threads, items, f)
            .into_iter()
            .collect()
    }

    /// Times `f`, recording an [`OpMetrics`] entry on success.
    pub fn timed<R>(&self, op: &str, f: impl FnOnce() -> Result<(R, u64, u64)>) -> Result<R> {
        let start = Instant::now();
        let (out, chunks, cells) = f()?;
        self.record(op, chunks, cells, start.elapsed());
        Ok(out)
    }
}

/// Order-preserving parallel map over a slice with `threads` workers
/// pulling items from a shared counter (dynamic load balancing; chunk
/// workloads are rarely uniform). Falls back to a plain serial loop for
/// `threads <= 1` or tiny inputs.
pub fn par_map_threads<'a, T, R, F>(threads: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next_ref = &next;
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            // lint: allow(panic) — re-raises a worker panic so parallel runs fail like serial ones
            labelled.extend(h.join().expect("worker panicked"));
        }
    });
    labelled.sort_by_key(|(i, _)| *i);
    labelled.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let out = par_map_threads(threads, &items, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny() {
        let empty: Vec<u64> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_first_error_in_item_order() {
        let ctx = ExecContext::with_threads(4);
        let items: Vec<i64> = (0..64).collect();
        let err = ctx
            .try_par_map(&items, |&x| {
                if x % 10 == 3 {
                    Err(Error::eval(format!("bad item {x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("bad item 3"), "{err}");
    }

    #[test]
    fn metrics_accumulate_and_drain() {
        let ctx = ExecContext::serial();
        ctx.record("filter", 4, 100, Duration::from_millis(2));
        ctx.record("aggregate", 4, 100, Duration::from_millis(3));
        let m = ctx.metrics();
        assert_eq!(m.ops.len(), 2);
        assert_eq!(m.chunks_scanned(), 8);
        assert_eq!(m.cells_touched(), 200);
        assert_eq!(m.total_wall(), Duration::from_millis(5));
        assert!(m.report().contains("filter"));
        let drained = ctx.take_metrics();
        assert_eq!(drained.ops.len(), 2);
        assert!(ctx.metrics().ops.is_empty());
    }

    #[test]
    fn record_forwards_to_current_span_and_metrics_derive_from_trace() {
        let ctx = ExecContext::serial();
        let trace = scidb_obs::Trace::new();
        let root = trace.root("statement", scidb_obs::LAYER_QUERY);
        let prev = ctx.set_current_span(Some(root.clone()));
        assert!(prev.is_none());
        ctx.record("filter", 2, 8, Duration::from_millis(1));
        ctx.record("aggregate", 2, 8, Duration::from_millis(2));
        let restored = ctx.set_current_span(None);
        assert!(restored.is_some());
        ctx.record("untraced", 1, 1, Duration::from_millis(1));
        root.finish();
        let td = trace.finish();
        let derived = QueryMetrics::from_trace(&td);
        assert_eq!(derived.ops.len(), 2, "untraced op must not reach the span");
        assert_eq!(derived.ops[0].op, "filter");
        assert_eq!(derived.ops[1].op, "aggregate");
        assert_eq!(derived.cells_touched(), 16);
        assert_eq!(derived.total_wall(), Duration::from_millis(3));
        // The context's own sink still saw all three.
        assert_eq!(ctx.metrics().ops.len(), 3);
        let both = QueryMetrics::from_traces([&td, &td]);
        assert_eq!(both.ops.len(), 4);
    }

    #[test]
    fn thread_budget_resolution() {
        assert_eq!(ExecContext::serial().threads(), 1);
        assert_eq!(ExecContext::with_threads(3).threads(), 3);
        assert!(ExecContext::with_threads(0).threads() >= 1);
        assert!(ExecContext::new().threads() >= 1);
    }
}
