//! The chunk-parallel execution context.
//!
//! SciDB's unit of physical storage — the chunk — is also its unit of
//! parallelism. An [`ExecContext`] carries a thread budget and per-query
//! metrics through the executor into the operator kernels; chunk-separable
//! kernels (Subsample, Filter, Apply, Project, Aggregate, Regrid) fan their
//! chunk lists out over [`par_map`]-style scoped threads and combine the
//! per-chunk results deterministically, so serial (`threads = 1`) and
//! parallel runs produce identical arrays.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::Result;

/// Metrics for one operator invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMetrics {
    /// Operator name (`filter`, `aggregate`, …).
    pub op: String,
    /// Input chunks scanned (after structural pruning).
    pub chunks_scanned: u64,
    /// Present cells touched.
    pub cells_touched: u64,
    /// Wall time of the kernel.
    pub wall: Duration,
}

/// Accumulated metrics for the statements run under one context.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    /// One entry per operator invocation, in execution order.
    pub ops: Vec<OpMetrics>,
}

impl QueryMetrics {
    /// Total chunks scanned across operators.
    pub fn chunks_scanned(&self) -> u64 {
        self.ops.iter().map(|o| o.chunks_scanned).sum()
    }

    /// Total cells touched across operators.
    pub fn cells_touched(&self) -> u64 {
        self.ops.iter().map(|o| o.cells_touched).sum()
    }

    /// Total operator wall time (sum, not elapsed span).
    pub fn total_wall(&self) -> Duration {
        self.ops.iter().map(|o| o.wall).sum()
    }

    /// A compact one-line-per-operator report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for o in &self.ops {
            let _ = writeln!(
                s,
                "{:<12} chunks={:<6} cells={:<10} wall={:?}",
                o.op, o.chunks_scanned, o.cells_touched, o.wall
            );
        }
        s
    }
}

/// Thread budget + metrics sink threaded from the executor down into the
/// operator kernels.
#[derive(Debug)]
pub struct ExecContext {
    threads: usize,
    metrics: Mutex<QueryMetrics>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new()
    }
}

impl ExecContext {
    /// A context sized to the machine (`available_parallelism`).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ExecContext::with_threads(threads)
    }

    /// A context with an explicit thread budget (`0` means auto-size).
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        ExecContext {
            threads,
            metrics: Mutex::new(QueryMetrics::default()),
        }
    }

    /// The single-threaded escape hatch.
    pub fn serial() -> Self {
        ExecContext::with_threads(1)
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Records one operator invocation.
    pub fn record(&self, op: &str, chunks_scanned: u64, cells_touched: u64, wall: Duration) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.ops.push(OpMetrics {
            op: op.to_string(),
            chunks_scanned,
            cells_touched,
            wall,
        });
    }

    /// Snapshot of the accumulated metrics.
    pub fn metrics(&self) -> QueryMetrics {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drains and returns the accumulated metrics.
    pub fn take_metrics(&self) -> QueryMetrics {
        std::mem::take(&mut *self.metrics.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Maps `f` over `items`, in parallel when the budget allows.
    /// Results are returned in item order regardless of scheduling.
    pub fn par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        par_map_threads(self.threads, items, f)
    }

    /// Fallible [`par_map`](Self::par_map): returns the first error in
    /// *item order* (deterministic across thread schedules).
    pub fn try_par_map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Result<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> Result<R> + Sync,
    {
        par_map_threads(self.threads, items, f)
            .into_iter()
            .collect()
    }

    /// Times `f`, recording an [`OpMetrics`] entry on success.
    pub fn timed<R>(&self, op: &str, f: impl FnOnce() -> Result<(R, u64, u64)>) -> Result<R> {
        let start = Instant::now();
        let (out, chunks, cells) = f()?;
        self.record(op, chunks, cells, start.elapsed());
        Ok(out)
    }
}

/// Order-preserving parallel map over a slice with `threads` workers
/// pulling items from a shared counter (dynamic load balancing; chunk
/// workloads are rarely uniform). Falls back to a plain serial loop for
/// `threads <= 1` or tiny inputs.
pub fn par_map_threads<'a, T, R, F>(threads: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next_ref = &next;
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            // lint: allow(panic) — re-raises a worker panic so parallel runs fail like serial ones
            labelled.extend(h.join().expect("worker panicked"));
        }
    });
    labelled.sort_by_key(|(i, _)| *i);
    labelled.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let out = par_map_threads(threads, &items, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny() {
        let empty: Vec<u64> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_first_error_in_item_order() {
        let ctx = ExecContext::with_threads(4);
        let items: Vec<i64> = (0..64).collect();
        let err = ctx
            .try_par_map(&items, |&x| {
                if x % 10 == 3 {
                    Err(Error::eval(format!("bad item {x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("bad item 3"), "{err}");
    }

    #[test]
    fn metrics_accumulate_and_drain() {
        let ctx = ExecContext::serial();
        ctx.record("filter", 4, 100, Duration::from_millis(2));
        ctx.record("aggregate", 4, 100, Duration::from_millis(3));
        let m = ctx.metrics();
        assert_eq!(m.ops.len(), 2);
        assert_eq!(m.chunks_scanned(), 8);
        assert_eq!(m.cells_touched(), 200);
        assert_eq!(m.total_wall(), Duration::from_millis(5));
        assert!(m.report().contains("filter"));
        let drained = ctx.take_metrics();
        assert_eq!(drained.ops.len(), 2);
        assert!(ctx.metrics().ops.is_empty());
    }

    #[test]
    fn thread_budget_resolution() {
        assert_eq!(ExecContext::serial().threads(), 1);
        assert_eq!(ExecContext::with_threads(3).threads(), 3);
        assert!(ExecContext::with_threads(0).threads() >= 1);
        assert!(ExecContext::new().threads() >= 1);
    }
}
