//! Scalar and cell values.
//!
//! §2.1: "Every cell has the same data type(s) for its value(s), which is one
//! or more scalar values, and/or one or more arrays." A cell therefore holds
//! a [`Record`]: one [`Value`] per attribute, where a value is NULL, a
//! scalar, or a nested array.

use crate::array::Array;
use crate::uncertain::Uncertain;
use std::fmt;

/// The scalar types supported by the engine.
///
/// `Uncertain` is the paper's `uncertain float` (§2.13): a mean plus an error
/// bar. New user-defined types register through
/// [`crate::registry::Registry::register_type`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    String,
    /// `uncertain float`: mean + standard deviation (§2.13).
    UncertainFloat64,
}

impl ScalarType {
    /// Parses the AQL type name (`int`, `float`, `bool`, `string`,
    /// `uncertain float`).
    pub fn parse(name: &str) -> Option<ScalarType> {
        match name.trim().to_ascii_lowercase().as_str() {
            "int" | "int64" | "integer" => Some(ScalarType::Int64),
            "float" | "float64" | "double" => Some(ScalarType::Float64),
            "bool" | "boolean" => Some(ScalarType::Bool),
            "string" | "text" => Some(ScalarType::String),
            "uncertain float" | "uncertain" | "ufloat" => Some(ScalarType::UncertainFloat64),
            _ => None,
        }
    }

    /// The AQL name of the type.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarType::Int64 => "int",
            ScalarType::Float64 => "float",
            ScalarType::Bool => "bool",
            ScalarType::String => "string",
            ScalarType::UncertainFloat64 => "uncertain float",
        }
    }

    /// In-memory width in bytes of one element in columnar storage
    /// (strings report pointer-size; see the storage crate for exact
    /// accounting).
    pub fn fixed_width(&self) -> usize {
        match self {
            ScalarType::Int64 | ScalarType::Float64 => 8,
            ScalarType::Bool => 1,
            ScalarType::String => 24,
            ScalarType::UncertainFloat64 => 16,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// 64-bit integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    String(String),
    /// Uncertain float (§2.13).
    Uncertain(Uncertain),
}

impl Scalar {
    /// The type of this scalar.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::Int64(_) => ScalarType::Int64,
            Scalar::Float64(_) => ScalarType::Float64,
            Scalar::Bool(_) => ScalarType::Bool,
            Scalar::String(_) => ScalarType::String,
            Scalar::Uncertain(_) => ScalarType::UncertainFloat64,
        }
    }

    /// Numeric view: integers and floats widen to `f64`; the mean of an
    /// uncertain value; `None` for bool/string.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int64(v) => Some(*v as f64),
            Scalar::Float64(v) => Some(*v),
            Scalar::Uncertain(u) => Some(u.mean),
            Scalar::Bool(_) | Scalar::String(_) => None,
        }
    }

    /// Integer view; floats are not silently truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::String(s) => Some(s),
            _ => None,
        }
    }

    /// Uncertain view: an exact numeric scalar lifts to sigma 0.
    pub fn as_uncertain(&self) -> Option<Uncertain> {
        match self {
            Scalar::Uncertain(u) => Some(*u),
            Scalar::Int64(v) => Some(Uncertain::exact(*v as f64)),
            Scalar::Float64(v) => Some(Uncertain::exact(*v)),
            _ => None,
        }
    }

    /// Total ordering within a type, used by min/max aggregates and sort.
    /// Cross-type comparisons go through `as_f64` when both are numeric.
    pub fn compare(&self, other: &Scalar) -> Option<std::cmp::Ordering> {
        use Scalar::*;
        match (self, other) {
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (String(a), String(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int64(v) => write!(f, "{v}"),
            Scalar::Float64(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::String(v) => write!(f, "'{v}'"),
            Scalar::Uncertain(u) => write!(f, "{u}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int64(v)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float64(v)
    }
}
impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}
impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::String(v.to_string())
    }
}
impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::String(v)
    }
}
impl From<Uncertain> for Scalar {
    fn from(v: Uncertain) -> Self {
        Scalar::Uncertain(v)
    }
}

/// One attribute value in a cell: NULL, a scalar, or a nested array (§2.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// SQL-style NULL — present but unknown (e.g. produced by `Filter`).
    #[default]
    Null,
    /// A scalar.
    Scalar(Scalar),
    /// A nested array (cells "can contain components that are
    /// multi-dimensional arrays").
    Array(Box<Array>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Scalar view.
    pub fn as_scalar(&self) -> Option<&Scalar> {
        match self {
            Value::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view through the scalar.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_scalar().and_then(Scalar::as_f64)
    }

    /// Integer view through the scalar.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_scalar().and_then(Scalar::as_i64)
    }

    /// Boolean view through the scalar.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_scalar().and_then(Scalar::as_bool)
    }

    /// Nested-array view.
    pub fn as_array(&self) -> Option<&Array> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Scalar(s) => write!(f, "{s}"),
            Value::Array(a) => write!(f, "<array:{}>", a.schema().name()),
        }
    }
}

impl<T: Into<Scalar>> From<T> for Value {
    fn from(v: T) -> Self {
        Value::Scalar(v.into())
    }
}

/// A cell's record: one value per attribute, in schema order.
pub type Record = Vec<Value>;

/// Builds a record from anything convertible to values.
///
/// ```
/// use scidb_core::value::{record, Value};
/// let r = record([Value::from(1i64), Value::from(2.5)]);
/// assert_eq!(r.len(), 2);
/// ```
pub fn record<I: IntoIterator<Item = Value>>(vals: I) -> Record {
    vals.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_type_names() {
        assert_eq!(ScalarType::parse("float"), Some(ScalarType::Float64));
        assert_eq!(ScalarType::parse("INT"), Some(ScalarType::Int64));
        assert_eq!(
            ScalarType::parse("uncertain float"),
            Some(ScalarType::UncertainFloat64)
        );
        assert_eq!(ScalarType::parse("blob"), None);
    }

    #[test]
    fn scalar_type_roundtrip() {
        for t in [
            ScalarType::Int64,
            ScalarType::Float64,
            ScalarType::Bool,
            ScalarType::String,
            ScalarType::UncertainFloat64,
        ] {
            assert_eq!(ScalarType::parse(t.name()), Some(t));
        }
    }

    #[test]
    fn as_f64_widens() {
        assert_eq!(Scalar::Int64(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(
            Scalar::Uncertain(Uncertain::new(1.0, 0.5)).as_f64(),
            Some(1.0)
        );
        assert_eq!(Scalar::Bool(true).as_f64(), None);
    }

    #[test]
    fn as_uncertain_lifts_exact() {
        let u = Scalar::Int64(4).as_uncertain().unwrap();
        assert_eq!(u, Uncertain::exact(4.0));
    }

    #[test]
    fn compare_within_and_across_numeric_types() {
        use std::cmp::Ordering::*;
        assert_eq!(Scalar::Int64(1).compare(&Scalar::Int64(2)), Some(Less));
        assert_eq!(
            Scalar::Int64(3).compare(&Scalar::Float64(2.5)),
            Some(Greater)
        );
        assert_eq!(
            Scalar::String("a".into()).compare(&Scalar::String("b".into())),
            Some(Less)
        );
        assert_eq!(Scalar::Bool(true).compare(&Scalar::Int64(1)), None);
    }

    #[test]
    fn value_null_checks() {
        assert!(Value::Null.is_null());
        assert!(!Value::from(1i64).is_null());
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
    }
}
