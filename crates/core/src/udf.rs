//! Extendibility traits (§2.3).
//!
//! "The fundamental array operations in SciDB are user-extendable. In the
//! style of Postgres, users can add their own array operations. Similarly,
//! users can add their own data types." This module defines the traits a
//! user implements; [`crate::registry::Registry`] is the catalog they
//! register into. Functions are Rust trait objects rather than C++ object
//! code loaded from a `file_handle` — see DESIGN.md §4.

use crate::array::Array;
use crate::error::{Error, Result};
use crate::registry::Registry;
use crate::value::{Record, Scalar, Value};
use std::fmt;

/// A user-defined scalar function callable from expressions
/// (`Expr::Func`) and usable to enhance arrays.
pub trait ScalarFn: fmt::Debug + Send + Sync {
    /// Function name.
    fn name(&self) -> &str;
    /// Declared arity; `None` = variadic.
    fn arity(&self) -> Option<usize>;
    /// Invokes the function.
    fn call(&self, args: &[Value]) -> Result<Value>;
}

/// Boxed body of a scalar UDF.
type ScalarBody = Box<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A [`ScalarFn`] built from a closure — the idiomatic way to register a
/// UDF.
pub struct ClosureFn {
    name: String,
    arity: Option<usize>,
    f: ScalarBody,
}

impl ClosureFn {
    /// Wraps a closure as a named scalar function.
    pub fn new(
        name: impl Into<String>,
        arity: Option<usize>,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        ClosureFn {
            name: name.into(),
            arity,
            f: Box::new(f),
        }
    }

    /// Wraps a unary `f64 -> f64` function, with NULL passthrough.
    pub fn unary_f64(
        name: impl Into<String>,
        f: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let name = name.into();
        let label = name.clone();
        ClosureFn::new(name, Some(1), move |args| {
            let v = &args[0];
            if v.is_null() {
                return Ok(Value::Null);
            }
            let x = v
                .as_f64()
                .ok_or_else(|| Error::eval(format!("{label}: numeric argument required")))?;
            Ok(Value::from(f(x)))
        })
    }
}

impl fmt::Debug for ClosureFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClosureFn({})", self.name)
    }
}

impl ScalarFn for ClosureFn {
    fn name(&self) -> &str {
        &self.name
    }
    fn arity(&self) -> Option<usize> {
        self.arity
    }
    fn call(&self, args: &[Value]) -> Result<Value> {
        if let Some(n) = self.arity {
            if args.len() != n {
                return Err(Error::eval(format!(
                    "function '{}' expects {n} arguments, got {}",
                    self.name,
                    args.len()
                )));
            }
        }
        (self.f)(args)
    }
}

/// Running state of one aggregate computation.
///
/// The `partial`/`merge` pair supports distributed execution: grid nodes
/// compute partials locally and the coordinator merges them — the standard
/// shared-nothing aggregation strategy (§2.7).
pub trait AggState: Send {
    /// Folds one value into the state. NULLs are skipped by convention
    /// (callers may pass them; implementations must tolerate them).
    fn update(&mut self, v: &Value) -> Result<()>;
    /// Exports a mergeable partial state.
    fn partial(&self) -> Record;
    /// Merges a partial exported by another instance of the same aggregate.
    fn merge(&mut self, partial: &Record) -> Result<()>;
    /// Produces the final value.
    fn finalize(&self) -> Value;
}

/// A user-defined aggregate: a factory for [`AggState`]s.
pub trait AggregateFn: fmt::Debug + Send + Sync {
    /// Aggregate name (`sum`, `avg`, …).
    fn name(&self) -> &str;
    /// Creates a fresh state.
    fn create(&self) -> Box<dyn AggState>;
}

/// A user-defined whole-array operation — the extension point for science
/// operations like regrid ("science users wish to regrid arrays and perform
/// other sophisticated computations", §2.3).
pub trait ArrayOp: fmt::Debug + Send + Sync {
    /// Operation name.
    fn name(&self) -> &str;
    /// Applies the operation. UDFs "can internally run queries and call
    /// other UDFs" — hence the registry handle.
    fn apply(&self, inputs: &[&Array], registry: &Registry) -> Result<Array>;
}

/// Boxed validity constraint of a user-defined type.
type CheckFn = Box<dyn Fn(&Scalar) -> bool + Send + Sync>;

/// A user-defined data type: a named refinement of a base scalar type with
/// an optional validity constraint (e.g. `declination` as a float in
/// [-90, 90]).
pub struct TypeDef {
    name: String,
    base: crate::value::ScalarType,
    check: Option<CheckFn>,
}

impl TypeDef {
    /// Defines a type with no constraint.
    pub fn new(name: impl Into<String>, base: crate::value::ScalarType) -> Self {
        TypeDef {
            name: name.into(),
            base,
            check: None,
        }
    }

    /// Defines a constrained type.
    pub fn with_check(
        name: impl Into<String>,
        base: crate::value::ScalarType,
        check: impl Fn(&Scalar) -> bool + Send + Sync + 'static,
    ) -> Self {
        TypeDef {
            name: name.into(),
            base,
            check: Some(Box::new(check)),
        }
    }

    /// Type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Underlying scalar type.
    pub fn base(&self) -> crate::value::ScalarType {
        self.base
    }

    /// Validates a scalar against the type.
    pub fn validate(&self, s: &Scalar) -> Result<()> {
        if s.scalar_type() != self.base {
            return Err(Error::schema(format!(
                "type '{}' expects base {}, got {}",
                self.name,
                self.base,
                s.scalar_type()
            )));
        }
        if let Some(check) = &self.check {
            if !check(s) {
                return Err(Error::schema(format!(
                    "value {s} violates constraint of type '{}'",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Debug for TypeDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeDef({} : {})", self.name, self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ScalarType;

    #[test]
    fn closure_fn_checks_arity() {
        let f = ClosureFn::new("pair", Some(2), |args| {
            Ok(Value::from(
                args[0].as_f64().unwrap() + args[1].as_f64().unwrap(),
            ))
        });
        assert_eq!(
            f.call(&[Value::from(1.0), Value::from(2.0)]).unwrap(),
            Value::from(3.0)
        );
        assert!(f.call(&[Value::from(1.0)]).is_err());
    }

    #[test]
    fn unary_f64_null_passthrough() {
        let f = ClosureFn::unary_f64("sq", |x| x * x);
        assert_eq!(f.call(&[Value::from(3.0)]).unwrap(), Value::from(9.0));
        assert_eq!(f.call(&[Value::Null]).unwrap(), Value::Null);
        assert!(f.call(&[Value::from("s")]).is_err());
    }

    #[test]
    fn typedef_validates_base_and_constraint() {
        let dec = TypeDef::with_check("declination", ScalarType::Float64, |s| {
            s.as_f64().is_some_and(|v| (-90.0..=90.0).contains(&v))
        });
        assert!(dec.validate(&Scalar::Float64(45.0)).is_ok());
        assert!(dec.validate(&Scalar::Float64(91.0)).is_err());
        assert!(dec.validate(&Scalar::Int64(45)).is_err());
    }
}
