//! The array container: a chunked, multi-dimensional, nested array
//! (§2.1), with optional enhancements (pseudo-coordinate systems) and at
//! most one shape function (ragged bounds).
//!
//! Cells are addressed by 1-based integer coordinates — `A[7, 8]` — or, for
//! enhanced arrays, by pseudo-coordinates — `A{16.3, 48.2}` — resolved
//! through an enhancement's inverse. Data is stored in rectangular chunks
//! with columnar attribute storage (see [`crate::chunk`]).

use crate::chunk::Chunk;
use crate::enhance::{EnhancementRef, PseudoValue};
use crate::error::{Error, Result};
use crate::geometry::{chunk_origin_of, chunk_rect, Coords, HyperRect};
use crate::schema::ArraySchema;
use crate::shape::ShapeRef;
use crate::value::{Record, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A multi-dimensional array instance.
#[derive(Debug, Clone)]
pub struct Array {
    schema: Arc<ArraySchema>,
    chunks: BTreeMap<Coords, Chunk>,
    enhancements: Vec<EnhancementRef>,
    shape: Option<ShapeRef>,
}

impl PartialEq for Array {
    /// Equality compares schema and cell contents plus the *names* of
    /// attached enhancements and shape function (function bodies are opaque).
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.chunks == other.chunks
            && self
                .enhancements
                .iter()
                .map(|e| e.name())
                .eq(other.enhancements.iter().map(|e| e.name()))
            && self.shape.as_ref().map(|s| s.name()) == other.shape.as_ref().map(|s| s.name())
    }
}

impl Array {
    /// Creates an empty array with the given schema.
    pub fn new(schema: ArraySchema) -> Array {
        Array::from_arc(Arc::new(schema))
    }

    /// Creates an empty array sharing an existing schema handle.
    pub fn from_arc(schema: Arc<ArraySchema>) -> Array {
        Array {
            schema,
            chunks: BTreeMap::new(),
            enhancements: Vec::new(),
            shape: None,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &ArraySchema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_arc(&self) -> Arc<ArraySchema> {
        Arc::clone(&self.schema)
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.schema.rank()
    }

    /// Per-dimension chunk strides.
    pub fn strides(&self) -> Vec<i64> {
        self.schema.dims().iter().map(|d| d.chunk_len).collect()
    }

    /// Per-dimension upper bounds (`None` = unbounded).
    pub fn uppers(&self) -> Vec<Option<i64>> {
        self.schema.dims().iter().map(|d| d.upper).collect()
    }

    /// The full bounding rectangle, if every dimension is bounded.
    pub fn rect(&self) -> Option<HyperRect> {
        let high: Option<Vec<i64>> = self.schema.dims().iter().map(|d| d.upper).collect();
        high.map(|h| HyperRect {
            low: vec![1; self.rank()],
            high: h,
        })
    }

    /// Validates that `coords` addresses a legal cell: correct rank, each
    /// coordinate ≥ 1, within the high-water mark of bounded dimensions,
    /// and inside the shape function if one is attached.
    pub fn validate_coords(&self, coords: &[i64]) -> Result<()> {
        if coords.len() != self.rank() {
            return Err(Error::dimension(format!(
                "array '{}' has rank {}, got {} coordinates",
                self.schema.name(),
                self.rank(),
                coords.len()
            )));
        }
        for (d, (&c, dim)) in coords.iter().zip(self.schema.dims()).enumerate() {
            if c < 1 {
                return Err(Error::dimension(format!(
                    "coordinate {c} for dimension '{}' (index {d}) must be >= 1",
                    dim.name
                )));
            }
            if let Some(u) = dim.upper {
                if c > u {
                    return Err(Error::dimension(format!(
                        "coordinate {c} exceeds high-water mark {u} of dimension '{}'",
                        dim.name
                    )));
                }
            }
        }
        if let Some(shape) = &self.shape {
            if !shape.contains(coords) {
                return Err(Error::dimension(format!(
                    "cell {coords:?} is outside shape '{}'",
                    shape.name()
                )));
            }
        }
        Ok(())
    }

    /// True if `coords` is a legal address (without shape violation being an
    /// error — used by readers).
    fn addressable(&self, coords: &[i64]) -> bool {
        coords.len() == self.rank()
            && coords
                .iter()
                .zip(self.schema.dims())
                .all(|(&c, dim)| c >= 1 && dim.upper.is_none_or(|u| c <= u))
    }

    // ----- cell access --------------------------------------------------

    /// Writes a full record at `coords`.
    pub fn set_cell(&mut self, coords: &[i64], record: Record) -> Result<()> {
        self.validate_coords(coords)?;
        let chunk = self.ensure_chunk(coords);
        chunk.set_record(coords, &record)
    }

    /// Writes one attribute (by index) at `coords`.
    pub fn set_value(&mut self, attr: usize, coords: &[i64], value: Value) -> Result<()> {
        self.validate_coords(coords)?;
        if attr >= self.schema.attrs().len() {
            return Err(Error::schema(format!(
                "attribute index {attr} out of range"
            )));
        }
        let chunk = self.ensure_chunk(coords);
        chunk.set_value(attr, coords, &value)
    }

    /// Writes one attribute (by name) at `coords`.
    pub fn set_named(&mut self, attr: &str, coords: &[i64], value: Value) -> Result<()> {
        let idx = self.schema.require_attr(attr)?;
        self.set_value(idx, coords, value)
    }

    /// Reads the record at `coords`; `None` if the cell is empty or outside
    /// the array.
    pub fn get_cell(&self, coords: &[i64]) -> Option<Record> {
        if !self.exists(coords) {
            return None;
        }
        self.chunk_for(coords).and_then(|c| c.get_record(coords))
    }

    /// Reads one attribute (by index) at `coords`.
    pub fn get_value(&self, attr: usize, coords: &[i64]) -> Option<Value> {
        if !self.exists(coords) {
            return None;
        }
        self.chunk_for(coords)
            .and_then(|c| c.get_value(attr, coords))
    }

    /// Reads one attribute (by name) at `coords`; the paper's `A[7, 8].x`.
    pub fn get_named(&self, attr: &str, coords: &[i64]) -> Result<Option<Value>> {
        let idx = self.schema.require_attr(attr)?;
        Ok(self.get_value(idx, coords))
    }

    /// Fast numeric read of one attribute.
    pub fn get_f64(&self, attr: usize, coords: &[i64]) -> Option<f64> {
        if !self.exists(coords) {
            return None;
        }
        let chunk = self.chunk_for(coords)?;
        chunk.value_f64(attr, chunk.offset_of(coords))
    }

    /// Borrows a nested-array attribute without cloning it.
    pub fn get_nested(&self, attr: usize, coords: &[i64]) -> Option<&Array> {
        if !self.exists(coords) {
            return None;
        }
        let chunk = self.chunk_for(coords)?;
        chunk.nested_at(attr, chunk.offset_of(coords))
    }

    /// The paper's `Exists? [A, 7, 7]`: true if the cell is present
    /// (written, inside bounds, and inside the shape).
    pub fn exists(&self, coords: &[i64]) -> bool {
        if !self.addressable(coords) {
            return false;
        }
        if let Some(shape) = &self.shape {
            if !shape.contains(coords) {
                return false;
            }
        }
        self.chunk_for(coords)
            .is_some_and(|c| c.cell_present(coords))
    }

    /// Removes a cell (marks it empty).
    pub fn delete_cell(&mut self, coords: &[i64]) -> Result<()> {
        self.validate_coords(coords)?;
        let origin = chunk_origin_of(coords, &self.strides());
        if let Some(chunk) = self.chunks.get_mut(&origin) {
            chunk.clear_cell(coords);
        }
        Ok(())
    }

    /// Number of present cells.
    pub fn cell_count(&self) -> usize {
        self.chunks.values().map(Chunk::present_count).sum()
    }

    /// True if no cell is present.
    pub fn is_empty(&self) -> bool {
        self.cell_count() == 0
    }

    // ----- enhancements and shape ----------------------------------------

    /// Attaches an enhancement (`Enhance A with f`, §2.1). Output dimension
    /// names must not clash with an already-attached enhancement.
    pub fn enhance(&mut self, f: EnhancementRef) -> Result<()> {
        if self.enhancements.iter().any(|e| e.name() == f.name()) {
            return Err(Error::AlreadyExists(format!(
                "enhancement '{}' already attached",
                f.name()
            )));
        }
        self.enhancements.push(f);
        Ok(())
    }

    /// The attached enhancements, in attachment order.
    pub fn enhancements(&self) -> &[EnhancementRef] {
        &self.enhancements
    }

    /// Finds an enhancement by name.
    pub fn enhancement(&self, name: &str) -> Option<&EnhancementRef> {
        self.enhancements.iter().find(|e| e.name() == name)
    }

    /// Resolves enhanced (`{…}`) pseudo-coordinates to basic coordinates.
    ///
    /// With `enh = Some(name)` only that enhancement is consulted; with
    /// `None`, the unique enhancement of matching arity is used (ambiguity
    /// is an error, mirroring named addressing `A{K = 20, L = 50}`).
    pub fn resolve_enhanced(
        &self,
        enh: Option<&str>,
        pseudo: &[PseudoValue],
    ) -> Result<Option<Coords>> {
        let candidates: Vec<&EnhancementRef> = match enh {
            Some(name) => vec![self
                .enhancement(name)
                .ok_or_else(|| Error::not_found(format!("enhancement '{name}'")))?],
            None => {
                let matching: Vec<_> = self
                    .enhancements
                    .iter()
                    .filter(|e| e.output_names().len() == pseudo.len())
                    .collect();
                if matching.is_empty() {
                    return Err(Error::not_found(format!(
                        "no enhancement with {} output dimensions",
                        pseudo.len()
                    )));
                }
                if matching.len() > 1 {
                    return Err(Error::dimension(
                        "ambiguous enhanced addressing; name the enhancement",
                    ));
                }
                matching
            }
        };
        candidates[0].inverse(pseudo)
    }

    /// Reads a cell via enhanced addressing — `A{20, 50}`.
    pub fn get_enhanced(
        &self,
        enh: Option<&str>,
        pseudo: &[PseudoValue],
    ) -> Result<Option<Record>> {
        match self.resolve_enhanced(enh, pseudo)? {
            Some(coords) => Ok(self.get_cell(&coords)),
            None => Ok(None),
        }
    }

    /// Attaches the shape function (`Shape A with f`, §2.1). At most one is
    /// allowed.
    pub fn set_shape(&mut self, shape: ShapeRef) -> Result<()> {
        if self.shape.is_some() {
            return Err(Error::AlreadyExists(
                "array already has a shape function (at most one allowed)".into(),
            ));
        }
        self.shape = Some(shape);
        Ok(())
    }

    /// The attached shape function.
    pub fn shape_fn(&self) -> Option<&ShapeRef> {
        self.shape.as_ref()
    }

    /// High-water mark of dimension `d`: the declared bound, the shape
    /// function's global bound, or the observed maximum for unbounded
    /// dimensions (0 when no data).
    pub fn high_water(&self, d: usize) -> i64 {
        if let Some(u) = self.schema.dims()[d].upper {
            return u;
        }
        if let Some(shape) = &self.shape {
            return shape.global_bounds(d).1;
        }
        self.chunks
            .values()
            .filter(|c| !c.is_empty())
            .flat_map(|c| c.iter_present().map(move |(coords, _)| coords[d]))
            .max()
            .unwrap_or(0)
    }

    // ----- iteration ------------------------------------------------------

    /// Iterates `(coords, record)` over present cells, chunk-major
    /// (chunks in origin order, row-major within each chunk).
    pub fn cells(&self) -> impl Iterator<Item = (Coords, Record)> + '_ {
        self.chunks.values().flat_map(move |chunk| {
            chunk
                .iter_present()
                .map(move |(coords, idx)| (coords, chunk.record_at(idx)))
        })
    }

    /// Iterates `(coords, f64)` for a numeric attribute, skipping NULLs.
    pub fn cells_f64(&self, attr: usize) -> impl Iterator<Item = (Coords, f64)> + '_ {
        self.chunks.values().flat_map(move |chunk| {
            chunk
                .iter_present()
                .filter_map(move |(coords, idx)| chunk.value_f64(attr, idx).map(|v| (coords, v)))
        })
    }

    /// Iterates present cells whose coordinates fall in `region`.
    pub fn cells_in<'a>(
        &'a self,
        region: &'a HyperRect,
    ) -> impl Iterator<Item = (Coords, Record)> + 'a {
        self.chunks
            .values()
            .filter(move |c| c.rect().intersects(region))
            .flat_map(move |chunk| {
                chunk.iter_present().filter_map(move |(coords, idx)| {
                    region
                        .contains(&coords)
                        .then(|| (coords, chunk.record_at(idx)))
                })
            })
    }

    /// Fills every cell of a fully bounded array (respecting the shape
    /// function) from a generator.
    pub fn fill_with(&mut self, mut f: impl FnMut(&[i64]) -> Record) -> Result<()> {
        let rect = self
            .rect()
            .ok_or_else(|| Error::dimension("fill_with requires a fully bounded array"))?;
        let shape = self.shape.clone();
        for coords in rect.iter_cells() {
            if let Some(s) = &shape {
                if !s.contains(&coords) {
                    continue;
                }
            }
            let record = f(&coords);
            let chunk = self.ensure_chunk(&coords);
            chunk.set_record(&coords, &record)?;
        }
        Ok(())
    }

    // ----- chunk plumbing (used by the storage and grid crates) -----------

    /// The chunks, keyed by origin.
    pub fn chunks(&self) -> &BTreeMap<Coords, Chunk> {
        &self.chunks
    }

    /// Inserts (or replaces) a whole chunk; used by the bulk loader and the
    /// grid exchange paths.
    pub fn insert_chunk(&mut self, chunk: Chunk) {
        self.chunks.insert(chunk.rect().low.clone(), chunk);
    }

    /// The chunk containing `coords`, if materialized.
    pub fn chunk_for(&self, coords: &[i64]) -> Option<&Chunk> {
        let origin = chunk_origin_of(coords, &self.strides());
        self.chunks.get(&origin)
    }

    /// The chunk containing `coords`, materializing it if needed.
    pub fn ensure_chunk(&mut self, coords: &[i64]) -> &mut Chunk {
        use std::collections::btree_map::Entry;
        let strides = self.strides();
        let origin = chunk_origin_of(coords, &strides);
        let uppers = self.uppers();
        match self.chunks.entry(origin) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let rect = chunk_rect(e.key(), &strides, &uppers);
                let types: Vec<_> = self.schema.attrs().iter().map(|a| a.ty.clone()).collect();
                e.insert(Chunk::new(rect, &types))
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.chunks.values().map(Chunk::byte_size).sum()
    }

    /// True if both arrays expose identical visible cells (coords + record),
    /// ignoring chunking, enhancements, and schema names. The content
    /// equality used by reshape/versioning tests.
    pub fn same_cells(&self, other: &Array) -> bool {
        if self.cell_count() != other.cell_count() {
            return false;
        }
        self.cells()
            .all(|(coords, rec)| other.get_cell(&coords) == Some(rec))
    }
}

/// Convenience constructors used pervasively in tests, examples, and the
/// benchmark harness.
impl Array {
    /// Fallible form of [`Array::int_1d`]: fails if `name`/`attr` do not
    /// form a valid schema.
    pub fn try_int_1d(name: &str, attr: &str, values: &[i64]) -> Result<Array> {
        use crate::schema::SchemaBuilder;
        use crate::value::ScalarType;
        let schema = SchemaBuilder::new(name)
            .attr(attr, ScalarType::Int64)
            .dim("i", (values.len() as i64).max(1))
            .build()?;
        let mut a = Array::new(schema);
        for (i, &v) in values.iter().enumerate() {
            a.set_cell(&[i as i64 + 1], vec![Value::from(v)])?;
        }
        Ok(a)
    }

    /// Builds a 1-D int array named `name` with dimension `i`, cells
    /// `1..=values.len()`. Panics on an invalid schema name; library code
    /// should use [`Array::try_int_1d`].
    pub fn int_1d(name: &str, attr: &str, values: &[i64]) -> Array {
        // lint: allow(panic) — test/bench convenience; try_int_1d is the fallible form
        Array::try_int_1d(name, attr, values).expect("valid 1-D schema")
    }

    /// Fallible form of [`Array::f64_2d`]: fails if `name`/`attr` do not
    /// form a valid schema.
    pub fn try_f64_2d(name: &str, attr: &str, rows: &[Vec<f64>]) -> Result<Array> {
        use crate::schema::SchemaBuilder;
        use crate::value::ScalarType;
        let n = rows.len() as i64;
        let m = rows.first().map_or(0, |r| r.len()) as i64;
        let schema = SchemaBuilder::new(name)
            .attr(attr, ScalarType::Float64)
            .dim("i", n.max(1))
            .dim("j", m.max(1))
            .build()?;
        let mut a = Array::new(schema);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                a.set_cell(&[i as i64 + 1, j as i64 + 1], vec![Value::from(v)])?;
            }
        }
        Ok(a)
    }

    /// Builds a 2-D float array from row-major `rows` (dimensions `i`, `j`).
    /// Panics on an invalid schema name; library code should use
    /// [`Array::try_f64_2d`].
    pub fn f64_2d(name: &str, attr: &str, rows: &[Vec<f64>]) -> Array {
        // lint: allow(panic) — test/bench convenience; try_f64_2d is the fallible form
        Array::try_f64_2d(name, attr, rows).expect("valid 2-D schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhance::Scale;
    use crate::schema::SchemaBuilder;
    use crate::shape::{CircleShape, LowerTriangular};
    use crate::value::{record, ScalarType};

    fn small() -> Array {
        let schema = SchemaBuilder::new("A")
            .attr("x", ScalarType::Float64)
            .dim("I", 8)
            .dim("J", 8)
            .build()
            .unwrap();
        Array::new(schema)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut a = small();
        a.set_cell(&[7, 8], record([Value::from(3.5)])).unwrap();
        assert_eq!(a.get_cell(&[7, 8]), Some(vec![Value::from(3.5)]));
        assert_eq!(a.get_named("x", &[7, 8]).unwrap(), Some(Value::from(3.5)));
        assert_eq!(a.get_f64(0, &[7, 8]), Some(3.5));
        assert_eq!(a.cell_count(), 1);
    }

    #[test]
    fn exists_matches_paper_semantics() {
        let mut a = small();
        assert!(!a.exists(&[7, 7]));
        a.set_cell(&[7, 7], record([Value::from(1.0)])).unwrap();
        assert!(a.exists(&[7, 7]));
        assert!(!a.exists(&[9, 9])); // out of bounds is simply "not present"
        assert!(!a.exists(&[7])); // wrong rank
    }

    #[test]
    fn bounds_are_enforced_on_write() {
        let mut a = small();
        assert!(a.set_cell(&[0, 1], record([Value::from(1.0)])).is_err());
        assert!(a.set_cell(&[9, 1], record([Value::from(1.0)])).is_err());
        assert!(a.set_cell(&[1], record([Value::from(1.0)])).is_err());
    }

    #[test]
    fn unbounded_dimension_grows() {
        let schema = SchemaBuilder::new("S")
            .attr("v", ScalarType::Int64)
            .dim_unbounded("t")
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.set_cell(&[1_000_000], record([Value::from(5i64)]))
            .unwrap();
        assert!(a.exists(&[1_000_000]));
        assert_eq!(a.high_water(0), 1_000_000);
        assert_eq!(a.rect(), None);
    }

    #[test]
    fn delete_cell_marks_empty() {
        let mut a = small();
        a.set_cell(&[1, 1], record([Value::from(1.0)])).unwrap();
        a.delete_cell(&[1, 1]).unwrap();
        assert!(!a.exists(&[1, 1]));
        assert_eq!(a.cell_count(), 0);
    }

    #[test]
    fn cells_iterates_all_present() {
        let mut a = small();
        a.set_cell(&[1, 2], record([Value::from(1.0)])).unwrap();
        a.set_cell(&[5, 5], record([Value::from(2.0)])).unwrap();
        let cells: Vec<_> = a.cells().collect();
        assert_eq!(cells.len(), 2);
        assert!(cells.contains(&(vec![1, 2], vec![Value::from(1.0)])));
    }

    #[test]
    fn cells_in_region_filters() {
        let mut a = small();
        for i in 1..=8 {
            a.set_cell(&[i, i], record([Value::from(i as f64)]))
                .unwrap();
        }
        let region = HyperRect::new(vec![2, 2], vec![4, 4]).unwrap();
        let got: Vec<_> = a.cells_in(&region).map(|(c, _)| c).collect();
        assert_eq!(got, vec![vec![2, 2], vec![3, 3], vec![4, 4]]);
    }

    #[test]
    fn fill_with_fills_bounded_rect() {
        let mut a = small();
        a.fill_with(|c| record([Value::from((c[0] * 10 + c[1]) as f64)]))
            .unwrap();
        assert_eq!(a.cell_count(), 64);
        assert_eq!(a.get_f64(0, &[3, 4]), Some(34.0));
    }

    #[test]
    fn chunking_splits_large_arrays() {
        let schema = SchemaBuilder::new("Big")
            .attr("x", ScalarType::Float64)
            .dim_chunked("I", 100, 32)
            .dim_chunked("J", 100, 32)
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.set_cell(&[1, 1], record([Value::from(1.0)])).unwrap();
        a.set_cell(&[100, 100], record([Value::from(2.0)])).unwrap();
        assert_eq!(a.chunks().len(), 2);
        // Edge chunk is clipped to the bound.
        let last = a.chunk_for(&[100, 100]).unwrap();
        assert_eq!(last.rect().high, vec![100, 100]);
        assert_eq!(last.rect().low, vec![97, 97]);
    }

    #[test]
    fn enhancement_addressing() {
        let mut a = small();
        a.set_cell(&[2, 5], record([Value::from(9.0)])).unwrap();
        a.enhance(Arc::new(Scale::scale10(2))).unwrap();
        // A{20, 50} == A[2, 5]
        let got = a
            .get_enhanced(None, &[PseudoValue::Int(20), PseudoValue::Int(50)])
            .unwrap();
        assert_eq!(got, Some(vec![Value::from(9.0)]));
        // Off-grid address resolves to no cell.
        let none = a
            .get_enhanced(None, &[PseudoValue::Int(21), PseudoValue::Int(50)])
            .unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn duplicate_enhancement_rejected() {
        let mut a = small();
        a.enhance(Arc::new(Scale::scale10(2))).unwrap();
        assert!(a.enhance(Arc::new(Scale::scale10(2))).is_err());
    }

    #[test]
    fn ambiguous_enhanced_addressing_errors() {
        let mut a = small();
        a.enhance(Arc::new(Scale::scale10(2))).unwrap();
        a.enhance(Arc::new(Scale::new("Scale100", 100, 2))).unwrap();
        let err = a
            .resolve_enhanced(None, &[PseudoValue::Int(10), PseudoValue::Int(10)])
            .unwrap_err();
        assert!(matches!(err, Error::Dimension(_)));
        // Named resolution works.
        let ok = a
            .resolve_enhanced(
                Some("Scale100"),
                &[PseudoValue::Int(100), PseudoValue::Int(100)],
            )
            .unwrap();
        assert_eq!(ok, Some(vec![1, 1]));
    }

    #[test]
    fn shape_restricts_writes_and_exists() {
        let mut a = small();
        a.set_shape(Arc::new(LowerTriangular::new("tri", 8)))
            .unwrap();
        assert!(a.set_cell(&[1, 2], record([Value::from(1.0)])).is_err());
        a.set_cell(&[2, 1], record([Value::from(1.0)])).unwrap();
        assert!(a.exists(&[2, 1]));
        assert!(!a.exists(&[1, 2]));
    }

    #[test]
    fn only_one_shape_allowed() {
        let mut a = small();
        a.set_shape(Arc::new(LowerTriangular::new("tri", 8)))
            .unwrap();
        assert!(a
            .set_shape(Arc::new(CircleShape::new("disk", (4, 4), 2)))
            .is_err());
    }

    #[test]
    fn fill_with_respects_shape() {
        let mut a = small();
        a.set_shape(Arc::new(LowerTriangular::new("tri", 8)))
            .unwrap();
        a.fill_with(|_| record([Value::from(1.0)])).unwrap();
        assert_eq!(a.cell_count(), 8 * 9 / 2);
    }

    #[test]
    fn same_cells_ignores_chunking() {
        let mut a = {
            let s = SchemaBuilder::new("A")
                .attr("x", ScalarType::Float64)
                .dim_chunked("I", 10, 2)
                .build()
                .unwrap();
            Array::new(s)
        };
        let mut b = {
            let s = SchemaBuilder::new("B")
                .attr("x", ScalarType::Float64)
                .dim_chunked("I", 10, 5)
                .build()
                .unwrap();
            Array::new(s)
        };
        for i in 1..=10i64 {
            a.set_cell(&[i], record([Value::from(i as f64)])).unwrap();
            b.set_cell(&[i], record([Value::from(i as f64)])).unwrap();
        }
        assert!(a.same_cells(&b));
        b.set_cell(&[3], record([Value::from(0.0)])).unwrap();
        assert!(!a.same_cells(&b));
    }

    #[test]
    fn helpers_build_expected_arrays() {
        let a = Array::int_1d("A", "x", &[1, 2]);
        assert_eq!(a.get_cell(&[2]), Some(vec![Value::from(2i64)]));
        let b = Array::f64_2d("B", "v", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(b.get_f64(0, &[2, 1]), Some(3.0));
    }

    #[test]
    fn nested_array_attribute_roundtrip() {
        let inner_schema = SchemaBuilder::new("results")
            .attr("item", ScalarType::Int64)
            .dim("rank", 3)
            .build()
            .unwrap();
        let outer_schema = SchemaBuilder::new("Session")
            .attr("query", ScalarType::String)
            .nested_attr("results", Arc::new(inner_schema.clone()))
            .dim_unbounded("t")
            .build()
            .unwrap();
        let inner = Array::int_1d("results", "item", &[7, 9, 4]);
        let mut outer = Array::new(outer_schema);
        outer
            .set_cell(
                &[1],
                record([Value::from("banjo"), Value::Array(Box::new(inner.clone()))]),
            )
            .unwrap();
        let got = outer.get_cell(&[1]).unwrap();
        assert_eq!(got[0], Value::from("banjo"));
        assert_eq!(
            got[1].as_array().unwrap().get_cell(&[2]),
            inner.get_cell(&[2])
        );
    }
}
