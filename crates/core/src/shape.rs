//! Shape functions (§2.1): ragged array boundaries.
//!
//! "When dimensions have 'ragged' edges, we can enhance a basic array with a
//! shape function … a user-defined function with integer arguments and a
//! pair of integer outputs." A shape function returns the (low, high) bounds
//! of one dimension given values for the others, and must also return the
//! global low/high water marks when the other dimensions are left
//! unspecified — the paper's `shape-function(A[I, *])` query. Raggedness is
//! allowed in **both** the upper and lower bound, so "arrays that digitize
//! circles and other complex shapes are possible". Every basic array can
//! have at most one shape function.

use std::fmt;
use std::sync::Arc;

/// A shape function bounding one dimension given the other coordinates.
pub trait ShapeFn: fmt::Debug + Send + Sync {
    /// Function name, used in `Shape A with <name>`.
    fn name(&self) -> &str;

    /// Bounds `(low, high)` of dimension `dim` when the other dimensions
    /// take the values in `coords` (the entry at `dim` itself is ignored).
    /// An empty slice `(1, 0)`-style inverted result means no cells.
    fn bounds(&self, dim: usize, coords: &[i64]) -> (i64, i64);

    /// Global `(low, high)` water marks of dimension `dim` over the whole
    /// array — the `shape-function(A[I, *])` form.
    fn global_bounds(&self, dim: usize) -> (i64, i64);

    /// True if `coords` lies within the shape. The default checks each
    /// dimension against its conditional bounds.
    fn contains(&self, coords: &[i64]) -> bool {
        (0..coords.len()).all(|d| {
            let (lo, hi) = self.bounds(d, coords);
            lo <= coords[d] && coords[d] <= hi
        })
    }
}

/// Shared handle to a shape function.
pub type ShapeRef = Arc<dyn ShapeFn>;

/// A separable shape: per-dimension bounds independent of the other
/// dimensions. The paper notes that when "the shape function for a given
/// dimension does not depend on the value for other dimensions … shape is
/// separable into a collection of shape functions for the individual
/// dimensions"; this type is the composite that "encapsulates the individual
/// ones".
#[derive(Debug)]
pub struct SeparableShape {
    name: String,
    bounds: Vec<(i64, i64)>,
}

impl SeparableShape {
    /// Creates a separable shape from per-dimension `(low, high)` bounds.
    pub fn new(name: impl Into<String>, bounds: Vec<(i64, i64)>) -> Self {
        SeparableShape {
            name: name.into(),
            bounds,
        }
    }
}

impl ShapeFn for SeparableShape {
    fn name(&self) -> &str {
        &self.name
    }
    fn bounds(&self, dim: usize, _coords: &[i64]) -> (i64, i64) {
        self.bounds[dim]
    }
    fn global_bounds(&self, dim: usize) -> (i64, i64) {
        self.bounds[dim]
    }
}

/// A digitized circle (disk): the paper's canonical non-separable example.
#[derive(Debug)]
pub struct CircleShape {
    name: String,
    center: (i64, i64),
    radius: i64,
}

impl CircleShape {
    /// Creates a disk of `radius` centered at `center` in a 2-D array.
    pub fn new(name: impl Into<String>, center: (i64, i64), radius: i64) -> Self {
        assert!(radius >= 0);
        CircleShape {
            name: name.into(),
            center,
            radius,
        }
    }
}

impl ShapeFn for CircleShape {
    fn name(&self) -> &str {
        &self.name
    }

    fn bounds(&self, dim: usize, coords: &[i64]) -> (i64, i64) {
        debug_assert!(dim < 2, "circle shape is 2-D");
        let (c_this, c_other) = if dim == 0 {
            (self.center.0, self.center.1)
        } else {
            (self.center.1, self.center.0)
        };
        let other = coords[1 - dim];
        let d = other - c_other;
        let r2 = self.radius * self.radius - d * d;
        if r2 < 0 {
            return (1, 0); // empty slice
        }
        let half = (r2 as f64).sqrt().floor() as i64;
        (c_this - half, c_this + half)
    }

    fn global_bounds(&self, dim: usize) -> (i64, i64) {
        let c = if dim == 0 {
            self.center.0
        } else {
            self.center.1
        };
        (c - self.radius, c + self.radius)
    }
}

/// A lower-triangular 2-D shape: cells with `J <= I` — upper-bound-only
/// raggedness, the simplified case the paper mentions.
#[derive(Debug)]
pub struct LowerTriangular {
    name: String,
    n: i64,
}

impl LowerTriangular {
    /// Creates an `n × n` lower-triangular shape.
    pub fn new(name: impl Into<String>, n: i64) -> Self {
        LowerTriangular {
            name: name.into(),
            n,
        }
    }
}

impl ShapeFn for LowerTriangular {
    fn name(&self) -> &str {
        &self.name
    }
    fn bounds(&self, dim: usize, coords: &[i64]) -> (i64, i64) {
        match dim {
            0 => (coords[1].max(1), self.n), // I ranges from J..n
            _ => (1, coords[0].min(self.n)), // J ranges from 1..I
        }
    }
    fn global_bounds(&self, _dim: usize) -> (i64, i64) {
        (1, self.n)
    }
}

/// Explicit per-row bounds for one ragged dimension: row `i` of dimension 0
/// admits dimension-1 coordinates in `rows[i-1]`. General enough to express
/// arbitrary digitized outlines loaded from instrument masks.
#[derive(Debug)]
pub struct RaggedRows {
    name: String,
    rows: Vec<(i64, i64)>,
}

impl RaggedRows {
    /// Creates a ragged 2-D shape from per-row `(low, high)` bounds of the
    /// second dimension (an inverted pair means the row is empty).
    pub fn new(name: impl Into<String>, rows: Vec<(i64, i64)>) -> Self {
        RaggedRows {
            name: name.into(),
            rows,
        }
    }
}

impl ShapeFn for RaggedRows {
    fn name(&self) -> &str {
        &self.name
    }

    fn bounds(&self, dim: usize, coords: &[i64]) -> (i64, i64) {
        match dim {
            1 => {
                let row = coords[0];
                if row < 1 || row as usize > self.rows.len() {
                    (1, 0)
                } else {
                    self.rows[row as usize - 1]
                }
            }
            _ => {
                // Rows (dim 0) containing this column.
                let col = coords[1];
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for (i, &(l, h)) in self.rows.iter().enumerate() {
                    if l <= col && col <= h {
                        lo = lo.min(i as i64 + 1);
                        hi = hi.max(i as i64 + 1);
                    }
                }
                if lo > hi {
                    (1, 0)
                } else {
                    (lo, hi)
                }
            }
        }
    }

    fn global_bounds(&self, dim: usize) -> (i64, i64) {
        match dim {
            0 => (1, self.rows.len() as i64),
            _ => {
                let lo = self
                    .rows
                    .iter()
                    .filter(|(l, h)| l <= h)
                    .map(|&(l, _)| l)
                    .min()
                    .unwrap_or(1);
                let hi = self
                    .rows
                    .iter()
                    .filter(|(l, h)| l <= h)
                    .map(|&(_, h)| h)
                    .max()
                    .unwrap_or(0);
                (lo, hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_shape_bounds() {
        let s = SeparableShape::new("box", vec![(2, 5), (3, 7)]);
        assert_eq!(s.bounds(0, &[0, 0]), (2, 5));
        assert_eq!(s.global_bounds(1), (3, 7));
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[1, 3]));
        assert!(!s.contains(&[2, 8]));
    }

    #[test]
    fn circle_digitizes_disk() {
        let c = CircleShape::new("disk", (5, 5), 3);
        // Through the center: full diameter.
        assert_eq!(c.bounds(1, &[5, 0]), (2, 8));
        // At the edge row: single cell.
        assert_eq!(c.bounds(1, &[2, 0]), (5, 5));
        // Outside: empty.
        let (lo, hi) = c.bounds(1, &[1, 0]);
        assert!(lo > hi);
        assert!(c.contains(&[5, 5]));
        assert!(c.contains(&[3, 3])); // dist^2 = 8 <= 9
        assert!(!c.contains(&[2, 2])); // dist^2 = 18 > 9
        assert_eq!(c.global_bounds(0), (2, 8));
    }

    #[test]
    fn circle_cell_count_approximates_area() {
        let r = 10i64;
        let c = CircleShape::new("disk", (50, 50), r);
        let mut count = 0;
        for i in 1..=100 {
            for j in 1..=100 {
                if c.contains(&[i, j]) {
                    count += 1;
                }
            }
        }
        let area = std::f64::consts::PI * (r as f64) * (r as f64);
        assert!(
            (count as f64 - area).abs() / area < 0.1,
            "digitized {count} vs area {area}"
        );
    }

    #[test]
    fn lower_triangular_contains() {
        let t = LowerTriangular::new("tri", 4);
        assert!(t.contains(&[3, 3]));
        assert!(t.contains(&[4, 1]));
        assert!(!t.contains(&[1, 2]));
        assert_eq!(t.bounds(1, &[3, 0]), (1, 3));
        assert_eq!(t.bounds(0, &[0, 2]), (2, 4));
    }

    #[test]
    fn ragged_rows_both_bounds() {
        // Lower AND upper raggedness, per the paper.
        let r = RaggedRows::new("rag", vec![(3, 5), (2, 6), (4, 4), (7, 6)]);
        assert!(r.contains(&[1, 3]));
        assert!(!r.contains(&[1, 2]));
        assert!(r.contains(&[2, 2]));
        assert!(!r.contains(&[3, 5]));
        assert!(!r.contains(&[4, 6])); // empty row
        assert_eq!(r.global_bounds(0), (1, 4));
        assert_eq!(r.global_bounds(1), (2, 6));
        // Rows containing column 4: rows 1..=3.
        assert_eq!(r.bounds(0, &[0, 4]), (1, 3));
        // Rows containing column 7: none.
        let (lo, hi) = r.bounds(0, &[0, 7]);
        assert!(lo > hi);
    }

    #[test]
    fn ragged_rows_out_of_range_row_is_empty() {
        let r = RaggedRows::new("rag", vec![(1, 2)]);
        let (lo, hi) = r.bounds(1, &[5, 0]);
        assert!(lo > hi);
    }
}
