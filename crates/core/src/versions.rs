//! Named versions (§2.11).
//!
//! "At a specific time T, a user will be able to construct a version V from
//! a base array A … Since V is stored as a delta off its parent A, it
//! consumes essentially no space, and the new array is empty. Thereafter,
//! any modifications to V go into this array. … When the SciDB execution
//! engine desires a value of a cell in V, it will first look in the delta
//! array for V for the most recent value along the history dimension. If
//! there is no value in V, it will then look [in] A. In turn, if A is a
//! version, it will repeat this process until it reaches a base array. In
//! general, hanging off any base array is a tree of named versions."
//!
//! A version snapshots its parent *as of the parent's history value at
//! creation time* (the paper's "at time T, the version V is identical to
//! A"), so later base updates do not leak into existing versions.

use crate::error::{Error, Result};
use crate::history::{Lookup, Transaction, UpdatableArray};
use crate::schema::ArraySchema;
use crate::value::Record;
use std::collections::HashMap;

/// One named version: a delta array hanging off a parent.
#[derive(Debug)]
struct Version {
    /// `None` = parent is the base array.
    parent: Option<String>,
    /// Parent's history value when this version was created (the paper's
    /// time T).
    parent_history: i64,
    /// The delta array: "the new array is empty" at creation.
    delta: UpdatableArray,
}

/// A base array plus its tree of named versions.
#[derive(Debug)]
pub struct VersionTree {
    base: UpdatableArray,
    versions: HashMap<String, Version>,
}

impl VersionTree {
    /// Creates a tree around an empty base array.
    pub fn new(schema: ArraySchema) -> Result<Self> {
        Ok(VersionTree {
            base: UpdatableArray::new(schema)?,
            versions: HashMap::new(),
        })
    }

    /// Wraps an existing base array.
    pub fn from_base(base: UpdatableArray) -> Self {
        VersionTree {
            base,
            versions: HashMap::new(),
        }
    }

    /// The base array.
    pub fn base(&self) -> &UpdatableArray {
        &self.base
    }

    /// Mutable base array (for loading / updating the base).
    pub fn base_mut(&mut self) -> &mut UpdatableArray {
        &mut self.base
    }

    /// Creates version `name` off `parent` (`None` = the base array). The
    /// new version is an empty delta; it reads identically to its parent at
    /// this moment.
    pub fn create_version(&mut self, name: &str, parent: Option<&str>) -> Result<()> {
        if self.versions.contains_key(name) {
            return Err(Error::AlreadyExists(format!("version '{name}'")));
        }
        let parent_history = match parent {
            None => self.base.current_history(),
            Some(p) => self
                .versions
                .get(p)
                .ok_or_else(|| Error::not_found(format!("version '{p}'")))?
                .delta
                .current_history(),
        };
        let schema = self
            .base
            .array()
            .schema()
            .renamed(format!("{}:{name}", self.base.array().schema().name()));
        self.versions.insert(
            name.to_string(),
            Version {
                parent: parent.map(str::to_string),
                parent_history,
                delta: UpdatableArray::new(schema)?,
            },
        );
        Ok(())
    }

    /// Names of all versions (unordered).
    pub fn version_names(&self) -> Vec<&str> {
        self.versions.keys().map(String::as_str).collect()
    }

    /// The parent of a version (`None` = base).
    pub fn parent_of(&self, name: &str) -> Result<Option<&str>> {
        Ok(self
            .versions
            .get(name)
            .ok_or_else(|| Error::not_found(format!("version '{name}'")))?
            .parent
            .as_deref())
    }

    /// Commits a transaction into version `name`'s delta array.
    pub fn commit(&mut self, name: &str, txn: Transaction) -> Result<i64> {
        let v = self
            .versions
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("version '{name}'")))?;
        v.delta.commit(txn)
    }

    /// Reads a cell through version `name`'s delta chain down to the base
    /// array — the paper's resolution algorithm.
    pub fn get(&self, name: &str, coords: &[i64]) -> Result<Option<Record>> {
        let mut cursor: Option<&str> = Some(name);
        let mut history_cap = i64::MAX;
        while let Some(n) = cursor {
            let v = self
                .versions
                .get(n)
                .ok_or_else(|| Error::not_found(format!("version '{n}'")))?;
            match v.delta.lookup_at(coords, history_cap) {
                Lookup::Value(r) => return Ok(Some(r)),
                Lookup::Deleted => return Ok(None),
                Lookup::Missing => {}
            }
            history_cap = v.parent_history;
            cursor = v.parent.as_deref();
        }
        // Reached the base array, capped at the branch-point history.
        Ok(self.base.lookup_at(coords, history_cap).into_option())
    }

    /// Reads a cell from the base array at its latest history.
    pub fn get_base(&self, coords: &[i64]) -> Option<Record> {
        self.base.get_latest(coords)
    }

    /// Depth of the delta chain from `name` to the base.
    pub fn chain_depth(&self, name: &str) -> Result<usize> {
        let mut depth = 0;
        let mut cursor = Some(name);
        while let Some(n) = cursor {
            let v = self
                .versions
                .get(n)
                .ok_or_else(|| Error::not_found(format!("version '{n}'")))?;
            depth += 1;
            cursor = v.parent.as_deref();
        }
        Ok(depth)
    }

    /// Bytes consumed by one version's delta — the §2.11 "essentially no
    /// space" claim measured by experiment E5.
    pub fn delta_bytes(&self, name: &str) -> Result<usize> {
        Ok(self
            .versions
            .get(name)
            .ok_or_else(|| Error::not_found(format!("version '{name}'")))?
            .delta
            .byte_size())
    }

    /// Number of delta cells recorded by one version.
    pub fn delta_cells(&self, name: &str) -> Result<usize> {
        Ok(self
            .versions
            .get(name)
            .ok_or_else(|| Error::not_found(format!("version '{name}'")))?
            .delta
            .delta_count())
    }

    /// Total bytes: base plus all deltas.
    pub fn total_bytes(&self) -> usize {
        self.base.byte_size()
            + self
                .versions
                .values()
                .map(|v| v.delta.byte_size())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{record, ScalarType, Value};

    fn tree() -> VersionTree {
        let schema = SchemaBuilder::new("Sat")
            .attr("v", ScalarType::Float64)
            .dim("I", 8)
            .dim("J", 8)
            .build()
            .unwrap();
        let mut t = VersionTree::new(schema).unwrap();
        // Base load: v = I*10 + J.
        let mut txn = Transaction::new();
        for i in 1..=8i64 {
            for j in 1..=8i64 {
                txn.put(&[i, j], record([Value::from((i * 10 + j) as f64)]));
            }
        }
        t.base_mut().commit(txn).unwrap();
        t
    }

    #[test]
    fn fresh_version_reads_identical_to_parent() {
        let mut t = tree();
        t.create_version("study", None).unwrap();
        assert_eq!(
            t.get("study", &[3, 4]).unwrap(),
            Some(vec![Value::from(34.0)])
        );
        // "the new array is empty": zero delta cells.
        assert_eq!(t.delta_cells("study").unwrap(), 0);
    }

    #[test]
    fn version_modifications_do_not_touch_base() {
        let mut t = tree();
        t.create_version("study", None).unwrap();
        let mut txn = Transaction::new();
        txn.put(&[3, 4], record([Value::from(999.0)]));
        t.commit("study", txn).unwrap();
        assert_eq!(
            t.get("study", &[3, 4]).unwrap(),
            Some(vec![Value::from(999.0)])
        );
        assert_eq!(t.get_base(&[3, 4]), Some(vec![Value::from(34.0)]));
        // Unmodified cells still read through to base.
        assert_eq!(
            t.get("study", &[1, 1]).unwrap(),
            Some(vec![Value::from(11.0)])
        );
    }

    #[test]
    fn version_snapshot_isolated_from_later_base_updates() {
        let mut t = tree();
        t.create_version("study", None).unwrap();
        // Base moves on after the version was created.
        t.base_mut()
            .commit_put(&[1, 1], record([Value::from(-1.0)]))
            .unwrap();
        // The version still sees the time-T value.
        assert_eq!(
            t.get("study", &[1, 1]).unwrap(),
            Some(vec![Value::from(11.0)])
        );
        assert_eq!(t.get_base(&[1, 1]), Some(vec![Value::from(-1.0)]));
    }

    #[test]
    fn version_tree_chains() {
        let mut t = tree();
        t.create_version("a", None).unwrap();
        let mut txn = Transaction::new();
        txn.put(&[1, 1], record([Value::from(100.0)]));
        t.commit("a", txn).unwrap();
        t.create_version("b", Some("a")).unwrap();
        let mut txn = Transaction::new();
        txn.put(&[2, 2], record([Value::from(200.0)]));
        t.commit("b", txn).unwrap();

        // b sees its own delta, a's delta, and the base, in that order.
        assert_eq!(t.get("b", &[2, 2]).unwrap(), Some(vec![Value::from(200.0)]));
        assert_eq!(t.get("b", &[1, 1]).unwrap(), Some(vec![Value::from(100.0)]));
        assert_eq!(t.get("b", &[5, 5]).unwrap(), Some(vec![Value::from(55.0)]));
        // a does not see b's delta.
        assert_eq!(t.get("a", &[2, 2]).unwrap(), Some(vec![Value::from(22.0)]));
        assert_eq!(t.chain_depth("b").unwrap(), 2);
        assert_eq!(t.parent_of("b").unwrap(), Some("a"));
        assert_eq!(t.parent_of("a").unwrap(), None);
    }

    #[test]
    fn sibling_versions_are_independent() {
        let mut t = tree();
        t.create_version("x", None).unwrap();
        t.create_version("y", None).unwrap();
        let mut txn = Transaction::new();
        txn.put(&[1, 1], record([Value::from(-5.0)]));
        t.commit("x", txn).unwrap();
        assert_eq!(t.get("y", &[1, 1]).unwrap(), Some(vec![Value::from(11.0)]));
    }

    #[test]
    fn deletes_in_versions_mask_parent() {
        let mut t = tree();
        t.create_version("v", None).unwrap();
        let mut txn = Transaction::new();
        txn.delete(&[1, 1]);
        t.commit("v", txn).unwrap();
        assert_eq!(t.get("v", &[1, 1]).unwrap(), None);
        assert!(t.get_base(&[1, 1]).is_some());
    }

    #[test]
    fn duplicate_and_missing_names_rejected() {
        let mut t = tree();
        t.create_version("v", None).unwrap();
        assert!(t.create_version("v", None).is_err());
        assert!(t.create_version("w", Some("nope")).is_err());
        assert!(t.get("nope", &[1, 1]).is_err());
        assert!(t.parent_of("nope").is_err());
    }

    #[test]
    fn delta_space_is_proportional_to_modifications() {
        let mut t = tree();
        t.create_version("small", None).unwrap();
        let mut txn = Transaction::new();
        txn.put(&[1, 1], record([Value::from(0.0)]));
        t.commit("small", txn).unwrap();
        let small = t.delta_bytes("small").unwrap();
        let base = t.base().byte_size();
        // One modified cell out of 64: the delta is far smaller than the
        // base (E5's "essentially no space").
        assert!(small * 4 < base, "delta {small} bytes vs base {base} bytes");
    }
}
