//! Array schemas: the paper's `define ArrayType ({name = Type-1}) ({dname})`
//! statement (§2.1).
//!
//! An array type has a list of named, typed attributes (the cell record) and
//! a list of named integer dimensions. Dimensions run from 1 to a
//! high-water mark `N`, or are unbounded (`*`) and "grow without
//! restriction". Updatable arrays (§2.5) carry an implicit trailing
//! `history` dimension.

use crate::error::{Error, Result};
use crate::value::ScalarType;
use std::fmt;
use std::sync::Arc;

/// Name reserved for the implicit history dimension of updatable arrays.
pub const HISTORY_DIM: &str = "history";

/// The type of one attribute: a scalar or a nested array type.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrType {
    /// A scalar attribute.
    Scalar(ScalarType),
    /// A nested array attribute (§2.1 nested array model; used e.g. by the
    /// eBay clickstream schema of §2.14 where each time-series cell embeds
    /// the array of surfaced search results).
    Nested(Arc<ArraySchema>),
}

impl AttrType {
    /// Scalar view.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            AttrType::Scalar(t) => Some(*t),
            AttrType::Nested(_) => None,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Scalar(t) => write!(f, "{t}"),
            AttrType::Nested(s) => write!(f, "array<{}>", s.name()),
        }
    }
}

/// One attribute definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeDef {
    /// Attribute name, unique within the schema.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
    /// Whether NULLs are allowed (Filter output always is; see §2.2.2).
    pub nullable: bool,
}

impl AttributeDef {
    /// A nullable scalar attribute.
    pub fn scalar(name: impl Into<String>, ty: ScalarType) -> Self {
        AttributeDef {
            name: name.into(),
            ty: AttrType::Scalar(ty),
            nullable: true,
        }
    }

    /// A nullable nested-array attribute.
    pub fn nested(name: impl Into<String>, schema: Arc<ArraySchema>) -> Self {
        AttributeDef {
            name: name.into(),
            ty: AttrType::Nested(schema),
            nullable: true,
        }
    }
}

/// One dimension definition.
///
/// Dimensions are integer-valued, named, and run from 1 to `upper`
/// inclusive; `upper = None` is the paper's `*` (unbounded). `chunk_len` is
/// the stride used to break the dimension into storage chunks (§2.8's
/// "rectangular buckets, defined by a stride in each dimension").
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionDef {
    /// Dimension name, unique within the schema.
    pub name: String,
    /// High-water mark `N`; `None` means unbounded (`*`).
    pub upper: Option<i64>,
    /// Chunk stride along this dimension.
    pub chunk_len: i64,
}

/// Default chunk stride when a schema does not specify one.
pub const DEFAULT_CHUNK_LEN: i64 = 64;

impl DimensionDef {
    /// A bounded dimension `1..=upper` with the default chunk stride
    /// (clamped so tiny arrays use a single chunk).
    pub fn bounded(name: impl Into<String>, upper: i64) -> Self {
        DimensionDef {
            name: name.into(),
            upper: Some(upper),
            chunk_len: DEFAULT_CHUNK_LEN.min(upper.max(1)),
        }
    }

    /// An unbounded dimension (`*`).
    pub fn unbounded(name: impl Into<String>) -> Self {
        DimensionDef {
            name: name.into(),
            upper: None,
            chunk_len: DEFAULT_CHUNK_LEN,
        }
    }

    /// Overrides the chunk stride.
    pub fn with_chunk(mut self, chunk_len: i64) -> Self {
        assert!(chunk_len > 0, "chunk stride must be positive");
        self.chunk_len = chunk_len;
        self
    }

    /// True if this dimension is unbounded.
    pub fn is_unbounded(&self) -> bool {
        self.upper.is_none()
    }
}

/// An array schema: named attributes + named dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySchema {
    name: String,
    attrs: Vec<AttributeDef>,
    dims: Vec<DimensionDef>,
    updatable: bool,
}

impl ArraySchema {
    /// Creates a schema, validating name uniqueness and non-emptiness.
    pub fn new(
        name: impl Into<String>,
        attrs: Vec<AttributeDef>,
        dims: Vec<DimensionDef>,
    ) -> Result<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(Error::schema("array name must not be empty"));
        }
        if attrs.is_empty() {
            return Err(Error::schema(format!("array '{name}' has no attributes")));
        }
        if dims.is_empty() {
            return Err(Error::schema(format!("array '{name}' has no dimensions")));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &attrs {
            if !seen.insert(a.name.clone()) {
                return Err(Error::schema(format!("duplicate attribute '{}'", a.name)));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for d in &dims {
            if !seen.insert(d.name.clone()) {
                return Err(Error::schema(format!("duplicate dimension '{}'", d.name)));
            }
            if let Some(u) = d.upper {
                if u < 1 {
                    return Err(Error::dimension(format!(
                        "dimension '{}' upper bound {u} must be >= 1",
                        d.name
                    )));
                }
            }
        }
        Ok(ArraySchema {
            name,
            attrs,
            dims,
            updatable: false,
        })
    }

    /// Declares the array updatable (§2.5): appends the implicit unbounded
    /// `history` dimension if not already present.
    pub fn updatable(mut self) -> Result<Self> {
        if self.updatable {
            return Ok(self);
        }
        if self.dims.iter().any(|d| d.name == HISTORY_DIM) {
            // The user already declared history explicitly, like the paper's
            // `Remote_2 (…) (I, J, history)` example.
            self.updatable = true;
            return Ok(self);
        }
        self.dims
            .push(DimensionDef::unbounded(HISTORY_DIM).with_chunk(1));
        self.updatable = true;
        Ok(self)
    }

    /// Schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the schema (used by `create ... as Type`).
    pub fn renamed(&self, name: impl Into<String>) -> ArraySchema {
        let mut s = self.clone();
        s.name = name.into();
        s
    }

    /// Attribute definitions.
    pub fn attrs(&self) -> &[AttributeDef] {
        &self.attrs
    }

    /// Dimension definitions.
    pub fn dims(&self) -> &[DimensionDef] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Whether the array was declared updatable.
    pub fn is_updatable(&self) -> bool {
        self.updatable
    }

    /// Index of an attribute by name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Index of a dimension by name.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Attribute lookup returning an error for unknown names.
    pub fn require_attr(&self, name: &str) -> Result<usize> {
        self.attr_index(name)
            .ok_or_else(|| Error::not_found(format!("attribute '{name}' in array '{}'", self.name)))
    }

    /// Dimension lookup returning an error for unknown names.
    pub fn require_dim(&self, name: &str) -> Result<usize> {
        self.dim_index(name)
            .ok_or_else(|| Error::not_found(format!("dimension '{name}' in array '{}'", self.name)))
    }

    /// Instantiates this type with concrete bounds, like the paper's
    /// `create My_remote as Remote [1024, 1024]`; `None` entries keep `*`.
    pub fn instantiate(
        &self,
        name: impl Into<String>,
        bounds: &[Option<i64>],
    ) -> Result<ArraySchema> {
        if bounds.len() != self.dims.len() {
            return Err(Error::dimension(format!(
                "create: got {} bounds for {} dimensions",
                bounds.len(),
                self.dims.len()
            )));
        }
        let mut s = self.renamed(name);
        for (d, b) in s.dims.iter_mut().zip(bounds) {
            if let Some(u) = b {
                if *u < 1 {
                    return Err(Error::dimension(format!(
                        "bound {u} for dimension '{}' must be >= 1",
                        d.name
                    )));
                }
                d.upper = Some(*u);
                d.chunk_len = d.chunk_len.min(*u);
            } else {
                d.upper = None;
            }
        }
        Ok(s)
    }

    /// Total number of cells for a fully bounded schema.
    pub fn cell_count(&self) -> Option<u64> {
        self.dims
            .iter()
            .map(|d| d.upper.map(|u| u as u64))
            .product()
    }

    /// True if two schemas have identical attribute lists (names + types),
    /// the compatibility requirement for `Concat`.
    pub fn attrs_compatible(&self, other: &ArraySchema) -> bool {
        self.attrs.len() == other.attrs.len()
            && self
                .attrs
                .iter()
                .zip(other.attrs.iter())
                .all(|(a, b)| a.name == b.name && a.ty == b.ty)
    }
}

impl fmt::Display for ArraySchema {
    /// Renders in the paper's `define` syntax:
    /// `define Remote (s1 = float, s2 = float, s3 = float) (I, J)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "define ")?;
        if self.updatable {
            write!(f, "updatable ")?;
        }
        write!(f, "{} (", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", a.name, a.ty)?;
        }
        write!(f, ") (")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match d.upper {
                Some(u) => write!(f, "{}=1:{}", d.name, u)?,
                None => write!(f, "{}=1:*", d.name)?,
            }
        }
        write!(f, ")")
    }
}

/// Fluent builder for schemas, the Rust-binding counterpart of `define`.
///
/// ```
/// use scidb_core::schema::SchemaBuilder;
/// use scidb_core::value::ScalarType;
/// let remote = SchemaBuilder::new("Remote")
///     .attr("s1", ScalarType::Float64)
///     .attr("s2", ScalarType::Float64)
///     .attr("s3", ScalarType::Float64)
///     .dim("I", 1024)
///     .dim("J", 1024)
///     .build()
///     .unwrap();
/// assert_eq!(remote.rank(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<AttributeDef>,
    dims: Vec<DimensionDef>,
    updatable: bool,
}

impl SchemaBuilder {
    /// Starts a builder for an array type called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a scalar attribute.
    pub fn attr(mut self, name: impl Into<String>, ty: ScalarType) -> Self {
        self.attrs.push(AttributeDef::scalar(name, ty));
        self
    }

    /// Adds a nested-array attribute.
    pub fn nested_attr(mut self, name: impl Into<String>, schema: Arc<ArraySchema>) -> Self {
        self.attrs.push(AttributeDef::nested(name, schema));
        self
    }

    /// Adds a bounded dimension `1..=upper`.
    pub fn dim(mut self, name: impl Into<String>, upper: i64) -> Self {
        self.dims.push(DimensionDef::bounded(name, upper));
        self
    }

    /// Adds a bounded dimension with an explicit chunk stride.
    pub fn dim_chunked(mut self, name: impl Into<String>, upper: i64, chunk: i64) -> Self {
        self.dims
            .push(DimensionDef::bounded(name, upper).with_chunk(chunk));
        self
    }

    /// Adds an unbounded (`*`) dimension.
    pub fn dim_unbounded(mut self, name: impl Into<String>) -> Self {
        self.dims.push(DimensionDef::unbounded(name));
        self
    }

    /// Marks the array updatable (§2.5); the implicit `history` dimension is
    /// appended at `build` time.
    pub fn updatable(mut self) -> Self {
        self.updatable = true;
        self
    }

    /// Validates and builds the schema.
    pub fn build(self) -> Result<ArraySchema> {
        let s = ArraySchema::new(self.name, self.attrs, self.dims)?;
        if self.updatable {
            s.updatable()
        } else {
            Ok(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn remote() -> ArraySchema {
        SchemaBuilder::new("Remote")
            .attr("s1", ScalarType::Float64)
            .attr("s2", ScalarType::Float64)
            .attr("s3", ScalarType::Float64)
            .dim("I", 1024)
            .dim("J", 1024)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_papers_remote_example() {
        let s = remote();
        assert_eq!(s.name(), "Remote");
        assert_eq!(s.attrs().len(), 3);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.cell_count(), Some(1024 * 1024));
        assert_eq!(
            s.to_string(),
            "define Remote (s1 = float, s2 = float, s3 = float) (I=1:1024, J=1:1024)"
        );
    }

    #[test]
    fn unbounded_create_like_paper() {
        // create My_remote_2 as Remote [*, *]
        let s = remote().instantiate("My_remote_2", &[None, None]).unwrap();
        assert!(s.dims()[0].is_unbounded() && s.dims()[1].is_unbounded());
        assert_eq!(s.cell_count(), None);
        assert_eq!(s.name(), "My_remote_2");
    }

    #[test]
    fn instantiate_checks_rank() {
        let err = remote().instantiate("x", &[Some(10)]).unwrap_err();
        assert!(matches!(err, Error::Dimension(_)));
    }

    #[test]
    fn updatable_appends_history_dimension() {
        let s = SchemaBuilder::new("Remote_2")
            .attr("s1", ScalarType::Float64)
            .dim("I", 4)
            .dim("J", 4)
            .updatable()
            .build()
            .unwrap();
        assert!(s.is_updatable());
        assert_eq!(s.rank(), 3);
        let h = &s.dims()[2];
        assert_eq!(h.name, HISTORY_DIM);
        assert!(h.is_unbounded());
    }

    #[test]
    fn explicit_history_dimension_is_respected() {
        // define updatable Remote_2 (…) (I, J, history) — paper §2.5.
        let s = ArraySchema::new(
            "Remote_2",
            vec![AttributeDef::scalar("s1", ScalarType::Float64)],
            vec![
                DimensionDef::bounded("I", 4),
                DimensionDef::bounded("J", 4),
                DimensionDef::unbounded(HISTORY_DIM),
            ],
        )
        .unwrap()
        .updatable()
        .unwrap();
        assert_eq!(s.rank(), 3, "no duplicate history dim");
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(SchemaBuilder::new("A")
            .attr("x", ScalarType::Int64)
            .attr("x", ScalarType::Int64)
            .dim("I", 2)
            .build()
            .is_err());
        assert!(SchemaBuilder::new("A")
            .attr("x", ScalarType::Int64)
            .dim("I", 2)
            .dim("I", 2)
            .build()
            .is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(ArraySchema::new("A", vec![], vec![DimensionDef::bounded("I", 1)]).is_err());
        assert!(ArraySchema::new(
            "A",
            vec![AttributeDef::scalar("x", ScalarType::Int64)],
            vec![]
        )
        .is_err());
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(SchemaBuilder::new("A")
            .attr("x", ScalarType::Int64)
            .dim("I", 0)
            .build()
            .is_err());
        assert!(remote().instantiate("x", &[Some(0), Some(1)]).is_err());
    }

    #[test]
    fn attr_and_dim_lookup() {
        let s = remote();
        assert_eq!(s.attr_index("s2"), Some(1));
        assert_eq!(s.dim_index("J"), Some(1));
        assert!(s.require_attr("nope").is_err());
        assert!(s.require_dim("nope").is_err());
    }

    #[test]
    fn attrs_compatible_checks_names_and_types() {
        let a = remote();
        let b = remote().renamed("Other");
        assert!(a.attrs_compatible(&b));
        let c = SchemaBuilder::new("C")
            .attr("s1", ScalarType::Int64)
            .attr("s2", ScalarType::Float64)
            .attr("s3", ScalarType::Float64)
            .dim("I", 2)
            .build()
            .unwrap();
        assert!(!a.attrs_compatible(&c));
    }

    #[test]
    fn nested_attribute_displays() {
        let inner = Arc::new(
            SchemaBuilder::new("results")
                .attr("item", ScalarType::Int64)
                .dim("rank", 10)
                .build()
                .unwrap(),
        );
        let s = SchemaBuilder::new("Session")
            .attr("ts", ScalarType::Int64)
            .nested_attr("results", inner)
            .dim_unbounded("t")
            .build()
            .unwrap();
        assert!(s.to_string().contains("results = array<results>"));
    }

    #[test]
    fn chunk_len_clamped_to_small_arrays() {
        let s = SchemaBuilder::new("A")
            .attr("x", ScalarType::Int64)
            .dim("I", 4)
            .build()
            .unwrap();
        assert_eq!(s.dims()[0].chunk_len, 4);
    }
}
