//! Chunks: the in-memory unit of array storage.
//!
//! An array is decomposed into rectangular chunks ("buckets, defined by a
//! stride in each dimension", §2.8). A chunk's representation is
//! **adaptive**:
//!
//! * it starts *sparse* — a sorted map from row-major offset to record — so
//!   that delta layers (history versions §2.5, named-version deltas §2.11)
//!   holding a handful of cells consume "essentially no space";
//! * once a quarter of its cells are present it *densifies* into columnar
//!   storage — one typed vector per attribute with presence/NULL bitmaps —
//!   which is what makes the array-native engine fast relative to the
//!   tuple-at-a-time relational simulation (experiment E1).
//!
//! The `uncertain float` column keeps the §2.13 promise that "arrays with the
//! same error bounds for all values will require negligible extra space": the
//! sigma store starts empty, records a single constant on first write, and is
//! upgraded to a per-cell vector only when a different sigma is written.

use crate::array::Array;
use crate::bitvec::BitVec;
use crate::error::{Error, Result};
use crate::geometry::HyperRect;
use crate::schema::AttrType;
use crate::uncertain::Uncertain;
use crate::value::{Record, Scalar, ScalarType, Value};
use std::collections::BTreeMap;

/// Sigma storage for an uncertain column: constant-σ (compact) or per-cell.
#[derive(Debug, Clone, PartialEq)]
pub enum SigmaStore {
    /// No sigma written yet.
    Empty,
    /// All cells share one sigma. Upgraded lazily on a divergent write.
    Constant(f64),
    /// Per-cell sigmas.
    PerCell(Vec<f64>),
}

impl SigmaStore {
    /// Sigma of cell `idx`.
    pub fn get(&self, idx: usize) -> f64 {
        match self {
            SigmaStore::Empty => 0.0,
            SigmaStore::Constant(s) => *s,
            SigmaStore::PerCell(v) => v[idx],
        }
    }

    /// True if still in a compact (constant or empty) representation.
    pub fn is_constant(&self) -> bool {
        !matches!(self, SigmaStore::PerCell(_))
    }

    fn set(&mut self, idx: usize, sigma: f64, len: usize) {
        match self {
            SigmaStore::Empty => *self = SigmaStore::Constant(sigma),
            SigmaStore::Constant(s) if *s == sigma => {}
            SigmaStore::Constant(s) => {
                let mut v = vec![*s; len];
                v[idx] = sigma;
                *self = SigmaStore::PerCell(v);
            }
            SigmaStore::PerCell(v) => v[idx] = sigma,
        }
    }

    /// Approximate heap size in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            SigmaStore::Empty | SigmaStore::Constant(_) => 8,
            SigmaStore::PerCell(v) => v.len() * 8,
        }
    }
}

/// A typed column of attribute values within one dense chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Cell values (defaulted where null/empty).
        data: Vec<i64>,
        /// NULL bitmap (1 = null).
        nulls: BitVec,
    },
    /// 64-bit floats.
    Float64 {
        /// Cell values (defaulted where null/empty).
        data: Vec<f64>,
        /// NULL bitmap (1 = null).
        nulls: BitVec,
    },
    /// Booleans.
    Bool {
        /// Cell values.
        data: Vec<bool>,
        /// NULL bitmap.
        nulls: BitVec,
    },
    /// Strings.
    Str {
        /// Cell values.
        data: Vec<String>,
        /// NULL bitmap.
        nulls: BitVec,
    },
    /// Uncertain floats with compact constant-σ storage (§2.13).
    Uncertain {
        /// Means.
        means: Vec<f64>,
        /// Sigma store.
        sigmas: SigmaStore,
        /// NULL bitmap.
        nulls: BitVec,
    },
    /// Nested arrays; `None` is NULL.
    Nested {
        /// Cell values.
        data: Vec<Option<Array>>,
    },
}

impl Column {
    /// Allocates a column of `len` cells for the given attribute type, all
    /// NULL.
    pub fn new(ty: &AttrType, len: usize) -> Column {
        match ty {
            AttrType::Scalar(ScalarType::Int64) => Column::Int64 {
                data: vec![0; len],
                nulls: BitVec::filled(len, true),
            },
            AttrType::Scalar(ScalarType::Float64) => Column::Float64 {
                data: vec![0.0; len],
                nulls: BitVec::filled(len, true),
            },
            AttrType::Scalar(ScalarType::Bool) => Column::Bool {
                data: vec![false; len],
                nulls: BitVec::filled(len, true),
            },
            AttrType::Scalar(ScalarType::String) => Column::Str {
                data: vec![String::new(); len],
                nulls: BitVec::filled(len, true),
            },
            AttrType::Scalar(ScalarType::UncertainFloat64) => Column::Uncertain {
                means: vec![0.0; len],
                sigmas: SigmaStore::Empty,
                nulls: BitVec::filled(len, true),
            },
            AttrType::Nested(_) => Column::Nested {
                data: vec![None; len],
            },
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Uncertain { means, .. } => means.len(),
            Column::Nested { data } => data.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if cell `idx` is NULL.
    pub fn is_null(&self, idx: usize) -> bool {
        match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. }
            | Column::Uncertain { nulls, .. } => nulls.get(idx),
            Column::Nested { data } => data[idx].is_none(),
        }
    }

    /// Reads cell `idx` as a [`Value`].
    pub fn get(&self, idx: usize) -> Value {
        if self.is_null(idx) {
            return Value::Null;
        }
        match self {
            Column::Int64 { data, .. } => Value::Scalar(Scalar::Int64(data[idx])),
            Column::Float64 { data, .. } => Value::Scalar(Scalar::Float64(data[idx])),
            Column::Bool { data, .. } => Value::Scalar(Scalar::Bool(data[idx])),
            Column::Str { data, .. } => Value::Scalar(Scalar::String(data[idx].clone())),
            Column::Uncertain { means, sigmas, .. } => Value::Scalar(Scalar::Uncertain(
                Uncertain::new(means[idx], sigmas.get(idx)),
            )),
            Column::Nested { data } => Value::Array(Box::new(data[idx].clone().unwrap())),
        }
    }

    /// Fast numeric read without allocating a `Value`.
    #[inline]
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if self.is_null(idx) {
            return None;
        }
        match self {
            Column::Int64 { data, .. } => Some(data[idx] as f64),
            Column::Float64 { data, .. } => Some(data[idx]),
            Column::Uncertain { means, .. } => Some(means[idx]),
            _ => None,
        }
    }

    /// Writes cell `idx`.
    pub fn set(&mut self, idx: usize, value: &Value) -> Result<()> {
        match value {
            Value::Null => {
                self.set_null(idx);
                Ok(())
            }
            Value::Scalar(s) => self.set_scalar(idx, s),
            Value::Array(a) => match self {
                Column::Nested { data } => {
                    data[idx] = Some((**a).clone());
                    Ok(())
                }
                _ => Err(Error::schema("nested array written to scalar column")),
            },
        }
    }

    fn set_scalar(&mut self, idx: usize, s: &Scalar) -> Result<()> {
        match (&mut *self, s) {
            (Column::Int64 { data, nulls }, Scalar::Int64(v)) => {
                data[idx] = *v;
                nulls.set(idx, false);
            }
            (Column::Float64 { data, nulls }, Scalar::Float64(v)) => {
                data[idx] = *v;
                nulls.set(idx, false);
            }
            // Ints widen into float columns for convenience.
            (Column::Float64 { data, nulls }, Scalar::Int64(v)) => {
                data[idx] = *v as f64;
                nulls.set(idx, false);
            }
            (Column::Bool { data, nulls }, Scalar::Bool(v)) => {
                data[idx] = *v;
                nulls.set(idx, false);
            }
            (Column::Str { data, nulls }, Scalar::String(v)) => {
                data[idx] = v.clone();
                nulls.set(idx, false);
            }
            (
                Column::Uncertain {
                    means,
                    sigmas,
                    nulls,
                },
                s,
            ) => {
                let u = s
                    .as_uncertain()
                    .ok_or_else(|| Error::schema("non-numeric written to uncertain column"))?;
                let len = means.len();
                means[idx] = u.mean;
                sigmas.set(idx, u.sigma, len);
                nulls.set(idx, false);
            }
            (col, s) => {
                return Err(Error::schema(format!(
                    "type mismatch: {} written to {} column",
                    s.scalar_type(),
                    col.type_name()
                )))
            }
        }
        Ok(())
    }

    fn set_null(&mut self, idx: usize) {
        match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. }
            | Column::Uncertain { nulls, .. } => nulls.set(idx, true),
            Column::Nested { data } => data[idx] = None,
        }
    }

    /// Marks every set bit of `mask` NULL — one word-level bitmap union
    /// for scalar columns. The batch filter's selection-vector write-back.
    pub fn null_out(&mut self, mask: &BitVec) {
        match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Bool { nulls, .. }
            | Column::Str { nulls, .. }
            | Column::Uncertain { nulls, .. } => nulls.union_with(mask),
            Column::Nested { data } => {
                for idx in mask.iter_ones() {
                    data[idx] = None;
                }
            }
        }
    }

    /// Human-readable column type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            Column::Int64 { .. } => "int",
            Column::Float64 { .. } => "float",
            Column::Bool { .. } => "bool",
            Column::Str { .. } => "string",
            Column::Uncertain { .. } => "uncertain float",
            Column::Nested { .. } => "array",
        }
    }

    /// Approximate heap footprint in bytes (used by experiment E7 and the
    /// bulk loader's memory budget).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64 { data, nulls } => data.len() * 8 + nulls.byte_size(),
            Column::Float64 { data, nulls } => data.len() * 8 + nulls.byte_size(),
            Column::Bool { data, nulls } => data.len() + nulls.byte_size(),
            Column::Str { data, nulls } => {
                data.iter().map(|s| s.len() + 24).sum::<usize>() + nulls.byte_size()
            }
            Column::Uncertain {
                means,
                sigmas,
                nulls,
            } => means.len() * 8 + sigmas.byte_size() + nulls.byte_size(),
            Column::Nested { data } => data
                .iter()
                .map(|a| a.as_ref().map_or(8, |arr| arr.byte_size() + 8))
                .sum(),
        }
    }
}

/// Approximate heap footprint of one sparse-stored value.
fn value_byte_size(v: &Value) -> usize {
    match v {
        Value::Null => 8,
        Value::Scalar(Scalar::String(s)) => 24 + s.len(),
        Value::Scalar(Scalar::Uncertain(_)) => 16,
        Value::Scalar(_) => 16,
        Value::Array(a) => 8 + a.byte_size(),
    }
}

/// Dense fill fraction (1/DENSIFY_DIVISOR of capacity) at which a sparse
/// chunk converts to columnar storage.
const DENSIFY_DIVISOR: usize = 4;

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted map: row-major offset → record. Sorted keys give row-major
    /// iteration for free.
    Sparse(BTreeMap<usize, Record>),
    /// Columnar storage with a presence bitmap.
    Dense {
        present: BitVec,
        columns: Vec<Column>,
    },
}

/// One rectangular chunk of an array (adaptive sparse/dense representation).
#[derive(Debug, Clone)]
pub struct Chunk {
    rect: HyperRect,
    attr_types: Vec<AttrType>,
    repr: Repr,
}

impl PartialEq for Chunk {
    /// Logical equality: same rectangle and same visible cells, regardless
    /// of representation.
    fn eq(&self, other: &Self) -> bool {
        if self.rect != other.rect || self.present_count() != other.present_count() {
            return false;
        }
        self.iter_present()
            .all(|(_, idx)| self.record_at(idx) == other.record_at(idx) && other.present_at(idx))
    }
}

impl Chunk {
    /// Allocates an all-empty chunk covering `rect` with the given attribute
    /// types. Starts sparse; densifies automatically as cells are written.
    pub fn new(rect: HyperRect, attr_types: &[AttrType]) -> Chunk {
        Chunk {
            rect,
            attr_types: attr_types.to_vec(),
            repr: Repr::Sparse(BTreeMap::new()),
        }
    }

    /// Allocates a chunk directly in dense columnar form (used by bulk
    /// paths that know they will fill it).
    pub fn new_dense(rect: HyperRect, attr_types: &[AttrType]) -> Chunk {
        let len = rect.volume() as usize;
        Chunk {
            rect,
            attr_types: attr_types.to_vec(),
            repr: Repr::Dense {
                present: BitVec::filled(len, false),
                columns: attr_types.iter().map(|t| Column::new(t, len)).collect(),
            },
        }
    }

    /// The chunk's covering rectangle.
    pub fn rect(&self) -> &HyperRect {
        &self.rect
    }

    /// The attribute types.
    pub fn attr_types(&self) -> &[AttrType] {
        &self.attr_types
    }

    /// Number of addressable cells (present or not).
    pub fn capacity(&self) -> usize {
        self.rect.volume() as usize
    }

    /// Number of present (non-empty) cells.
    pub fn present_count(&self) -> usize {
        match &self.repr {
            Repr::Sparse(cells) => cells.len(),
            Repr::Dense { present, .. } => present.count_ones(),
        }
    }

    /// True if no cell is present.
    pub fn is_empty(&self) -> bool {
        self.present_count() == 0
    }

    /// True if the chunk has densified to columnar storage.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Columnar view, available once dense (`None` while sparse). Used by
    /// vectorized kernels and the sigma-compactness accounting.
    pub fn columns(&self) -> Option<&[Column]> {
        match &self.repr {
            Repr::Dense { columns, .. } => Some(columns),
            Repr::Sparse(_) => None,
        }
    }

    /// The presence bitmap, available once dense.
    pub fn present_bitmap(&self) -> Option<&BitVec> {
        match &self.repr {
            Repr::Dense { present, .. } => Some(present),
            Repr::Sparse(_) => None,
        }
    }

    /// Assembles a dense chunk directly from parts — the zero-copy path
    /// used by positional (vectorized) kernels such as the aligned
    /// structural join.
    pub fn from_parts(
        rect: HyperRect,
        attr_types: Vec<AttrType>,
        present: BitVec,
        columns: Vec<Column>,
    ) -> Result<Chunk> {
        let len = rect.volume() as usize;
        if present.len() != len {
            return Err(Error::schema("presence bitmap length mismatch"));
        }
        if columns.len() != attr_types.len() {
            return Err(Error::schema("column count mismatch"));
        }
        for c in &columns {
            if c.len() != len {
                return Err(Error::schema("column length mismatch"));
            }
        }
        Ok(Chunk {
            rect,
            attr_types,
            repr: Repr::Dense { present, columns },
        })
    }

    /// Forces densification (bulk paths call this before columnar kernels).
    pub fn densify(&mut self) {
        if self.is_dense() {
            return;
        }
        let len = self.capacity();
        let mut present = BitVec::filled(len, false);
        let mut columns: Vec<Column> = self
            .attr_types
            .iter()
            .map(|t| Column::new(t, len))
            .collect();
        if let Repr::Sparse(cells) = &self.repr {
            for (&idx, rec) in cells {
                present.set(idx, true);
                for (col, val) in columns.iter_mut().zip(rec) {
                    // Types were validated on insert.
                    col.set(idx, val).expect("validated on insert");
                }
            }
        }
        self.repr = Repr::Dense { present, columns };
    }

    /// Row-major offset of `coords` within this chunk.
    #[inline]
    pub fn offset_of(&self, coords: &[i64]) -> usize {
        self.rect.linearize(coords)
    }

    /// True if the cell at `coords` is present.
    pub fn cell_present(&self, coords: &[i64]) -> bool {
        self.rect.contains(coords) && self.present_at(self.offset_of(coords))
    }

    /// True if the cell at linear offset `idx` is present.
    #[inline]
    pub fn present_at(&self, idx: usize) -> bool {
        match &self.repr {
            Repr::Sparse(cells) => cells.contains_key(&idx),
            Repr::Dense { present, .. } => present.get(idx),
        }
    }

    /// Reads the full record at linear offset `idx`; all-NULL placeholder
    /// if the cell is empty (callers check `present_at` first).
    pub fn record_at(&self, idx: usize) -> Record {
        match &self.repr {
            Repr::Sparse(cells) => cells
                .get(&idx)
                .cloned()
                .unwrap_or_else(|| vec![Value::Null; self.attr_types.len()]),
            Repr::Dense { columns, .. } => columns.iter().map(|c| c.get(idx)).collect(),
        }
    }

    /// Reads one attribute at linear offset `idx` (NULL if empty).
    pub fn value_at(&self, attr: usize, idx: usize) -> Value {
        match &self.repr {
            Repr::Sparse(cells) => cells.get(&idx).map_or(Value::Null, |rec| rec[attr].clone()),
            Repr::Dense { columns, .. } => columns[attr].get(idx),
        }
    }

    /// Borrows a nested-array attribute at a linear offset without cloning
    /// it (`None` when empty, NULL, or not a nested column) — the fast path
    /// for the §2.14 clickstream analyses.
    pub fn nested_at(&self, attr: usize, idx: usize) -> Option<&Array> {
        match &self.repr {
            Repr::Sparse(cells) => cells.get(&idx).and_then(|rec| rec[attr].as_array()),
            Repr::Dense { present, columns } => {
                if !present.get(idx) {
                    return None;
                }
                match &columns[attr] {
                    Column::Nested { data } => data[idx].as_ref(),
                    _ => None,
                }
            }
        }
    }

    /// Fast numeric read of one attribute at a linear offset; `None` when
    /// the cell is empty or the value NULL/non-numeric.
    #[inline]
    pub fn value_f64(&self, attr: usize, idx: usize) -> Option<f64> {
        match &self.repr {
            Repr::Sparse(cells) => cells.get(&idx).and_then(|rec| rec[attr].as_f64()),
            Repr::Dense { present, columns } => {
                if !present.get(idx) {
                    return None;
                }
                columns[attr].get_f64(idx)
            }
        }
    }

    /// Reads the full record at `coords`, or `None` if the cell is empty.
    pub fn get_record(&self, coords: &[i64]) -> Option<Record> {
        let idx = self.offset_of(coords);
        self.present_at(idx).then(|| self.record_at(idx))
    }

    /// Reads one attribute at `coords`, or `None` if the cell is empty.
    pub fn get_value(&self, attr: usize, coords: &[i64]) -> Option<Value> {
        let idx = self.offset_of(coords);
        self.present_at(idx).then(|| self.value_at(attr, idx))
    }

    fn validate_record(&self, record: &Record) -> Result<()> {
        if record.len() != self.attr_types.len() {
            return Err(Error::schema(format!(
                "record has {} values for {} attributes",
                record.len(),
                self.attr_types.len()
            )));
        }
        for (v, ty) in record.iter().zip(&self.attr_types) {
            match (v, ty) {
                (Value::Null, _) => {}
                (Value::Scalar(s), AttrType::Scalar(t)) => {
                    let ok = match (s.scalar_type(), t) {
                        (a, b) if a == *b => true,
                        // Ints widen into float and uncertain columns.
                        (ScalarType::Int64, ScalarType::Float64) => true,
                        (ScalarType::Int64, ScalarType::UncertainFloat64) => true,
                        (ScalarType::Float64, ScalarType::UncertainFloat64) => true,
                        _ => false,
                    };
                    if !ok {
                        return Err(Error::schema(format!(
                            "type mismatch: {} written to {t} column",
                            s.scalar_type()
                        )));
                    }
                }
                (Value::Array(_), AttrType::Nested(_)) => {}
                (Value::Scalar(s), AttrType::Nested(_)) => {
                    return Err(Error::schema(format!(
                        "scalar {s} written to nested-array column"
                    )))
                }
                (Value::Array(_), AttrType::Scalar(_)) => {
                    return Err(Error::schema("nested array written to scalar column"))
                }
            }
        }
        Ok(())
    }

    fn maybe_densify(&mut self) {
        let threshold = (self.capacity() / DENSIFY_DIVISOR).max(1);
        if let Repr::Sparse(cells) = &self.repr {
            if cells.len() >= threshold {
                self.densify();
            }
        }
    }

    /// Normalizes widening conversions (int→float/uncertain) for sparse
    /// storage so reads are type-stable across representations.
    fn normalize(&self, record: &Record) -> Record {
        record
            .iter()
            .zip(&self.attr_types)
            .map(|(v, ty)| match (v, ty) {
                (Value::Scalar(Scalar::Int64(x)), AttrType::Scalar(ScalarType::Float64)) => {
                    Value::from(*x as f64)
                }
                (
                    Value::Scalar(Scalar::Int64(x)),
                    AttrType::Scalar(ScalarType::UncertainFloat64),
                ) => Value::from(Uncertain::exact(*x as f64)),
                (
                    Value::Scalar(Scalar::Float64(x)),
                    AttrType::Scalar(ScalarType::UncertainFloat64),
                ) => Value::from(Uncertain::exact(*x)),
                _ => v.clone(),
            })
            .collect()
    }

    /// Writes a record at `coords`, marking the cell present.
    pub fn set_record(&mut self, coords: &[i64], record: &Record) -> Result<()> {
        self.validate_record(record)?;
        let idx = self.offset_of(coords);
        match &mut self.repr {
            Repr::Sparse(_) => {
                let normalized = self.normalize(record);
                if let Repr::Sparse(cells) = &mut self.repr {
                    cells.insert(idx, normalized);
                }
                self.maybe_densify();
            }
            Repr::Dense { present, columns } => {
                for (col, val) in columns.iter_mut().zip(record) {
                    col.set(idx, val)?;
                }
                present.set(idx, true);
            }
        }
        Ok(())
    }

    /// Writes one attribute at `coords`, marking the cell present (other
    /// attributes default to NULL for a previously-empty cell).
    pub fn set_value(&mut self, attr: usize, coords: &[i64], value: &Value) -> Result<()> {
        let mut rec = self
            .get_record(coords)
            .unwrap_or_else(|| vec![Value::Null; self.attr_types.len()]);
        rec[attr] = value.clone();
        self.set_record(coords, &rec)
    }

    /// Marks a cell empty again (used by delta deletion flags, §2.5).
    pub fn clear_cell(&mut self, coords: &[i64]) {
        let idx = self.offset_of(coords);
        match &mut self.repr {
            Repr::Sparse(cells) => {
                cells.remove(&idx);
            }
            Repr::Dense { present, .. } => present.set(idx, false),
        }
    }

    /// Iterates `(coords, linear offset)` of present cells in row-major
    /// order.
    pub fn iter_present(&self) -> Box<dyn Iterator<Item = (crate::geometry::Coords, usize)> + '_> {
        match &self.repr {
            Repr::Sparse(cells) => Box::new(
                cells
                    .keys()
                    .map(move |&idx| (self.rect.delinearize(idx), idx)),
            ),
            Repr::Dense { present, .. } => Box::new(
                present
                    .iter_ones()
                    .map(move |idx| (self.rect.delinearize(idx), idx)),
            ),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match &self.repr {
            Repr::Sparse(cells) => cells
                .values()
                .map(|rec| 16 + rec.iter().map(value_byte_size).sum::<usize>())
                .sum(),
            Repr::Dense { present, columns } => {
                present.byte_size() + columns.iter().map(Column::byte_size).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::HyperRect;
    use crate::value::record;

    fn rect2() -> HyperRect {
        HyperRect::new(vec![1, 1], vec![4, 4]).unwrap()
    }

    fn float_chunk() -> Chunk {
        Chunk::new(rect2(), &[AttrType::Scalar(ScalarType::Float64)])
    }

    #[test]
    fn new_chunk_is_empty_and_sparse() {
        let c = float_chunk();
        assert_eq!(c.capacity(), 16);
        assert_eq!(c.present_count(), 0);
        assert!(c.is_empty());
        assert!(!c.is_dense());
        assert_eq!(c.get_record(&[1, 1]), None);
    }

    #[test]
    fn set_get_record_roundtrip_sparse() {
        let mut c = float_chunk();
        c.set_record(&[2, 3], &record([Value::from(1.5)])).unwrap();
        assert_eq!(c.present_count(), 1);
        assert!(!c.is_dense());
        assert_eq!(c.get_record(&[2, 3]), Some(vec![Value::from(1.5)]));
        assert!(c.cell_present(&[2, 3]));
        assert!(!c.cell_present(&[3, 2]));
    }

    #[test]
    fn densifies_at_quarter_fill() {
        let mut c = float_chunk();
        for j in 1..=4i64 {
            c.set_record(&[1, j], &record([Value::from(j as f64)]))
                .unwrap();
        }
        assert!(c.is_dense(), "16-cell chunk densifies at 4 cells");
        // Contents survive densification.
        for j in 1..=4i64 {
            assert_eq!(c.get_record(&[1, j]), Some(vec![Value::from(j as f64)]));
        }
        assert_eq!(c.present_count(), 4);
    }

    #[test]
    fn dense_and_sparse_compare_equal() {
        let mut sparse = float_chunk();
        sparse
            .set_record(&[2, 2], &record([Value::from(9.0)]))
            .unwrap();
        let mut dense = float_chunk();
        dense.densify();
        dense
            .set_record(&[2, 2], &record([Value::from(9.0)]))
            .unwrap();
        assert_eq!(sparse, dense);
        dense
            .set_record(&[3, 3], &record([Value::from(1.0)]))
            .unwrap();
        assert_ne!(sparse, dense);
    }

    #[test]
    fn record_arity_checked() {
        let mut c = float_chunk();
        assert!(c
            .set_record(&[1, 1], &record([Value::from(1.0), Value::from(2.0)]))
            .is_err());
    }

    #[test]
    fn type_mismatch_rejected_in_both_representations() {
        let mut c = float_chunk();
        assert!(matches!(
            c.set_record(&[1, 1], &record([Value::from("oops")])),
            Err(Error::Schema(_))
        ));
        c.densify();
        assert!(matches!(
            c.set_record(&[1, 1], &record([Value::from("oops")])),
            Err(Error::Schema(_))
        ));
    }

    #[test]
    fn int_widens_to_float_column_in_both_representations() {
        let mut c = float_chunk();
        c.set_record(&[1, 1], &record([Value::from(3i64)])).unwrap();
        assert_eq!(c.get_value(0, &[1, 1]), Some(Value::from(3.0)));
        c.densify();
        assert_eq!(c.get_value(0, &[1, 1]), Some(Value::from(3.0)));
    }

    #[test]
    fn null_value_is_present_but_null() {
        let mut c = float_chunk();
        c.set_record(&[1, 1], &record([Value::Null])).unwrap();
        assert!(c.cell_present(&[1, 1]));
        assert_eq!(c.get_value(0, &[1, 1]), Some(Value::Null));
        assert_eq!(c.value_f64(0, c.offset_of(&[1, 1])), None);
    }

    #[test]
    fn clear_cell_marks_empty() {
        let mut c = float_chunk();
        c.set_record(&[1, 1], &record([Value::from(1.0)])).unwrap();
        c.clear_cell(&[1, 1]);
        assert!(!c.cell_present(&[1, 1]));
        c.densify();
        c.set_record(&[1, 1], &record([Value::from(1.0)])).unwrap();
        c.clear_cell(&[1, 1]);
        assert!(!c.cell_present(&[1, 1]));
    }

    #[test]
    fn iter_present_row_major_both_representations() {
        let mut c = float_chunk();
        c.set_record(&[2, 1], &record([Value::from(1.0)])).unwrap();
        c.set_record(&[1, 4], &record([Value::from(2.0)])).unwrap();
        let coords: Vec<_> = c.iter_present().map(|(co, _)| co).collect();
        assert_eq!(coords, vec![vec![1, 4], vec![2, 1]]);
        c.densify();
        let coords: Vec<_> = c.iter_present().map(|(co, _)| co).collect();
        assert_eq!(coords, vec![vec![1, 4], vec![2, 1]]);
    }

    #[test]
    fn set_value_preserves_other_attributes() {
        let mut c = Chunk::new(
            rect2(),
            &[
                AttrType::Scalar(ScalarType::Float64),
                AttrType::Scalar(ScalarType::Int64),
            ],
        );
        c.set_value(0, &[1, 1], &Value::from(1.5)).unwrap();
        c.set_value(1, &[1, 1], &Value::from(7i64)).unwrap();
        assert_eq!(
            c.get_record(&[1, 1]),
            Some(vec![Value::from(1.5), Value::from(7i64)])
        );
    }

    #[test]
    fn sparse_chunk_is_small() {
        // One cell in a 4096-cell chunk: sparse bytes ≪ dense bytes.
        let big = HyperRect::new(vec![1, 1], vec![64, 64]).unwrap();
        let mut sparse = Chunk::new(big.clone(), &[AttrType::Scalar(ScalarType::Float64)]);
        sparse
            .set_record(&[1, 1], &record([Value::from(1.0)]))
            .unwrap();
        let mut dense = Chunk::new_dense(big, &[AttrType::Scalar(ScalarType::Float64)]);
        dense
            .set_record(&[1, 1], &record([Value::from(1.0)]))
            .unwrap();
        assert!(sparse.byte_size() * 50 < dense.byte_size());
    }

    #[test]
    fn uncertain_constant_sigma_stays_compact() {
        let mut c = Chunk::new(rect2(), &[AttrType::Scalar(ScalarType::UncertainFloat64)]);
        for coords in rect2().iter_cells() {
            c.set_record(
                &coords,
                &record([Value::from(Uncertain::new(coords[0] as f64, 0.5))]),
            )
            .unwrap();
        }
        assert!(c.is_dense());
        match &c.columns().unwrap()[0] {
            Column::Uncertain { sigmas, .. } => assert!(sigmas.is_constant()),
            _ => panic!("wrong column type"),
        }
        // A divergent sigma upgrades the store.
        c.set_record(&[1, 1], &record([Value::from(Uncertain::new(0.0, 0.9))]))
            .unwrap();
        match &c.columns().unwrap()[0] {
            Column::Uncertain { sigmas, .. } => {
                assert!(!sigmas.is_constant());
                assert_eq!(sigmas.get(c.offset_of(&[1, 1])), 0.9);
                assert_eq!(sigmas.get(c.offset_of(&[1, 2])), 0.5);
            }
            _ => panic!("wrong column type"),
        }
    }

    #[test]
    fn constant_sigma_byte_size_is_smaller() {
        let mk = |varying: bool| {
            let mut c = Chunk::new(rect2(), &[AttrType::Scalar(ScalarType::UncertainFloat64)]);
            for (i, coords) in rect2().iter_cells().enumerate() {
                let sigma = if varying { i as f64 + 1.0 } else { 0.5 };
                c.set_record(&coords, &record([Value::from(Uncertain::new(1.0, sigma))]))
                    .unwrap();
            }
            assert!(c.is_dense());
            c.byte_size()
        };
        assert!(mk(false) < mk(true));
    }

    #[test]
    fn bool_and_string_columns() {
        let mut c = Chunk::new(
            rect2(),
            &[
                AttrType::Scalar(ScalarType::Bool),
                AttrType::Scalar(ScalarType::String),
            ],
        );
        c.set_record(&[1, 1], &record([Value::from(true), Value::from("hi")]))
            .unwrap();
        assert_eq!(
            c.get_record(&[1, 1]),
            Some(vec![Value::from(true), Value::from("hi")])
        );
        c.densify();
        assert_eq!(
            c.get_record(&[1, 1]),
            Some(vec![Value::from(true), Value::from("hi")])
        );
    }
}
