//! A compact bit vector used for per-chunk presence ("EMPTY") and per-column
//! NULL bitmaps.
//!
//! The engine distinguishes *empty* cells (never written, or outside a shape
//! function's ragged bounds) from *NULL* cells (written, but the paper's
//! `Filter` operator, §2.2.2, replaces non-qualifying values with NULL).
//! Both states are tracked with this structure.

/// A growable bit vector backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let word = if value { u64::MAX } else { 0 };
        let n_words = len.div_ceil(64);
        let mut bv = BitVec {
            words: vec![word; n_words],
            len,
        };
        bv.mask_tail();
        bv
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.count_ones() == 0
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// In-place union with another bit vector of the same length.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with another bit vector of the same length.
    pub fn intersect_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Serialized byte size (used by the storage layer's accounting).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw words, for codec use.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds from raw words and a length, for codec use.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(words.len() == len.div_ceil(64), "word count mismatch");
        let mut bv = BitVec { words, len };
        bv.mask_tail();
        bv
    }

    /// Clears bits beyond `len` in the last word so `count_ones` is exact.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_true_has_all_bits() {
        let bv = BitVec::filled(100, true);
        assert_eq!(bv.len(), 100);
        assert_eq!(bv.count_ones(), 100);
        assert!(bv.all());
        assert!(bv.get(0) && bv.get(63) && bv.get(64) && bv.get(99));
    }

    #[test]
    fn filled_false_has_no_bits() {
        let bv = BitVec::filled(70, false);
        assert!(bv.none());
        assert!(!bv.get(69));
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut bv = BitVec::filled(130, false);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
        assert!(!bv.get(64));
    }

    #[test]
    fn push_grows_vector() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        assert_eq!(bv.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn iter_ones_yields_set_indices() {
        let mut bv = BitVec::filled(150, false);
        for i in [3usize, 64, 65, 149] {
            bv.set(i, true);
        }
        let ones: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 149]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitVec::filled(10, false);
        let mut b = BitVec::filled(10, false);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::filled(5, false).get(5);
    }

    #[test]
    fn from_words_masks_tail() {
        let bv = BitVec::from_words(vec![u64::MAX], 10);
        assert_eq!(bv.count_ones(), 10);
    }
}
