//! Ranked lock wrappers for the engine crates.
//!
//! Every lock in `scidb-core`, `scidb-storage`, `scidb-query`, and
//! `scidb-server` is one of these wrappers, constructed with a compile-time
//! [`Rank`] from the single [`ranks`] registry (owned by `scidb-obs`, the
//! dependency root, and re-exported here). Acquisitions are validated by
//! the debug-only per-thread [`witness`]: acquiring a rank that is not
//! strictly above every rank the thread already holds panics immediately
//! (tests/debug builds only — release builds keep just two relaxed
//! counters), so a lock-order inversion fails a test instead of deadlocking
//! a server. See DESIGN.md §13 for the rank table and how to add a lock.
//!
//! The wrappers are parking_lot-backed (no poisoning, mapped guards for
//! borrowing one field of the locked value). `cargo xtask analyze` rule R7
//! forbids raw `Mutex`/`RwLock`/`Condvar` outside the `sync.rs` wrapper
//! modules and statically checks the acquisition graph against the rank
//! table; R8 forbids blocking calls while a `CATALOG`-or-higher write guard
//! is live.

use parking_lot::{
    MappedRwLockReadGuard, MappedRwLockWriteGuard, Mutex, MutexGuard, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

pub use scidb_obs::sync::{ranks, witness, LockStats, Rank};

/// Cumulative witness counters (acquisitions / contended acquisitions),
/// shared with `scidb-obs`. Surfaced by the `server_load` bench.
pub fn lock_stats() -> LockStats {
    witness::stats()
}

/// A rank-checked mutual-exclusion lock (parking_lot-backed).
#[derive(Debug)]
pub struct OrderedMutex<T> {
    rank: Rank,
    raw: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// A mutex holding `value` at `rank`.
    pub const fn new(rank: Rank, value: T) -> Self {
        OrderedMutex {
            rank,
            raw: Mutex::new(value),
        }
    }

    /// This lock's rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquires the lock, witness-checked (panics on rank inversion in
    /// debug builds *before* blocking, so inversions never deadlock).
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        witness::check(self.rank, false);
        let (guard, contended) = match self.raw.try_lock() {
            Some(g) => (g, false),
            None => (self.raw.lock(), true),
        };
        witness::acquired(self.rank, contended);
        OrderedMutexGuard {
            raw: Some(guard),
            rank: self.rank,
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.raw.into_inner()
    }
}

/// Guard for [`OrderedMutex`]; releases the witness entry on drop.
pub struct OrderedMutexGuard<'a, T> {
    raw: Option<MutexGuard<'a, T>>,
    rank: Rank,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.raw {
            Some(g) => g,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.raw {
            Some(g) => g,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.raw.take().is_some() {
            witness::release(self.rank);
        }
    }
}

/// A rank-checked reader-writer lock (parking_lot-backed) with mapped
/// guards ([`OrderedRwLockReadGuard::map`] and friends) for handing out
/// borrows of one field of the locked value.
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    rank: Rank,
    raw: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// An rwlock holding `value` at `rank`.
    pub const fn new(rank: Rank, value: T) -> Self {
        OrderedRwLock {
            rank,
            raw: RwLock::new(value),
        }
    }

    /// This lock's rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquires a shared read guard, witness-checked.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        witness::check(self.rank, false);
        let (guard, contended) = match self.raw.try_read() {
            Some(g) => (g, false),
            None => (self.raw.read(), true),
        };
        witness::acquired(self.rank, contended);
        OrderedRwLockReadGuard {
            raw: Some(guard),
            rank: self.rank,
        }
    }

    /// Acquires the exclusive write guard, witness-checked.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        witness::check(self.rank, false);
        let (guard, contended) = match self.raw.try_write() {
            Some(g) => (g, false),
            None => (self.raw.write(), true),
        };
        witness::acquired(self.rank, contended);
        OrderedRwLockWriteGuard {
            raw: Some(guard),
            rank: self.rank,
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.raw.into_inner()
    }
}

macro_rules! guard_impls {
    ($guard:ident, $raw:ident $(, $mut_:tt)?) => {
        impl<T> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                match &self.raw {
                    Some(g) => g,
                    None => unreachable!("guard accessed after release"),
                }
            }
        }

        $(
            impl<T> std::ops::DerefMut for $guard<'_, T> {
                fn deref_mut(&mut self) -> &$mut_ T {
                    match &mut self.raw {
                        Some(g) => g,
                        None => unreachable!("guard accessed after release"),
                    }
                }
            }
        )?

        impl<T> Drop for $guard<'_, T> {
            fn drop(&mut self) {
                if self.raw.take().is_some() {
                    witness::release(self.rank);
                }
            }
        }
    };
}

/// Shared guard for [`OrderedRwLock`]; releases the witness entry on drop.
pub struct OrderedRwLockReadGuard<'a, T> {
    raw: Option<RwLockReadGuard<'a, T>>,
    rank: Rank,
}
guard_impls!(OrderedRwLockReadGuard, RwLockReadGuard);

/// Exclusive guard for [`OrderedRwLock`]; releases the witness entry on
/// drop.
pub struct OrderedRwLockWriteGuard<'a, T> {
    raw: Option<RwLockWriteGuard<'a, T>>,
    rank: Rank,
}
guard_impls!(OrderedRwLockWriteGuard, RwLockWriteGuard, mut);

/// A read guard mapped to one component of the locked value. The
/// underlying lock (and its witness entry) stays held until this drops.
pub struct OrderedMappedReadGuard<'a, T: ?Sized> {
    raw: Option<MappedRwLockReadGuard<'a, T>>,
    rank: Rank,
}

/// A write guard mapped to one component of the locked value. The
/// underlying lock (and its witness entry) stays held until this drops.
pub struct OrderedMappedWriteGuard<'a, T: ?Sized> {
    raw: Option<MappedRwLockWriteGuard<'a, T>>,
    rank: Rank,
}

impl<T: ?Sized> std::ops::Deref for OrderedMappedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.raw {
            Some(g) => g,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T: ?Sized> Drop for OrderedMappedReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.raw.take().is_some() {
            witness::release(self.rank);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedMappedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.raw {
            Some(g) => g,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMappedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.raw {
            Some(g) => g,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T: ?Sized> Drop for OrderedMappedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.raw.take().is_some() {
            witness::release(self.rank);
        }
    }
}

impl<'a, T> OrderedRwLockReadGuard<'a, T> {
    /// Maps the guard to a component of the locked value.
    pub fn map<U: ?Sized>(
        mut guard: Self,
        f: impl FnOnce(&T) -> &U,
    ) -> OrderedMappedReadGuard<'a, U> {
        let rank = guard.rank;
        let raw = match guard.raw.take() {
            Some(g) => g,
            None => unreachable!("guard mapped after release"),
        };
        // `guard` drops with `raw == None`, keeping the witness entry; the
        // mapped guard inherits responsibility for releasing it.
        OrderedMappedReadGuard {
            raw: Some(RwLockReadGuard::map(raw, f)),
            rank,
        }
    }

    /// Maps the guard to a component selected by `f`, or returns the
    /// original guard when `f` declines.
    // analyze: allow(R4, guard-mapping idiom — the Err arm returns the original guard, not an error)
    pub fn try_map<U: ?Sized>(
        mut guard: Self,
        f: impl FnOnce(&T) -> Option<&U>,
    ) -> Result<OrderedMappedReadGuard<'a, U>, Self> {
        let rank = guard.rank;
        let raw = match guard.raw.take() {
            Some(g) => g,
            None => unreachable!("guard mapped after release"),
        };
        match RwLockReadGuard::try_map(raw, f) {
            Ok(m) => Ok(OrderedMappedReadGuard { raw: Some(m), rank }),
            Err(g) => {
                guard.raw = Some(g);
                Err(guard)
            }
        }
    }
}

impl<'a, T> OrderedRwLockWriteGuard<'a, T> {
    /// Maps the guard to a component of the locked value.
    pub fn map<U: ?Sized>(
        mut guard: Self,
        f: impl FnOnce(&mut T) -> &mut U,
    ) -> OrderedMappedWriteGuard<'a, U> {
        let rank = guard.rank;
        let raw = match guard.raw.take() {
            Some(g) => g,
            None => unreachable!("guard mapped after release"),
        };
        OrderedMappedWriteGuard {
            raw: Some(RwLockWriteGuard::map(raw, f)),
            rank,
        }
    }

    /// Maps the guard to a component selected by `f`, or returns the
    /// original guard when `f` declines.
    // analyze: allow(R4, guard-mapping idiom — the Err arm returns the original guard, not an error)
    pub fn try_map<U: ?Sized>(
        mut guard: Self,
        f: impl FnOnce(&mut T) -> Option<&mut U>,
    ) -> Result<OrderedMappedWriteGuard<'a, U>, Self> {
        let rank = guard.rank;
        let raw = match guard.raw.take() {
            Some(g) => g,
            None => unreachable!("guard mapped after release"),
        };
        match RwLockWriteGuard::try_map(raw, f) {
            Ok(m) => Ok(OrderedMappedWriteGuard { raw: Some(m), rank }),
            Err(g) => {
                guard.raw = Some(g);
                Err(guard)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_and_witness_roundtrip() {
        let l = OrderedRwLock::new(ranks::CATALOG, 5u32);
        {
            let r = l.read();
            assert_eq!(*r, 5);
            assert_eq!(witness::held(), vec!["CATALOG"]);
        }
        {
            let mut w = l.write();
            *w += 1;
        }
        assert_eq!(*l.read(), 6);
        assert!(witness::held().is_empty());
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mapped_guards_keep_the_witness_entry_until_drop() {
        struct S {
            a: u8,
            b: u8,
        }
        let l = OrderedRwLock::new(ranks::CATALOG, S { a: 1, b: 2 });
        let m = OrderedRwLockReadGuard::map(l.read(), |s| &s.a);
        assert_eq!(*m, 1);
        assert_eq!(witness::held(), vec!["CATALOG"]);
        drop(m);
        assert!(witness::held().is_empty());

        let mut w = OrderedRwLockWriteGuard::map(l.write(), |s| &mut s.b);
        *w = 9;
        assert_eq!(witness::held(), vec!["CATALOG"]);
        drop(w);
        assert!(witness::held().is_empty());
        assert_eq!(l.read().b, 9);
    }

    #[test]
    fn try_map_declining_returns_the_guard_still_held() {
        let l = OrderedRwLock::new(ranks::CATALOG, 3u8);
        let g = l.read();
        let back = match OrderedRwLockReadGuard::try_map(g, |_| None::<&u8>) {
            Err(g) => g,
            Ok(_) => panic!("mapping must decline"),
        };
        assert_eq!(witness::held(), vec!["CATALOG"], "guard survives Err");
        assert_eq!(*back, 3);
        drop(back);
        assert!(witness::held().is_empty());

        let w = l.write();
        assert!(OrderedRwLockWriteGuard::try_map(w, |v| Some(v)).is_ok());
        assert!(witness::held().is_empty(), "mapped guard dropped above");
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn rank_inversion_panics_across_wrapper_flavors() {
        // Same inversion shape as the R7 seeded fixture: take the higher
        // rank first, then request a lower one.
        let cache = OrderedRwLock::new(ranks::RESULT_CACHE, ());
        let catalog = OrderedRwLock::new(ranks::CATALOG, ());
        let _held = cache.read();
        let _bad = catalog.read();
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn mutex_under_same_rank_mutex_panics() {
        let a = OrderedMutex::new(ranks::STORAGE, ());
        let b = OrderedMutex::new(ranks::STORAGE, ());
        let _g = a.lock();
        let _bad = b.lock();
    }

    #[test]
    fn contended_acquisitions_are_counted() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let l = OrderedMutex::new(ranks::STORAGE, 0u64);
        let attempting = AtomicBool::new(false);
        let before = lock_stats();
        std::thread::scope(|s| {
            let held = l.lock();
            s.spawn(|| {
                attempting.store(true, Ordering::SeqCst);
                let mut g = l.lock(); // probe fails: main thread holds it
                *g += 1;
            });
            while !attempting.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // Give the spawned thread time to run its try_lock probe
            // against the still-held mutex before we release it.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
        });
        let after = lock_stats();
        assert_eq!(*l.lock(), 1);
        assert!(after.acquisitions > before.acquisitions);
        assert!(after.contended > before.contended, "{after:?} {before:?}");
    }
}
