//! Error type shared across the SciDB-rs engine.

use std::fmt;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
///
/// The variants mirror the failure classes the CIDR'09 paper implies:
/// schema violations (the array model is strongly typed), dimension errors
/// (addressing outside the high-water mark, malformed predicates such as the
/// illegal `X = Y` subsample predicate of §2.2.1), registry lookups for
/// user-defined functions (§2.3), and storage-layer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A schema-level violation: wrong attribute count/type, duplicate names,
    /// incompatible schemas for an operator.
    Schema(String),
    /// A dimension-level violation: rank mismatch, coordinate out of bounds,
    /// unbounded dimension where a bounded one is required, illegal
    /// cross-dimension predicate.
    Dimension(String),
    /// A named object (array, function, aggregate, enhancement, shape
    /// function, type) was not found in the catalog or registry.
    NotFound(String),
    /// A named object already exists.
    AlreadyExists(String),
    /// A runtime evaluation error (type mismatch in an expression, division
    /// by zero under strict mode, bad aggregate state).
    Eval(String),
    /// Malformed query text or parse tree.
    Parse(String),
    /// Storage-layer failure (corrupt bucket, codec error, I/O).
    Storage(String),
    /// The operation is valid but unsupported in this build.
    Unsupported(String),
    /// Every replica of some data is gone: a distributed read touched cells
    /// whose home node and all surviving copies are down (§2.11–§2.13 grid
    /// failure model). Carries the number of cells that could not be served
    /// so callers can report partial-loss blast radius.
    Unavailable {
        /// Cells for which no live copy exists.
        lost_cells: usize,
    },
}

impl Error {
    /// Convenience constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error::Schema(msg.into())
    }

    /// Convenience constructor for dimension errors.
    pub fn dimension(msg: impl Into<String>) -> Self {
        Error::Dimension(msg.into())
    }

    /// Convenience constructor for not-found errors.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Convenience constructor for evaluation errors.
    pub fn eval(msg: impl Into<String>) -> Self {
        Error::Eval(msg.into())
    }

    /// Convenience constructor for parse errors.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Convenience constructor for storage errors.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Convenience constructor for unavailable-data errors.
    pub fn unavailable(lost_cells: usize) -> Self {
        Error::Unavailable { lost_cells }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Dimension(m) => write!(f, "dimension error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Unavailable { lost_cells } => {
                write!(f, "unavailable: {lost_cells} cell(s) have no live replica")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        assert_eq!(Error::schema("bad").to_string(), "schema error: bad");
        assert_eq!(Error::dimension("bad").to_string(), "dimension error: bad");
        assert_eq!(Error::not_found("x").to_string(), "not found: x");
        assert_eq!(
            Error::AlreadyExists("x".into()).to_string(),
            "already exists: x"
        );
        assert_eq!(Error::eval("bad").to_string(), "evaluation error: bad");
        assert_eq!(Error::parse("bad").to_string(), "parse error: bad");
        assert_eq!(Error::storage("bad").to_string(), "storage error: bad");
        assert_eq!(Error::Unsupported("x".into()).to_string(), "unsupported: x");
        assert_eq!(
            Error::unavailable(3).to_string(),
            "unavailable: 3 cell(s) have no live replica"
        );
    }

    #[test]
    fn io_error_converts_to_storage() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Storage(_)));
    }
}
