//! Error type shared across the SciDB-rs engine.

use std::fmt;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
///
/// The variants mirror the failure classes the CIDR'09 paper implies:
/// schema violations (the array model is strongly typed), dimension errors
/// (addressing outside the high-water mark, malformed predicates such as the
/// illegal `X = Y` subsample predicate of §2.2.1), registry lookups for
/// user-defined functions (§2.3), and storage-layer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A schema-level violation: wrong attribute count/type, duplicate names,
    /// incompatible schemas for an operator.
    Schema(String),
    /// A dimension-level violation: rank mismatch, coordinate out of bounds,
    /// unbounded dimension where a bounded one is required, illegal
    /// cross-dimension predicate.
    Dimension(String),
    /// A named object (array, function, aggregate, enhancement, shape
    /// function, type) was not found in the catalog or registry.
    NotFound(String),
    /// A named object already exists.
    AlreadyExists(String),
    /// A runtime evaluation error (type mismatch in an expression, division
    /// by zero under strict mode, bad aggregate state).
    Eval(String),
    /// Malformed query text or parse tree.
    Parse(String),
    /// Storage-layer failure (corrupt bucket, codec error, I/O).
    Storage(String),
    /// The operation is valid but unsupported in this build.
    Unsupported(String),
    /// Every replica of some data is gone: a distributed read touched cells
    /// whose home node and all surviving copies are down (§2.11–§2.13 grid
    /// failure model). Carries the number of cells that could not be served
    /// so callers can report partial-loss blast radius.
    Unavailable {
        /// Cells for which no live copy exists.
        lost_cells: usize,
    },
    /// A client failed authentication during the server handshake.
    Auth(String),
    /// The server refused to admit the request: the global query queue is
    /// full or the session exceeded its in-flight limit.
    Admission(String),
    /// A malformed or out-of-order frame on the wire protocol.
    Protocol(String),
}

/// Wire-stable numeric code for each [`Error`] class.
///
/// Server error frames carry `code.as_u16()` so clients can dispatch on the
/// failure class without parsing message strings. The numeric values are a
/// wire-compatibility contract: existing values never change, and new
/// variants only ever append — hence `#[non_exhaustive]`, so clients must
/// keep a catch-all arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// See [`Error::Schema`].
    Schema,
    /// See [`Error::Dimension`].
    Dimension,
    /// See [`Error::NotFound`].
    NotFound,
    /// See [`Error::AlreadyExists`].
    AlreadyExists,
    /// See [`Error::Eval`].
    Eval,
    /// See [`Error::Parse`].
    Parse,
    /// See [`Error::Storage`].
    Storage,
    /// See [`Error::Unsupported`].
    Unsupported,
    /// See [`Error::Unavailable`].
    Unavailable,
    /// See [`Error::Auth`].
    Auth,
    /// See [`Error::Admission`].
    Admission,
    /// See [`Error::Protocol`].
    Protocol,
}

impl ErrorCode {
    /// All currently defined codes, in wire-value order.
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::Schema,
        ErrorCode::Dimension,
        ErrorCode::NotFound,
        ErrorCode::AlreadyExists,
        ErrorCode::Eval,
        ErrorCode::Parse,
        ErrorCode::Storage,
        ErrorCode::Unsupported,
        ErrorCode::Unavailable,
        ErrorCode::Auth,
        ErrorCode::Admission,
        ErrorCode::Protocol,
    ];

    /// The stable numeric value carried in server error frames.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Schema => 1,
            ErrorCode::Dimension => 2,
            ErrorCode::NotFound => 3,
            ErrorCode::AlreadyExists => 4,
            ErrorCode::Eval => 5,
            ErrorCode::Parse => 6,
            ErrorCode::Storage => 7,
            ErrorCode::Unsupported => 8,
            ErrorCode::Unavailable => 9,
            ErrorCode::Auth => 10,
            ErrorCode::Admission => 11,
            ErrorCode::Protocol => 12,
        }
    }

    /// Inverse of [`ErrorCode::as_u16`]; `None` for values this build does
    /// not know (a newer peer may send codes appended after this release).
    pub fn from_u16(v: u16) -> Option<Self> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_u16() == v)
    }

    /// Short stable mnemonic (used in logs and error frames).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Schema => "schema",
            ErrorCode::Dimension => "dimension",
            ErrorCode::NotFound => "not_found",
            ErrorCode::AlreadyExists => "already_exists",
            ErrorCode::Eval => "eval",
            ErrorCode::Parse => "parse",
            ErrorCode::Storage => "storage",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Auth => "auth",
            ErrorCode::Admission => "admission",
            ErrorCode::Protocol => "protocol",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Error {
    /// Convenience constructor for schema errors.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error::Schema(msg.into())
    }

    /// Convenience constructor for dimension errors.
    pub fn dimension(msg: impl Into<String>) -> Self {
        Error::Dimension(msg.into())
    }

    /// Convenience constructor for not-found errors.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Convenience constructor for evaluation errors.
    pub fn eval(msg: impl Into<String>) -> Self {
        Error::Eval(msg.into())
    }

    /// Convenience constructor for parse errors.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Convenience constructor for storage errors.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Convenience constructor for unavailable-data errors.
    pub fn unavailable(lost_cells: usize) -> Self {
        Error::Unavailable { lost_cells }
    }

    /// Convenience constructor for authentication errors.
    pub fn auth(msg: impl Into<String>) -> Self {
        Error::Auth(msg.into())
    }

    /// Convenience constructor for admission-control rejections.
    pub fn admission(msg: impl Into<String>) -> Self {
        Error::Admission(msg.into())
    }

    /// Convenience constructor for wire-protocol errors.
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }

    /// The wire-stable [`ErrorCode`] for this error's class.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Schema(_) => ErrorCode::Schema,
            Error::Dimension(_) => ErrorCode::Dimension,
            Error::NotFound(_) => ErrorCode::NotFound,
            Error::AlreadyExists(_) => ErrorCode::AlreadyExists,
            Error::Eval(_) => ErrorCode::Eval,
            Error::Parse(_) => ErrorCode::Parse,
            Error::Storage(_) => ErrorCode::Storage,
            Error::Unsupported(_) => ErrorCode::Unsupported,
            Error::Unavailable { .. } => ErrorCode::Unavailable,
            Error::Auth(_) => ErrorCode::Auth,
            Error::Admission(_) => ErrorCode::Admission,
            Error::Protocol(_) => ErrorCode::Protocol,
        }
    }

    /// Rebuild an error from a wire frame's `(code, message)` pair.
    ///
    /// The message is the bare detail string (what the convenience
    /// constructors take), not the `Display` rendering. Unknown codes from a
    /// newer peer degrade to [`Error::Protocol`] so the client still gets a
    /// typed error.
    pub fn from_wire(code: u16, msg: &str) -> Self {
        match ErrorCode::from_u16(code) {
            Some(ErrorCode::Schema) => Error::schema(msg),
            Some(ErrorCode::Dimension) => Error::dimension(msg),
            Some(ErrorCode::NotFound) => Error::not_found(msg),
            Some(ErrorCode::AlreadyExists) => Error::AlreadyExists(msg.into()),
            Some(ErrorCode::Eval) => Error::eval(msg),
            Some(ErrorCode::Parse) => Error::parse(msg),
            Some(ErrorCode::Storage) => Error::storage(msg),
            Some(ErrorCode::Unsupported) => Error::Unsupported(msg.into()),
            Some(ErrorCode::Unavailable) => Error::unavailable(msg.parse::<usize>().unwrap_or(0)),
            Some(ErrorCode::Auth) => Error::auth(msg),
            Some(ErrorCode::Admission) => Error::admission(msg),
            Some(ErrorCode::Protocol) | None => Error::protocol(msg),
        }
    }

    /// The bare detail string for the wire frame paired with
    /// [`Error::code`]; [`Error::from_wire`] is its inverse.
    pub fn wire_message(&self) -> String {
        match self {
            Error::Schema(m)
            | Error::Dimension(m)
            | Error::NotFound(m)
            | Error::AlreadyExists(m)
            | Error::Eval(m)
            | Error::Parse(m)
            | Error::Storage(m)
            | Error::Unsupported(m)
            | Error::Auth(m)
            | Error::Admission(m)
            | Error::Protocol(m) => m.clone(),
            Error::Unavailable { lost_cells } => lost_cells.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Dimension(m) => write!(f, "dimension error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Unavailable { lost_cells } => {
                write!(f, "unavailable: {lost_cells} cell(s) have no live replica")
            }
            Error::Auth(m) => write!(f, "authentication failed: {m}"),
            Error::Admission(m) => write!(f, "admission refused: {m}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        assert_eq!(Error::schema("bad").to_string(), "schema error: bad");
        assert_eq!(Error::dimension("bad").to_string(), "dimension error: bad");
        assert_eq!(Error::not_found("x").to_string(), "not found: x");
        assert_eq!(
            Error::AlreadyExists("x".into()).to_string(),
            "already exists: x"
        );
        assert_eq!(Error::eval("bad").to_string(), "evaluation error: bad");
        assert_eq!(Error::parse("bad").to_string(), "parse error: bad");
        assert_eq!(Error::storage("bad").to_string(), "storage error: bad");
        assert_eq!(Error::Unsupported("x".into()).to_string(), "unsupported: x");
        assert_eq!(
            Error::unavailable(3).to_string(),
            "unavailable: 3 cell(s) have no live replica"
        );
    }

    #[test]
    fn io_error_converts_to_storage() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Storage(_)));
    }

    #[test]
    fn error_code_u16_round_trips_every_variant() {
        for &code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        // Values are unique (the wire contract).
        let mut vals: Vec<u16> = ErrorCode::ALL.iter().map(|c| c.as_u16()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), ErrorCode::ALL.len());
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(u16::MAX), None);
    }

    #[test]
    fn error_wire_frame_round_trips_every_variant() {
        let all = vec![
            Error::schema("bad"),
            Error::dimension("bad"),
            Error::not_found("x"),
            Error::AlreadyExists("x".into()),
            Error::eval("bad"),
            Error::parse("bad"),
            Error::storage("bad"),
            Error::Unsupported("x".into()),
            Error::unavailable(3),
            Error::auth("denied"),
            Error::admission("queue full"),
            Error::protocol("short frame"),
        ];
        // One Error variant per ErrorCode, and every code is covered.
        assert_eq!(all.len(), ErrorCode::ALL.len());
        for e in all {
            let (code, msg) = (e.code().as_u16(), e.wire_message());
            assert_eq!(Error::from_wire(code, &msg), e);
        }
        // Unknown codes degrade to Protocol instead of panicking.
        assert!(matches!(
            Error::from_wire(9999, "future"),
            Error::Protocol(_)
        ));
    }
}
