//! # scidb-core
//!
//! The array data model and operator suite of SciDB-rs — a from-scratch Rust
//! reproduction of the system specified in *"Requirements for Science Data
//! Bases and SciDB"* (CIDR 2009).
//!
//! The crate provides:
//!
//! * the multi-dimensional, nested **array model** (§2.1): [`schema`],
//!   [`array`], [`chunk`], with columnar chunked storage;
//! * **enhanced arrays** — pseudo-coordinate systems via UDFs ([`enhance`]),
//!   and ragged boundaries via **shape functions** ([`shape`]);
//! * the **operator suite** (§2.2): structural operators (Subsample,
//!   Reshape, Sjoin, …) and content-dependent operators (Filter, Aggregate,
//!   Cjoin, Apply, Project) in [`ops`];
//! * Postgres-style **extendibility** (§2.3): user-defined functions,
//!   aggregates, and array operations in [`udf`] and [`registry`];
//! * **no-overwrite** updatable arrays with a history dimension (§2.5) in
//!   [`history`], and **named versions** (§2.11) in [`versions`];
//! * the **chunk-parallel execution context** ([`exec`]): a thread budget
//!   plus per-query metrics threaded through the executor into the
//!   chunk-separable operator kernels;
//! * **uncertainty** (§2.13) in [`uncertain`];
//! * a small **expression language** over cell attributes in [`expr`], used
//!   by Filter/Apply and by the query crate;
//! * the **ranked lock wrappers** ([`sync`]) every engine crate uses in
//!   place of raw primitives (see DESIGN.md §13).

#![warn(missing_docs)]

pub mod array;
pub mod bitvec;
pub mod chunk;
pub mod enhance;
pub mod error;
pub mod exec;
pub mod expr;
pub mod geometry;
pub mod history;
pub mod ops;
pub mod registry;
pub mod schema;
pub mod shape;
pub mod sync;
pub mod udf;
pub mod uncertain;
pub mod value;
pub mod versions;

pub use array::Array;
pub use error::{Error, ErrorCode, Result};
pub use exec::{ExecContext, OpMetrics, QueryMetrics};
pub use geometry::{Coords, HyperRect};
pub use schema::{ArraySchema, AttributeDef, DimensionDef, SchemaBuilder};
pub use uncertain::Uncertain;
pub use value::{Record, Scalar, ScalarType, Value};
