//! A small expression language over cell attributes and dimension values.
//!
//! Used by the content-dependent operators (§2.2.2): `Filter` takes "a
//! predicate P over the data values that are stored in the cells", `Apply`
//! computes new attribute values, and user-defined functions (§2.3) are
//! callable from expressions through the [`crate::registry::Registry`].
//!
//! Semantics:
//! * NULL propagates through arithmetic and comparisons (three-valued
//!   logic with Kleene AND/OR), matching the NULL cells produced by Filter.
//! * Arithmetic on `uncertain float` operands performs the §2.13
//!   error-propagating arithmetic automatically — the executor-level
//!   "interval arithmetic when combining uncertain elements".

use crate::error::{Error, Result};
use crate::registry::Registry;
use crate::schema::ArraySchema;
use crate::value::{Record, Scalar, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo (integers only).
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (Kleene).
    And,
    /// Logical OR (Kleene).
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT (Kleene).
    Not,
}

/// An expression over one cell: its attributes, its dimension coordinates,
/// constants, operators, and registered functions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An attribute of the cell record, by name.
    Attr(String),
    /// A dimension coordinate of the cell, by name.
    Dim(String),
    /// A literal.
    Const(Scalar),
    /// The NULL literal.
    Null,
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call of a registered scalar function (§2.3 extendibility).
    Func(String, Vec<Expr>),
    /// `x IS NULL`.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(name.into())
    }
    /// Dimension reference.
    pub fn dim(name: impl Into<String>) -> Expr {
        Expr::Dim(name.into())
    }
    /// Literal.
    pub fn lit(v: impl Into<Scalar>) -> Expr {
        Expr::Const(v.into())
    }
    /// Function call.
    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Func(name.into(), args)
    }
    /// Builder: `self + rhs`.
    #[allow(clippy::should_implement_trait)] // by-value builder DSL, not arithmetic
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }
    /// Builder: `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(rhs))
    }
    /// Builder: `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }
    /// Builder: `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Names of attributes referenced by the expression.
    pub fn referenced_attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Attr(n) = e {
                out.push(n.as_str());
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) | Expr::IsNull(e) => e.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Func(_, args) => args.iter().for_each(|a| a.walk(f)),
            _ => {}
        }
    }
}

/// Evaluation context: one cell of one array.
pub struct EvalContext<'a> {
    /// Schema of the array being scanned (for name resolution).
    pub schema: &'a ArraySchema,
    /// The cell's dimension coordinates.
    pub coords: &'a [i64],
    /// The cell's record.
    pub record: &'a Record,
    /// Function registry for `Expr::Func`; `None` disables UDF calls.
    pub registry: Option<&'a Registry>,
}

impl Expr {
    /// Evaluates against one cell.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> Result<Value> {
        match self {
            Expr::Const(s) => Ok(Value::Scalar(s.clone())),
            Expr::Null => Ok(Value::Null),
            Expr::Attr(name) => {
                let idx = ctx.schema.require_attr(name)?;
                Ok(ctx.record.get(idx).cloned().unwrap_or(Value::Null))
            }
            Expr::Dim(name) => {
                let idx = ctx.schema.require_dim(name)?;
                Ok(Value::from(ctx.coords[idx]))
            }
            Expr::IsNull(e) => Ok(Value::from(e.eval(ctx)?.is_null())),
            Expr::Unary(op, e) => {
                let v = e.eval(ctx)?;
                eval_unary(*op, v)
            }
            Expr::Binary(op, a, b) => {
                let va = a.eval(ctx)?;
                // Short-circuit AND/OR need Kleene handling, done inside.
                let vb = b.eval(ctx)?;
                eval_binary(*op, va, vb)
            }
            Expr::Func(name, args) => {
                let registry = ctx
                    .registry
                    .ok_or_else(|| Error::eval(format!("no registry for function '{name}'")))?;
                let f = registry.scalar_fn(name)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(ctx)?);
                }
                f.call(&vals)
            }
        }
    }

    /// Evaluates as a predicate: `Some(true/false)` for a boolean result,
    /// `None` for NULL (unknown).
    pub fn eval_bool(&self, ctx: &EvalContext<'_>) -> Result<Option<bool>> {
        match self.eval(ctx)? {
            Value::Null => Ok(None),
            Value::Scalar(Scalar::Bool(b)) => Ok(Some(b)),
            other => Err(Error::eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match (op, v.as_scalar()) {
        (UnaryOp::Neg, Some(Scalar::Int64(x))) => Ok(Value::from(-x)),
        (UnaryOp::Neg, Some(Scalar::Float64(x))) => Ok(Value::from(-x)),
        (UnaryOp::Neg, Some(Scalar::Uncertain(u))) => Ok(Value::from(-*u)),
        (UnaryOp::Not, Some(Scalar::Bool(b))) => Ok(Value::from(!b)),
        (op, _) => Err(Error::eval(format!("cannot apply {op:?} to {v}"))),
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And | Or => eval_logic(op, a, b),
        Eq | Ne | Lt | Le | Gt | Ge => eval_cmp(op, a, b),
        Add | Sub | Mul | Div | Mod => eval_arith(op, a, b),
    }
}

/// Kleene three-valued AND/OR.
fn eval_logic(op: BinOp, a: Value, b: Value) -> Result<Value> {
    let ab = (to_tri(&a)?, to_tri(&b)?);
    let out = match (op, ab) {
        (BinOp::And, (Some(false), _)) | (BinOp::And, (_, Some(false))) => Some(false),
        (BinOp::And, (Some(true), Some(true))) => Some(true),
        (BinOp::And, _) => None,
        (BinOp::Or, (Some(true), _)) | (BinOp::Or, (_, Some(true))) => Some(true),
        (BinOp::Or, (Some(false), Some(false))) => Some(false),
        (BinOp::Or, _) => None,
        _ => unreachable!(),
    };
    Ok(out.map_or(Value::Null, Value::from))
}

fn to_tri(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Scalar(Scalar::Bool(b)) => Ok(Some(*b)),
        other => Err(Error::eval(format!("expected boolean, got {other}"))),
    }
}

fn eval_cmp(op: BinOp, a: Value, b: Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let (sa, sb) = (a.as_scalar().unwrap(), b.as_scalar().unwrap());
    let ord = sa
        .compare(sb)
        .ok_or_else(|| Error::eval(format!("cannot compare {sa} with {sb}")))?;
    use std::cmp::Ordering::*;
    let out = match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!(),
    };
    Ok(Value::from(out))
}

fn eval_arith(op: BinOp, a: Value, b: Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let (sa, sb) = (a.as_scalar().unwrap(), b.as_scalar().unwrap());
    // Uncertain operands trigger §2.13 error propagation.
    if matches!(sa, Scalar::Uncertain(_)) || matches!(sb, Scalar::Uncertain(_)) {
        let (ua, ub) = (
            sa.as_uncertain()
                .ok_or_else(|| Error::eval("non-numeric in uncertain arithmetic"))?,
            sb.as_uncertain()
                .ok_or_else(|| Error::eval("non-numeric in uncertain arithmetic"))?,
        );
        let r = match op {
            BinOp::Add => ua + ub,
            BinOp::Sub => ua - ub,
            BinOp::Mul => ua * ub,
            BinOp::Div => {
                if ub.mean == 0.0 {
                    return Ok(Value::Null);
                }
                ua / ub
            }
            BinOp::Mod => return Err(Error::eval("modulo undefined for uncertain values")),
            _ => unreachable!(),
        };
        return Ok(Value::from(r));
    }
    // Integer arithmetic stays integral.
    if let (Scalar::Int64(x), Scalar::Int64(y)) = (sa, sb) {
        let r = match op {
            BinOp::Add => x.wrapping_add(*y),
            BinOp::Sub => x.wrapping_sub(*y),
            BinOp::Mul => x.wrapping_mul(*y),
            BinOp::Div => {
                if *y == 0 {
                    return Ok(Value::Null);
                }
                x / y
            }
            BinOp::Mod => {
                if *y == 0 {
                    return Ok(Value::Null);
                }
                x % y
            }
            _ => unreachable!(),
        };
        return Ok(Value::from(r));
    }
    // String concatenation via Add.
    if let (Scalar::String(x), Scalar::String(y)) = (sa, sb) {
        if op == BinOp::Add {
            return Ok(Value::from(format!("{x}{y}")));
        }
        return Err(Error::eval("only + is defined for strings"));
    }
    let (x, y) = (
        sa.as_f64()
            .ok_or_else(|| Error::eval(format!("non-numeric operand {sa}")))?,
        sb.as_f64()
            .ok_or_else(|| Error::eval(format!("non-numeric operand {sb}")))?,
    );
    let r = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => {
            if y == 0.0 {
                return Ok(Value::Null);
            }
            x / y
        }
        BinOp::Mod => return Err(Error::eval("modulo requires integers")),
        _ => unreachable!(),
    };
    Ok(Value::from(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::uncertain::Uncertain;
    use crate::value::ScalarType;

    fn schema() -> ArraySchema {
        SchemaBuilder::new("T")
            .attr("x", ScalarType::Float64)
            .attr("n", ScalarType::Int64)
            .attr("u", ScalarType::UncertainFloat64)
            .dim("I", 10)
            .dim("J", 10)
            .build()
            .unwrap()
    }

    fn eval(e: &Expr, record: &Record) -> Value {
        let s = schema();
        let ctx = EvalContext {
            schema: &s,
            coords: &[3, 4],
            record,
            registry: None,
        };
        e.eval(&ctx).unwrap()
    }

    fn rec() -> Record {
        vec![
            Value::from(2.5),
            Value::from(7i64),
            Value::from(Uncertain::new(10.0, 1.0)),
        ]
    }

    #[test]
    fn attr_and_dim_references() {
        assert_eq!(eval(&Expr::attr("x"), &rec()), Value::from(2.5));
        assert_eq!(eval(&Expr::dim("J"), &rec()), Value::from(4i64));
    }

    #[test]
    fn unknown_attr_errors() {
        let s = schema();
        let r = rec();
        let ctx = EvalContext {
            schema: &s,
            coords: &[1, 1],
            record: &r,
            registry: None,
        };
        assert!(Expr::attr("zzz").eval(&ctx).is_err());
    }

    #[test]
    fn arithmetic_promotion() {
        // int + int stays int
        let e = Expr::attr("n").add(Expr::lit(1i64));
        assert_eq!(eval(&e, &rec()), Value::from(8i64));
        // int + float widens
        let e = Expr::attr("n").add(Expr::attr("x"));
        assert_eq!(eval(&e, &rec()), Value::from(9.5));
    }

    #[test]
    fn uncertain_arithmetic_propagates_error() {
        let e = Expr::attr("u").add(Expr::lit(Uncertain::new(0.0, 1.0)));
        match eval(&e, &rec()) {
            Value::Scalar(Scalar::Uncertain(u)) => {
                assert_eq!(u.mean, 10.0);
                assert!((u.sigma - 2f64.sqrt()).abs() < 1e-12);
            }
            other => panic!("expected uncertain, got {other}"),
        }
        // Mixing uncertain with plain numbers lifts the plain side.
        let e = Expr::attr("u").mul(Expr::lit(2.0));
        match eval(&e, &rec()) {
            Value::Scalar(Scalar::Uncertain(u)) => {
                assert_eq!(u.mean, 20.0);
                assert_eq!(u.sigma, 2.0);
            }
            other => panic!("expected uncertain, got {other}"),
        }
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(
            eval(&Expr::lit(1i64).div(Expr::lit(0i64)), &rec()),
            Value::Null
        );
        assert_eq!(
            eval(&Expr::lit(1.0).div(Expr::lit(0.0)), &rec()),
            Value::Null
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            eval(&Expr::attr("x").lt(Expr::lit(3.0)), &rec()),
            Value::from(true)
        );
        assert_eq!(
            eval(&Expr::attr("n").ge(Expr::lit(8i64)), &rec()),
            Value::from(false)
        );
        // Uncertain compares by mean.
        assert_eq!(
            eval(&Expr::attr("u").gt(Expr::lit(9.5)), &rec()),
            Value::from(true)
        );
    }

    #[test]
    fn null_propagates_three_valued() {
        let e = Expr::Null.add(Expr::lit(1i64));
        assert_eq!(eval(&e, &rec()), Value::Null);
        let e = Expr::Null.eq(Expr::lit(1i64));
        assert_eq!(eval(&e, &rec()), Value::Null);
        // Kleene: NULL AND false = false; NULL OR true = true.
        let e = Expr::Null.eq(Expr::lit(1i64)).and(Expr::lit(false));
        assert_eq!(eval(&e, &rec()), Value::from(false));
        let e = Expr::Null.eq(Expr::lit(1i64)).or(Expr::lit(true));
        assert_eq!(eval(&e, &rec()), Value::from(true));
        let e = Expr::Null.eq(Expr::lit(1i64)).and(Expr::lit(true));
        assert_eq!(eval(&e, &rec()), Value::Null);
    }

    #[test]
    fn is_null_and_not() {
        assert_eq!(eval(&Expr::Null.is_null(), &rec()), Value::from(true));
        assert_eq!(eval(&Expr::attr("x").is_null(), &rec()), Value::from(false));
        assert_eq!(eval(&Expr::lit(true).not(), &rec()), Value::from(false));
    }

    #[test]
    fn string_concat() {
        let e = Expr::lit("a").add(Expr::lit("b"));
        assert_eq!(eval(&e, &rec()), Value::from("ab"));
    }

    #[test]
    fn eval_bool_classifies() {
        let s = schema();
        let r = rec();
        let ctx = EvalContext {
            schema: &s,
            coords: &[1, 1],
            record: &r,
            registry: None,
        };
        assert_eq!(Expr::lit(true).eval_bool(&ctx).unwrap(), Some(true));
        assert_eq!(Expr::Null.eval_bool(&ctx).unwrap(), None);
        assert!(Expr::lit(1i64).eval_bool(&ctx).is_err());
    }

    #[test]
    fn referenced_attrs_walks_tree() {
        let e = Expr::attr("x")
            .add(Expr::attr("n"))
            .gt(Expr::func("f", vec![Expr::attr("u")]));
        let mut attrs = e.referenced_attrs();
        attrs.sort();
        assert_eq!(attrs, vec!["n", "u", "x"]);
    }

    #[test]
    fn func_without_registry_errors() {
        let s = schema();
        let r = rec();
        let ctx = EvalContext {
            schema: &s,
            coords: &[1, 1],
            record: &r,
            registry: None,
        };
        assert!(Expr::func("abs", vec![Expr::lit(1.0)]).eval(&ctx).is_err());
    }
}
