//! The function/type registry — the Postgres-style catalog of §2.3.
//!
//! Everything user-extendable lives here: scalar UDFs, user-defined
//! aggregates, whole-array operations, enhancement functions, shape
//! functions ("SciDB will come with a collection of built-in shape
//! functions", §2.1), and user-defined types. [`Registry::with_builtins`]
//! pre-loads the standard library.

use crate::enhance::EnhancementRef;
use crate::error::{Error, Result};
use crate::shape::ShapeRef;
use crate::udf::{AggState, AggregateFn, ArrayOp, ClosureFn, ScalarFn, TypeDef};
use crate::uncertain::Uncertain;
use crate::value::{Record, Scalar, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The catalog of user-extendable objects.
#[derive(Debug, Default)]
pub struct Registry {
    scalars: HashMap<String, Arc<dyn ScalarFn>>,
    aggregates: HashMap<String, Arc<dyn AggregateFn>>,
    array_ops: HashMap<String, Arc<dyn ArrayOp>>,
    enhancements: HashMap<String, EnhancementRef>,
    shapes: HashMap<String, ShapeRef>,
    types: HashMap<String, Arc<TypeDef>>,
}

macro_rules! register {
    ($map:expr, $kind:literal, $name:expr, $obj:expr) => {{
        let name = $name.to_ascii_lowercase();
        if $map.contains_key(&name) {
            return Err(Error::AlreadyExists(format!(concat!($kind, " '{}'"), name)));
        }
        $map.insert(name, $obj);
        Ok(())
    }};
}

macro_rules! lookup {
    ($map:expr, $kind:literal, $name:expr) => {
        $map.get(&$name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::not_found(format!(concat!($kind, " '{}'"), $name)))
    };
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry pre-loaded with the built-in function library.
    pub fn with_builtins() -> Self {
        let mut r = Registry::new();
        r.install_builtins();
        r
    }

    /// Registers a scalar function.
    pub fn register_scalar_fn(&mut self, f: Arc<dyn ScalarFn>) -> Result<()> {
        register!(self.scalars, "function", f.name(), f)
    }

    /// Looks up a scalar function.
    pub fn scalar_fn(&self, name: &str) -> Result<Arc<dyn ScalarFn>> {
        lookup!(self.scalars, "function", name)
    }

    /// Registers an aggregate.
    pub fn register_aggregate(&mut self, f: Arc<dyn AggregateFn>) -> Result<()> {
        register!(self.aggregates, "aggregate", f.name(), f)
    }

    /// Looks up an aggregate.
    pub fn aggregate(&self, name: &str) -> Result<Arc<dyn AggregateFn>> {
        lookup!(self.aggregates, "aggregate", name)
    }

    /// Registers a whole-array operation.
    pub fn register_array_op(&mut self, f: Arc<dyn ArrayOp>) -> Result<()> {
        register!(self.array_ops, "array operation", f.name(), f)
    }

    /// Looks up a whole-array operation.
    pub fn array_op(&self, name: &str) -> Result<Arc<dyn ArrayOp>> {
        lookup!(self.array_ops, "array operation", name)
    }

    /// Registers an enhancement function.
    pub fn register_enhancement(&mut self, f: EnhancementRef) -> Result<()> {
        register!(self.enhancements, "enhancement", f.name(), f)
    }

    /// Looks up an enhancement function.
    pub fn enhancement(&self, name: &str) -> Result<EnhancementRef> {
        lookup!(self.enhancements, "enhancement", name)
    }

    /// Registers a shape function.
    pub fn register_shape(&mut self, f: ShapeRef) -> Result<()> {
        register!(self.shapes, "shape function", f.name(), f)
    }

    /// Looks up a shape function.
    pub fn shape(&self, name: &str) -> Result<ShapeRef> {
        lookup!(self.shapes, "shape function", name)
    }

    /// Registers a user-defined type.
    pub fn register_type(&mut self, t: TypeDef) -> Result<()> {
        register!(self.types, "type", t.name(), Arc::new(t))
    }

    /// Looks up a user-defined type.
    pub fn type_def(&self, name: &str) -> Result<Arc<TypeDef>> {
        lookup!(self.types, "type", name)
    }

    /// Names of all registered scalar functions (sorted; for \dF-style
    /// introspection).
    pub fn scalar_fn_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.scalars.keys().cloned().collect();
        v.sort();
        v
    }

    fn install_builtins(&mut self) {
        let unary = |name: &str, f: fn(f64) -> f64| {
            Arc::new(ClosureFn::unary_f64(name, f)) as Arc<dyn ScalarFn>
        };
        for (name, f) in [
            ("abs", f64::abs as fn(f64) -> f64),
            ("sqrt", f64::sqrt),
            ("exp", f64::exp),
            ("ln", f64::ln),
            ("floor", f64::floor),
            ("ceil", f64::ceil),
            ("sin", f64::sin),
            ("cos", f64::cos),
        ] {
            self.register_scalar_fn(unary(name, f)).unwrap();
        }
        // even/odd over integers — used by the paper's Subsample example
        // `Subsample(F, even(X))`.
        self.register_scalar_fn(Arc::new(ClosureFn::new(
            "even",
            Some(1),
            |args| match args[0].as_i64() {
                Some(v) => Ok(Value::from(v % 2 == 0)),
                None if args[0].is_null() => Ok(Value::Null),
                None => Err(Error::eval("even: integer argument required")),
            },
        )))
        .unwrap();
        self.register_scalar_fn(Arc::new(ClosureFn::new(
            "odd",
            Some(1),
            |args| match args[0].as_i64() {
                Some(v) => Ok(Value::from(v % 2 != 0)),
                None if args[0].is_null() => Ok(Value::Null),
                None => Err(Error::eval("odd: integer argument required")),
            },
        )))
        .unwrap();
        // Uncertainty accessors (§2.13).
        self.register_scalar_fn(Arc::new(ClosureFn::new(
            "err",
            Some(1),
            |args| match &args[0] {
                Value::Null => Ok(Value::Null),
                v => match v.as_scalar().and_then(Scalar::as_uncertain) {
                    Some(u) => Ok(Value::from(u.sigma)),
                    None => Err(Error::eval("err: numeric argument required")),
                },
            },
        )))
        .unwrap();
        self.register_scalar_fn(Arc::new(ClosureFn::new(
            "mean",
            Some(1),
            |args| match &args[0] {
                Value::Null => Ok(Value::Null),
                v => match v.as_f64() {
                    Some(m) => Ok(Value::from(m)),
                    None => Err(Error::eval("mean: numeric argument required")),
                },
            },
        )))
        .unwrap();
        self.register_scalar_fn(Arc::new(ClosureFn::new("uncertain", Some(2), |args| {
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let (m, s) = (
                args[0]
                    .as_f64()
                    .ok_or_else(|| Error::eval("uncertain: numeric mean required"))?,
                args[1]
                    .as_f64()
                    .ok_or_else(|| Error::eval("uncertain: numeric sigma required"))?,
            );
            Ok(Value::from(Uncertain::new(m, s)))
        })))
        .unwrap();
        // P(value < threshold) for uncertain filters.
        self.register_scalar_fn(Arc::new(ClosureFn::new("prob_below", Some(2), |args| {
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let u = args[0]
                .as_scalar()
                .and_then(Scalar::as_uncertain)
                .ok_or_else(|| Error::eval("prob_below: numeric value required"))?;
            let t = args[1]
                .as_f64()
                .ok_or_else(|| Error::eval("prob_below: numeric threshold required"))?;
            Ok(Value::from(u.cdf(t)))
        })))
        .unwrap();

        for agg in [
            Builtin::Count,
            Builtin::Sum,
            Builtin::Avg,
            Builtin::Min,
            Builtin::Max,
            Builtin::Stddev,
            Builtin::Var,
        ] {
            self.register_aggregate(Arc::new(agg)).unwrap();
        }
    }
}

/// The built-in aggregate suite.
#[derive(Debug, Clone, Copy)]
enum Builtin {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Stddev,
    Var,
}

impl AggregateFn for Builtin {
    fn name(&self) -> &str {
        match self {
            Builtin::Count => "count",
            Builtin::Sum => "sum",
            Builtin::Avg => "avg",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Stddev => "stddev",
            Builtin::Var => "var",
        }
    }

    fn create(&self) -> Box<dyn AggState> {
        match self {
            Builtin::Count => Box::new(CountState(0)),
            Builtin::Sum => Box::new(SumState::default()),
            Builtin::Avg => Box::new(MomentState::new(Moment::Avg)),
            Builtin::Min => Box::new(ExtremeState::new(true)),
            Builtin::Max => Box::new(ExtremeState::new(false)),
            Builtin::Stddev => Box::new(MomentState::new(Moment::Stddev)),
            Builtin::Var => Box::new(MomentState::new(Moment::Var)),
        }
    }
}

struct CountState(i64);

impl AggState for CountState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if !v.is_null() {
            self.0 += 1;
        }
        Ok(())
    }
    fn partial(&self) -> Record {
        vec![Value::from(self.0)]
    }
    fn merge(&mut self, partial: &Record) -> Result<()> {
        self.0 += partial[0]
            .as_i64()
            .ok_or_else(|| Error::eval("count: bad partial"))?;
        Ok(())
    }
    fn finalize(&self) -> Value {
        Value::from(self.0)
    }
}

/// Sum with automatic uncertainty propagation: summing `uncertain float`
/// values accumulates sigma in quadrature (§2.13).
#[derive(Default)]
struct SumState {
    sum: f64,
    var: f64, // accumulated variance for uncertain inputs
    any: bool,
    uncertain: bool,
    int_only: bool,
    int_sum: i64,
    started: bool,
}

impl AggState for SumState {
    fn update(&mut self, v: &Value) -> Result<()> {
        let Some(s) = v.as_scalar() else {
            return Ok(());
        };
        if !self.started {
            self.int_only = matches!(s, Scalar::Int64(_));
            self.started = true;
        }
        match s {
            Scalar::Int64(x) => {
                self.int_sum += x;
                self.sum += *x as f64;
            }
            Scalar::Float64(x) => {
                self.int_only = false;
                self.sum += x;
            }
            Scalar::Uncertain(u) => {
                self.int_only = false;
                self.uncertain = true;
                self.sum += u.mean;
                self.var += u.sigma * u.sigma;
            }
            other => return Err(Error::eval(format!("sum: non-numeric {other}"))),
        }
        self.any = true;
        Ok(())
    }

    fn partial(&self) -> Record {
        vec![
            Value::from(self.sum),
            Value::from(self.var),
            Value::from(self.any),
            Value::from(self.uncertain),
            Value::from(self.int_only && self.started),
            Value::from(self.int_sum),
        ]
    }

    fn merge(&mut self, p: &Record) -> Result<()> {
        let bad = || Error::eval("sum: bad partial");
        self.sum += p[0].as_f64().ok_or_else(bad)?;
        self.var += p[1].as_f64().ok_or_else(bad)?;
        let any = p[2].as_bool().ok_or_else(bad)?;
        self.any |= any;
        self.uncertain |= p[3].as_bool().ok_or_else(bad)?;
        let other_int = p[4].as_bool().ok_or_else(bad)?;
        if any {
            self.int_only = (self.int_only || !self.started) && other_int;
            self.started = true;
        }
        self.int_sum += p[5].as_i64().ok_or_else(bad)?;
        Ok(())
    }

    fn finalize(&self) -> Value {
        if !self.any {
            return Value::Null;
        }
        if self.uncertain {
            Value::from(Uncertain::new(self.sum, self.var.sqrt()))
        } else if self.int_only {
            Value::from(self.int_sum)
        } else {
            Value::from(self.sum)
        }
    }
}

enum Moment {
    Avg,
    Var,
    Stddev,
}

/// Mean / variance / stddev via mergeable (count, sum, sum-of-squares).
struct MomentState {
    which: Moment,
    n: i64,
    sum: f64,
    sumsq: f64,
}

impl MomentState {
    fn new(which: Moment) -> Self {
        MomentState {
            which,
            n: 0,
            sum: 0.0,
            sumsq: 0.0,
        }
    }
}

impl AggState for MomentState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let x = v
            .as_f64()
            .ok_or_else(|| Error::eval("numeric aggregate over non-numeric value"))?;
        self.n += 1;
        self.sum += x;
        self.sumsq += x * x;
        Ok(())
    }
    fn partial(&self) -> Record {
        vec![
            Value::from(self.n),
            Value::from(self.sum),
            Value::from(self.sumsq),
        ]
    }
    fn merge(&mut self, p: &Record) -> Result<()> {
        let bad = || Error::eval("moment: bad partial");
        self.n += p[0].as_i64().ok_or_else(bad)?;
        self.sum += p[1].as_f64().ok_or_else(bad)?;
        self.sumsq += p[2].as_f64().ok_or_else(bad)?;
        Ok(())
    }
    fn finalize(&self) -> Value {
        if self.n == 0 {
            return Value::Null;
        }
        let n = self.n as f64;
        let mean = self.sum / n;
        match self.which {
            Moment::Avg => Value::from(mean),
            Moment::Var => Value::from((self.sumsq / n - mean * mean).max(0.0)),
            Moment::Stddev => Value::from((self.sumsq / n - mean * mean).max(0.0).sqrt()),
        }
    }
}

struct ExtremeState {
    is_min: bool,
    best: Option<Scalar>,
}

impl ExtremeState {
    fn new(is_min: bool) -> Self {
        ExtremeState { is_min, best: None }
    }
    fn consider(&mut self, s: &Scalar) -> Result<()> {
        match &self.best {
            None => self.best = Some(s.clone()),
            Some(b) => {
                let ord = s
                    .compare(b)
                    .ok_or_else(|| Error::eval("min/max over incomparable values"))?;
                let better = if self.is_min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    self.best = Some(s.clone());
                }
            }
        }
        Ok(())
    }
}

impl AggState for ExtremeState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if let Some(s) = v.as_scalar() {
            self.consider(s)?;
        }
        Ok(())
    }
    fn partial(&self) -> Record {
        vec![self.best.clone().map_or(Value::Null, Value::Scalar)]
    }
    fn merge(&mut self, p: &Record) -> Result<()> {
        if let Some(s) = p[0].as_scalar() {
            self.consider(s)?;
        }
        Ok(())
    }
    fn finalize(&self) -> Value {
        self.best.clone().map_or(Value::Null, Value::Scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_agg(name: &str, vals: &[Value]) -> Value {
        let r = Registry::with_builtins();
        let agg = r.aggregate(name).unwrap();
        let mut st = agg.create();
        for v in vals {
            st.update(v).unwrap();
        }
        st.finalize()
    }

    #[test]
    fn builtin_scalar_fns_present() {
        let r = Registry::with_builtins();
        for name in [
            "abs",
            "sqrt",
            "even",
            "odd",
            "err",
            "uncertain",
            "prob_below",
        ] {
            assert!(r.scalar_fn(name).is_ok(), "missing builtin {name}");
        }
        assert!(r.scalar_fn("nope").is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = Registry::with_builtins();
        assert!(r.scalar_fn("ABS").is_ok());
        assert!(r.aggregate("SUM").is_ok());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = Registry::with_builtins();
        let err = r
            .register_scalar_fn(Arc::new(ClosureFn::unary_f64("abs", |x| x)))
            .unwrap_err();
        assert!(matches!(err, Error::AlreadyExists(_)));
    }

    #[test]
    fn count_skips_nulls() {
        let v = run_agg(
            "count",
            &[Value::from(1i64), Value::Null, Value::from(2i64)],
        );
        assert_eq!(v, Value::from(2i64));
    }

    #[test]
    fn sum_int_stays_int() {
        let v = run_agg("sum", &[Value::from(1i64), Value::from(2i64)]);
        assert_eq!(v, Value::from(3i64));
    }

    #[test]
    fn sum_mixed_is_float() {
        let v = run_agg("sum", &[Value::from(1i64), Value::from(2.5)]);
        assert_eq!(v, Value::from(3.5));
    }

    #[test]
    fn sum_uncertain_propagates_sigma() {
        let v = run_agg(
            "sum",
            &[
                Value::from(Uncertain::new(1.0, 3.0)),
                Value::from(Uncertain::new(2.0, 4.0)),
            ],
        );
        match v {
            Value::Scalar(Scalar::Uncertain(u)) => {
                assert_eq!(u.mean, 3.0);
                assert!((u.sigma - 5.0).abs() < 1e-12);
            }
            other => panic!("expected uncertain, got {other}"),
        }
    }

    #[test]
    fn empty_aggregates_are_null_except_count() {
        assert_eq!(run_agg("sum", &[]), Value::Null);
        assert_eq!(run_agg("avg", &[]), Value::Null);
        assert_eq!(run_agg("min", &[]), Value::Null);
        assert_eq!(run_agg("count", &[]), Value::from(0i64));
    }

    #[test]
    fn avg_stddev_var() {
        let vals: Vec<Value> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&x| Value::from(x))
            .collect();
        assert_eq!(run_agg("avg", &vals), Value::from(5.0));
        assert_eq!(run_agg("var", &vals), Value::from(4.0));
        assert_eq!(run_agg("stddev", &vals), Value::from(2.0));
    }

    #[test]
    fn min_max_strings() {
        let vals = [
            Value::from("pear"),
            Value::from("apple"),
            Value::from("zuc"),
        ];
        assert_eq!(run_agg("min", &vals), Value::from("apple"));
        assert_eq!(run_agg("max", &vals), Value::from("zuc"));
    }

    #[test]
    fn partial_merge_equals_direct() {
        // Distributed path: two partial states merged == one direct state.
        let r = Registry::with_builtins();
        for name in ["count", "sum", "avg", "min", "max", "stddev", "var"] {
            let agg = r.aggregate(name).unwrap();
            let all: Vec<Value> = (1..=10i64).map(Value::from).collect();
            let mut direct = agg.create();
            for v in &all {
                direct.update(v).unwrap();
            }
            let mut left = agg.create();
            let mut right = agg.create();
            for v in &all[..4] {
                left.update(v).unwrap();
            }
            for v in &all[4..] {
                right.update(v).unwrap();
            }
            left.merge(&right.partial()).unwrap();
            assert_eq!(left.finalize(), direct.finalize(), "aggregate {name}");
        }
    }

    #[test]
    fn prob_below_builtin() {
        let r = Registry::with_builtins();
        let f = r.scalar_fn("prob_below").unwrap();
        let p = f
            .call(&[Value::from(Uncertain::new(0.0, 1.0)), Value::from(0.0)])
            .unwrap();
        assert!((p.as_f64().unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn type_registration() {
        let mut r = Registry::new();
        r.register_type(TypeDef::new("ra", crate::value::ScalarType::Float64))
            .unwrap();
        assert!(r.type_def("ra").is_ok());
        assert!(r.type_def("dec").is_err());
    }
}
