//! No-overwrite storage semantics (§2.5): updatable arrays with a history
//! dimension.
//!
//! "Scientists do not want to perform updates in place. To support this
//! concept, a history dimension must be added to every updatable array. An
//! initial transaction adds values into appropriate cells for history = 1.
//! The first subsequent SciDB transaction adds new values in the appropriate
//! cells for history = 2. … A delete operation removes a cell from an array
//! and in the obvious implementation based on deltas, one would insert a
//! deletion-flag as the delta."
//!
//! [`UpdatableArray`] wraps an [`Array`] whose schema carries the implicit
//! `history` dimension and exposes transactional, delta-based updates plus
//! time-travel reads. The history dimension can be enhanced with a
//! wall-clock mapping ([`crate::enhance::WallClock`]).

use crate::array::Array;
use crate::enhance::{EnhancementRef, PseudoValue};
use crate::error::{Error, Result};
use crate::geometry::Coords;
use crate::schema::{ArraySchema, HISTORY_DIM};
use crate::value::{Record, Value};
use std::collections::{BTreeSet, HashMap};

/// Result of probing one history layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// No delta for the cell at or below the probed history value.
    Missing,
    /// The most recent delta is a deletion flag.
    Deleted,
    /// The most recent delta is a value.
    Value(Record),
}

impl Lookup {
    /// Collapses to an `Option`, losing the Missing/Deleted distinction.
    pub fn into_option(self) -> Option<Record> {
        match self {
            Lookup::Value(r) => Some(r),
            _ => None,
        }
    }
}

/// A buffered transaction: cell puts and deletes that commit atomically as
/// one new history version.
#[derive(Debug, Default)]
pub struct Transaction {
    puts: Vec<(Coords, Record)>,
    deletes: Vec<Coords>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Buffers a cell write (coordinates exclude the history dimension).
    pub fn put(&mut self, coords: &[i64], record: Record) -> &mut Self {
        self.puts.push((coords.to_vec(), record));
        self
    }

    /// Buffers a cell deletion ("insert a deletion-flag as the delta").
    pub fn delete(&mut self, coords: &[i64]) -> &mut Self {
        self.deletes.push(coords.to_vec());
        self
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.puts.len() + self.deletes.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.puts.is_empty() && self.deletes.is_empty()
    }
}

/// An updatable array: delta transactions along an implicit history
/// dimension; nothing is ever overwritten.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatableArray {
    inner: Array,
    hist_dim: usize,
    current: i64,
    /// Full coordinates (including history) of deletion flags.
    tombstones: BTreeSet<Coords>,
}

impl UpdatableArray {
    /// Creates an updatable array. The schema is made updatable (appending
    /// the `history` dimension) if it is not already.
    pub fn new(schema: ArraySchema) -> Result<Self> {
        let schema = if schema.is_updatable() {
            schema
        } else {
            schema.updatable()?
        };
        let hist_dim = schema
            .dim_index(HISTORY_DIM)
            .ok_or_else(|| Error::schema("updatable schema lacks history dimension"))?;
        Ok(UpdatableArray {
            inner: Array::new(schema),
            hist_dim,
            current: 0,
            tombstones: BTreeSet::new(),
        })
    }

    /// The underlying array, history dimension included — supports the
    /// paper's direct addressing `A[x=2, y=2, history=1]`.
    pub fn array(&self) -> &Array {
        &self.inner
    }

    /// Index of the history dimension.
    pub fn history_dim(&self) -> usize {
        self.hist_dim
    }

    /// The latest committed history value (0 before the initial load).
    pub fn current_history(&self) -> i64 {
        self.current
    }

    /// Commits a transaction as history version `current + 1` and returns
    /// the new history value.
    pub fn commit(&mut self, txn: Transaction) -> Result<i64> {
        let h = self.current + 1;
        // Validate first: a failed commit must not leave partial deltas.
        for (coords, _) in &txn.puts {
            self.validate_base_coords(coords)?;
        }
        for coords in &txn.deletes {
            self.validate_base_coords(coords)?;
        }
        for (coords, record) in txn.puts {
            let full = self.with_history(&coords, h);
            self.inner.set_cell(&full, record)?;
        }
        let null_rec: Record = vec![Value::Null; self.inner.schema().attrs().len()];
        for coords in txn.deletes {
            let full = self.with_history(&coords, h);
            self.inner.set_cell(&full, null_rec.clone())?;
            self.tombstones.insert(full);
        }
        self.current = h;
        Ok(h)
    }

    /// Convenience: commits a single-cell write.
    pub fn commit_put(&mut self, coords: &[i64], record: Record) -> Result<i64> {
        let mut t = Transaction::new();
        t.put(coords, record);
        self.commit(t)
    }

    /// Probes the cell as of history version `h`: the most recent delta at
    /// or below `h`.
    pub fn lookup_at(&self, coords: &[i64], h: i64) -> Lookup {
        let h = h.min(self.current);
        for hh in (1..=h).rev() {
            let full = self.with_history(coords, hh);
            if self.tombstones.contains(&full) {
                return Lookup::Deleted;
            }
            if let Some(rec) = self.inner.get_cell(&full) {
                return Lookup::Value(rec);
            }
        }
        Lookup::Missing
    }

    /// Reads the cell as of history version `h`.
    pub fn get_at(&self, coords: &[i64], h: i64) -> Option<Record> {
        self.lookup_at(coords, h).into_option()
    }

    /// Reads the cell at the latest history version.
    pub fn get_latest(&self, coords: &[i64]) -> Option<Record> {
        self.get_at(coords, self.current)
    }

    /// "Travels along the history dimension": every delta recorded for the
    /// cell, in history order. `None` records are deletion flags.
    pub fn cell_history(&self, coords: &[i64]) -> Vec<(i64, Option<Record>)> {
        let mut out = Vec::new();
        for h in 1..=self.current {
            let full = self.with_history(coords, h);
            if self.tombstones.contains(&full) {
                out.push((h, None));
            } else if let Some(rec) = self.inner.get_cell(&full) {
                out.push((h, Some(rec)));
            }
        }
        out
    }

    /// Materializes a snapshot (history dimension dropped) as of version
    /// `h`.
    pub fn snapshot_at(&self, h: i64) -> Result<Array> {
        let mut dims = self.inner.schema().dims().to_vec();
        dims.remove(self.hist_dim);
        let schema = ArraySchema::new(
            format!("{}@{}", self.inner.schema().name(), h),
            self.inner.schema().attrs().to_vec(),
            dims,
        )?;
        let mut out = Array::new(schema);
        // Latest-wins per base cell: walk deltas up to h in order.
        let mut latest: HashMap<Coords, (i64, Option<Record>)> = HashMap::new();
        for (full, rec) in self.inner.cells() {
            let hh = full[self.hist_dim];
            if hh > h.min(self.current) {
                continue;
            }
            let mut base = full.clone();
            base.remove(self.hist_dim);
            let is_tomb = self.tombstones.contains(&full);
            let candidate = (hh, if is_tomb { None } else { Some(rec) });
            match latest.get(&base) {
                Some((prev_h, _)) if *prev_h >= hh => {}
                _ => {
                    latest.insert(base, candidate);
                }
            }
        }
        for (base, (_, slot)) in latest {
            if let Some(rec) = slot {
                out.set_cell(&base, rec)?;
            }
        }
        Ok(out)
    }

    /// Attaches a wall-clock enhancement to the history dimension (§2.5:
    /// "the array can be addressed using conventional time").
    pub fn set_clock(&mut self, clock: EnhancementRef) -> Result<()> {
        if clock.output_names().len() != 1 {
            return Err(Error::dimension("history clock must map one dimension"));
        }
        self.inner.enhance(clock)
    }

    /// Reads the cell as of wall-clock `time`, resolved through the
    /// attached clock enhancement.
    pub fn get_at_time(
        &self,
        coords: &[i64],
        time: i64,
        clock_name: &str,
    ) -> Result<Option<Record>> {
        let clock = self
            .inner
            .enhancement(clock_name)
            .ok_or_else(|| Error::not_found(format!("clock '{clock_name}'")))?;
        match clock.inverse(&[PseudoValue::Int(time)])? {
            Some(h) => Ok(self.get_at(coords, h[0])),
            None => Ok(None),
        }
    }

    /// Total bytes of delta storage.
    pub fn byte_size(&self) -> usize {
        self.inner.byte_size()
    }

    /// Number of delta cells recorded across all versions.
    pub fn delta_count(&self) -> usize {
        self.inner.cell_count()
    }

    fn with_history(&self, coords: &[i64], h: i64) -> Coords {
        let mut full = Vec::with_capacity(coords.len() + 1);
        full.extend_from_slice(&coords[..self.hist_dim.min(coords.len())]);
        full.push(h);
        if self.hist_dim < coords.len() {
            full.extend_from_slice(&coords[self.hist_dim..]);
        }
        full
    }

    fn validate_base_coords(&self, coords: &[i64]) -> Result<()> {
        if coords.len() != self.inner.rank() - 1 {
            return Err(Error::dimension(format!(
                "expected {} coordinates (history excluded), got {}",
                self.inner.rank() - 1,
                coords.len()
            )));
        }
        // Delegate bound checks by probing with history = 1.
        let full = self.with_history(coords, 1);
        self.inner.validate_coords(&full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhance::WallClock;
    use crate::schema::SchemaBuilder;
    use crate::value::{record, ScalarType};
    use std::sync::Arc;

    fn remote2() -> UpdatableArray {
        // define updatable Remote_2 (s1 = float) (I, J, history) — §2.5.
        let schema = SchemaBuilder::new("Remote_2")
            .attr("s1", ScalarType::Float64)
            .dim("I", 4)
            .dim("J", 4)
            .updatable()
            .build()
            .unwrap();
        UpdatableArray::new(schema).unwrap()
    }

    #[test]
    fn initial_transaction_is_history_one() {
        let mut a = remote2();
        let mut t = Transaction::new();
        t.put(&[1, 1], record([Value::from(1.0)]));
        t.put(&[2, 2], record([Value::from(2.0)]));
        let h = a.commit(t).unwrap();
        assert_eq!(h, 1);
        assert_eq!(a.current_history(), 1);
        // Direct dimension addressing, as in the paper.
        assert_eq!(a.array().get_cell(&[2, 2, 1]), Some(vec![Value::from(2.0)]));
    }

    #[test]
    fn updates_never_overwrite() {
        let mut a = remote2();
        a.commit_put(&[2, 2], record([Value::from(1.0)])).unwrap();
        a.commit_put(&[2, 2], record([Value::from(9.0)])).unwrap();
        // Old value still present at history = 1.
        assert_eq!(a.get_at(&[2, 2], 1), Some(vec![Value::from(1.0)]));
        assert_eq!(a.get_at(&[2, 2], 2), Some(vec![Value::from(9.0)]));
        assert_eq!(a.get_latest(&[2, 2]), Some(vec![Value::from(9.0)]));
    }

    #[test]
    fn travel_along_history_dimension() {
        let mut a = remote2();
        a.commit_put(&[2, 2], record([Value::from(1.0)])).unwrap();
        a.commit_put(&[3, 3], record([Value::from(5.0)])).unwrap(); // unrelated
        a.commit_put(&[2, 2], record([Value::from(2.0)])).unwrap();
        let hist = a.cell_history(&[2, 2]);
        assert_eq!(
            hist,
            vec![
                (1, Some(vec![Value::from(1.0)])),
                (3, Some(vec![Value::from(2.0)]))
            ]
        );
    }

    #[test]
    fn intermediate_versions_fall_through() {
        let mut a = remote2();
        a.commit_put(&[1, 1], record([Value::from(1.0)])).unwrap(); // h=1
        a.commit_put(&[2, 2], record([Value::from(2.0)])).unwrap(); // h=2
                                                                    // At h=2, cell [1,1] still reads its h=1 value.
        assert_eq!(a.get_at(&[1, 1], 2), Some(vec![Value::from(1.0)]));
    }

    #[test]
    fn delete_inserts_deletion_flag() {
        let mut a = remote2();
        a.commit_put(&[1, 1], record([Value::from(1.0)])).unwrap();
        let mut t = Transaction::new();
        t.delete(&[1, 1]);
        a.commit(t).unwrap();
        assert_eq!(a.get_latest(&[1, 1]), None);
        assert_eq!(a.lookup_at(&[1, 1], 2), Lookup::Deleted);
        // History 1 still shows the value — provenance retained.
        assert_eq!(a.get_at(&[1, 1], 1), Some(vec![Value::from(1.0)]));
        // Re-insert after delete.
        a.commit_put(&[1, 1], record([Value::from(7.0)])).unwrap();
        assert_eq!(a.get_latest(&[1, 1]), Some(vec![Value::from(7.0)]));
    }

    #[test]
    fn missing_vs_deleted() {
        let a = remote2();
        assert_eq!(a.lookup_at(&[1, 1], 1), Lookup::Missing);
    }

    #[test]
    fn snapshot_materializes_latest_wins() {
        let mut a = remote2();
        a.commit_put(&[1, 1], record([Value::from(1.0)])).unwrap();
        let mut t = Transaction::new();
        t.put(&[1, 1], record([Value::from(2.0)]));
        t.put(&[2, 2], record([Value::from(3.0)]));
        a.commit(t).unwrap();
        let mut t = Transaction::new();
        t.delete(&[2, 2]);
        a.commit(t).unwrap();

        let snap2 = a.snapshot_at(2).unwrap();
        assert_eq!(snap2.rank(), 2);
        assert_eq!(snap2.get_f64(0, &[1, 1]), Some(2.0));
        assert_eq!(snap2.get_f64(0, &[2, 2]), Some(3.0));

        let snap3 = a.snapshot_at(3).unwrap();
        assert_eq!(snap3.get_f64(0, &[1, 1]), Some(2.0));
        assert!(!snap3.exists(&[2, 2]));

        let snap1 = a.snapshot_at(1).unwrap();
        assert_eq!(snap1.cell_count(), 1);
    }

    #[test]
    fn failed_commit_validates_bounds_first() {
        let mut a = remote2();
        let mut t = Transaction::new();
        t.put(&[1, 1], record([Value::from(1.0)]));
        t.put(&[99, 1], record([Value::from(2.0)])); // out of bounds
        assert!(a.commit(t).is_err());
        assert_eq!(a.current_history(), 0);
        assert_eq!(a.get_latest(&[1, 1]), None, "no partial commit");
    }

    #[test]
    fn wall_clock_time_travel() {
        let mut a = remote2();
        a.set_clock(Arc::new(WallClock::new("clock", 1000, 100)))
            .unwrap();
        a.commit_put(&[1, 1], record([Value::from(1.0)])).unwrap(); // t=1000
        a.commit_put(&[1, 1], record([Value::from(2.0)])).unwrap(); // t=1100
        assert_eq!(
            a.get_at_time(&[1, 1], 1050, "clock").unwrap(),
            Some(vec![Value::from(1.0)])
        );
        assert_eq!(
            a.get_at_time(&[1, 1], 1100, "clock").unwrap(),
            Some(vec![Value::from(2.0)])
        );
        assert_eq!(a.get_at_time(&[1, 1], 500, "clock").unwrap(), None);
    }

    #[test]
    fn transaction_builder() {
        let mut t = Transaction::new();
        assert!(t.is_empty());
        t.put(&[1, 1], record([Value::from(1.0)])).delete(&[2, 2]);
        assert_eq!(t.len(), 2);
    }
}
