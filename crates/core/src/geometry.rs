//! Coordinate geometry: cell addresses, hyper-rectangles, and row-major
//! linearization shared by chunks, buckets, and the grid partitioner.
//!
//! Coordinates are `i64` and 1-based, matching §2.1's "contiguous integer
//! values between 1 and N". Enhanced coordinate systems (§2.1) map onto
//! these basic integer coordinates via enhancement functions.

use crate::error::{Error, Result};

/// A cell address: one integer per dimension.
pub type Coords = Vec<i64>;

/// An axis-aligned hyper-rectangle `[low, high]`, bounds inclusive.
///
/// Used for chunk extents, storage buckets ("rectangular buckets, defined by
/// a stride in each dimension", §2.8), R-tree entries, and grid partitions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HyperRect {
    /// Inclusive lower corner.
    pub low: Coords,
    /// Inclusive upper corner.
    pub high: Coords,
}

impl HyperRect {
    /// Creates a rectangle, validating rank and ordering.
    pub fn new(low: Coords, high: Coords) -> Result<Self> {
        if low.len() != high.len() {
            return Err(Error::dimension(format!(
                "rect rank mismatch: {} vs {}",
                low.len(),
                high.len()
            )));
        }
        for (l, h) in low.iter().zip(&high) {
            if l > h {
                return Err(Error::dimension(format!("rect low {l} exceeds high {h}")));
            }
        }
        Ok(HyperRect { low, high })
    }

    /// The rectangle covering a single cell.
    pub fn cell(coords: &[i64]) -> Self {
        HyperRect {
            low: coords.to_vec(),
            high: coords.to_vec(),
        }
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.low.len()
    }

    /// Side length along dimension `d`.
    pub fn len(&self, d: usize) -> i64 {
        self.high[d] - self.low[d] + 1
    }

    /// Side lengths along every dimension.
    pub fn shape(&self) -> Vec<i64> {
        (0..self.rank()).map(|d| self.len(d)).collect()
    }

    /// Number of cells in the rectangle.
    pub fn volume(&self) -> u64 {
        (0..self.rank()).map(|d| self.len(d) as u64).product()
    }

    /// True if the rectangle contains `coords`.
    pub fn contains(&self, coords: &[i64]) -> bool {
        coords.len() == self.rank()
            && coords
                .iter()
                .enumerate()
                .all(|(d, &c)| self.low[d] <= c && c <= self.high[d])
    }

    /// True if two rectangles intersect.
    pub fn intersects(&self, other: &HyperRect) -> bool {
        self.rank() == other.rank()
            && (0..self.rank())
                .all(|d| self.low[d] <= other.high[d] && other.low[d] <= self.high[d])
    }

    /// The intersection, if non-empty.
    pub fn intersection(&self, other: &HyperRect) -> Option<HyperRect> {
        if !self.intersects(other) {
            return None;
        }
        Some(HyperRect {
            low: (0..self.rank())
                .map(|d| self.low[d].max(other.low[d]))
                .collect(),
            high: (0..self.rank())
                .map(|d| self.high[d].min(other.high[d]))
                .collect(),
        })
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &HyperRect) -> HyperRect {
        assert_eq!(self.rank(), other.rank(), "rect rank mismatch");
        HyperRect {
            low: (0..self.rank())
                .map(|d| self.low[d].min(other.low[d]))
                .collect(),
            high: (0..self.rank())
                .map(|d| self.high[d].max(other.high[d]))
                .collect(),
        }
    }

    /// Grows the rectangle by `margin` cells on every side (used by the
    /// PanSTARRS-style overlap replication of §2.13).
    pub fn expanded(&self, margin: i64) -> HyperRect {
        HyperRect {
            low: self.low.iter().map(|l| l - margin).collect(),
            high: self.high.iter().map(|h| h + margin).collect(),
        }
    }

    /// Row-major linear offset of `coords` within the rectangle
    /// (last dimension varies fastest).
    pub fn linearize(&self, coords: &[i64]) -> usize {
        debug_assert!(self.contains(coords), "{coords:?} outside {self:?}");
        let mut idx: i64 = 0;
        for (d, (&c, &lo)) in coords.iter().zip(&self.low).enumerate() {
            idx = idx * self.len(d) + (c - lo);
        }
        idx as usize
    }

    /// Inverse of [`linearize`](Self::linearize).
    pub fn delinearize(&self, mut idx: usize) -> Coords {
        let mut coords = vec![0i64; self.rank()];
        for d in (0..self.rank()).rev() {
            let len = self.len(d) as usize;
            coords[d] = self.low[d] + (idx % len) as i64;
            idx /= len;
        }
        coords
    }

    /// Iterates all cell coordinates in row-major order.
    pub fn iter_cells(&self) -> CellCoordIter {
        CellCoordIter {
            rect: self.clone(),
            next: Some(self.low.clone()),
        }
    }
}

/// Row-major iterator over the coordinates of a [`HyperRect`].
pub struct CellCoordIter {
    rect: HyperRect,
    next: Option<Coords>,
}

impl Iterator for CellCoordIter {
    type Item = Coords;

    fn next(&mut self) -> Option<Coords> {
        let current = self.next.take()?;
        // Compute successor: increment last dim, carrying leftwards.
        let mut succ = current.clone();
        let mut d = self.rect.rank();
        loop {
            if d == 0 {
                // overflowed the first dimension: iteration ends
                self.next = None;
                break;
            }
            d -= 1;
            succ[d] += 1;
            if succ[d] <= self.rect.high[d] {
                self.next = Some(succ);
                break;
            }
            succ[d] = self.rect.low[d];
        }
        Some(current)
    }
}

/// Aligns `coord` down to its chunk origin for a stride starting at 1:
/// origins are `1, 1+stride, 1+2·stride, …`.
pub fn chunk_origin(coord: i64, stride: i64) -> i64 {
    debug_assert!(stride > 0);
    ((coord - 1).div_euclid(stride)) * stride + 1
}

/// The chunk-origin coordinates for a cell given per-dimension strides.
pub fn chunk_origin_of(coords: &[i64], strides: &[i64]) -> Coords {
    coords
        .iter()
        .zip(strides)
        .map(|(&c, &s)| chunk_origin(c, s))
        .collect()
}

/// The chunk rectangle with the given origin and strides, clipped to
/// optional per-dimension upper bounds.
pub fn chunk_rect(origin: &[i64], strides: &[i64], uppers: &[Option<i64>]) -> HyperRect {
    let high = origin
        .iter()
        .zip(strides)
        .zip(uppers)
        .map(|((&o, &s), &u)| {
            let h = o + s - 1;
            match u {
                Some(u) => h.min(u),
                None => h,
            }
        })
        .collect();
    HyperRect {
        low: origin.to_vec(),
        high,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(low: &[i64], high: &[i64]) -> HyperRect {
        HyperRect::new(low.to_vec(), high.to_vec()).unwrap()
    }

    #[test]
    fn volume_and_shape() {
        let rect = r(&[1, 1], &[4, 3]);
        assert_eq!(rect.volume(), 12);
        assert_eq!(rect.shape(), vec![4, 3]);
    }

    #[test]
    fn rejects_inverted_bounds_and_rank_mismatch() {
        assert!(HyperRect::new(vec![2], vec![1]).is_err());
        assert!(HyperRect::new(vec![1], vec![1, 2]).is_err());
    }

    #[test]
    fn contains_and_intersects() {
        let a = r(&[1, 1], &[4, 4]);
        assert!(a.contains(&[1, 4]));
        assert!(!a.contains(&[0, 4]));
        assert!(!a.contains(&[1]));
        let b = r(&[4, 4], &[8, 8]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(&[4, 4], &[4, 4])));
        let c = r(&[5, 5], &[8, 8]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn union_covers_both() {
        let u = r(&[1, 5], &[2, 6]).union(&r(&[3, 1], &[4, 2]));
        assert_eq!(u, r(&[1, 1], &[4, 6]));
    }

    #[test]
    fn linearize_roundtrip_row_major() {
        let rect = r(&[1, 1, 1], &[2, 3, 4]);
        let mut seen = vec![false; rect.volume() as usize];
        for c in rect.iter_cells() {
            let idx = rect.linearize(&c);
            assert_eq!(rect.delinearize(idx), c);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Row-major: last dim fastest.
        assert_eq!(rect.linearize(&[1, 1, 1]), 0);
        assert_eq!(rect.linearize(&[1, 1, 2]), 1);
        assert_eq!(rect.linearize(&[1, 2, 1]), 4);
        assert_eq!(rect.linearize(&[2, 1, 1]), 12);
    }

    #[test]
    fn iter_cells_in_order() {
        let rect = r(&[1, 1], &[2, 2]);
        let cells: Vec<Coords> = rect.iter_cells().collect();
        assert_eq!(cells, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn iter_cells_single_cell() {
        let rect = HyperRect::cell(&[5, 7]);
        assert_eq!(rect.iter_cells().count(), 1);
    }

    #[test]
    fn chunk_origin_alignment() {
        assert_eq!(chunk_origin(1, 64), 1);
        assert_eq!(chunk_origin(64, 64), 1);
        assert_eq!(chunk_origin(65, 64), 65);
        assert_eq!(chunk_origin(129, 64), 129);
        assert_eq!(chunk_origin(1, 1), 1);
        assert_eq!(chunk_origin(7, 1), 7);
    }

    #[test]
    fn chunk_rect_clips_to_upper_bound() {
        let rect = chunk_rect(&[65, 1], &[64, 64], &[Some(100), Some(64)]);
        assert_eq!(rect, r(&[65, 1], &[100, 64]));
        let unbounded = chunk_rect(&[65], &[64], &[None]);
        assert_eq!(unbounded, r(&[65], &[128]));
    }

    #[test]
    fn expanded_grows_both_sides() {
        assert_eq!(r(&[5, 5], &[6, 6]).expanded(2), r(&[3, 3], &[8, 8]));
    }
}
