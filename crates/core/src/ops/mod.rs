//! The SciDB operator suite (§2.2).
//!
//! Operators "fall into two broad categories":
//!
//! * [`structural`] — operators that "create new arrays based purely on the
//!   structure of the inputs … data-agnostic", presenting optimization
//!   opportunities because they need not read data values: Subsample,
//!   Exists?, Reshape, Sjoin, add/remove dimension, Concat, Cross product.
//! * [`content`] — operators "whose result depends on the data that is
//!   stored in the input array": Filter, Aggregate, Cjoin, Apply, Project.
//! * [`regrid`] — the canonical user-extendable science operation (§2.3):
//!   "science users wish to regrid arrays".
//! * [`dense`] — vectorized positional kernels over dense columnar chunks:
//!   the physical operators that realize the §2.1 array-over-tables
//!   advantage (contiguous slab scans, arithmetic regrid, hash-free
//!   co-aligned joins).
//!
//! # The parallel-kernel contract
//!
//! Chunk-parallel kernels fan per-chunk work out over
//! [`ExecContext::try_par_map`](crate::exec::ExecContext::try_par_map) and
//! combine the per-chunk partial results with a *named*, deterministic merge
//! function, so serial and parallel runs are bitwise identical. Every such
//! kernel must be declared in [`PARALLEL_KERNELS`]; `cargo xtask analyze`
//! (rule R2) cross-checks the declaration against the source — an
//! undeclared `try_par_map` call site, a missing merge function, or a
//! kernel absent from the serial≡parallel equivalence tests is a build
//! failure.

pub(crate) mod batch;
pub mod content;
pub mod dense;
pub mod regrid;
pub mod structural;

use crate::array::Array;
use crate::chunk::Chunk;
use crate::error::Result;
use crate::geometry::Coords;
use crate::udf::{AggState, AggregateFn};
use crate::value::Record;
use std::collections::BTreeMap;

pub use content::{
    aggregate, aggregate_with, apply, apply_with, cjoin, filter, filter_with, project,
    project_with, AggInput,
};
pub use regrid::{regrid, regrid_with};
pub use structural::{
    add_dimension, concat, cross_product, exists, remove_dimension, reshape, sjoin, subsample,
    subsample_with, DimCond, DimPredicate,
};

/// Contract descriptor for one chunk-parallel kernel.
///
/// Checked statically by `cargo xtask analyze` (rules R2/R6): the `entry`
/// function must exist and be the only place its file calls
/// `try_par_map`/`par_map`, the `merge` function must be referenced from the
/// same file, the entry must appear in `tests/proptest_parallel.rs` (the
/// serial≡parallel equivalence suite), and the `batch` function must exist
/// in `core::ops` and be referenced from the entry's file (the columnar
/// fast path is actually wired, not just declared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Operator name as recorded in [`OpMetrics`](crate::exec::OpMetrics).
    pub name: &'static str,
    /// The `*_with` entry point that fans chunks out over the context.
    pub entry: &'static str,
    /// The deterministic merge combining per-chunk partial results.
    pub merge: &'static str,
    /// The columnar batch kernel ([`batch`] module) the entry dispatches
    /// to for dense chunks.
    pub batch: &'static str,
}

/// Every chunk-parallel kernel in the engine, with its merge function.
pub const PARALLEL_KERNELS: &[KernelSpec] = &[
    KernelSpec {
        name: "subsample",
        entry: "subsample_with",
        merge: "merge_chunk_outputs",
        batch: "subsample_columns",
    },
    KernelSpec {
        name: "filter",
        entry: "filter_with",
        merge: "merge_chunk_outputs",
        batch: "filter_columns",
    },
    KernelSpec {
        name: "apply",
        entry: "apply_with",
        merge: "merge_chunk_outputs",
        batch: "apply_columns",
    },
    KernelSpec {
        name: "project",
        entry: "project_with",
        merge: "merge_chunk_outputs",
        batch: "project_columns",
    },
    KernelSpec {
        name: "aggregate",
        entry: "aggregate_with",
        merge: "merge_agg_partials",
        batch: "fold_groups_columnar",
    },
    KernelSpec {
        name: "regrid",
        entry: "regrid_with",
        merge: "merge_agg_partials",
        batch: "fold_groups_columnar",
    },
];

/// Per-chunk partial aggregate export: `(group key, one partial record per
/// aggregate state)`.
pub(crate) type AggPartials = Vec<(Coords, Vec<Record>)>;

/// Merged per-group aggregate states, keyed by group coordinates.
pub(crate) type GroupStates = BTreeMap<Coords, Vec<Box<dyn AggState>>>;

/// Deterministic merge for chunk-rewriting kernels (subsample, filter,
/// apply, project): inserts each non-empty output chunk into `out` in chunk
/// order and returns the total cell count.
///
/// `results` arrives from `try_par_map` in *item order* (the array's chunk
/// map order) regardless of thread scheduling, so the output array is
/// identical at every thread count.
pub(crate) fn merge_chunk_outputs(out: &mut Array, results: Vec<(Chunk, u64)>) -> u64 {
    let mut total_cells = 0u64;
    for (oc, cells) in results {
        total_cells += cells;
        if !oc.is_empty() {
            out.insert_chunk(oc);
        }
    }
    total_cells
}

/// Deterministic merge for partial-aggregating kernels (aggregate, regrid):
/// folds per-chunk exported partials into per-group states, merging in
/// chunk order — never in thread-completion order — so floating-point
/// aggregates are bitwise identical at every thread count.
///
/// `n_states` is the number of aggregate states per group (one per
/// aggregated attribute). Returns the merged groups and total cell count.
pub(crate) fn merge_agg_partials(
    agg: &dyn AggregateFn,
    n_states: usize,
    partials: Vec<(AggPartials, u64)>,
) -> Result<(GroupStates, u64)> {
    let mut groups: GroupStates = BTreeMap::new();
    let mut total_cells = 0u64;
    for (exported, cells) in partials {
        total_cells += cells;
        for (key, recs) in exported {
            let states = groups
                .entry(key)
                .or_insert_with(|| (0..n_states).map(|_| agg.create()).collect());
            for (state, prec) in states.iter_mut().zip(&recs) {
                state.merge(prec)?;
            }
        }
    }
    Ok((groups, total_cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::value::Value;

    #[test]
    fn kernel_manifest_is_well_formed() {
        let mut names: Vec<&str> = PARALLEL_KERNELS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            PARALLEL_KERNELS.len(),
            "kernel names must be unique"
        );
        for k in PARALLEL_KERNELS {
            assert!(!k.name.is_empty());
            assert!(
                k.entry.ends_with("_with"),
                "kernel entry '{}' must be a *_with context entry point",
                k.entry
            );
            assert!(k.merge.starts_with("merge_"));
            assert!(
                !k.batch.is_empty(),
                "kernel '{}' must name its columnar batch function",
                k.name
            );
        }
    }

    #[test]
    fn merge_chunk_outputs_skips_empty_and_counts_cells() {
        let a = Array::int_1d("A", "x", &[1, 2, 3]);
        let mut out = Array::from_arc(a.schema_arc());
        let full: Vec<(Chunk, u64)> = a.chunks().values().map(|c| (c.clone(), 2)).collect();
        let empty = Chunk::new(
            a.chunks().values().next().expect("chunk").rect().clone(),
            a.chunks().values().next().expect("chunk").attr_types(),
        );
        let n = full.len();
        let mut results = full;
        results.push((empty, 0));
        let cells = merge_chunk_outputs(&mut out, results);
        assert_eq!(cells, 2 * n as u64);
        assert_eq!(out.chunks().len(), n); // empty chunk not inserted
    }

    #[test]
    fn merge_agg_partials_merges_in_chunk_order() {
        let reg = Registry::with_builtins();
        let agg = reg.aggregate("sum").expect("builtin sum");
        let partials: Vec<(AggPartials, u64)> = vec![
            (vec![(vec![1], vec![sum_partial(&*agg, 10)])], 1),
            (vec![(vec![1], vec![sum_partial(&*agg, 32)])], 1),
        ];
        let (groups, cells) = merge_agg_partials(&*agg, 1, partials).expect("merge");
        assert_eq!(cells, 2);
        let states = groups.get(&vec![1]).expect("group");
        assert_eq!(states[0].finalize(), Value::from(42i64));
    }

    fn sum_partial(agg: &dyn AggregateFn, v: i64) -> Record {
        let mut s = agg.create();
        s.update(&Value::from(v)).expect("update");
        s.partial()
    }
}
