//! The SciDB operator suite (§2.2).
//!
//! Operators "fall into two broad categories":
//!
//! * [`structural`] — operators that "create new arrays based purely on the
//!   structure of the inputs … data-agnostic", presenting optimization
//!   opportunities because they need not read data values: Subsample,
//!   Exists?, Reshape, Sjoin, add/remove dimension, Concat, Cross product.
//! * [`content`] — operators "whose result depends on the data that is
//!   stored in the input array": Filter, Aggregate, Cjoin, Apply, Project.
//! * [`regrid`] — the canonical user-extendable science operation (§2.3):
//!   "science users wish to regrid arrays".
//! * [`dense`] — vectorized positional kernels over dense columnar chunks:
//!   the physical operators that realize the §2.1 array-over-tables
//!   advantage (contiguous slab scans, arithmetic regrid, hash-free
//!   co-aligned joins).

pub mod content;
pub mod dense;
pub mod regrid;
pub mod structural;

pub use content::{
    aggregate, aggregate_with, apply, apply_with, cjoin, filter, filter_with, project,
    project_with, AggInput,
};
pub use regrid::{regrid, regrid_with};
pub use structural::{
    add_dimension, concat, cross_product, exists, remove_dimension, reshape, sjoin, subsample,
    subsample_with, DimCond, DimPredicate,
};
