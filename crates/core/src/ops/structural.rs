//! Structural operators (§2.2.1): data-agnostic array restructuring.
//!
//! "These operators do not necessarily have to read the data values to
//! produce a result", so implementations here prune whole chunks by
//! rectangle arithmetic wherever possible.

use crate::array::Array;
use crate::error::{Error, Result};
use crate::geometry::{Coords, HyperRect};
use crate::registry::Registry;
use crate::schema::{ArraySchema, AttributeDef, DimensionDef};
use crate::value::{Record, Value};
use std::collections::HashMap;

/// A condition on a single dimension's value.
///
/// Subsample predicates "must be a conjunction of conditions on each
/// dimension independently" — `X = 3 and Y < 4` is legal, `X = Y` is not.
/// That legality rule is enforced *by construction*: a [`DimCond`] mentions
/// exactly one dimension and cannot reference another.
#[derive(Debug, Clone)]
pub enum DimCond {
    /// `= v`
    Eq(i64),
    /// `!= v`
    Ne(i64),
    /// `< v`
    Lt(i64),
    /// `<= v`
    Le(i64),
    /// `> v`
    Gt(i64),
    /// `>= v`
    Ge(i64),
    /// `BETWEEN lo AND hi` (inclusive).
    Between(i64, i64),
    /// Membership in an explicit set.
    In(Vec<i64>),
    /// Even index — the paper's `Subsample(F, even(X))`.
    Even,
    /// Odd index.
    Odd,
    /// A registered integer→bool UDF, by name (§2.3 extendibility).
    Fn(String),
}

impl DimCond {
    /// Evaluates the condition for one dimension value.
    pub fn matches(&self, v: i64, registry: Option<&Registry>) -> Result<bool> {
        Ok(match self {
            DimCond::Eq(x) => v == *x,
            DimCond::Ne(x) => v != *x,
            DimCond::Lt(x) => v < *x,
            DimCond::Le(x) => v <= *x,
            DimCond::Gt(x) => v > *x,
            DimCond::Ge(x) => v >= *x,
            DimCond::Between(lo, hi) => *lo <= v && v <= *hi,
            DimCond::In(set) => set.contains(&v),
            DimCond::Even => v % 2 == 0,
            DimCond::Odd => v % 2 != 0,
            DimCond::Fn(name) => {
                let registry = registry.ok_or_else(|| {
                    Error::eval(format!("no registry for dimension predicate '{name}'"))
                })?;
                let f = registry.scalar_fn(name)?;
                f.call(&[Value::from(v)])?
                    .as_bool()
                    .ok_or_else(|| Error::eval(format!("'{name}' must return bool")))?
            }
        })
    }

    /// Narrows a `[lo, hi]` index range using the condition; used for
    /// chunk pruning. Returns `None` when the range becomes empty.
    pub fn narrow(&self, lo: i64, hi: i64) -> Option<(i64, i64)> {
        let (nlo, nhi) = match self {
            DimCond::Eq(x) => (lo.max(*x), hi.min(*x)),
            DimCond::Lt(x) => (lo, hi.min(x - 1)),
            DimCond::Le(x) => (lo, hi.min(*x)),
            DimCond::Gt(x) => (lo.max(x + 1), hi),
            DimCond::Ge(x) => (lo.max(*x), hi),
            DimCond::Between(a, b) => (lo.max(*a), hi.min(*b)),
            DimCond::In(set) => {
                let (mn, mx) = (set.iter().min(), set.iter().max());
                match (mn, mx) {
                    (Some(&mn), Some(&mx)) => (lo.max(mn), hi.min(mx)),
                    _ => return None,
                }
            }
            // Ne/Even/Odd/Fn don't narrow the contiguous range.
            _ => (lo, hi),
        };
        (nlo <= nhi).then_some((nlo, nhi))
    }
}

/// A conjunction of per-dimension conditions (the Subsample predicate).
#[derive(Debug, Clone, Default)]
pub struct DimPredicate {
    conds: Vec<(String, DimCond)>,
}

impl DimPredicate {
    /// The empty (always-true) predicate.
    pub fn new() -> Self {
        DimPredicate::default()
    }

    /// Adds a condition on dimension `dim` (fluent).
    pub fn with(mut self, dim: impl Into<String>, cond: DimCond) -> Self {
        self.conds.push((dim.into(), cond));
        self
    }

    /// The conditions.
    pub fn conds(&self) -> &[(String, DimCond)] {
        &self.conds
    }

    /// Validates that every referenced dimension exists in `schema`.
    pub fn validate(&self, schema: &ArraySchema) -> Result<()> {
        for (dim, _) in &self.conds {
            schema.require_dim(dim)?;
        }
        Ok(())
    }

    /// Evaluates the conjunction for one coordinate vector.
    pub fn matches(
        &self,
        schema: &ArraySchema,
        coords: &[i64],
        registry: Option<&Registry>,
    ) -> Result<bool> {
        for (dim, cond) in &self.conds {
            let d = schema.require_dim(dim)?;
            if !cond.matches(coords[d], registry)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Narrows a chunk rectangle; `None` if the chunk cannot contain
    /// matches (the structural-operator pruning opportunity of §2.2.1).
    pub fn narrow_rect(&self, schema: &ArraySchema, rect: &HyperRect) -> Option<HyperRect> {
        let mut low = rect.low.clone();
        let mut high = rect.high.clone();
        for (dim, cond) in &self.conds {
            let d = schema.dim_index(dim)?;
            let (nlo, nhi) = cond.narrow(low[d], high[d])?;
            low[d] = nlo;
            high[d] = nhi;
        }
        // lint: allow(option-api) — an inverted rect means the predicate matches nothing; None is pruning, not an error
        HyperRect::new(low, high).ok()
    }
}

/// `Subsample(A, P)`: selects the subslab matching a conjunctive dimension
/// predicate. "The output will always have the same number of dimensions as
/// the input … the index values are retained."
pub fn subsample(a: &Array, pred: &DimPredicate, registry: Option<&Registry>) -> Result<Array> {
    subsample_with(a, pred, registry, &crate::exec::ExecContext::serial())
}

/// [`subsample`] under an [`ExecContext`](crate::exec::ExecContext):
/// structural pruning first discards chunks whose rectangle cannot match,
/// then surviving chunks are filtered cell-by-cell in parallel.
pub fn subsample_with(
    a: &Array,
    pred: &DimPredicate,
    registry: Option<&Registry>,
    ctx: &crate::exec::ExecContext,
) -> Result<Array> {
    let start = std::time::Instant::now();
    pred.validate(a.schema())?;
    // Structural pruning: skip chunks whose rectangle cannot match.
    let survivors: Vec<&crate::chunk::Chunk> = a
        .chunks()
        .values()
        .filter(|chunk| pred.narrow_rect(a.schema(), chunk.rect()).is_some())
        .collect();
    let results = ctx.try_par_map(&survivors, |chunk| {
        // Columnar fast path: a conjunctive dimension predicate over a dense
        // chunk reduces to per-dimension lookup tables and one pass over the
        // presence bitmap — no record materialization. Bails (None) on
        // `DimCond::Fn` (which can error and needs the registry).
        if let Some((oc, cells)) = super::batch::subsample_columns(chunk, a.schema(), pred) {
            return Ok((oc, cells));
        }
        let mut oc = crate::chunk::Chunk::new(chunk.rect().clone(), chunk.attr_types());
        let mut cells = 0u64;
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            if pred.matches(a.schema(), &coords, registry)? {
                oc.set_record(&coords, &chunk.record_at(idx))?;
            }
        }
        Ok((oc, cells))
    })?;
    let mut out = Array::from_arc(a.schema_arc());
    let total_cells = super::merge_chunk_outputs(&mut out, results);
    ctx.record(
        "subsample",
        survivors.len() as u64,
        total_cells,
        start.elapsed(),
    );
    Ok(out)
}

/// `Exists? [A, 7, 7]` (§2.2.1): cell-presence test.
pub fn exists(a: &Array, coords: &[i64]) -> bool {
    a.exists(coords)
}

/// `Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])` (§2.2.1).
///
/// `order` lists the input dimensions in linearization order — the first
/// "most slowly" and the last "most quickly" varying. The linearized cells
/// are then re-formed into the new dimensions (first new dimension slowest).
/// Cell count must be preserved.
pub fn reshape(a: &Array, order: &[&str], new_dims: &[(String, i64)]) -> Result<Array> {
    let schema = a.schema();
    if order.len() != schema.rank() {
        return Err(Error::dimension(format!(
            "reshape order lists {} of {} dimensions",
            order.len(),
            schema.rank()
        )));
    }
    let mut perm = Vec::with_capacity(order.len());
    for name in order {
        let d = schema.require_dim(name)?;
        if perm.contains(&d) {
            return Err(Error::dimension(format!("dimension '{name}' listed twice")));
        }
        perm.push(d);
    }
    let old_rect = a
        .rect()
        .ok_or_else(|| Error::dimension("reshape requires a fully bounded array"))?;
    let old_count: i64 = old_rect.volume() as i64;
    let new_count: i64 = new_dims.iter().map(|(_, n)| *n).product();
    if old_count != new_count {
        return Err(Error::dimension(format!(
            "reshape must preserve cell count: {old_count} vs {new_count}"
        )));
    }
    for (name, n) in new_dims {
        if *n < 1 {
            return Err(Error::dimension(format!(
                "dimension '{name}' bound {n} < 1"
            )));
        }
    }

    let out_schema = ArraySchema::new(
        format!("reshape({})", schema.name()),
        schema.attrs().to_vec(),
        new_dims
            .iter()
            .map(|(name, n)| DimensionDef::bounded(name.clone(), *n))
            .collect(),
    )?;
    let mut out = Array::new(out_schema);

    // Permuted extents for linearization.
    let perm_lens: Vec<i64> = perm.iter().map(|&d| old_rect.len(d)).collect();
    let new_rect = out.rect().expect("bounded by construction");

    for (coords, rec) in a.cells() {
        // Linear position with `order[0]` slowest, `order[last]` fastest.
        let mut lin: i64 = 0;
        for (k, &d) in perm.iter().enumerate() {
            lin = lin * perm_lens[k] + (coords[d] - 1);
        }
        let new_coords = new_rect.delinearize(lin as usize);
        out.set_cell(&new_coords, rec)?;
    }
    Ok(out)
}

/// Builds the output attribute list of a join: A's attributes keep their
/// names; clashing B attributes are suffixed `_r` ("right").
fn join_attrs(a: &ArraySchema, b: &ArraySchema) -> Vec<AttributeDef> {
    let mut attrs = a.attrs().to_vec();
    for attr in b.attrs() {
        let mut def = attr.clone();
        if a.attr_index(&attr.name).is_some() {
            def.name = format!("{}_r", attr.name);
        }
        attrs.push(def);
    }
    attrs
}

/// Builds joined dimension list: all of A's dims, plus B's dims not named
/// in `drop_b`, suffixed `_r` on clashes.
fn join_dims(a: &ArraySchema, b: &ArraySchema, drop_b: &[usize]) -> Vec<DimensionDef> {
    let mut dims = a.dims().to_vec();
    for (i, d) in b.dims().iter().enumerate() {
        if drop_b.contains(&i) {
            continue;
        }
        let mut def = d.clone();
        if a.dim_index(&d.name).is_some() {
            def.name = format!("{}_r", d.name);
        }
        dims.push(def);
    }
    dims
}

/// `Sjoin(A, B, predicate)` (§2.2.1): structured join whose predicate is a
/// conjunction of equalities **over dimension values only**.
///
/// `on` pairs `(a_dim, b_dim)`. For an m-D and an n-D input joined on k
/// dimension pairs, the result is (m + n − k)-dimensional "with concatenated
/// cell tuples wherever the JOIN-predicate is true" — Figure 1.
pub fn sjoin(a: &Array, b: &Array, on: &[(&str, &str)]) -> Result<Array> {
    if on.is_empty() {
        return Err(Error::dimension(
            "sjoin requires at least one dimension pair",
        ));
    }
    let mut a_dims = Vec::new();
    let mut b_dims = Vec::new();
    for (da, db) in on {
        let ia = a.schema().require_dim(da)?;
        let ib = b.schema().require_dim(db)?;
        if a_dims.contains(&ia) || b_dims.contains(&ib) {
            return Err(Error::dimension("dimension joined twice"));
        }
        a_dims.push(ia);
        b_dims.push(ib);
    }

    let out_schema = ArraySchema::new(
        format!("sjoin({},{})", a.schema().name(), b.schema().name()),
        join_attrs(a.schema(), b.schema()),
        join_dims(a.schema(), b.schema(), &b_dims),
    )?;
    let mut out = Array::new(out_schema);

    // Hash B on its join-dimension values.
    let mut table: HashMap<Vec<i64>, Vec<(Coords, Record)>> = HashMap::new();
    for (coords, rec) in b.cells() {
        let key: Vec<i64> = b_dims.iter().map(|&d| coords[d]).collect();
        table.entry(key).or_default().push((coords, rec));
    }

    for (coords, rec) in a.cells() {
        let key: Vec<i64> = a_dims.iter().map(|&d| coords[d]).collect();
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for (b_coords, b_rec) in matches {
            let mut out_coords = coords.clone();
            for (i, c) in b_coords.iter().enumerate() {
                if !b_dims.contains(&i) {
                    out_coords.push(*c);
                }
            }
            let mut out_rec = rec.clone();
            out_rec.extend(b_rec.iter().cloned());
            out.set_cell(&out_coords, out_rec)?;
        }
    }
    Ok(out)
}

/// `add dimension` (§2.2.1): appends a new dimension of extent 1; every
/// existing cell moves to coordinate 1 along it.
pub fn add_dimension(a: &Array, name: &str) -> Result<Array> {
    if a.schema().dim_index(name).is_some() {
        return Err(Error::AlreadyExists(format!("dimension '{name}'")));
    }
    let mut dims = a.schema().dims().to_vec();
    dims.push(DimensionDef::bounded(name, 1));
    let schema = ArraySchema::new(
        format!("adddim({})", a.schema().name()),
        a.schema().attrs().to_vec(),
        dims,
    )?;
    let mut out = Array::new(schema);
    for (mut coords, rec) in a.cells() {
        coords.push(1);
        out.set_cell(&coords, rec)?;
    }
    Ok(out)
}

/// `remove dimension` (§2.2.1): slices the array at `at` along dimension
/// `name` and drops that dimension.
pub fn remove_dimension(a: &Array, name: &str, at: i64) -> Result<Array> {
    let d = a.schema().require_dim(name)?;
    if a.schema().rank() == 1 {
        return Err(Error::dimension("cannot remove the only dimension"));
    }
    let mut dims = a.schema().dims().to_vec();
    dims.remove(d);
    let schema = ArraySchema::new(
        format!("slice({})", a.schema().name()),
        a.schema().attrs().to_vec(),
        dims,
    )?;
    let mut out = Array::new(schema);
    for (coords, rec) in a.cells() {
        if coords[d] != at {
            continue;
        }
        let mut new_coords = coords.clone();
        new_coords.remove(d);
        out.set_cell(&new_coords, rec)?;
    }
    Ok(out)
}

/// `Concatenate` (§2.2.1): appends B after A along dimension `dim`.
/// Attribute lists must match; the other dimensions must have equal bounds.
pub fn concat(a: &Array, b: &Array, dim: &str) -> Result<Array> {
    if !a.schema().attrs_compatible(b.schema()) {
        return Err(Error::schema("concat requires identical attribute lists"));
    }
    let d = a.schema().require_dim(dim)?;
    let db = b.schema().require_dim(dim)?;
    if a.schema().rank() != b.schema().rank() {
        return Err(Error::dimension("concat requires equal rank"));
    }
    for (i, (da, dbm)) in a.schema().dims().iter().zip(b.schema().dims()).enumerate() {
        if i != d && da.upper != dbm.upper {
            return Err(Error::dimension(format!(
                "concat: dimension '{}' bounds differ",
                da.name
            )));
        }
    }
    let a_extent = a.schema().dims()[d]
        .upper
        .unwrap_or_else(|| a.high_water(d));
    let b_upper = b.schema().dims()[db].upper;

    let mut dims = a.schema().dims().to_vec();
    dims[d].upper = match (dims[d].upper, b_upper) {
        (Some(_), Some(bu)) => Some(a_extent + bu),
        _ => None,
    };
    let schema = ArraySchema::new(
        format!("concat({},{})", a.schema().name(), b.schema().name()),
        a.schema().attrs().to_vec(),
        dims,
    )?;
    let mut out = Array::new(schema);
    for (coords, rec) in a.cells() {
        out.set_cell(&coords, rec)?;
    }
    for (mut coords, rec) in b.cells() {
        coords[d] += a_extent;
        out.set_cell(&coords, rec)?;
    }
    Ok(out)
}

/// `Cross product` (§2.2.1): the (m+n)-dimensional array pairing every cell
/// of A with every cell of B, records concatenated.
pub fn cross_product(a: &Array, b: &Array) -> Result<Array> {
    let schema = ArraySchema::new(
        format!("cross({},{})", a.schema().name(), b.schema().name()),
        join_attrs(a.schema(), b.schema()),
        join_dims(a.schema(), b.schema(), &[]),
    )?;
    let mut out = Array::new(schema);
    for (a_coords, a_rec) in a.cells() {
        for (b_coords, b_rec) in b.cells() {
            let mut coords = a_coords.clone();
            coords.extend_from_slice(&b_coords);
            let mut rec = a_rec.clone();
            rec.extend(b_rec.iter().cloned());
            out.set_cell(&coords, rec)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{record, ScalarType};

    /// 2-D array F with dims X, Y; F[x,y] = 10x + y.
    fn grid(nx: i64, ny: i64) -> Array {
        let schema = SchemaBuilder::new("F")
            .attr("v", ScalarType::Int64)
            .dim("X", nx)
            .dim("Y", ny)
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.fill_with(|c| record([Value::from(10 * c[0] + c[1])]))
            .unwrap();
        a
    }

    #[test]
    fn subsample_even_x_matches_paper_example() {
        // Subsample(F, even(X)) keeps slices with even X, indices retained.
        let f = grid(4, 3);
        let r = Registry::with_builtins();
        let pred = DimPredicate::new().with("X", DimCond::Fn("even".into()));
        let out = subsample(&f, &pred, Some(&r)).unwrap();
        assert_eq!(out.rank(), 2);
        assert_eq!(out.cell_count(), 6);
        assert!(out.exists(&[2, 1]) && out.exists(&[4, 3]));
        assert!(!out.exists(&[1, 1]) && !out.exists(&[3, 2]));
        // Index values retained, not renumbered.
        assert_eq!(out.get_f64(0, &[2, 3]), Some(23.0));
    }

    #[test]
    fn subsample_conjunction() {
        // "X = 3 and Y < 4" — the paper's legal predicate.
        let f = grid(5, 5);
        let pred = DimPredicate::new()
            .with("X", DimCond::Eq(3))
            .with("Y", DimCond::Lt(4));
        let out = subsample(&f, &pred, None).unwrap();
        let coords: Vec<_> = out.cells().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![vec![3, 1], vec![3, 2], vec![3, 3]]);
    }

    #[test]
    fn subsample_unknown_dim_rejected() {
        let f = grid(2, 2);
        let pred = DimPredicate::new().with("Z", DimCond::Eq(1));
        assert!(subsample(&f, &pred, None).is_err());
    }

    #[test]
    fn subsample_between_and_in() {
        let f = grid(6, 1);
        let pred = DimPredicate::new().with("X", DimCond::Between(2, 4));
        assert_eq!(subsample(&f, &pred, None).unwrap().cell_count(), 3);
        let pred = DimPredicate::new().with("X", DimCond::In(vec![1, 6]));
        assert_eq!(subsample(&f, &pred, None).unwrap().cell_count(), 2);
    }

    #[test]
    fn dimcond_narrow_prunes() {
        assert_eq!(DimCond::Eq(5).narrow(1, 10), Some((5, 5)));
        assert_eq!(DimCond::Eq(15).narrow(1, 10), None);
        assert_eq!(DimCond::Between(3, 20).narrow(1, 10), Some((3, 10)));
        assert_eq!(DimCond::Lt(1).narrow(1, 10), None);
        assert_eq!(DimCond::Even.narrow(1, 10), Some((1, 10)));
    }

    #[test]
    fn exists_probe() {
        let f = grid(2, 2);
        assert!(exists(&f, &[2, 2]));
        assert!(!exists(&f, &[3, 1]));
    }

    #[test]
    fn reshape_2x3x4_to_8x3_like_paper() {
        // Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])
        let schema = SchemaBuilder::new("G")
            .attr("v", ScalarType::Int64)
            .dim("X", 2)
            .dim("Y", 3)
            .dim("Z", 4)
            .build()
            .unwrap();
        let mut g = Array::new(schema);
        g.fill_with(|c| record([Value::from(100 * c[0] + 10 * c[1] + c[2])]))
            .unwrap();
        let out = reshape(&g, &["X", "Z", "Y"], &[("U".into(), 8), ("V".into(), 3)]).unwrap();
        assert_eq!(out.rank(), 2);
        assert_eq!(out.cell_count(), 24);
        assert_eq!(out.schema().dims()[0].name, "U");
        // Linearization: X slowest, Y fastest. First cell = G[1,1,1].
        assert_eq!(out.get_f64(0, &[1, 1]), Some(111.0));
        // Position 1 (0-based) = G[1,2,1] (Y varies fastest).
        assert_eq!(out.get_f64(0, &[1, 2]), Some(121.0));
        // Position 3 = G[1,1,2] (after Y wraps 3 values).
        assert_eq!(out.get_f64(0, &[2, 1]), Some(112.0));
        // Last cell = G[2,3,4].
        assert_eq!(out.get_f64(0, &[8, 3]), Some(234.0));
    }

    #[test]
    fn reshape_to_1d() {
        let g = grid(2, 3);
        let out = reshape(&g, &["X", "Y"], &[("k".into(), 6)]).unwrap();
        assert_eq!(out.rank(), 1);
        assert_eq!(out.get_f64(0, &[1]), Some(11.0));
        assert_eq!(out.get_f64(0, &[6]), Some(23.0));
    }

    #[test]
    fn reshape_count_mismatch_rejected() {
        let g = grid(2, 3);
        assert!(reshape(&g, &["X", "Y"], &[("k".into(), 5)]).is_err());
    }

    #[test]
    fn reshape_rejects_partial_order() {
        let g = grid(2, 3);
        assert!(reshape(&g, &["X"], &[("k".into(), 6)]).is_err());
        assert!(reshape(&g, &["X", "X"], &[("k".into(), 6)]).is_err());
    }

    #[test]
    fn sjoin_figure1() {
        // Figure 1: two 1-D arrays with values [1, 2]; join on the
        // dimension; result has concatenated values at matching indices.
        let a = Array::int_1d("A", "x", &[1, 2]);
        let b = Array::int_1d("B", "x", &[1, 2]);
        let out = sjoin(&a, &b, &[("i", "i")]).unwrap();
        assert_eq!(out.rank(), 1); // 1 + 1 - 1
        assert_eq!(out.schema().attrs().len(), 2);
        assert_eq!(
            out.get_cell(&[1]),
            Some(vec![Value::from(1i64), Value::from(1i64)])
        );
        assert_eq!(
            out.get_cell(&[2]),
            Some(vec![Value::from(2i64), Value::from(2i64)])
        );
        assert_eq!(out.cell_count(), 2);
        // Clashing attribute renamed.
        assert_eq!(out.schema().attrs()[1].name, "x_r");
    }

    #[test]
    fn sjoin_partial_dims_gives_m_plus_n_minus_k() {
        // 2-D ⋈ 1-D on one dim pair → 2 dimensional result.
        let a = grid(2, 2); // dims X, Y
        let b = Array::int_1d("B", "w", &[5, 6]); // dim i
        let out = sjoin(&a, &b, &[("X", "i")]).unwrap();
        assert_eq!(out.rank(), 2); // 2 + 1 - 1
        assert_eq!(out.cell_count(), 4);
        // A[2,1] joins B[2]=6.
        assert_eq!(
            out.get_cell(&[2, 1]),
            Some(vec![Value::from(21i64), Value::from(6i64)])
        );
    }

    #[test]
    fn sjoin_no_match_empty() {
        let a = Array::int_1d("A", "x", &[1]);
        let mut b = Array::new(
            SchemaBuilder::new("B")
                .attr("y", ScalarType::Int64)
                .dim("i", 5)
                .build()
                .unwrap(),
        );
        b.set_cell(&[5], record([Value::from(9i64)])).unwrap();
        let out = sjoin(&a, &b, &[("i", "i")]).unwrap();
        assert_eq!(out.cell_count(), 0);
    }

    #[test]
    fn add_remove_dimension_roundtrip() {
        let a = grid(2, 3);
        let up = add_dimension(&a, "layer").unwrap();
        assert_eq!(up.rank(), 3);
        assert_eq!(up.get_f64(0, &[2, 3, 1]), Some(23.0));
        let down = remove_dimension(&up, "layer", 1).unwrap();
        assert_eq!(down.rank(), 2);
        assert!(down.same_cells(&a));
    }

    #[test]
    fn remove_dimension_slices() {
        let a = grid(3, 4);
        let row2 = remove_dimension(&a, "X", 2).unwrap();
        assert_eq!(row2.rank(), 1);
        assert_eq!(row2.cell_count(), 4);
        assert_eq!(row2.get_f64(0, &[4]), Some(24.0));
    }

    #[test]
    fn remove_only_dimension_rejected() {
        let a = Array::int_1d("A", "x", &[1, 2]);
        assert!(remove_dimension(&a, "i", 1).is_err());
    }

    #[test]
    fn concat_along_dimension() {
        let a = grid(2, 3);
        let b = grid(2, 3);
        let out = concat(&a, &b, "X").unwrap();
        assert_eq!(out.schema().dims()[0].upper, Some(4));
        assert_eq!(out.cell_count(), 12);
        assert_eq!(out.get_f64(0, &[3, 1]), Some(11.0)); // b[1,1] shifted
        assert_eq!(out.get_f64(0, &[2, 3]), Some(23.0)); // a[2,3] in place
    }

    #[test]
    fn concat_requires_matching_bounds_and_attrs() {
        let a = grid(2, 3);
        let b = grid(2, 4);
        assert!(concat(&a, &b, "X").is_err());
        let c = Array::f64_2d("C", "v", &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert!(concat(&a, &c, "X").is_err()); // attr type differs
    }

    #[test]
    fn cross_product_dims_and_cells() {
        let a = Array::int_1d("A", "x", &[1, 2]);
        let b = Array::int_1d("B", "y", &[7, 8, 9]);
        let out = cross_product(&a, &b).unwrap();
        assert_eq!(out.rank(), 2);
        assert_eq!(out.cell_count(), 6);
        assert_eq!(
            out.get_cell(&[2, 3]),
            Some(vec![Value::from(2i64), Value::from(9i64)])
        );
        // Clashing dim name suffixed.
        assert_eq!(out.schema().dims()[1].name, "i_r");
    }
}
