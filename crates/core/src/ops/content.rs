//! Content-dependent operators (§2.2.2): Filter, Aggregate, Cjoin, Apply,
//! Project — "operators whose result depends on the data that is stored in
//! the input array".

use crate::array::Array;
use crate::chunk::Chunk;
use crate::error::{Error, Result};
use crate::exec::ExecContext;
use crate::expr::{EvalContext, Expr};
use crate::registry::Registry;
use crate::schema::{ArraySchema, AttrType, AttributeDef, DimensionDef};
use crate::value::{Record, ScalarType, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// `Filter(A, P)` (§2.2.2): "Filter returns an array with the same
/// dimensions as A. … A(v) will contain A(v) if P(A(v)) evaluates to true,
/// otherwise it will contain NULL."
///
/// Present cells that fail the predicate (or for which it is NULL) become
/// all-NULL records; empty cells stay empty.
pub fn filter(a: &Array, pred: &Expr, registry: Option<&Registry>) -> Result<Array> {
    filter_with(a, pred, registry, &ExecContext::serial())
}

/// [`filter`] under an [`ExecContext`]: the predicate touches each chunk
/// independently, so chunks are evaluated in parallel up to the context's
/// thread budget.
pub fn filter_with(
    a: &Array,
    pred: &Expr,
    registry: Option<&Registry>,
    ctx: &ExecContext,
) -> Result<Array> {
    let start = Instant::now();
    let null_rec: Record = vec![Value::Null; a.schema().attrs().len()];
    let chunks: Vec<&Chunk> = a.chunks().values().collect();
    let results = ctx.try_par_map(&chunks, |chunk| {
        // Columnar fast path: evaluate the predicate over whole columns and
        // null-out failing lanes via a selection mask. Bails (None) on any
        // form that could error or that the batch evaluator cannot prove
        // exact, falling through to the per-cell loop below.
        if let Some(oc) = super::batch::filter_columns(chunk, a.schema(), pred) {
            return Ok((oc, chunk.present_count() as u64));
        }
        let mut oc = Chunk::new(chunk.rect().clone(), chunk.attr_types());
        let mut cells = 0u64;
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            let rec = chunk.record_at(idx);
            let ectx = EvalContext {
                schema: a.schema(),
                coords: &coords,
                record: &rec,
                registry,
            };
            let keep = pred.eval_bool(&ectx)?.unwrap_or(false);
            if keep {
                oc.set_record(&coords, &rec)?;
            } else {
                oc.set_record(&coords, &null_rec)?;
            }
        }
        Ok((oc, cells))
    })?;
    let mut out = Array::from_arc(a.schema_arc());
    let total_cells = super::merge_chunk_outputs(&mut out, results);
    ctx.record("filter", chunks.len() as u64, total_cells, start.elapsed());
    Ok(out)
}

/// What an aggregate consumes.
#[derive(Debug, Clone)]
pub enum AggInput {
    /// `Agg(*)`: aggregate every attribute, producing one output attribute
    /// per input attribute.
    Star,
    /// `Agg(attr)`: aggregate one named attribute.
    Attr(String),
}

/// `Aggregate(A, G, Agg)` (§2.2.2): groups on `k` dimensions and applies the
/// aggregate over each (n−k)-dimensional subarray — Figure 2's
/// `Aggregate(H, {Y}, Sum(*))`.
///
/// With an empty `group_dims`, the whole array aggregates to a single cell
/// in a 1-dimensional result of extent 1. "Data attributes cannot be used
/// for grouping" by construction: `group_dims` names dimensions only.
pub fn aggregate(
    a: &Array,
    group_dims: &[&str],
    agg_name: &str,
    input: AggInput,
    registry: &Registry,
) -> Result<Array> {
    aggregate_with(
        a,
        group_dims,
        agg_name,
        input,
        registry,
        &ExecContext::serial(),
    )
}

/// [`aggregate`] under an [`ExecContext`]: each chunk computes partial
/// aggregate states independently; the coordinator merges partials in chunk
/// order via [`crate::udf::AggState::merge`].
///
/// The partial/merge structure is used at *every* thread count — parallelism
/// changes which thread computes a chunk's partial, never how partials are
/// combined — so serial and parallel runs are bitwise identical even for
/// floating-point aggregates.
pub fn aggregate_with(
    a: &Array,
    group_dims: &[&str],
    agg_name: &str,
    input: AggInput,
    registry: &Registry,
    ctx: &ExecContext,
) -> Result<Array> {
    let start = Instant::now();
    let schema = a.schema();
    let mut gdims = Vec::with_capacity(group_dims.len());
    for g in group_dims {
        let d = schema.require_dim(g)?;
        if gdims.contains(&d) {
            return Err(Error::dimension(format!("dimension '{g}' grouped twice")));
        }
        gdims.push(d);
    }
    let agg = registry.aggregate(agg_name)?;

    // Which attributes feed the aggregate.
    let attr_idxs: Vec<usize> = match &input {
        AggInput::Star => (0..schema.attrs().len()).collect(),
        AggInput::Attr(name) => vec![schema.require_attr(name)?],
    };
    for &i in &attr_idxs {
        if matches!(schema.attrs()[i].ty, AttrType::Nested(_)) {
            return Err(Error::schema(format!(
                "cannot aggregate nested-array attribute '{}'",
                schema.attrs()[i].name
            )));
        }
    }

    // Output schema: grouping dims (bounds inherited), one attribute per
    // aggregated input attribute.
    let out_dims: Vec<DimensionDef> = if gdims.is_empty() {
        vec![DimensionDef::bounded("all", 1)]
    } else {
        gdims.iter().map(|&d| schema.dims()[d].clone()).collect()
    };
    let out_attrs: Vec<AttributeDef> = attr_idxs
        .iter()
        .map(|&i| {
            let in_attr = &schema.attrs()[i];
            // Aggregate output types: count is int; others follow input.
            let ty = match agg_name.to_ascii_lowercase().as_str() {
                "count" => ScalarType::Int64,
                "avg" | "stddev" | "var" => ScalarType::Float64,
                _ => in_attr.ty.as_scalar().unwrap_or(ScalarType::Float64),
            };
            AttributeDef::scalar(format!("{}_{}", agg_name, in_attr.name), ty)
        })
        .collect();
    let out_schema =
        ArraySchema::new(format!("aggregate({})", schema.name()), out_attrs, out_dims)?;

    // Per-chunk partial aggregation: each chunk folds its cells into local
    // states and exports mergeable partials.
    let chunks: Vec<&Chunk> = a.chunks().values().collect();
    let partials = ctx.try_par_map(&chunks, |chunk| {
        let mut local: BTreeMap<Vec<i64>, Vec<Box<dyn crate::udf::AggState>>> = BTreeMap::new();
        // Columnar fold: ungrouped aggregates fold each attribute column
        // end-to-end (one state per column, no per-cell record build);
        // grouped aggregates still walk cells but read values straight out
        // of the columns. Both visit values in ascending offset order, so
        // the partials are bitwise identical to the per-cell loop's.
        let cells = if gdims.is_empty() {
            let mut states: Vec<Box<dyn crate::udf::AggState>> =
                attr_idxs.iter().map(|_| agg.create()).collect();
            let c = super::batch::fold_ungrouped_columnar(chunk, &attr_idxs, &mut states)?;
            if c > 0 {
                local.insert(vec![1], states);
            }
            c
        } else {
            super::batch::fold_groups_columnar(
                chunk,
                &attr_idxs,
                &*agg,
                |coords| gdims.iter().map(|&d| coords[d]).collect(),
                &mut local,
            )?
        };
        let exported: super::AggPartials = local
            .into_iter()
            .map(|(k, states)| (k, states.iter().map(|s| s.partial()).collect()))
            .collect();
        Ok((exported, cells))
    })?;

    // Ordered merge: partials are combined in chunk order, which is fixed by
    // the array's chunk map — never by thread scheduling.
    let (groups, total_cells) = super::merge_agg_partials(&*agg, attr_idxs.len(), partials)?;

    let mut out = Array::new(out_schema);
    for (key, states) in groups {
        let rec: Record = states.iter().map(|s| s.finalize()).collect();
        out.set_cell(&key, rec)?;
    }
    ctx.record(
        "aggregate",
        chunks.len() as u64,
        total_cells,
        start.elapsed(),
    );
    Ok(out)
}

/// `Cjoin(A, B, P)` (§2.2.2): content-based join whose predicate ranges
/// **over data values only**. The result is (m+n)-dimensional "with
/// concatenated cell tuples wherever the JOIN-predicate was true. For cases
/// in which this predicate is false, the result array contains a NULL" —
/// Figure 3.
///
/// The predicate is evaluated against the concatenated record using the
/// output schema's attribute names (B's clashing attributes are suffixed
/// `_r`, so the paper's `A.val = B.val` is written `val = val_r`).
pub fn cjoin(a: &Array, b: &Array, pred: &Expr, registry: Option<&Registry>) -> Result<Array> {
    // Reuse the structural join's naming rules.
    let attrs = {
        let mut attrs = a.schema().attrs().to_vec();
        for attr in b.schema().attrs() {
            let mut def = attr.clone();
            if a.schema().attr_index(&attr.name).is_some() {
                def.name = format!("{}_r", attr.name);
            }
            attrs.push(def);
        }
        attrs
    };
    let dims = {
        let mut dims = a.schema().dims().to_vec();
        for d in b.schema().dims() {
            let mut def = d.clone();
            if a.schema().dim_index(&d.name).is_some() {
                def.name = format!("{}_r", d.name);
            }
            dims.push(def);
        }
        dims
    };
    let out_schema = ArraySchema::new(
        format!("cjoin({},{})", a.schema().name(), b.schema().name()),
        attrs,
        dims,
    )?;
    let mut out = Array::new(out_schema);
    let null_rec: Record = vec![Value::Null; a.schema().attrs().len() + b.schema().attrs().len()];

    let b_cells: Vec<(Vec<i64>, Record)> = b.cells().collect();
    for (a_coords, a_rec) in a.cells() {
        for (b_coords, b_rec) in &b_cells {
            let mut coords = a_coords.clone();
            coords.extend_from_slice(b_coords);
            let mut rec = a_rec.clone();
            rec.extend(b_rec.iter().cloned());
            let ctx = EvalContext {
                schema: out.schema(),
                coords: &coords,
                record: &rec,
                registry,
            };
            let matched = pred.eval_bool(&ctx)?.unwrap_or(false);
            if matched {
                out.set_cell(&coords, rec)?;
            } else {
                out.set_cell(&coords, null_rec.clone())?;
            }
        }
    }
    Ok(out)
}

/// `Apply(A, name, expr)` (§2.2.2): appends a computed attribute to every
/// present cell.
pub fn apply(
    a: &Array,
    new_attr: &str,
    expr: &Expr,
    out_type: ScalarType,
    registry: Option<&Registry>,
) -> Result<Array> {
    apply_with(
        a,
        new_attr,
        expr,
        out_type,
        registry,
        &ExecContext::serial(),
    )
}

/// [`apply`] under an [`ExecContext`]: the expression is evaluated per cell
/// with no cross-cell state, so chunks are computed in parallel.
pub fn apply_with(
    a: &Array,
    new_attr: &str,
    expr: &Expr,
    out_type: ScalarType,
    registry: Option<&Registry>,
    ctx: &ExecContext,
) -> Result<Array> {
    let start = Instant::now();
    if a.schema().attr_index(new_attr).is_some() {
        return Err(Error::AlreadyExists(format!("attribute '{new_attr}'")));
    }
    let mut attrs = a.schema().attrs().to_vec();
    attrs.push(AttributeDef::scalar(new_attr, out_type));
    let out_schema = ArraySchema::new(
        format!("apply({})", a.schema().name()),
        attrs,
        a.schema().dims().to_vec(),
    )?;
    let out_types: Vec<AttrType> = out_schema.attrs().iter().map(|at| at.ty.clone()).collect();
    let chunks: Vec<&Chunk> = a.chunks().values().collect();
    let results = ctx.try_par_map(&chunks, |chunk| {
        // Columnar fast path: evaluate the expression over whole columns and
        // append the result as a new column; bails to the per-cell loop on
        // anything the batch evaluator cannot prove exact.
        if let Some(oc) = super::batch::apply_columns(chunk, a.schema(), expr, &out_types) {
            return Ok((oc, chunk.present_count() as u64));
        }
        let mut oc = Chunk::new(chunk.rect().clone(), &out_types);
        let mut cells = 0u64;
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            let rec = chunk.record_at(idx);
            let ectx = EvalContext {
                schema: a.schema(),
                coords: &coords,
                record: &rec,
                registry,
            };
            let v = expr.eval(&ectx)?;
            let mut new_rec = rec;
            new_rec.push(v);
            oc.set_record(&coords, &new_rec)?;
        }
        Ok((oc, cells))
    })?;
    let mut out = Array::new(out_schema);
    let total_cells = super::merge_chunk_outputs(&mut out, results);
    ctx.record("apply", chunks.len() as u64, total_cells, start.elapsed());
    Ok(out)
}

/// `Project(A, attrs)` (§2.2.2): keeps only the named attributes.
pub fn project(a: &Array, keep: &[&str]) -> Result<Array> {
    project_with(a, keep, &ExecContext::serial())
}

/// [`project`] under an [`ExecContext`]: a pure per-chunk column selection,
/// computed in parallel.
pub fn project_with(a: &Array, keep: &[&str], ctx: &ExecContext) -> Result<Array> {
    let start = Instant::now();
    if keep.is_empty() {
        return Err(Error::schema("project requires at least one attribute"));
    }
    let mut idxs = Vec::with_capacity(keep.len());
    let mut attrs = Vec::with_capacity(keep.len());
    for name in keep {
        let i = a.schema().require_attr(name)?;
        if idxs.contains(&i) {
            return Err(Error::schema(format!("attribute '{name}' listed twice")));
        }
        idxs.push(i);
        attrs.push(a.schema().attrs()[i].clone());
    }
    let out_schema = ArraySchema::new(
        format!("project({})", a.schema().name()),
        attrs,
        a.schema().dims().to_vec(),
    )?;
    let out_types: Vec<AttrType> = out_schema.attrs().iter().map(|at| at.ty.clone()).collect();
    let chunks: Vec<&Chunk> = a.chunks().values().collect();
    let results = ctx.try_par_map(&chunks, |chunk| {
        // Columnar fast path: projection on a dense chunk is a straight
        // column subset — no per-cell record materialization at all.
        if let Some(oc) = super::batch::project_columns(chunk, &idxs, &out_types) {
            return Ok((oc, chunk.present_count() as u64));
        }
        let mut oc = Chunk::new(chunk.rect().clone(), &out_types);
        let mut cells = 0u64;
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            let rec = chunk.record_at(idx);
            let new_rec: Record = idxs.iter().map(|&i| rec[i].clone()).collect();
            oc.set_record(&coords, &new_rec)?;
        }
        Ok((oc, cells))
    })?;
    let mut out = Array::new(out_schema);
    let total_cells = super::merge_chunk_outputs(&mut out, results);
    ctx.record("project", chunks.len() as u64, total_cells, start.elapsed());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::record;

    #[test]
    fn filter_keeps_or_nulls_matching_paper() {
        let a = Array::f64_2d("A", "v", &[vec![1.0, 5.0], vec![3.0, 7.0]]);
        let out = filter(&a, &Expr::attr("v").gt(Expr::lit(4.0)), None).unwrap();
        // Same dimensions, same present cells.
        assert_eq!(out.cell_count(), 4);
        assert_eq!(out.get_cell(&[1, 2]), Some(vec![Value::from(5.0)]));
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::Null]));
        assert_eq!(out.get_cell(&[2, 2]), Some(vec![Value::from(7.0)]));
    }

    #[test]
    fn filter_null_predicate_yields_null_cell() {
        let mut a = Array::f64_2d("A", "v", &[vec![1.0]]);
        a.set_cell(&[1, 1], record([Value::Null])).unwrap();
        let out = filter(&a, &Expr::attr("v").gt(Expr::lit(0.0)), None).unwrap();
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::Null]));
    }

    #[test]
    fn aggregate_figure2() {
        // Figure 2: 2-D H grouped on Y with Sum(*).
        // H[x=1,y=1]=1, H[x=2,y=1]=3, H[x=1,y=2]=2, H[x=2,y=2]=5
        // → y=1 ↦ 4, y=2 ↦ 7.
        let schema = SchemaBuilder::new("H")
            .attr("v", ScalarType::Int64)
            .dim("X", 2)
            .dim("Y", 2)
            .build()
            .unwrap();
        let mut h = Array::new(schema);
        h.set_cell(&[1, 1], record([Value::from(1i64)])).unwrap();
        h.set_cell(&[2, 1], record([Value::from(3i64)])).unwrap();
        h.set_cell(&[1, 2], record([Value::from(2i64)])).unwrap();
        h.set_cell(&[2, 2], record([Value::from(5i64)])).unwrap();
        let r = Registry::with_builtins();
        let out = aggregate(&h, &["Y"], "sum", AggInput::Star, &r).unwrap();
        assert_eq!(out.rank(), 1);
        assert_eq!(out.schema().dims()[0].name, "Y");
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(4i64)]));
        assert_eq!(out.get_cell(&[2]), Some(vec![Value::from(7i64)]));
    }

    #[test]
    fn aggregate_no_groups_single_cell() {
        let a = Array::f64_2d("A", "v", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = Registry::with_builtins();
        let out = aggregate(&a, &[], "avg", AggInput::Attr("v".into()), &r).unwrap();
        assert_eq!(out.rank(), 1);
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(2.5)]));
    }

    #[test]
    fn aggregate_multi_attr_star() {
        let schema = SchemaBuilder::new("M")
            .attr("a", ScalarType::Int64)
            .attr("b", ScalarType::Float64)
            .dim("X", 2)
            .build()
            .unwrap();
        let mut m = Array::new(schema);
        m.set_cell(&[1], record([Value::from(1i64), Value::from(10.0)]))
            .unwrap();
        m.set_cell(&[2], record([Value::from(2i64), Value::from(20.0)]))
            .unwrap();
        let r = Registry::with_builtins();
        let out = aggregate(&m, &[], "sum", AggInput::Star, &r).unwrap();
        assert_eq!(out.schema().attrs().len(), 2);
        assert_eq!(out.schema().attrs()[0].name, "sum_a");
        assert_eq!(
            out.get_cell(&[1]),
            Some(vec![Value::from(3i64), Value::from(30.0)])
        );
    }

    #[test]
    fn aggregate_group_on_unknown_dim_rejected() {
        let a = Array::f64_2d("A", "v", &[vec![1.0]]);
        let r = Registry::with_builtins();
        assert!(aggregate(&a, &["nope"], "sum", AggInput::Star, &r).is_err());
        assert!(aggregate(&a, &["i", "i"], "sum", AggInput::Star, &r).is_err());
    }

    #[test]
    fn cjoin_figure3() {
        // Figure 3: same inputs as Figure 1, predicate on values.
        let a = Array::int_1d("A", "val", &[1, 2]);
        let b = Array::int_1d("B", "val", &[1, 2]);
        let pred = Expr::attr("val").eq(Expr::attr("val_r"));
        let out = cjoin(&a, &b, &pred, None).unwrap();
        assert_eq!(out.rank(), 2); // m + n
        assert_eq!(out.cell_count(), 4); // all combinations present
                                         // Matches on the diagonal carry concatenated tuples…
        assert_eq!(
            out.get_cell(&[1, 1]),
            Some(vec![Value::from(1i64), Value::from(1i64)])
        );
        assert_eq!(
            out.get_cell(&[2, 2]),
            Some(vec![Value::from(2i64), Value::from(2i64)])
        );
        // …and the rest are NULL.
        assert_eq!(out.get_cell(&[1, 2]), Some(vec![Value::Null, Value::Null]));
        assert_eq!(out.get_cell(&[2, 1]), Some(vec![Value::Null, Value::Null]));
    }

    #[test]
    fn apply_computes_new_attribute() {
        let a = Array::f64_2d("A", "v", &[vec![1.0, 2.0]]);
        let out = apply(
            &a,
            "double",
            &Expr::attr("v").mul(Expr::lit(2.0)),
            ScalarType::Float64,
            None,
        )
        .unwrap();
        assert_eq!(out.schema().attrs().len(), 2);
        assert_eq!(
            out.get_cell(&[1, 2]),
            Some(vec![Value::from(2.0), Value::from(4.0)])
        );
    }

    #[test]
    fn apply_can_use_dimensions_and_udfs() {
        let a = Array::f64_2d("A", "v", &[vec![0.0, 0.0]]);
        let r = Registry::with_builtins();
        let out = apply(
            &a,
            "jsq",
            &Expr::func("abs", vec![Expr::dim("j").mul(Expr::dim("j"))]),
            ScalarType::Float64,
            Some(&r),
        )
        .unwrap();
        assert_eq!(out.get_value(1, &[1, 2]), Some(Value::from(4.0)));
    }

    #[test]
    fn apply_duplicate_name_rejected() {
        let a = Array::f64_2d("A", "v", &[vec![1.0]]);
        assert!(apply(&a, "v", &Expr::attr("v"), ScalarType::Float64, None).is_err());
    }

    #[test]
    fn project_keeps_subset() {
        let schema = SchemaBuilder::new("M")
            .attr("a", ScalarType::Int64)
            .attr("b", ScalarType::Float64)
            .attr("c", ScalarType::Bool)
            .dim("X", 1)
            .build()
            .unwrap();
        let mut m = Array::new(schema);
        m.set_cell(
            &[1],
            record([Value::from(1i64), Value::from(2.0), Value::from(true)]),
        )
        .unwrap();
        let out = project(&m, &["c", "a"]).unwrap();
        assert_eq!(out.schema().attrs()[0].name, "c");
        assert_eq!(
            out.get_cell(&[1]),
            Some(vec![Value::from(true), Value::from(1i64)])
        );
        assert!(project(&m, &[]).is_err());
        assert!(project(&m, &["a", "a"]).is_err());
        assert!(project(&m, &["zz"]).is_err());
    }
}
