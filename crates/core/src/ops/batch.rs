//! Vectorized batch kernels over dense columnar chunks (§2.8).
//!
//! The chunk-parallel kernels in [`content`](super::content),
//! [`structural`](super::structural), and [`regrid`](super::regrid) fan
//! work out *across* chunks; this module makes execution *inside* a chunk
//! column-at-a-time. A dense chunk already stores each attribute as a
//! contiguous typed vector with a validity bitmap
//! ([`Column`](crate::chunk::Column)), so the batch path:
//!
//! * evaluates expressions as whole-column vector operations ([`BVec`]),
//!   producing tight `Vec<i64>`/`Vec<f64>` loops the compiler can
//!   autovectorize;
//! * turns filter into a **selection vector** — a null-out bitmap combined
//!   with the presence bitmap by word-level bit operations, never touching
//!   the value vectors (§2.2.2 semantics: failing present cells keep their
//!   position and become all-NULL records);
//! * turns project into pure column clones, apply into a fused
//!   expression-plus-append loop, and aggregate/regrid into per-column
//!   folds that never materialize records;
//! * evaluates subsample's per-dimension conditions once per distinct
//!   index value instead of once per cell.
//!
//! # The bail-out contract
//!
//! Every entry point returns `Option`: `None` means "this chunk or this
//! expression needs the value-at-a-time path", and the caller falls back
//! to the original per-cell loop. The batch evaluator only accepts
//! expression forms that are **provably error-free at every lane** for the
//! column types involved, because it evaluates all `capacity()` lanes —
//! including empty cells, whose column slots may hold stale values — and
//! only consumes results at present lanes. Anything that could error
//! (UDF calls, string/nested operands, modulo on floats, comparisons
//! where a relevant lane holds NaN, type-mismatched writes) bails, so the
//! fallback reproduces the serial engine's exact error behavior. Uncertain
//! columns are admitted **only** as direct comparison operands (compared
//! by mean, exactly like [`Scalar::compare`](crate::value::Scalar)); any
//! arithmetic on them bails because §2.13 error propagation changes the
//! result type.
//!
//! Byte-identity with the per-cell path is enforced by the conformance
//! harness (six engines) and by `tests/proptest_parallel.rs`; rule R6
//! additionally checks that every `PARALLEL_KERNELS` entry names its batch
//! function and that the entry file is actually wired to it.

use crate::bitvec::BitVec;
use crate::chunk::{Chunk, Column};
use crate::error::Result;
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::geometry::{Coords, HyperRect};
use crate::ops::structural::{DimCond, DimPredicate};
use crate::schema::{ArraySchema, AttrType};
use crate::udf::{AggState, AggregateFn};
use crate::value::{Scalar, ScalarType};
use std::collections::BTreeMap;

/// Typed value vector spanning every lane (linear offset) of one chunk.
enum BData {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
}

/// A batch evaluation result: one value per lane plus a NULL bitmap.
///
/// `uncertain` marks vectors whose `F64` data are the *means* of an
/// uncertain column; only comparisons may consume them (comparison is
/// defined on means), everything else bails.
struct BVec {
    data: BData,
    nulls: BitVec,
    uncertain: bool,
}

impl BVec {
    fn exact(data: BData, nulls: BitVec) -> BVec {
        BVec {
            data,
            nulls,
            uncertain: false,
        }
    }
}

/// Lane values of dimension `d`: `low[d] + (lane / stride) % extent`,
/// matching [`HyperRect::delinearize`] row-major order.
fn dim_lanes(rect: &HyperRect, d: usize) -> Vec<i64> {
    let n = rect.volume() as usize;
    let mut stride = 1usize;
    for e in d + 1..rect.rank() {
        stride *= rect.len(e) as usize;
    }
    let extent = rect.len(d) as usize;
    let lo = rect.low[d];
    (0..n)
        .map(|i| lo + ((i / stride) % extent) as i64)
        .collect()
}

/// Evaluates `expr` over every lane of a dense chunk. `None` = bail to the
/// per-cell path (see the module docs for the bail-out contract).
fn eval_batch(
    expr: &Expr,
    schema: &ArraySchema,
    cols: &[Column],
    rect: &HyperRect,
    present: &BitVec,
) -> Option<BVec> {
    let n = rect.volume() as usize;
    match expr {
        Expr::Attr(name) => {
            let i = schema.attr_index(name)?;
            match cols.get(i)? {
                Column::Int64 { data, nulls } => {
                    Some(BVec::exact(BData::I64(data.clone()), nulls.clone()))
                }
                Column::Float64 { data, nulls } => {
                    Some(BVec::exact(BData::F64(data.clone()), nulls.clone()))
                }
                Column::Bool { data, nulls } => {
                    Some(BVec::exact(BData::Bool(data.clone()), nulls.clone()))
                }
                Column::Uncertain { means, nulls, .. } => Some(BVec {
                    data: BData::F64(means.clone()),
                    nulls: nulls.clone(),
                    uncertain: true,
                }),
                Column::Str { .. } | Column::Nested { .. } => None,
            }
        }
        Expr::Dim(name) => {
            let d = schema.dim_index(name)?;
            Some(BVec::exact(
                BData::I64(dim_lanes(rect, d)),
                BitVec::filled(n, false),
            ))
        }
        Expr::Const(s) => {
            let data = match s {
                Scalar::Int64(v) => BData::I64(vec![*v; n]),
                Scalar::Float64(v) => BData::F64(vec![*v; n]),
                Scalar::Bool(v) => BData::Bool(vec![*v; n]),
                Scalar::String(_) | Scalar::Uncertain(_) => return None,
            };
            Some(BVec::exact(data, BitVec::filled(n, false)))
        }
        Expr::IsNull(inner) => {
            // IS NULL never errors and only needs the NULL bitmap, so any
            // column type is admissible when probed directly.
            let bits: Vec<bool> = if let Expr::Attr(name) = inner.as_ref() {
                let i = schema.attr_index(name)?;
                let col = cols.get(i)?;
                (0..n).map(|idx| col.is_null(idx)).collect()
            } else {
                let v = eval_batch(inner, schema, cols, rect, present)?;
                (0..n).map(|idx| v.nulls.get(idx)).collect()
            };
            Some(BVec::exact(BData::Bool(bits), BitVec::filled(n, false)))
        }
        Expr::Unary(op, e) => {
            let v = eval_batch(e, schema, cols, rect, present)?;
            if v.uncertain {
                return None; // §2.13 propagation changes the result type
            }
            match (op, v.data) {
                (UnaryOp::Neg, BData::I64(d)) => Some(BVec::exact(
                    BData::I64(d.iter().map(|x| x.wrapping_neg()).collect()),
                    v.nulls,
                )),
                (UnaryOp::Neg, BData::F64(d)) => Some(BVec::exact(
                    BData::F64(d.iter().map(|x| -x).collect()),
                    v.nulls,
                )),
                (UnaryOp::Not, BData::Bool(d)) => Some(BVec::exact(
                    BData::Bool(d.iter().map(|x| !x).collect()),
                    v.nulls,
                )),
                _ => None, // Neg on bool / Not on numeric error serially
            }
        }
        Expr::Binary(op, a, b) => {
            // The serial evaluator computes both operands unconditionally
            // (no short-circuit), so evaluating both here is equivalent.
            let va = eval_batch(a, schema, cols, rect, present)?;
            let vb = eval_batch(b, schema, cols, rect, present)?;
            match op {
                BinOp::And | BinOp::Or => eval_logic_batch(*op, va, vb),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    eval_cmp_batch(*op, va, vb, present)
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    eval_arith_batch(*op, va, vb)
                }
            }
        }
        // UDF calls can error per lane; NULL literals are rare enough that
        // the per-cell path handles them.
        Expr::Func(_, _) | Expr::Null => None,
    }
}

/// Kleene three-valued AND/OR over boolean vectors.
fn eval_logic_batch(op: BinOp, va: BVec, vb: BVec) -> Option<BVec> {
    if va.uncertain || vb.uncertain {
        return None;
    }
    let (BData::Bool(a), BData::Bool(b)) = (&va.data, &vb.data) else {
        return None; // non-boolean operands error serially (to_tri)
    };
    let n = a.len();
    let mut data = vec![false; n];
    let mut nulls = BitVec::filled(n, false);
    for i in 0..n {
        let ta = if va.nulls.get(i) { None } else { Some(a[i]) };
        let tb = if vb.nulls.get(i) { None } else { Some(b[i]) };
        let r = match op {
            BinOp::And => match (ta, tb) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            _ => match (ta, tb) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        match r {
            Some(v) => data[i] = v,
            None => nulls.set(i, true),
        }
    }
    Some(BVec::exact(BData::Bool(data), nulls))
}

/// True iff `ord` (of `a` vs `b`) satisfies the comparison operator —
/// the exact mapping used by the serial `eval_cmp`.
#[inline]
fn cmp_holds(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        // Only comparison operators reach this helper.
        _ => ord != Less,
    }
}

/// Vector comparison with [`Scalar::compare`] semantics: integer pairs
/// compare exactly, booleans order `false < true`, every other numeric mix
/// compares as `f64`. A NaN at any lane that is present and non-null on
/// both sides bails (the serial engine errors there).
fn eval_cmp_batch(op: BinOp, va: BVec, vb: BVec, present: &BitVec) -> Option<BVec> {
    let n = va.nulls.len();
    let mut nulls = va.nulls.clone();
    nulls.union_with(&vb.nulls);
    let mut data = vec![false; n];
    match (&va.data, &vb.data) {
        (BData::I64(a), BData::I64(b)) => {
            for i in 0..n {
                data[i] = cmp_holds(op, a[i].cmp(&b[i]));
            }
        }
        (BData::Bool(a), BData::Bool(b)) => {
            for i in 0..n {
                data[i] = cmp_holds(op, a[i].cmp(&b[i]));
            }
        }
        (BData::Bool(_), _) | (_, BData::Bool(_)) => return None, // errors serially
        _ => {
            let widen = |d: &BData| -> Vec<f64> {
                match d {
                    BData::I64(v) => v.iter().map(|&x| x as f64).collect(),
                    BData::F64(v) => v.clone(),
                    BData::Bool(_) => Vec::new(), // unreachable: handled above
                }
            };
            let a = widen(&va.data);
            let b = widen(&vb.data);
            for i in present.iter_ones() {
                if !nulls.get(i) && (a[i].is_nan() || b[i].is_nan()) {
                    return None; // serial: partial_cmp → None → error
                }
            }
            for i in 0..n {
                // Non-NaN at every consumed lane, so total order applies.
                let ord = if a[i] < b[i] {
                    std::cmp::Ordering::Less
                } else if a[i] > b[i] {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                };
                data[i] = cmp_holds(op, ord);
            }
        }
    }
    Some(BVec::exact(BData::Bool(data), nulls))
}

/// Vector arithmetic mirroring the serial `eval_arith`: int ⊕ int stays
/// integral (wrapping, division by zero → NULL), any float operand widens
/// both sides to `f64`, modulo is integer-only, uncertain operands bail.
fn eval_arith_batch(op: BinOp, va: BVec, vb: BVec) -> Option<BVec> {
    if va.uncertain || vb.uncertain {
        return None;
    }
    let n = va.nulls.len();
    let mut nulls = va.nulls.clone();
    nulls.union_with(&vb.nulls);
    if let (BData::I64(a), BData::I64(b)) = (&va.data, &vb.data) {
        let mut data = vec![0i64; n];
        match op {
            BinOp::Add => {
                for i in 0..n {
                    data[i] = a[i].wrapping_add(b[i]);
                }
            }
            BinOp::Sub => {
                for i in 0..n {
                    data[i] = a[i].wrapping_sub(b[i]);
                }
            }
            BinOp::Mul => {
                for i in 0..n {
                    data[i] = a[i].wrapping_mul(b[i]);
                }
            }
            _ => {
                // Div / Mod: zero divisor yields NULL, like the serial path.
                for i in 0..n {
                    if b[i] == 0 {
                        nulls.set(i, true);
                    } else if !nulls.get(i) {
                        data[i] = if op == BinOp::Div {
                            a[i].wrapping_div(b[i])
                        } else {
                            a[i].wrapping_rem(b[i])
                        };
                    }
                }
            }
        }
        return Some(BVec::exact(BData::I64(data), nulls));
    }
    if op == BinOp::Mod {
        return None; // "modulo requires integers" serially
    }
    let widen = |d: &BData| -> Option<Vec<f64>> {
        match d {
            BData::I64(v) => Some(v.iter().map(|&x| x as f64).collect()),
            BData::F64(v) => Some(v.clone()),
            BData::Bool(_) => None, // non-numeric operand errors serially
        }
    };
    let a = widen(&va.data)?;
    let b = widen(&vb.data)?;
    let mut data = vec![0.0f64; n];
    match op {
        BinOp::Add => {
            for i in 0..n {
                data[i] = a[i] + b[i];
            }
        }
        BinOp::Sub => {
            for i in 0..n {
                data[i] = a[i] - b[i];
            }
        }
        BinOp::Mul => {
            for i in 0..n {
                data[i] = a[i] * b[i];
            }
        }
        _ => {
            for i in 0..n {
                if b[i] == 0.0 {
                    nulls.set(i, true);
                } else {
                    data[i] = a[i] / b[i];
                }
            }
        }
    }
    Some(BVec::exact(BData::F64(data), nulls))
}

/// Batch filter over one dense chunk (§2.2.2): evaluates the predicate
/// column-at-a-time into a selection vector, then nulls out the records of
/// present cells that fail (or NULL) it with one word-level bitmap union
/// per column. The presence bitmap is untouched — failing cells stay
/// present as all-NULL records, exactly like the per-cell path.
pub(crate) fn filter_columns(chunk: &Chunk, schema: &ArraySchema, pred: &Expr) -> Option<Chunk> {
    let cols = chunk.columns()?;
    let present = chunk.present_bitmap()?;
    let v = eval_batch(pred, schema, cols, chunk.rect(), present)?;
    if v.uncertain {
        return None;
    }
    let BData::Bool(keep) = &v.data else {
        return None; // non-boolean predicates error serially
    };
    // Selection vector: present ∧ ¬(keep ∧ ¬null) = the cells to null out.
    let n = chunk.capacity();
    let mut null_out = BitVec::filled(n, false);
    for idx in present.iter_ones() {
        if v.nulls.get(idx) || !keep[idx] {
            null_out.set(idx, true);
        }
    }
    let mut out_cols = cols.to_vec();
    for col in &mut out_cols {
        col.null_out(&null_out);
    }
    Chunk::from_parts(
        chunk.rect().clone(),
        chunk.attr_types().to_vec(),
        present.clone(),
        out_cols,
    )
    .ok() // lint: allow(option-api) — None means "fall back to the per-cell loop", which reproduces the exact error
}

/// Batch apply over one dense chunk: fused expression evaluation plus
/// column append. Bails when the expression result cannot be written to
/// the declared output type without the per-cell validation path (whose
/// errors must surface exactly).
pub(crate) fn apply_columns(
    chunk: &Chunk,
    schema: &ArraySchema,
    expr: &Expr,
    out_types: &[AttrType],
) -> Option<Chunk> {
    let cols = chunk.columns()?;
    let present = chunk.present_bitmap()?;
    let v = eval_batch(expr, schema, cols, chunk.rect(), present)?;
    if v.uncertain {
        return None;
    }
    let new_col = match (v.data, out_types.last()?) {
        (BData::I64(d), AttrType::Scalar(ScalarType::Int64)) => Column::Int64 {
            data: d,
            nulls: v.nulls,
        },
        // Ints widen into float columns, mirroring per-cell `set_scalar`.
        (BData::I64(d), AttrType::Scalar(ScalarType::Float64)) => Column::Float64 {
            data: d.iter().map(|&x| x as f64).collect(),
            nulls: v.nulls,
        },
        (BData::F64(d), AttrType::Scalar(ScalarType::Float64)) => Column::Float64 {
            data: d,
            nulls: v.nulls,
        },
        (BData::Bool(d), AttrType::Scalar(ScalarType::Bool)) => Column::Bool {
            data: d,
            nulls: v.nulls,
        },
        _ => return None,
    };
    let mut out_cols = cols.to_vec();
    out_cols.push(new_col);
    Chunk::from_parts(
        chunk.rect().clone(),
        out_types.to_vec(),
        present.clone(),
        out_cols,
    )
    .ok() // lint: allow(option-api) — None means "fall back to the per-cell loop", which reproduces the exact error
}

/// Batch project over one dense chunk: a pure column subset — clones the
/// kept value vectors and the presence bitmap, touching no cell.
pub(crate) fn project_columns(
    chunk: &Chunk,
    idxs: &[usize],
    out_types: &[AttrType],
) -> Option<Chunk> {
    let cols = chunk.columns()?;
    let present = chunk.present_bitmap()?;
    let out_cols: Vec<Column> = idxs
        .iter()
        .map(|&i| cols.get(i).cloned())
        .collect::<Option<_>>()?;
    Chunk::from_parts(
        chunk.rect().clone(),
        out_types.to_vec(),
        present.clone(),
        out_cols,
    )
    .ok() // lint: allow(option-api) — None means "fall back to the per-cell loop", which reproduces the exact error
}

/// Batch subsample over one dense chunk: evaluates each dimension
/// condition once per distinct index value into per-dimension allow
/// tables, then intersects them with the presence bitmap. Returns the
/// output chunk and the number of present cells visited. Bails on sparse
/// chunks and on `Fn` conditions (UDFs need the registry and can error).
pub(crate) fn subsample_columns(
    chunk: &Chunk,
    schema: &ArraySchema,
    pred: &DimPredicate,
) -> Option<(Chunk, u64)> {
    let cols = chunk.columns()?;
    let present = chunk.present_bitmap()?;
    if pred
        .conds()
        .iter()
        .any(|(_, c)| matches!(c, DimCond::Fn(_)))
    {
        return None;
    }
    let rect = chunk.rect();
    let rank = rect.rank();
    let mut allowed: Vec<Vec<bool>> = (0..rank)
        .map(|d| vec![true; rect.len(d) as usize])
        .collect();
    for (dim, cond) in pred.conds() {
        let d = schema.dim_index(dim)?;
        for (o, slot) in allowed[d].iter_mut().enumerate() {
            if *slot {
                // Registry-free conditions never error (Fn bailed above).
                // lint: allow(option-api) — None means "fall back to the per-cell loop", which reproduces the exact error
                *slot = cond.matches(rect.low[d] + o as i64, None).ok()?;
            }
        }
    }
    let n = chunk.capacity();
    let mut mask = BitVec::filled(n, false);
    let mut cells = 0u64;
    for idx in present.iter_ones() {
        cells += 1;
        let mut rem = idx;
        let mut keep = true;
        for d in (0..rank).rev() {
            let len = rect.len(d) as usize;
            keep &= allowed[d][rem % len];
            rem /= len;
        }
        if keep {
            mask.set(idx, true);
        }
    }
    let oc = Chunk::from_parts(
        rect.clone(),
        chunk.attr_types().to_vec(),
        mask,
        cols.to_vec(),
    )
    .ok()?;
    Some((oc, cells))
}

/// Per-chunk grouped aggregate fold reading values column-direct (no
/// record materialization on dense chunks). Each aggregate state receives
/// its updates in ascending row-major order — the same sequence as the
/// value-at-a-time path — so partials are bitwise identical.
pub(crate) fn fold_groups_columnar<K: Fn(&[i64]) -> Coords>(
    chunk: &Chunk,
    attr_idxs: &[usize],
    agg: &dyn AggregateFn,
    key_of: K,
    local: &mut BTreeMap<Coords, Vec<Box<dyn AggState>>>,
) -> Result<u64> {
    let n_states = attr_idxs.len();
    let mut cells = 0u64;
    if let Some(cols) = chunk.columns() {
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            let states = local
                .entry(key_of(&coords))
                .or_insert_with(|| (0..n_states).map(|_| agg.create()).collect());
            for (si, &ai) in attr_idxs.iter().enumerate() {
                states[si].update(&cols[ai].get(idx))?;
            }
        }
    } else {
        for (coords, idx) in chunk.iter_present() {
            cells += 1;
            let rec = chunk.record_at(idx);
            let states = local
                .entry(key_of(&coords))
                .or_insert_with(|| (0..n_states).map(|_| agg.create()).collect());
            for (si, &ai) in attr_idxs.iter().enumerate() {
                states[si].update(&rec[ai])?;
            }
        }
    }
    Ok(cells)
}

/// Ungrouped per-chunk aggregate fold: one pass per aggregated column over
/// the presence bitmap — the true per-column fold. Safe because each state
/// only observes its own column, in ascending offset order either way.
pub(crate) fn fold_ungrouped_columnar(
    chunk: &Chunk,
    attr_idxs: &[usize],
    states: &mut [Box<dyn AggState>],
) -> Result<u64> {
    if let (Some(cols), Some(present)) = (chunk.columns(), chunk.present_bitmap()) {
        for (si, &ai) in attr_idxs.iter().enumerate() {
            let col = &cols[ai];
            for idx in present.iter_ones() {
                states[si].update(&col.get(idx))?;
            }
        }
        Ok(present.count_ones() as u64)
    } else {
        let mut cells = 0u64;
        for (_, idx) in chunk.iter_present() {
            cells += 1;
            for (si, &ai) in attr_idxs.iter().enumerate() {
                states[si].update(&chunk.value_at(ai, idx))?;
            }
        }
        Ok(cells)
    }
}
