//! Regrid — the canonical science operation (§2.3).
//!
//! "The key science operations are rarely the popular table primitives,
//! such as Join. Instead, science users wish to regrid arrays." Regrid
//! coarsens an array by an integer factor per dimension, aggregating each
//! block into one output cell. It is also registered as a user-defined
//! whole-array operation to demonstrate the §2.3 extension point.

use crate::array::Array;
use crate::error::{Error, Result};
use crate::registry::Registry;
use crate::schema::{ArraySchema, AttrType, AttributeDef, DimensionDef};
use crate::value::{Record, ScalarType};
use std::collections::BTreeMap;

/// Regrids `a` by `factors` (one integer ≥ 1 per dimension), applying the
/// named aggregate to every block. Output dimension `d` has extent
/// `ceil(N_d / factors[d])`; input cell `c` lands in output cell
/// `(c-1)/factor + 1`.
pub fn regrid(a: &Array, factors: &[i64], agg_name: &str, registry: &Registry) -> Result<Array> {
    regrid_with(
        a,
        factors,
        agg_name,
        registry,
        &crate::exec::ExecContext::serial(),
    )
}

/// [`regrid`] under an [`ExecContext`](crate::exec::ExecContext): each chunk
/// folds its cells into per-block partial aggregate states; partials are
/// merged in chunk order, so results are identical at every thread count
/// (see [`crate::ops::content::aggregate_with`] for the merge rule).
pub fn regrid_with(
    a: &Array,
    factors: &[i64],
    agg_name: &str,
    registry: &Registry,
    ctx: &crate::exec::ExecContext,
) -> Result<Array> {
    let start = std::time::Instant::now();
    let schema = a.schema();
    if factors.len() != schema.rank() {
        return Err(Error::dimension(format!(
            "regrid got {} factors for {} dimensions",
            factors.len(),
            schema.rank()
        )));
    }
    if factors.iter().any(|&f| f < 1) {
        return Err(Error::dimension("regrid factors must be >= 1"));
    }
    let agg = registry.aggregate(agg_name)?;

    let out_dims: Vec<DimensionDef> = schema
        .dims()
        .iter()
        .zip(factors)
        .map(|(d, &f)| {
            let mut def = d.clone();
            def.upper = d.upper.map(|u| (u + f - 1) / f);
            def.chunk_len = def.chunk_len.min(def.upper.unwrap_or(def.chunk_len)).max(1);
            def
        })
        .collect();
    let out_attrs: Vec<AttributeDef> = schema
        .attrs()
        .iter()
        .map(|attr| {
            let ty = match agg_name.to_ascii_lowercase().as_str() {
                "count" => ScalarType::Int64,
                "avg" | "stddev" | "var" => ScalarType::Float64,
                _ => match &attr.ty {
                    AttrType::Scalar(t) => *t,
                    AttrType::Nested(_) => ScalarType::Float64,
                },
            };
            AttributeDef::scalar(attr.name.clone(), ty)
        })
        .collect();
    for attr in schema.attrs() {
        if matches!(attr.ty, AttrType::Nested(_)) {
            return Err(Error::schema(format!(
                "cannot regrid nested-array attribute '{}'",
                attr.name
            )));
        }
    }
    let out_schema = ArraySchema::new(format!("regrid({})", schema.name()), out_attrs, out_dims)?;

    let n_attrs = schema.attrs().len();
    let chunks: Vec<&crate::chunk::Chunk> = a.chunks().values().collect();
    let all_idxs: Vec<usize> = (0..n_attrs).collect();
    let partials = ctx.try_par_map(&chunks, |chunk| {
        let mut local: BTreeMap<Vec<i64>, Vec<Box<dyn crate::udf::AggState>>> = BTreeMap::new();
        // Columnar fold: dense chunks read values straight out of the
        // per-attribute columns (no record build); the visit order is
        // ascending cell offset either way, so partials are bitwise
        // identical to the per-cell loop's.
        let cells = super::batch::fold_groups_columnar(
            chunk,
            &all_idxs,
            &*agg,
            |coords| {
                coords
                    .iter()
                    .zip(factors)
                    .map(|(&c, &f)| (c - 1) / f + 1)
                    .collect()
            },
            &mut local,
        )?;
        let exported: super::AggPartials = local
            .into_iter()
            .map(|(k, states)| (k, states.iter().map(|s| s.partial()).collect()))
            .collect();
        Ok((exported, cells))
    })?;

    // Ordered merge in chunk order — deterministic across thread schedules.
    let (blocks, total_cells) = super::merge_agg_partials(&*agg, n_attrs, partials)?;

    let mut out = Array::new(out_schema);
    for (key, states) in blocks {
        let rec: Record = states.iter().map(|s| s.finalize()).collect();
        out.set_cell(&key, rec)?;
    }
    ctx.record("regrid", chunks.len() as u64, total_cells, start.elapsed());
    Ok(out)
}

/// Regrid packaged as a registered array operation (§2.3): fixed factors
/// and aggregate chosen at registration time.
#[derive(Debug)]
pub struct RegridOp {
    name: String,
    factors: Vec<i64>,
    agg: String,
}

impl RegridOp {
    /// Creates a named regrid operation.
    pub fn new(name: impl Into<String>, factors: Vec<i64>, agg: impl Into<String>) -> Self {
        RegridOp {
            name: name.into(),
            factors,
            agg: agg.into(),
        }
    }
}

impl crate::udf::ArrayOp for RegridOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, inputs: &[&Array], registry: &Registry) -> Result<Array> {
        if inputs.len() != 1 {
            return Err(Error::eval("regrid takes exactly one input array"));
        }
        regrid(inputs[0], &self.factors, &self.agg, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{record, Value};

    fn ramp(n: i64) -> Array {
        let rows: Vec<Vec<f64>> = (1..=n)
            .map(|i| (1..=n).map(|j| (i * 100 + j) as f64).collect())
            .collect();
        Array::f64_2d("R", "v", &rows)
    }

    #[test]
    fn regrid_2x2_avg() {
        let a = ramp(4);
        let r = Registry::with_builtins();
        let out = regrid(&a, &[2, 2], "avg", &r).unwrap();
        assert_eq!(out.schema().dims()[0].upper, Some(2));
        assert_eq!(out.cell_count(), 4);
        // Block (1,1) covers cells (1..2, 1..2): values 101,102,201,202.
        assert_eq!(out.get_f64(0, &[1, 1]), Some(151.5));
        // Block (2,2): 303,304,403,404.
        assert_eq!(out.get_f64(0, &[2, 2]), Some(353.5));
    }

    #[test]
    fn regrid_uneven_edges() {
        let a = ramp(5);
        let r = Registry::with_builtins();
        let out = regrid(&a, &[2, 2], "count", &r).unwrap();
        assert_eq!(out.schema().dims()[0].upper, Some(3));
        // Corner block has a single cell.
        assert_eq!(out.get_cell(&[3, 3]), Some(vec![Value::from(1i64)]));
        // Full block has four.
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::from(4i64)]));
    }

    #[test]
    fn regrid_factor_one_is_identity_shape() {
        let a = ramp(3);
        let r = Registry::with_builtins();
        let out = regrid(&a, &[1, 1], "sum", &r).unwrap();
        assert_eq!(out.cell_count(), 9);
        assert_eq!(out.get_f64(0, &[2, 3]), Some(203.0));
    }

    #[test]
    fn regrid_validates_factors() {
        let a = ramp(2);
        let r = Registry::with_builtins();
        assert!(regrid(&a, &[2], "avg", &r).is_err());
        assert!(regrid(&a, &[0, 2], "avg", &r).is_err());
        assert!(regrid(&a, &[2, 2], "nope", &r).is_err());
    }

    #[test]
    fn regrid_sparse_blocks_only_where_data() {
        let dense = Array::f64_2d("S", "v", &[vec![vec![0.0; 8]; 8]].concat());
        // Rebuild sparse: same schema, only two cells set.
        let mut a = Array::new(dense.schema().renamed("S2"));
        a.set_cell(&[1, 1], record([Value::from(5.0)])).unwrap();
        a.set_cell(&[8, 8], record([Value::from(7.0)])).unwrap();
        let r = Registry::with_builtins();
        let out = regrid(&a, &[4, 4], "max", &r).unwrap();
        assert_eq!(out.cell_count(), 2);
        assert_eq!(out.get_f64(0, &[1, 1]), Some(5.0));
        assert_eq!(out.get_f64(0, &[2, 2]), Some(7.0));
    }

    #[test]
    fn regrid_as_registered_array_op() {
        let mut r = Registry::with_builtins();
        r.register_array_op(std::sync::Arc::new(RegridOp::new(
            "coarsen4",
            vec![2, 2],
            "avg",
        )))
        .unwrap();
        let op = r.array_op("coarsen4").unwrap();
        let a = ramp(4);
        let out = op.apply(&[&a], &r).unwrap();
        assert_eq!(out.cell_count(), 4);
        assert!(op.apply(&[&a, &a], &r).is_err());
    }
}
