//! Vectorized positional kernels for dense arrays.
//!
//! These are the physical-layer operators that make the array engine win
//! the §2.1 comparison: because dense arrays address cells *positionally*,
//! slabs are contiguous column ranges, regrid blocks are index arithmetic,
//! and the structural join of co-aligned arrays is a pure column
//! concatenation — no hash tables, no per-tuple dispatch, no dimension
//! columns. A table simulation fundamentally cannot do any of this, which
//! is where the ASAP "two orders of magnitude" comes from.
//!
//! Every kernel falls back to the generic cell-at-a-time path when a chunk
//! is sparse or a column is not `Float64`, so results always match the
//! generic operators in [`super::structural`] / [`super::content`].

use crate::array::Array;
use crate::chunk::{Chunk, Column};
use crate::error::{Error, Result};
use crate::geometry::HyperRect;
use crate::schema::{ArraySchema, AttributeDef, DimensionDef};
use crate::value::{record, Value};

/// Iterates the row prefixes of `clip` (all dimensions fixed except the
/// last) invoking `f(row_start_coords, run_len)`.
fn for_each_row(clip: &HyperRect, mut f: impl FnMut(&[i64], usize)) {
    let rank = clip.rank();
    let run = clip.len(rank - 1) as usize;
    let mut prefix = clip.clone();
    prefix.high[rank - 1] = prefix.low[rank - 1];
    for row in prefix.iter_cells() {
        f(&row, run);
    }
}

/// Sum + count of a float attribute over a rectangular region —
/// the vectorized slab scan. Returns `(sum, non-null cells)`.
pub fn slab_sum_f64(a: &Array, attr: usize, region: &HyperRect) -> Result<(f64, usize)> {
    if region.rank() != a.rank() {
        return Err(Error::dimension("slab rank mismatch"));
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for chunk in a.chunks().values() {
        let Some(clip) = chunk.rect().intersection(region) else {
            continue;
        };
        match (chunk.columns(), chunk.present_bitmap()) {
            (Some(cols), Some(present)) => {
                if let Column::Float64 { data, nulls } = &cols[attr] {
                    // Contiguous inner runs: base offset + stride-1 scan.
                    for_each_row(&clip, |row, run| {
                        let base = chunk.rect().linearize(row);
                        for (off, &v) in data[base..base + run].iter().enumerate() {
                            let idx = base + off;
                            if present.get(idx) && !nulls.get(idx) {
                                sum += v;
                                n += 1;
                            }
                        }
                    });
                    continue;
                }
                // Non-float column: positional scan via value_f64.
                for_each_row(&clip, |row, run| {
                    let base = chunk.rect().linearize(row);
                    for idx in base..base + run {
                        if let Some(v) = chunk.value_f64(attr, idx) {
                            sum += v;
                            n += 1;
                        }
                    }
                });
            }
            _ => {
                // Sparse chunk: iterate its (few) present cells.
                for (coords, idx) in chunk.iter_present() {
                    if clip.contains(&coords) {
                        if let Some(v) = chunk.value_f64(attr, idx) {
                            sum += v;
                            n += 1;
                        }
                    }
                }
            }
        }
    }
    Ok((sum, n))
}

/// Extracts the float values of a dimension slice `dim = at` in row-major
/// order — the vectorized Subsample(=) kernel.
pub fn slice_values_f64(a: &Array, attr: usize, dim: usize, at: i64) -> Result<Vec<f64>> {
    let rect = a
        .rect()
        .ok_or_else(|| Error::dimension("slice kernel requires a bounded array"))?;
    if dim >= a.rank() {
        return Err(Error::dimension("slice dimension out of range"));
    }
    let mut region = rect;
    region.low[dim] = at;
    region.high[dim] = at;
    let mut out = Vec::new();
    for chunk in a.chunks().values() {
        let Some(clip) = chunk.rect().intersection(&region) else {
            continue;
        };
        for_each_row(&clip, |row, run| {
            let base = chunk.rect().linearize(row);
            for idx in base..base + run {
                if let Some(v) = chunk.value_f64(attr, idx) {
                    out.push(v);
                }
            }
        });
    }
    Ok(out)
}

/// Vectorized mean-regrid of one float attribute: flat per-block
/// accumulators indexed by block arithmetic, no hashing.
pub fn regrid_mean_f64(a: &Array, attr: usize, factors: &[i64]) -> Result<Array> {
    let rect = a
        .rect()
        .ok_or_else(|| Error::dimension("regrid kernel requires a bounded array"))?;
    if factors.len() != a.rank() || factors.iter().any(|&f| f < 1) {
        return Err(Error::dimension("bad regrid factors"));
    }
    // Output geometry.
    let out_dims: Vec<DimensionDef> = a
        .schema()
        .dims()
        .iter()
        .zip(factors)
        .map(|(d, &f)| {
            let upper = (d.upper.expect("bounded") + f - 1) / f;
            DimensionDef::bounded(d.name.clone(), upper)
        })
        .collect();
    let out_rect = HyperRect {
        low: vec![1; a.rank()],
        high: out_dims.iter().map(|d| d.upper.unwrap()).collect(),
    };
    let n_blocks = out_rect.volume() as usize;
    let mut sums = vec![0.0f64; n_blocks];
    let mut counts = vec![0u32; n_blocks];
    let rank = a.rank();
    let f_last = factors[rank - 1];

    for chunk in a.chunks().values() {
        let Some(clip) = chunk.rect().intersection(&rect) else {
            continue;
        };
        for_each_row(&clip, |row, run| {
            let base = chunk.rect().linearize(row);
            // Block coords of the row prefix are fixed; only the last
            // dimension's block advances, every `f_last` cells.
            let mut block = vec![0i64; rank];
            for d in 0..rank {
                block[d] = (row[d] - 1) / factors[d] + 1;
            }
            for (idx, j) in (base..base + run).zip(row[rank - 1]..) {
                block[rank - 1] = (j - 1) / f_last + 1;
                if let Some(v) = chunk.value_f64(attr, idx) {
                    let bidx = out_rect.linearize(&block);
                    sums[bidx] += v;
                    counts[bidx] += 1;
                }
            }
        });
    }

    let out_schema = ArraySchema::new(
        format!("regrid({})", a.schema().name()),
        vec![AttributeDef::scalar(
            a.schema().attrs()[attr].name.clone(),
            crate::value::ScalarType::Float64,
        )],
        out_dims,
    )?;
    let mut out = Array::new(out_schema);
    for (bidx, &cnt) in counts.iter().enumerate() {
        if cnt > 0 {
            let coords = out_rect.delinearize(bidx);
            out.set_cell(&coords, record([Value::from(sums[bidx] / cnt as f64)]))?;
        }
    }
    Ok(out)
}

/// Positional structural join of two co-aligned arrays (§2.2.1 Sjoin on
/// all dimensions): when both arrays share dimensions, bounds, and chunk
/// strides, the join is a per-chunk column concatenation gated by the AND
/// of the presence bitmaps. No hash table is built.
pub fn aligned_sjoin(a: &Array, b: &Array) -> Result<Array> {
    let (sa, sb) = (a.schema(), b.schema());
    if sa.rank() != sb.rank() {
        return Err(Error::dimension("aligned join requires equal rank"));
    }
    for (da, db) in sa.dims().iter().zip(sb.dims()) {
        if da.upper != db.upper || da.chunk_len != db.chunk_len {
            return Err(Error::dimension(
                "aligned join requires identical bounds and chunking (co-location)",
            ));
        }
    }
    // Output schema: A's dims; A's attrs then B's (renamed on clash).
    let mut attrs = sa.attrs().to_vec();
    for attr in sb.attrs() {
        let mut def = attr.clone();
        if sa.attr_index(&attr.name).is_some() {
            def.name = format!("{}_r", attr.name);
        }
        attrs.push(def);
    }
    let out_schema = ArraySchema::new(
        format!("sjoin({},{})", sa.name(), sb.name()),
        attrs,
        sa.dims().to_vec(),
    )?;
    let attr_types: Vec<_> = out_schema.attrs().iter().map(|x| x.ty.clone()).collect();

    let mut out = Array::new(out_schema);
    for (origin, ca) in a.chunks() {
        let Some(cb) = b.chunks().get(origin) else {
            continue;
        };
        if ca.is_empty() || cb.is_empty() {
            continue;
        }
        match (
            ca.columns(),
            ca.present_bitmap(),
            cb.columns(),
            cb.present_bitmap(),
        ) {
            (Some(cols_a), Some(pa), Some(cols_b), Some(pb)) => {
                // Pure positional concatenation.
                let mut present = pa.clone();
                present.intersect_with(pb);
                if present.none() {
                    continue;
                }
                let mut columns: Vec<Column> = cols_a.to_vec();
                columns.extend(cols_b.iter().cloned());
                out.insert_chunk(Chunk::from_parts(
                    ca.rect().clone(),
                    attr_types.clone(),
                    present,
                    columns,
                )?);
            }
            _ => {
                // Sparse fallback: probe the denser side cell-by-cell.
                let (small, big, small_is_a) = if ca.present_count() <= cb.present_count() {
                    (ca, cb, true)
                } else {
                    (cb, ca, false)
                };
                for (coords, idx) in small.iter_present() {
                    if !big.cell_present(&coords) {
                        continue;
                    }
                    let (rec_a, rec_b) = if small_is_a {
                        (small.record_at(idx), big.record_at(big.offset_of(&coords)))
                    } else {
                        (big.record_at(big.offset_of(&coords)), small.record_at(idx))
                    };
                    let mut rec = rec_a;
                    rec.extend(rec_b);
                    out.set_cell(&coords, rec)?;
                }
            }
        }
    }
    Ok(out)
}

/// Presence-count of a region (vectorized `Exists?` aggregate).
pub fn count_present(a: &Array, region: &HyperRect) -> usize {
    let mut n = 0usize;
    for chunk in a.chunks().values() {
        let Some(clip) = chunk.rect().intersection(region) else {
            continue;
        };
        if let Some(present) = chunk.present_bitmap() {
            if clip == *chunk.rect() {
                n += present.count_ones();
                continue;
            }
            for_each_row(&clip, |row, run| {
                let base = chunk.rect().linearize(row);
                n += (base..base + run).filter(|&i| present.get(i)).count();
            });
        } else {
            n += chunk
                .iter_present()
                .filter(|(c, _)| clip.contains(c))
                .count();
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::registry::Registry;
    use crate::schema::SchemaBuilder;
    use crate::value::ScalarType;

    fn dense(n: i64, chunk: i64) -> Array {
        let schema = SchemaBuilder::new("D")
            .attr("v", ScalarType::Float64)
            .dim_chunked("i", n, chunk)
            .dim_chunked("j", n, chunk)
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.fill_with(|c| record([Value::from((c[0] * 100 + c[1]) as f64)]))
            .unwrap();
        a
    }

    #[test]
    fn slab_sum_matches_generic_scan() {
        let a = dense(32, 8);
        let region = HyperRect::new(vec![5, 9], vec![20, 27]).unwrap();
        let (sum, n) = slab_sum_f64(&a, 0, &region).unwrap();
        let expect: f64 = a
            .cells_in(&region)
            .map(|(_, r)| r[0].as_f64().unwrap())
            .sum();
        let count = a.cells_in(&region).count();
        assert_eq!(n, count);
        assert!((sum - expect).abs() < 1e-9);
    }

    #[test]
    fn slab_sum_handles_sparse_chunks() {
        let mut a = Array::new(dense(32, 8).schema().renamed("S"));
        a.set_cell(&[3, 3], record([Value::from(5.0)])).unwrap();
        a.set_cell(&[30, 30], record([Value::from(7.0)])).unwrap();
        let region = HyperRect::new(vec![1, 1], vec![32, 32]).unwrap();
        let (sum, n) = slab_sum_f64(&a, 0, &region).unwrap();
        assert_eq!((sum, n), (12.0, 2));
    }

    #[test]
    fn slice_values_match_subsample() {
        let a = dense(16, 4);
        let vals = slice_values_f64(&a, 0, 0, 7).unwrap();
        assert_eq!(vals.len(), 16);
        assert_eq!(vals[0], 701.0);
        assert_eq!(vals[15], 716.0);
    }

    #[test]
    fn regrid_mean_matches_generic_regrid() {
        let a = dense(16, 8);
        let registry = Registry::with_builtins();
        let fast = regrid_mean_f64(&a, 0, &[4, 4]).unwrap();
        let generic = ops::regrid(&a, &[4, 4], "avg", &registry).unwrap();
        assert_eq!(fast.cell_count(), generic.cell_count());
        for (coords, rec) in generic.cells() {
            let g = rec[0].as_f64().unwrap();
            let f = fast.get_f64(0, &coords).unwrap();
            assert!((g - f).abs() < 1e-9, "block {coords:?}: {g} vs {f}");
        }
    }

    #[test]
    fn regrid_mean_uneven_edges() {
        let a = dense(10, 8);
        let fast = regrid_mean_f64(&a, 0, &[4, 4]).unwrap();
        assert_eq!(fast.schema().dims()[0].upper, Some(3));
        assert_eq!(fast.cell_count(), 9);
    }

    #[test]
    fn aligned_sjoin_matches_generic_sjoin() {
        let a = dense(16, 8);
        let b = dense(16, 8);
        let fast = aligned_sjoin(&a, &b).unwrap();
        let generic = ops::sjoin(&a, &b, &[("i", "i"), ("j", "j")]).unwrap();
        assert_eq!(fast.cell_count(), generic.cell_count());
        assert!(fast.same_cells(&generic));
    }

    #[test]
    fn aligned_sjoin_respects_partial_presence() {
        let mut a = dense(8, 8);
        let b = dense(8, 8);
        a.delete_cell(&[3, 3]).unwrap();
        let fast = aligned_sjoin(&a, &b).unwrap();
        assert_eq!(fast.cell_count(), 63);
        assert!(!fast.exists(&[3, 3]));
        assert_eq!(
            fast.get_cell(&[2, 2]),
            Some(vec![Value::from(202.0), Value::from(202.0)])
        );
    }

    #[test]
    fn aligned_sjoin_sparse_fallback() {
        let schema = dense(8, 8).schema().renamed("Sp");
        let mut a = Array::new(schema.clone());
        let mut b = Array::new(schema.renamed("Sp2"));
        a.set_cell(&[1, 1], record([Value::from(1.0)])).unwrap();
        a.set_cell(&[2, 2], record([Value::from(2.0)])).unwrap();
        b.set_cell(&[2, 2], record([Value::from(20.0)])).unwrap();
        let out = aligned_sjoin(&a, &b).unwrap();
        assert_eq!(out.cell_count(), 1);
        assert_eq!(
            out.get_cell(&[2, 2]),
            Some(vec![Value::from(2.0), Value::from(20.0)])
        );
    }

    #[test]
    fn aligned_sjoin_rejects_misaligned() {
        let a = dense(16, 8);
        let b = dense(16, 4);
        assert!(aligned_sjoin(&a, &b).is_err());
        let c = dense(8, 8);
        assert!(aligned_sjoin(&a, &c).is_err());
    }

    #[test]
    fn count_present_fast_path() {
        let a = dense(16, 8);
        let all = HyperRect::new(vec![1, 1], vec![16, 16]).unwrap();
        assert_eq!(count_present(&a, &all), 256);
        let part = HyperRect::new(vec![1, 1], vec![3, 16]).unwrap();
        assert_eq!(count_present(&a, &part), 48);
    }
}
