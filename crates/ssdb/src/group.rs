//! Observation grouping: linking detections of the same object across
//! epochs into trajectories (the benchmark's "group" level, SS-DB Q7–Q9).

use crate::detect::Observation;

/// A cross-epoch group: one observation per epoch where the object was
/// detected.
#[derive(Debug, Clone)]
pub struct ObsGroup {
    /// Group id.
    pub id: usize,
    /// `(epoch, observation)` members, ascending by epoch.
    pub members: Vec<(usize, Observation)>,
}

impl ObsGroup {
    /// Number of epochs the object was seen in.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group is empty (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Mean per-epoch displacement (a velocity estimate), or (0, 0) for a
    /// single-epoch group.
    pub fn velocity(&self) -> (f64, f64) {
        if self.members.len() < 2 {
            return (0.0, 0.0);
        }
        let first = &self.members[0];
        let last = &self.members[self.members.len() - 1];
        let d_epoch = (last.0 - first.0) as f64;
        (
            (last.1.x.mean - first.1.x.mean) / d_epoch,
            (last.1.y.mean - first.1.y.mean) / d_epoch,
        )
    }

    /// Total path length across epochs.
    pub fn path_length(&self) -> f64 {
        self.members
            .windows(2)
            .map(|w| w[0].1.distance(&w[1].1))
            .sum()
    }

    /// Mean flux of the members.
    pub fn mean_flux(&self) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|(_, o)| o.flux.mean).sum::<f64>() / self.members.len() as f64
    }
}

/// Grouping parameters.
#[derive(Debug, Clone)]
pub struct GroupParams {
    /// Maximum per-epoch movement (pixels) for two observations to link.
    pub max_motion: f64,
}

impl Default for GroupParams {
    fn default() -> Self {
        GroupParams { max_motion: 4.0 }
    }
}

/// Links per-epoch observation lists into groups by greedy
/// nearest-neighbor chaining: each group is seeded in the earliest epoch it
/// appears and extended epoch-by-epoch with the nearest unclaimed
/// observation within `max_motion × epoch gap`.
pub fn group_observations(per_epoch: &[Vec<Observation>], params: &GroupParams) -> Vec<ObsGroup> {
    let mut claimed: Vec<Vec<bool>> = per_epoch.iter().map(|v| vec![false; v.len()]).collect();
    let mut groups = Vec::new();

    for seed_epoch in 0..per_epoch.len() {
        for seed_idx in 0..per_epoch[seed_epoch].len() {
            if claimed[seed_epoch][seed_idx] {
                continue;
            }
            claimed[seed_epoch][seed_idx] = true;
            let mut members = vec![(seed_epoch, per_epoch[seed_epoch][seed_idx].clone())];
            let mut last = per_epoch[seed_epoch][seed_idx].clone();
            let mut last_epoch = seed_epoch;
            for epoch in seed_epoch + 1..per_epoch.len() {
                let gap = (epoch - last_epoch) as f64;
                let best = per_epoch[epoch]
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !claimed[epoch][*i])
                    .map(|(i, o)| (i, last.distance(o)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                if let Some((i, dist)) = best {
                    if dist <= params.max_motion * gap {
                        claimed[epoch][i] = true;
                        last = per_epoch[epoch][i].clone();
                        last_epoch = epoch;
                        members.push((epoch, last.clone()));
                    }
                }
            }
            groups.push(ObsGroup {
                id: groups.len(),
                members,
            });
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_core::uncertain::Uncertain;

    fn obs(x: f64, y: f64) -> Observation {
        Observation {
            id: 0,
            x: Uncertain::new(x, 0.2),
            y: Uncertain::new(y, 0.2),
            flux: Uncertain::new(100.0, 5.0),
            npix: 5,
            peak: 40.0,
        }
    }

    #[test]
    fn links_moving_object_across_epochs() {
        // One object moving +2 px/epoch in x; one stationary.
        let per_epoch = vec![
            vec![obs(10.0, 10.0), obs(50.0, 50.0)],
            vec![obs(12.0, 10.0), obs(50.0, 50.0)],
            vec![obs(14.1, 10.0), obs(50.1, 49.9)],
        ];
        let groups = group_observations(&per_epoch, &GroupParams::default());
        assert_eq!(groups.len(), 2);
        let mover = groups
            .iter()
            .find(|g| g.members[0].1.x.mean < 20.0)
            .unwrap();
        assert_eq!(mover.len(), 3);
        let (vx, vy) = mover.velocity();
        assert!((vx - 2.05).abs() < 0.1, "vx {vx}");
        assert!(vy.abs() < 0.1);
        assert!(mover.path_length() > 4.0);
    }

    #[test]
    fn distant_objects_stay_separate() {
        let per_epoch = vec![vec![obs(10.0, 10.0)], vec![obs(40.0, 40.0)]];
        let groups = group_observations(&per_epoch, &GroupParams::default());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn gap_epochs_allow_wider_match() {
        // Object missing in epoch 1 (cloud), reappears in epoch 2 six
        // pixels away: within 4 px/epoch × 2 epochs.
        let per_epoch = vec![vec![obs(10.0, 10.0)], vec![], vec![obs(16.0, 10.0)]];
        let groups = group_observations(&per_epoch, &GroupParams::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn each_observation_claimed_once() {
        let per_epoch = vec![
            vec![obs(10.0, 10.0), obs(11.5, 10.0)],
            vec![obs(10.5, 10.0)],
        ];
        let groups = group_observations(&per_epoch, &GroupParams::default());
        let total: usize = groups.iter().map(ObsGroup::len).sum();
        assert_eq!(total, 3, "every observation in exactly one group");
    }

    #[test]
    fn ground_truth_recovery_end_to_end() {
        use crate::detect::{detect, DetectParams};
        use crate::gen::{generate_stack, ImageSpec};
        let spec = ImageSpec {
            size: 96,
            n_sources: 6,
            min_flux: 800.0,
            noise_sigma: 0.8,
            seed: 31,
            ..Default::default()
        };
        let stack = generate_stack(&spec, 3);
        let per_epoch: Vec<Vec<Observation>> = stack
            .epochs
            .iter()
            .map(|img| detect(img, &DetectParams::default()).unwrap())
            .collect();
        let groups = group_observations(&per_epoch, &GroupParams::default());
        let full_groups = groups.iter().filter(|g| g.len() == 3).count();
        assert!(
            full_groups >= 4,
            "most sources tracked across all epochs: {full_groups} of 6"
        );
    }

    #[test]
    fn group_stats() {
        let g = ObsGroup {
            id: 0,
            members: vec![(0, obs(0.0, 0.0)), (1, obs(3.0, 4.0))],
        };
        assert_eq!(g.path_length(), 5.0);
        assert_eq!(g.velocity(), (3.0, 4.0));
        assert_eq!(g.mean_flux(), 100.0);
    }
}
