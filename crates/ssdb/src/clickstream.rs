//! The eBay clickstream use case (§2.14) — "non-science usage".
//!
//! "An eBay user can type a collection of keywords into the eBay search
//! box … eBay returns a collection of items … The user might click on item
//! 7 … Not only is it important which items have been clicked through, it
//! is even more important to be able to analyse the user-ignored content.
//! E.g., how often did a particular item get surfaced but was never clicked
//! on? … it can be effectively modelled as a one-dimensional array (i.e. a
//! time series) with embedded arrays to represent the search results at
//! each step."
//!
//! [`build_event_array`] is exactly that model: a 1-D time series whose
//! cells embed a nested results array. [`build_event_table`] is the
//! flattened relational weblog the paper says cannot keep up; experiment E9
//! compares the two on the paper's own analyses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scidb_core::array::Array;
use scidb_core::error::Result;
use scidb_core::schema::{ArraySchema, SchemaBuilder};
use scidb_core::value::{record, ScalarType, Value};
use scidb_relational::{ColumnDef, Table};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One search event.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchEvent {
    /// Session id.
    pub session: i64,
    /// Query id (hash of the keywords).
    pub query: i64,
    /// Items surfaced, in rank order (rank 1 first).
    pub results: Vec<i64>,
    /// 1-based rank of the clicked item, if any.
    pub clicked_rank: Option<usize>,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct ClickSpec {
    /// Number of sessions.
    pub n_sessions: usize,
    /// Catalog size (items follow a Zipf-ish popularity).
    pub n_items: i64,
    /// Results per search.
    pub page_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickSpec {
    fn default() -> Self {
        ClickSpec {
            n_sessions: 1000,
            n_items: 5000,
            page_size: 10,
            seed: 99,
        }
    }
}

/// Generates a deterministic event stream: 1–3 searches per session, each
/// surfacing `page_size` Zipf-popular items; clicks follow a position-bias
/// curve, with some searches abandoned entirely (the paper's "flawed
/// search strategy" signal).
pub fn generate_events(spec: &ClickSpec) -> Vec<SearchEvent> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut events = Vec::new();
    for session in 1..=spec.n_sessions as i64 {
        let searches = rng.gen_range(1..=3usize);
        for _ in 0..searches {
            let query = rng.gen_range(1..=500i64);
            // Zipf-ish item draws: item = floor(N * u^3) + 1 concentrates
            // on low ids.
            let mut results = Vec::with_capacity(spec.page_size);
            let mut seen = HashSet::new();
            while results.len() < spec.page_size {
                let u: f64 = rng.gen_range(0.0..1.0);
                let item = ((spec.n_items as f64) * u.powi(3)) as i64 + 1;
                if seen.insert(item) {
                    results.push(item);
                }
            }
            // Position bias: P(click rank r) ∝ 1/r²; 30% abandon.
            let clicked_rank = if rng.gen_range(0.0..1.0f64) < 0.30 {
                None
            } else {
                let weights: Vec<f64> =
                    (1..=spec.page_size).map(|r| 1.0 / (r * r) as f64).collect();
                let total: f64 = weights.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                let mut rank = 1;
                for (i, w) in weights.iter().enumerate() {
                    if draw < *w {
                        rank = i + 1;
                        break;
                    }
                    draw -= w;
                }
                Some(rank)
            };
            events.push(SearchEvent {
                session,
                query,
                results,
                clicked_rank,
            });
        }
    }
    events
}

/// The nested-array schema: a 1-D time series with an embedded results
/// array per cell.
pub fn event_array_schema(page_size: usize) -> Result<ArraySchema> {
    let results_schema = Arc::new(
        SchemaBuilder::new("results")
            .attr("item", ScalarType::Int64)
            .dim("rank", page_size as i64)
            .build()?,
    );
    SchemaBuilder::new("clickstream")
        .attr("session", ScalarType::Int64)
        .attr("query", ScalarType::Int64)
        .attr("clicked_rank", ScalarType::Int64)
        .attr("clicked_item", ScalarType::Int64)
        .nested_attr("results", results_schema)
        .dim_unbounded("t")
        .build()
}

/// Builds the §2.14 array: one cell per search event along `t`, with the
/// surfaced results embedded as a nested 1-D array.
pub fn build_event_array(events: &[SearchEvent], page_size: usize) -> Result<Array> {
    let schema = event_array_schema(page_size)?;
    let mut a = Array::new(schema);
    for (i, e) in events.iter().enumerate() {
        let nested = Array::int_1d("results", "item", &e.results);
        let (rank_v, item_v) = match e.clicked_rank {
            Some(r) => (Value::from(r as i64), Value::from(e.results[r - 1])),
            None => (Value::Null, Value::Null),
        };
        a.set_cell(
            &[i as i64 + 1],
            record([
                Value::from(e.session),
                Value::from(e.query),
                rank_v,
                item_v,
                Value::Array(Box::new(nested)),
            ]),
        )?;
    }
    Ok(a)
}

/// Builds the flattened relational weblog: one row per `(event, rank)`.
pub fn build_event_table(events: &[SearchEvent]) -> Result<Table> {
    let mut t = Table::new(
        "weblog",
        vec![
            ColumnDef {
                name: "t".into(),
                ty: ScalarType::Int64,
            },
            ColumnDef {
                name: "session".into(),
                ty: ScalarType::Int64,
            },
            ColumnDef {
                name: "query".into(),
                ty: ScalarType::Int64,
            },
            ColumnDef {
                name: "rank".into(),
                ty: ScalarType::Int64,
            },
            ColumnDef {
                name: "item".into(),
                ty: ScalarType::Int64,
            },
            ColumnDef {
                name: "clicked".into(),
                ty: ScalarType::Bool,
            },
        ],
    )?;
    for (i, e) in events.iter().enumerate() {
        for (r, &item) in e.results.iter().enumerate() {
            t.insert(vec![
                Value::from(i as i64 + 1),
                Value::from(e.session),
                Value::from(e.query),
                Value::from(r as i64 + 1),
                Value::from(item),
                Value::from(e.clicked_rank == Some(r + 1)),
            ])?;
        }
    }
    Ok(t)
}

/// Analysis results shared by both engines (for cross-checking).
#[derive(Debug, Clone, PartialEq)]
pub struct ClickAnalytics {
    /// Items surfaced at least once but never clicked — the paper's
    /// headline "user-ignored content" metric.
    pub surfaced_never_clicked: usize,
    /// Click-through rate by rank (index 0 = rank 1).
    pub ctr_by_rank: Vec<f64>,
    /// Searches whose top 6 results were all ignored (clicked below 6 or
    /// abandoned) — the "search strategy is flawed" signal.
    pub flawed_searches: usize,
}

/// Runs the analyses over the nested array. Uses positional chunk access
/// and borrowed nested arrays — no per-event cloning.
pub fn analyze_array(a: &Array, page_size: usize) -> Result<ClickAnalytics> {
    let mut surfaced: HashSet<i64> = HashSet::new();
    let mut clicked: HashSet<i64> = HashSet::new();
    let mut shown = vec![0usize; page_size];
    let mut clicks = vec![0usize; page_size];
    let mut flawed = 0usize;
    for chunk in a.chunks().values() {
        for (_, idx) in chunk.iter_present() {
            let results = chunk
                .nested_at(4, idx)
                .expect("results nested array present");
            let mut n_results = 0usize;
            for inner in results.chunks().values() {
                for (_, ridx) in inner.iter_present() {
                    if let Some(item) = inner.value_f64(0, ridx) {
                        surfaced.insert(item as i64);
                        n_results += 1;
                    }
                }
            }
            for slot in shown.iter_mut().take(page_size.min(n_results)) {
                *slot += 1;
            }
            match chunk.value_at(2, idx).as_i64() {
                Some(rank) => {
                    let rank = rank as usize;
                    clicks[rank - 1] += 1;
                    if let Some(item) = chunk.value_at(3, idx).as_i64() {
                        clicked.insert(item);
                    }
                    if rank > 6 {
                        flawed += 1;
                    }
                }
                None => flawed += 1,
            }
        }
    }
    Ok(ClickAnalytics {
        surfaced_never_clicked: surfaced.difference(&clicked).count(),
        ctr_by_rank: shown
            .iter()
            .zip(&clicks)
            .map(|(&s, &c)| if s == 0 { 0.0 } else { c as f64 / s as f64 })
            .collect(),
        flawed_searches: flawed,
    })
}

/// Runs the same analyses over the flattened weblog table (group-bys and
/// anti-joins, the relational way).
pub fn analyze_table(t: &Table, page_size: usize) -> Result<ClickAnalytics> {
    let rank_col = t.column_index("rank")?;
    let item_col = t.column_index("item")?;
    let clicked_col = t.column_index("clicked")?;
    let t_col = t.column_index("t")?;

    let mut surfaced: HashSet<i64> = HashSet::new();
    let mut clicked_items: HashSet<i64> = HashSet::new();
    let mut shown = vec![0usize; page_size];
    let mut clicks = vec![0usize; page_size];
    // Per-event click bookkeeping for the flawed-search metric.
    let mut event_click: HashMap<i64, usize> = HashMap::new();
    let mut events: HashSet<i64> = HashSet::new();

    for row in t.rows() {
        let rank = row[rank_col].as_i64().unwrap() as usize;
        let item = row[item_col].as_i64().unwrap();
        let is_click = row[clicked_col].as_bool().unwrap();
        let ev = row[t_col].as_i64().unwrap();
        events.insert(ev);
        surfaced.insert(item);
        shown[rank - 1] += 1;
        if is_click {
            clicks[rank - 1] += 1;
            clicked_items.insert(item);
            event_click.insert(ev, rank);
        }
    }
    let flawed = events
        .iter()
        .filter(|ev| match event_click.get(ev) {
            Some(&rank) => rank > 6,
            None => true,
        })
        .count();
    Ok(ClickAnalytics {
        surfaced_never_clicked: surfaced.difference(&clicked_items).count(),
        ctr_by_rank: shown
            .iter()
            .zip(&clicks)
            .map(|(&s, &c)| if s == 0 { 0.0 } else { c as f64 / s as f64 })
            .collect(),
        flawed_searches: flawed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClickSpec {
        ClickSpec {
            n_sessions: 200,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let a = generate_events(&spec());
        let b = generate_events(&spec());
        assert_eq!(a, b);
        assert!(a.len() >= 200 && a.len() <= 600);
        assert!(a.iter().all(|e| e.results.len() == 10));
    }

    #[test]
    fn array_and_table_agree_on_all_analytics() {
        let events = generate_events(&spec());
        let arr = build_event_array(&events, 10).unwrap();
        let tab = build_event_table(&events).unwrap();
        let a = analyze_array(&arr, 10).unwrap();
        let t = analyze_table(&tab, 10).unwrap();
        assert_eq!(a, t, "both engines compute identical analytics");
    }

    #[test]
    fn position_bias_shows_in_ctr() {
        let events = generate_events(&ClickSpec {
            n_sessions: 2000,
            ..Default::default()
        });
        let arr = build_event_array(&events, 10).unwrap();
        let a = analyze_array(&arr, 10).unwrap();
        assert!(
            a.ctr_by_rank[0] > 5.0 * a.ctr_by_rank[4],
            "rank 1 CTR dominates: {:?}",
            a.ctr_by_rank
        );
    }

    #[test]
    fn ignored_content_is_substantial() {
        let events = generate_events(&spec());
        let arr = build_event_array(&events, 10).unwrap();
        let a = analyze_array(&arr, 10).unwrap();
        assert!(
            a.surfaced_never_clicked > 100,
            "most surfaced items are never clicked: {}",
            a.surfaced_never_clicked
        );
        assert!(a.flawed_searches > 0);
    }

    #[test]
    fn nested_array_roundtrips_results() {
        let events = vec![SearchEvent {
            session: 1,
            query: 7,
            results: vec![70, 90, 40],
            clicked_rank: Some(2),
        }];
        let arr = build_event_array(&events, 3).unwrap();
        let rec = arr.get_cell(&[1]).unwrap();
        assert_eq!(rec[3], Value::from(90i64)); // clicked item
        let nested = rec[4].as_array().unwrap();
        assert_eq!(nested.get_cell(&[1]), Some(vec![Value::from(70i64)]));
        assert_eq!(nested.get_cell(&[3]), Some(vec![Value::from(40i64)]));
    }

    #[test]
    fn table_flattening_multiplies_rows() {
        let events = generate_events(&spec());
        let tab = build_event_table(&events).unwrap();
        assert_eq!(tab.len(), events.len() * 10);
    }
}
