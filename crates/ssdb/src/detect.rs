//! Observation detection: thresholding + connected components over cooked
//! imagery, producing uncertain positions (§2.13's PanSTARRS use case: "the
//! 'best' location of an observed object is calculated. However, this
//! location has some error").

use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::uncertain::Uncertain;
use std::collections::HashMap;

/// One detected observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Sequential id within the detection run.
    pub id: usize,
    /// Flux-weighted x centroid with positional error.
    pub x: Uncertain,
    /// Flux-weighted y centroid with positional error.
    pub y: Uncertain,
    /// Total flux with propagated noise error.
    pub flux: Uncertain,
    /// Pixels in the component.
    pub npix: usize,
    /// Peak pixel value.
    pub peak: f64,
}

impl Observation {
    /// Center as plain floats.
    pub fn center(&self) -> (f64, f64) {
        (self.x.mean, self.y.mean)
    }

    /// Euclidean distance between two observation centers.
    pub fn distance(&self, other: &Observation) -> f64 {
        let dx = self.x.mean - other.x.mean;
        let dy = self.y.mean - other.y.mean;
        dx.hypot(dy)
    }

    /// True if `other` lies within `k` combined position sigmas — the
    /// uncertain spatial match of §2.13.
    pub fn matches_within(&self, other: &Observation, k: f64) -> bool {
        let sx = self.x.sigma.hypot(other.x.sigma).max(0.5);
        let sy = self.y.sigma.hypot(other.y.sigma).max(0.5);
        let dx = (self.x.mean - other.x.mean).abs();
        let dy = (self.y.mean - other.y.mean).abs();
        dx <= k * sx.max(1.0) + k && dy <= k * sy.max(1.0) + k
    }
}

/// Detection parameters.
#[derive(Debug, Clone)]
pub struct DetectParams {
    /// Threshold in sigmas above the background mean.
    pub k_sigma: f64,
    /// Minimum component size in pixels.
    pub min_pixels: usize,
    /// Pixel noise sigma (for flux error propagation).
    pub noise_sigma: f64,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            k_sigma: 5.0,
            min_pixels: 3,
            noise_sigma: 1.0,
        }
    }
}

/// Detects observations in a 2-D image (attribute 0 = flux).
///
/// Pixels above `mean + k·sigma` are grouped by 4-connectivity; each
/// component becomes an [`Observation`] with a flux-weighted centroid whose
/// positional sigma comes from the component's spatial spread, and a total
/// flux with noise propagated in quadrature (σ_F = σ_noise · √npix).
pub fn detect(img: &Array, params: &DetectParams) -> Result<Vec<Observation>> {
    if img.rank() != 2 {
        return Err(Error::dimension("detection expects a 2-D image"));
    }
    let (mean, sigma) = crate::cooking::background_stats(img);
    let threshold = mean + params.k_sigma * sigma.max(params.noise_sigma * 0.5);

    // Collect bright pixels.
    let bright: HashMap<(i64, i64), f64> = img
        .cells_f64(0)
        .filter(|(_, v)| *v > threshold)
        .map(|(c, v)| ((c[0], c[1]), v))
        .collect();

    // 4-connected components by BFS.
    let mut visited: HashMap<(i64, i64), bool> = HashMap::new();
    let mut observations = Vec::new();
    for &start in bright.keys() {
        if visited.contains_key(&start) {
            continue;
        }
        let mut stack = vec![start];
        visited.insert(start, true);
        let mut members: Vec<((i64, i64), f64)> = Vec::new();
        while let Some(p) = stack.pop() {
            let v = bright[&p];
            members.push((p, v));
            for q in [
                (p.0 - 1, p.1),
                (p.0 + 1, p.1),
                (p.0, p.1 - 1),
                (p.0, p.1 + 1),
            ] {
                if bright.contains_key(&q) && !visited.contains_key(&q) {
                    visited.insert(q, true);
                    stack.push(q);
                }
            }
        }
        if members.len() < params.min_pixels {
            continue;
        }
        observations.push(component_to_observation(0, &members, params));
    }
    // Deterministic order: by (x, y) center.
    observations.sort_by(|a, b| {
        (a.x.mean, a.y.mean)
            .partial_cmp(&(b.x.mean, b.y.mean))
            .unwrap()
    });
    for (i, o) in observations.iter_mut().enumerate() {
        o.id = i;
    }
    Ok(observations)
}

fn component_to_observation(
    id: usize,
    members: &[((i64, i64), f64)],
    params: &DetectParams,
) -> Observation {
    let total: f64 = members.iter().map(|(_, v)| v).sum();
    let cx: f64 = members.iter().map(|((x, _), v)| *x as f64 * v).sum::<f64>() / total;
    let cy: f64 = members.iter().map(|((_, y), v)| *y as f64 * v).sum::<f64>() / total;
    // Positional sigma: flux-weighted spread / sqrt(npix), floored at a
    // tenth of a pixel.
    let var_x: f64 = members
        .iter()
        .map(|((x, _), v)| v * (*x as f64 - cx).powi(2))
        .sum::<f64>()
        / total;
    let var_y: f64 = members
        .iter()
        .map(|((_, y), v)| v * (*y as f64 - cy).powi(2))
        .sum::<f64>()
        / total;
    let n = members.len() as f64;
    let peak = members.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    Observation {
        id,
        x: Uncertain::new(cx, (var_x / n).sqrt().max(0.1)),
        y: Uncertain::new(cy, (var_y / n).sqrt().max(0.1)),
        flux: Uncertain::new(total, params.noise_sigma * n.sqrt()),
        npix: members.len(),
        peak,
    }
}

/// Matches detections against a ground-truth catalog; returns
/// `(matched, spurious, missed)` using a `radius`-pixel association.
pub fn score_against_truth(
    detections: &[Observation],
    truth: &[(f64, f64)],
    radius: f64,
) -> (usize, usize, usize) {
    let mut used = vec![false; truth.len()];
    let mut matched = 0;
    let mut spurious = 0;
    for d in detections {
        let best = truth
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, &(tx, ty))| (i, (d.x.mean - tx).hypot(d.y.mean - ty)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        match best {
            Some((i, dist)) if dist <= radius => {
                used[i] = true;
                matched += 1;
            }
            _ => spurious += 1,
        }
    }
    let missed = used.iter().filter(|&&u| !u).count();
    (matched, spurious, missed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_sources, render_epoch, ImageSpec};

    fn spec() -> ImageSpec {
        ImageSpec {
            size: 128,
            n_sources: 12,
            noise_sigma: 1.0,
            min_flux: 500.0,
            seed: 21,
            ..Default::default()
        }
    }

    #[test]
    fn detects_most_ground_truth_sources() {
        let spec = spec();
        let sources = generate_sources(&spec);
        let img = render_epoch(&spec, &sources, 0);
        let obs = detect(&img, &DetectParams::default()).unwrap();
        let truth: Vec<(f64, f64)> = sources.iter().map(|s| (s.x, s.y)).collect();
        let (matched, spurious, missed) = score_against_truth(&obs, &truth, 2.0);
        assert!(
            matched >= 10,
            "matched {matched}, spurious {spurious}, missed {missed}, n_obs {}",
            obs.len()
        );
        assert!(spurious <= 2, "few false positives: {spurious}");
    }

    #[test]
    fn empty_sky_yields_no_observations() {
        let spec = ImageSpec {
            n_sources: 0,
            size: 64,
            seed: 3,
            ..Default::default()
        };
        let img = render_epoch(&spec, &[], 0);
        let obs = detect(&img, &DetectParams::default()).unwrap();
        assert!(obs.len() <= 1, "noise rarely clusters: {}", obs.len());
    }

    #[test]
    fn centroid_accuracy_subpixel() {
        let spec = ImageSpec {
            size: 64,
            n_sources: 0,
            noise_sigma: 0.1,
            seed: 9,
            ..Default::default()
        };
        let sources = vec![crate::gen::Source {
            x: 30.4,
            y: 41.7,
            flux: 5000.0,
            motion: (0.0, 0.0),
        }];
        let img = render_epoch(&spec, &sources, 0);
        let obs = detect(&img, &DetectParams::default()).unwrap();
        assert_eq!(obs.len(), 1);
        assert!((obs[0].x.mean - 30.4).abs() < 0.3, "x {}", obs[0].x.mean);
        assert!((obs[0].y.mean - 41.7).abs() < 0.3, "y {}", obs[0].y.mean);
        assert!(obs[0].x.sigma > 0.0);
    }

    #[test]
    fn flux_error_grows_with_component_size() {
        let params = DetectParams {
            noise_sigma: 2.0,
            ..Default::default()
        };
        let small = component_to_observation(
            0,
            &[((1, 1), 10.0), ((1, 2), 10.0), ((2, 1), 10.0)],
            &params,
        );
        let members: Vec<((i64, i64), f64)> = (0..12).map(|k| ((k / 4, k % 4), 10.0)).collect();
        let big = component_to_observation(0, &members, &params);
        assert!(big.flux.sigma > small.flux.sigma);
        assert!((small.flux.sigma - 2.0 * 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn min_pixels_filters_single_pixel_noise() {
        let spec = ImageSpec {
            size: 64,
            n_sources: 0,
            noise_sigma: 1.0,
            seed: 17,
            ..Default::default()
        };
        let img = render_epoch(&spec, &[], 0);
        let strict = detect(
            &img,
            &DetectParams {
                k_sigma: 3.0,
                min_pixels: 3,
                noise_sigma: 1.0,
            },
        )
        .unwrap();
        let loose = detect(
            &img,
            &DetectParams {
                k_sigma: 3.0,
                min_pixels: 1,
                noise_sigma: 1.0,
            },
        )
        .unwrap();
        assert!(loose.len() > strict.len());
    }

    #[test]
    fn matches_within_uses_combined_sigma() {
        let mk = |x: f64, sx: f64| Observation {
            id: 0,
            x: Uncertain::new(x, sx),
            y: Uncertain::new(0.0, 0.1),
            flux: Uncertain::exact(1.0),
            npix: 1,
            peak: 1.0,
        };
        let a = mk(10.0, 0.5);
        let near = mk(11.0, 0.5);
        let far = mk(20.0, 0.5);
        assert!(a.matches_within(&near, 2.0));
        assert!(!a.matches_within(&far, 2.0));
        assert_eq!(a.distance(&near), 1.0);
    }
}
