//! The cooking process (§2.10): raw instrument pixels → finished data.
//!
//! "Cooking entails converting sensor information into standard data types,
//! correcting for calibration information, correcting for cloud cover,
//! etc." The paper's §2.11 example — compositing several satellite passes
//! and choosing the observation per cell (least cloud cover vs. most
//! directly overhead) — is implemented here too, since it motivates named
//! versions.

use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::value::{record, Value};

/// Calibration parameters for one instrument.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Constant dark-current offset subtracted from every pixel.
    pub dark_offset: f64,
    /// Multiplicative gain correction.
    pub gain: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            dark_offset: 0.0,
            gain: 1.0,
        }
    }
}

/// Applies dark subtraction + gain to attribute 0, producing a new array.
pub fn calibrate(raw: &Array, cal: &Calibration) -> Result<Array> {
    let mut out = Array::from_arc(raw.schema_arc());
    for (coords, _) in raw.cells() {
        let v = raw
            .get_f64(0, &coords)
            .ok_or_else(|| Error::eval("calibrate expects numeric pixels"))?;
        out.set_cell(
            &coords,
            record([Value::from((v - cal.dark_offset) * cal.gain)]),
        )?;
    }
    Ok(out)
}

/// 3×3 median denoise of attribute 0 (edges use the available
/// neighborhood). Missing (cloudy) neighbors are skipped; a fully missing
/// neighborhood leaves the cell absent.
pub fn denoise_median3(img: &Array) -> Result<Array> {
    if img.rank() != 2 {
        return Err(Error::dimension("median denoise expects a 2-D image"));
    }
    let mut out = Array::from_arc(img.schema_arc());
    for (coords, _) in img.cells() {
        let mut vals = Vec::with_capacity(9);
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let p = [coords[0] + dx, coords[1] + dy];
                if let Some(v) = img.get_f64(0, &p) {
                    vals.push(v);
                }
            }
        }
        if vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        out.set_cell(&coords, record([Value::from(median)]))?;
    }
    Ok(out)
}

/// How the composite picks among candidate passes for one cell — the
/// §2.11 "different cooking step" that motivates named versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeRule {
    /// Pick the pass whose pixel is present and has the most present
    /// neighbors (least cloud cover — the default production rule).
    LeastCloud,
    /// Pick the pass where the satellite was closest to directly overhead
    /// (pass k is most overhead for cells nearest its ground track) — the
    /// alternative rule the paper's scientist wants for a study region.
    MostOverhead,
}

/// Composites several passes into a single image under a rule. Ground
/// tracks for `MostOverhead` are vertical lines evenly spaced in x.
pub fn composite(passes: &[Array], rule: CompositeRule) -> Result<Array> {
    let first = passes
        .first()
        .ok_or_else(|| Error::eval("composite needs at least one pass"))?;
    let rect = first
        .rect()
        .ok_or_else(|| Error::dimension("composite expects bounded images"))?;
    let mut out = Array::from_arc(first.schema_arc());
    let nx = rect.high[0];

    for coords in rect.iter_cells() {
        let mut best: Option<(f64, f64)> = None; // (score, value)
        for (k, pass) in passes.iter().enumerate() {
            let Some(v) = pass.get_f64(0, &coords) else {
                continue;
            };
            let score = match rule {
                CompositeRule::LeastCloud => {
                    // Present neighbors = local clarity.
                    let mut clear = 0;
                    for dx in -1..=1i64 {
                        for dy in -1..=1i64 {
                            if pass.exists(&[coords[0] + dx, coords[1] + dy]) {
                                clear += 1;
                            }
                        }
                    }
                    clear as f64
                }
                CompositeRule::MostOverhead => {
                    // Ground track of pass k: x = (k+1) * nx / (n+1).
                    let track = (k as f64 + 1.0) * nx as f64 / (passes.len() as f64 + 1.0);
                    -(coords[0] as f64 - track).abs()
                }
            };
            match best {
                Some((s, _)) if s >= score => {}
                _ => best = Some((score, v)),
            }
        }
        if let Some((_, v)) = best {
            out.set_cell(&coords, record([Value::from(v)]))?;
        }
    }
    Ok(out)
}

/// Background statistics of attribute 0 (mean, sigma) with 3-round
/// 3σ clipping, so bright sources do not inflate the noise estimate —
/// the standard astronomical background estimator, used to set detection
/// thresholds.
pub fn background_stats(img: &Array) -> (f64, f64) {
    let values: Vec<f64> = img.cells_f64(0).map(|(_, v)| v).collect();
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let moments = |vals: &[f64]| {
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = (vals.iter().map(|v| v * v).sum::<f64>() / n - mean * mean).max(0.0);
        (mean, var.sqrt())
    };
    let (mut mean, mut sigma) = moments(&values);
    let mut kept = values;
    for _ in 0..3 {
        let next: Vec<f64> = kept
            .iter()
            .copied()
            .filter(|v| (v - mean).abs() <= 3.0 * sigma)
            .collect();
        if next.len() == kept.len() || next.is_empty() {
            break;
        }
        kept = next;
        let (m, s) = moments(&kept);
        mean = m;
        sigma = s;
    }
    (mean, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_sources, render_epoch, ImageSpec};

    fn flat(n: i64, v: f64) -> Array {
        Array::f64_2d("flat", "flux", &vec![vec![v; n as usize]; n as usize])
    }

    #[test]
    fn calibrate_applies_dark_and_gain() {
        let raw = flat(4, 110.0);
        let cal = Calibration {
            dark_offset: 10.0,
            gain: 2.0,
        };
        let cooked = calibrate(&raw, &cal).unwrap();
        assert_eq!(cooked.get_f64(0, &[2, 2]), Some(200.0));
        assert_eq!(cooked.cell_count(), 16);
    }

    #[test]
    fn median_kills_salt_noise() {
        let mut img = flat(5, 10.0);
        img.set_cell(&[3, 3], record([Value::from(1000.0)]))
            .unwrap();
        let den = denoise_median3(&img).unwrap();
        assert_eq!(den.get_f64(0, &[3, 3]), Some(10.0));
        // Corners survive with partial neighborhoods.
        assert_eq!(den.get_f64(0, &[1, 1]), Some(10.0));
    }

    #[test]
    fn median_preserves_missing_holes() {
        let mut img = flat(5, 10.0);
        for c in [[2i64, 2], [2, 3], [3, 2], [3, 3]] {
            img.delete_cell(&c).unwrap();
        }
        let den = denoise_median3(&img).unwrap();
        assert!(!den.exists(&[2, 2]));
        assert!(den.exists(&[1, 1]));
    }

    #[test]
    fn composite_least_cloud_fills_holes() {
        let mut spec = ImageSpec {
            size: 48,
            n_sources: 4,
            cloud_fraction: 0.3,
            seed: 11,
            ..Default::default()
        };
        let sources = generate_sources(&spec);
        let p1 = render_epoch(&spec, &sources, 0);
        spec.seed = 12; // different cloud pattern, same sky
        let p2 = render_epoch(&spec, &sources, 0);
        let comp = composite(&[p1.clone(), p2.clone()], CompositeRule::LeastCloud).unwrap();
        assert!(comp.cell_count() > p1.cell_count());
        assert!(comp.cell_count() > p2.cell_count());
    }

    #[test]
    fn composite_rules_differ() {
        // Two passes with different constant values: the rules pick
        // different passes for off-track cells.
        let a = flat(8, 1.0);
        let b = flat(8, 2.0);
        let lc = composite(&[a.clone(), b.clone()], CompositeRule::LeastCloud).unwrap();
        let mo = composite(&[a, b], CompositeRule::MostOverhead).unwrap();
        // LeastCloud ties resolve to the first pass; MostOverhead picks by
        // distance to tracks at x≈2.67 and x≈5.33.
        assert_eq!(lc.get_f64(0, &[6, 4]), Some(1.0));
        assert_eq!(mo.get_f64(0, &[6, 4]), Some(2.0));
        assert_eq!(mo.get_f64(0, &[2, 4]), Some(1.0));
    }

    #[test]
    fn background_stats_reasonable() {
        let spec = ImageSpec {
            size: 64,
            n_sources: 0,
            noise_sigma: 2.0,
            seed: 5,
            ..Default::default()
        };
        let img = render_epoch(&spec, &[], 0);
        let (mean, sigma) = background_stats(&img);
        assert!(mean.abs() < 0.5, "zero-mean noise: {mean}");
        assert!((sigma - 2.0).abs() < 0.3, "sigma ≈ 2: {sigma}");
    }

    #[test]
    fn composite_empty_input_errors() {
        assert!(composite(&[], CompositeRule::LeastCloud).is_err());
    }
}
