//! Synthetic telescope imagery (the §2.15 science benchmark's data
//! generator, modeled on SS-DB's star-field generator; see DESIGN.md §4
//! for the substitution rationale).
//!
//! Images are deterministic functions of a seed: point sources with
//! power-law fluxes rendered through a Gaussian PSF onto a pixel grid, plus
//! Gaussian read noise and an optional cloud mask. Multi-epoch stacks move
//! the sources along linear trajectories so observation grouping (§
//! benchmark Q7–Q9) has ground truth to recover.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scidb_core::array::Array;
use scidb_core::schema::SchemaBuilder;
use scidb_core::value::{record, ScalarType, Value};

/// A ground-truth point source.
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    /// Sub-pixel x center (1-based pixel space).
    pub x: f64,
    /// Sub-pixel y center.
    pub y: f64,
    /// Total flux.
    pub flux: f64,
    /// Per-epoch motion (dx, dy) in pixels.
    pub motion: (f64, f64),
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ImageSpec {
    /// Image side length in pixels.
    pub size: i64,
    /// Number of point sources.
    pub n_sources: usize,
    /// Gaussian PSF sigma (pixels).
    pub psf_sigma: f64,
    /// Read-noise sigma (flux units).
    pub noise_sigma: f64,
    /// Minimum source flux; fluxes follow a power law above it.
    pub min_flux: f64,
    /// Fraction of pixels obscured by clouds (0 disables the mask).
    pub cloud_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageSpec {
    fn default() -> Self {
        ImageSpec {
            size: 256,
            n_sources: 100,
            psf_sigma: 1.2,
            noise_sigma: 1.0,
            min_flux: 200.0,
            cloud_fraction: 0.0,
            seed: 42,
        }
    }
}

/// Draws the ground-truth source catalog for a spec.
pub fn generate_sources(spec: &ImageSpec) -> Vec<Source> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let margin = 4.0 * spec.psf_sigma;
    (0..spec.n_sources)
        .map(|_| {
            let x = rng.gen_range(margin..spec.size as f64 - margin);
            let y = rng.gen_range(margin..spec.size as f64 - margin);
            // Power-law flux: F = F_min * u^{-1/(α-1)}, α ≈ 2.35 (Salpeter-ish).
            let u: f64 = rng.gen_range(1e-3..1.0f64);
            let flux = spec.min_flux * u.powf(-1.0 / 1.35);
            let motion = (rng.gen_range(-1.5..1.5), rng.gen_range(-1.5..1.5));
            Source {
                x,
                y,
                flux: flux.min(spec.min_flux * 100.0),
                motion,
            }
        })
        .collect()
}

/// Standard normal via Box–Muller.
fn gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Renders one epoch of a source catalog into a pixel array
/// (`flux = float`, dims `x, y`), with noise and clouds. Cloudy pixels are
/// *absent* (empty cells), matching instrument masks.
pub fn render_epoch(spec: &ImageSpec, sources: &[Source], epoch: i64) -> Array {
    let schema = SchemaBuilder::new(format!("img_{epoch}"))
        .attr("flux", ScalarType::Float64)
        .dim_chunked("x", spec.size, 64.min(spec.size))
        .dim_chunked("y", spec.size, 64.min(spec.size))
        .build()
        .expect("valid image schema");
    let mut pixels = vec![0.0f64; (spec.size * spec.size) as usize];

    // Render PSFs (truncate at 4σ).
    let reach = (4.0 * spec.psf_sigma).ceil() as i64;
    let two_s2 = 2.0 * spec.psf_sigma * spec.psf_sigma;
    let norm = 1.0 / (std::f64::consts::PI * two_s2);
    for s in sources {
        let cx = s.x + s.motion.0 * epoch as f64;
        let cy = s.y + s.motion.1 * epoch as f64;
        let (px, py) = (cx.round() as i64, cy.round() as i64);
        for ix in (px - reach).max(1)..=(px + reach).min(spec.size) {
            for iy in (py - reach).max(1)..=(py + reach).min(spec.size) {
                let dx = ix as f64 - cx;
                let dy = iy as f64 - cy;
                let v = s.flux * norm * (-(dx * dx + dy * dy) / two_s2).exp();
                pixels[((ix - 1) * spec.size + (iy - 1)) as usize] += v;
            }
        }
    }

    // Noise + cloud mask, then materialize.
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ (epoch as u64).wrapping_mul(0x9e3779b9));
    let mut img = Array::new(schema);
    for ix in 1..=spec.size {
        for iy in 1..=spec.size {
            if spec.cloud_fraction > 0.0 && rng.gen_range(0.0..1.0f64) < spec.cloud_fraction {
                continue; // obscured: no measurement
            }
            let base = pixels[((ix - 1) * spec.size + (iy - 1)) as usize];
            let v = base + spec.noise_sigma * gauss(&mut rng);
            img.set_cell(&[ix, iy], record([Value::from(v)]))
                .expect("in bounds");
        }
    }
    img
}

/// A multi-epoch stack with shared ground truth.
pub struct Stack {
    /// Generator parameters.
    pub spec: ImageSpec,
    /// Ground-truth catalog (epoch-0 positions + motions).
    pub sources: Vec<Source>,
    /// Rendered epochs.
    pub epochs: Vec<Array>,
}

/// Generates `n_epochs` images of the same sky region.
pub fn generate_stack(spec: &ImageSpec, n_epochs: usize) -> Stack {
    let sources = generate_sources(spec);
    let epochs = (0..n_epochs)
        .map(|e| render_epoch(spec, &sources, e as i64))
        .collect();
    Stack {
        spec: spec.clone(),
        sources,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ImageSpec {
        ImageSpec {
            size: 64,
            n_sources: 8,
            noise_sigma: 0.5,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = render_epoch(&spec, &generate_sources(&spec), 0);
        let b = render_epoch(&spec, &generate_sources(&spec), 0);
        assert!(a.same_cells(&b));
    }

    #[test]
    fn image_is_dense_without_clouds() {
        let spec = small_spec();
        let img = render_epoch(&spec, &generate_sources(&spec), 0);
        assert_eq!(img.cell_count(), 64 * 64);
    }

    #[test]
    fn sources_appear_as_bright_pixels() {
        let spec = small_spec();
        let sources = generate_sources(&spec);
        let img = render_epoch(&spec, &sources, 0);
        for s in &sources {
            let v = img
                .get_f64(0, &[s.x.round() as i64, s.y.round() as i64])
                .unwrap();
            assert!(
                v > 10.0 * spec.noise_sigma,
                "source at ({}, {}) should be bright, got {v}",
                s.x,
                s.y
            );
        }
    }

    #[test]
    fn cloud_mask_removes_pixels() {
        let mut spec = small_spec();
        spec.cloud_fraction = 0.25;
        let img = render_epoch(&spec, &generate_sources(&spec), 0);
        let density = img.cell_count() as f64 / (64.0 * 64.0);
        assert!(
            (density - 0.75).abs() < 0.05,
            "≈75% of pixels survive: {density}"
        );
    }

    #[test]
    fn epochs_move_sources() {
        let spec = ImageSpec {
            n_sources: 1,
            noise_sigma: 0.0,
            ..small_spec()
        };
        let sources = vec![Source {
            x: 32.0,
            y: 32.0,
            flux: 1000.0,
            motion: (2.0, 0.0),
        }];
        let e0 = render_epoch(&spec, &sources, 0);
        let e2 = render_epoch(&spec, &sources, 2);
        let peak0 = e0.get_f64(0, &[32, 32]).unwrap();
        let peak2_at_old = e2.get_f64(0, &[32, 32]).unwrap();
        let peak2_at_new = e2.get_f64(0, &[36, 32]).unwrap();
        assert!(peak0 > 50.0);
        assert!(peak2_at_new > 50.0);
        assert!(peak2_at_old < peak2_at_new / 10.0);
    }

    #[test]
    fn stack_has_shared_ground_truth() {
        let stack = generate_stack(&small_spec(), 3);
        assert_eq!(stack.epochs.len(), 3);
        assert_eq!(stack.sources.len(), 8);
    }

    #[test]
    fn flux_distribution_is_heavy_tailed() {
        let spec = ImageSpec {
            n_sources: 500,
            ..small_spec()
        };
        let sources = generate_sources(&spec);
        let max = sources.iter().map(|s| s.flux).fold(0.0, f64::max);
        let median = {
            let mut f: Vec<f64> = sources.iter().map(|s| s.flux).collect();
            f.sort_by(|a, b| a.partial_cmp(b).unwrap());
            f[f.len() / 2]
        };
        assert!(max > 5.0 * median, "power law: max {max}, median {median}");
    }
}
