//! # scidb-ssdb
//!
//! The science benchmark the paper promises in §2.15 (realized in the
//! SS-DB style) plus the §2.14 eBay clickstream workload:
//!
//! * [`gen`] — deterministic synthetic telescope imagery (PSF-rendered
//!   star fields, noise, clouds, multi-epoch motion).
//! * [`cooking`] — the §2.10 cooking process: calibration, denoising,
//!   multi-pass compositing under alternative rules (the §2.11 named-
//!   version motivation).
//! * [`detect`] — thresholding + connected components → observations with
//!   uncertain positions and fluxes (§2.13).
//! * [`group`] — cross-epoch observation grouping (trajectories).
//! * [`queries`] — the Q1–Q9 benchmark suite over raw / observation /
//!   group data, with relational arms for the E10 comparison.
//! * [`clickstream`] — the eBay time-series-with-nested-arrays model and
//!   its flattened relational counterpart (E9).

#![warn(missing_docs)]

pub mod clickstream;
pub mod cooking;
pub mod detect;
pub mod gen;
pub mod group;
pub mod queries;

pub use detect::{detect, DetectParams, Observation};
pub use gen::{generate_stack, ImageSpec, Stack};
pub use group::{group_observations, GroupParams, ObsGroup};
pub use queries::{Benchmark, QueryResult};
