//! The science benchmark query suite (§2.15).
//!
//! The paper promises "a science benchmark … this collection of tasks"; the
//! realized benchmark from this group was SS-DB, whose structure we follow:
//! three data levels — raw imagery, cooked imagery + observations, and
//! observation groups — with three queries each:
//!
//! | level | queries |
//! |---|---|
//! | raw | Q1 slab average, Q2 recook a region, Q3 regrid pyramid |
//! | observations | Q4 detect + count, Q5 spatial box, Q6 uncertain flux filter |
//! | groups | Q7 trajectory count, Q8 fast movers, Q9 uncertain cross-epoch join |
//!
//! [`relational`] re-expresses the array-resident queries (Q1/Q3/Q5)
//! against the table simulation for the E10 per-query comparison.

use crate::cooking::{calibrate, Calibration};
use crate::detect::{detect, DetectParams, Observation};
use crate::gen::{generate_stack, ImageSpec, Stack};
use crate::group::{group_observations, GroupParams, ObsGroup};
use scidb_core::error::Result;
use scidb_core::geometry::HyperRect;
use scidb_core::ops;
use scidb_core::registry::Registry;

/// One query's outcome: a scalar summary plus work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Query name (`Q1`…`Q9`).
    pub name: &'static str,
    /// Scalar result (count / average — enough to check plausibility and
    /// compare engines).
    pub value: f64,
    /// Cells or records touched.
    pub cells: usize,
}

/// A prepared benchmark instance: generated stack, cooked epochs,
/// detections, and groups.
pub struct Benchmark {
    /// The generated stack.
    pub stack: Stack,
    /// Calibrated epochs.
    pub cooked: Vec<scidb_core::array::Array>,
    /// Per-epoch detections.
    pub observations: Vec<Vec<Observation>>,
    /// Cross-epoch groups.
    pub groups: Vec<ObsGroup>,
    registry: Registry,
}

impl Benchmark {
    /// Generates and fully prepares a benchmark instance.
    pub fn prepare(spec: &ImageSpec, n_epochs: usize) -> Result<Benchmark> {
        let stack = generate_stack(spec, n_epochs);
        let cal = Calibration {
            dark_offset: 0.0,
            gain: 1.0,
        };
        let cooked: Vec<_> = stack
            .epochs
            .iter()
            .map(|e| calibrate(e, &cal))
            .collect::<Result<_>>()?;
        let params = DetectParams {
            noise_sigma: spec.noise_sigma,
            ..Default::default()
        };
        let observations: Vec<Vec<Observation>> = cooked
            .iter()
            .map(|img| detect(img, &params))
            .collect::<Result<_>>()?;
        let groups = group_observations(&observations, &GroupParams::default());
        Ok(Benchmark {
            stack,
            cooked,
            observations,
            groups,
            registry: Registry::with_builtins(),
        })
    }

    /// The benchmark's function registry (available to custom queries).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Q1: average raw pixel over a slab, across all epochs (vectorized
    /// slab scan).
    pub fn q1_raw_slab(&self, region: &HyperRect) -> Result<QueryResult> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for epoch in &self.stack.epochs {
            let (s, c) = ops::dense::slab_sum_f64(epoch, 0, region)?;
            sum += s;
            n += c;
        }
        Ok(QueryResult {
            name: "Q1",
            value: if n == 0 { 0.0 } else { sum / n as f64 },
            cells: n,
        })
    }

    /// Q2: recook (calibrate) a region of one raw epoch with different
    /// calibration constants — the §2.11 "different cooking step" case.
    pub fn q2_recook(
        &self,
        epoch: usize,
        region: &HyperRect,
        cal: &Calibration,
    ) -> Result<QueryResult> {
        let mut out_sum = 0.0;
        let mut n = 0usize;
        for (_, rec) in self.stack.epochs[epoch].cells_in(region) {
            if let Some(v) = rec[0].as_f64() {
                out_sum += (v - cal.dark_offset) * cal.gain;
                n += 1;
            }
        }
        Ok(QueryResult {
            name: "Q2",
            value: if n == 0 { 0.0 } else { out_sum / n as f64 },
            cells: n,
        })
    }

    /// Q3: regrid one cooked epoch by `factor` (resolution pyramid level,
    /// vectorized mean-regrid kernel).
    pub fn q3_regrid(&self, epoch: usize, factor: i64) -> Result<QueryResult> {
        let img = &self.cooked[epoch];
        let out = ops::dense::regrid_mean_f64(img, 0, &[factor, factor])?;
        Ok(QueryResult {
            name: "Q3",
            value: out.cell_count() as f64,
            cells: img.cell_count(),
        })
    }

    /// Q4: number of observations in one epoch.
    pub fn q4_detect_count(&self, epoch: usize) -> QueryResult {
        QueryResult {
            name: "Q4",
            value: self.observations[epoch].len() as f64,
            cells: self.cooked[epoch].cell_count(),
        }
    }

    /// Q5: observations of one epoch inside a spatial box.
    pub fn q5_obs_in_box(&self, epoch: usize, region: &HyperRect) -> QueryResult {
        let hits = self.observations[epoch]
            .iter()
            .filter(|o| {
                let (x, y) = o.center();
                region.contains(&[x.round() as i64, y.round() as i64])
            })
            .count();
        QueryResult {
            name: "Q5",
            value: hits as f64,
            cells: self.observations[epoch].len(),
        }
    }

    /// Q6: observations whose flux exceeds `f0` with probability ≥ `p` —
    /// the §2.13 uncertainty-aware filter.
    pub fn q6_bright_obs(&self, epoch: usize, f0: f64, p: f64) -> QueryResult {
        let hits = self.observations[epoch]
            .iter()
            .filter(|o| 1.0 - o.flux.cdf(f0) >= p)
            .count();
        QueryResult {
            name: "Q6",
            value: hits as f64,
            cells: self.observations[epoch].len(),
        }
    }

    /// Q7: number of cross-epoch groups seen in at least `min_epochs`.
    pub fn q7_group_count(&self, min_epochs: usize) -> QueryResult {
        let n = self.groups.iter().filter(|g| g.len() >= min_epochs).count();
        QueryResult {
            name: "Q7",
            value: n as f64,
            cells: self.groups.iter().map(ObsGroup::len).sum(),
        }
    }

    /// Q8: groups moving faster than `v_min` pixels/epoch.
    pub fn q8_fast_movers(&self, v_min: f64) -> QueryResult {
        let n = self
            .groups
            .iter()
            .filter(|g| {
                let (vx, vy) = g.velocity();
                vx.hypot(vy) > v_min && g.len() >= 2
            })
            .count();
        QueryResult {
            name: "Q8",
            value: n as f64,
            cells: self.groups.len(),
        }
    }

    /// Q9: uncertain cross-epoch join — pairs of observations in epochs
    /// `a`, `b` matching within `k` combined sigmas (§2.13 PanSTARRS).
    pub fn q9_uncertain_join(&self, a: usize, b: usize, k: f64) -> QueryResult {
        let mut pairs = 0usize;
        for oa in &self.observations[a] {
            for ob in &self.observations[b] {
                if oa.matches_within(ob, k) {
                    pairs += 1;
                }
            }
        }
        QueryResult {
            name: "Q9",
            value: pairs as f64,
            cells: self.observations[a].len() * self.observations[b].len(),
        }
    }

    /// Runs the full suite at default parameters.
    pub fn run_all(&self) -> Result<Vec<QueryResult>> {
        let n = self.stack.spec.size;
        let slab = HyperRect::new(vec![1, 1], vec![n / 4, n]).unwrap();
        let box_q = HyperRect::new(vec![n / 4, n / 4], vec![3 * n / 4, 3 * n / 4]).unwrap();
        Ok(vec![
            self.q1_raw_slab(&slab)?,
            self.q2_recook(
                0,
                &slab,
                &Calibration {
                    dark_offset: 0.5,
                    gain: 1.1,
                },
            )?,
            self.q3_regrid(0, 4)?,
            self.q4_detect_count(0),
            self.q5_obs_in_box(0, &box_q),
            self.q6_bright_obs(0, self.stack.spec.min_flux, 0.95),
            self.q7_group_count(2),
            self.q8_fast_movers(0.5),
            self.q9_uncertain_join(0, self.stack.epochs.len() - 1, 3.0),
        ])
    }
}

/// Relational arms of all nine queries, for the E10 per-query comparison:
/// raw imagery through [`ArrayTable`](scidb_relational::ArrayTable) (pixel
/// rows with explicit dimension columns), observations and groups through
/// plain typed tables built by [`relational::obs_table`] and
/// [`relational::group_table`].
pub mod relational {
    use super::*;
    use scidb_core::uncertain::Uncertain;
    use scidb_core::value::{ScalarType, Value};
    use scidb_relational::{group_aggregate, hash_join, select, ArrayTable, ColumnDef, Table};

    fn col(name: &str, ty: ScalarType) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            ty,
        }
    }

    /// Flattens per-epoch detections into one observation table:
    /// `(epoch, id, x, x_sigma, y, y_sigma, flux, flux_sigma, npix)`.
    pub fn obs_table(per_epoch: &[Vec<Observation>]) -> Result<Table> {
        let mut t = Table::new(
            "observations",
            vec![
                col("epoch", ScalarType::Int64),
                col("id", ScalarType::Int64),
                col("x", ScalarType::Float64),
                col("x_sigma", ScalarType::Float64),
                col("y", ScalarType::Float64),
                col("y_sigma", ScalarType::Float64),
                col("flux", ScalarType::Float64),
                col("flux_sigma", ScalarType::Float64),
                col("npix", ScalarType::Int64),
            ],
        )?;
        for (epoch, obs) in per_epoch.iter().enumerate() {
            for o in obs {
                t.insert(vec![
                    Value::from(epoch as i64),
                    Value::from(o.id as i64),
                    Value::from(o.x.mean),
                    Value::from(o.x.sigma),
                    Value::from(o.y.mean),
                    Value::from(o.y.sigma),
                    Value::from(o.flux.mean),
                    Value::from(o.flux.sigma),
                    Value::from(o.npix as i64),
                ])?;
            }
        }
        Ok(t)
    }

    /// Flattens group membership into one table:
    /// `(group_id, epoch, x, y, flux)` — one row per member observation.
    pub fn group_table(groups: &[ObsGroup]) -> Result<Table> {
        let mut t = Table::new(
            "obs_groups",
            vec![
                col("group_id", ScalarType::Int64),
                col("epoch", ScalarType::Int64),
                col("x", ScalarType::Float64),
                col("y", ScalarType::Float64),
                col("flux", ScalarType::Float64),
            ],
        )?;
        for g in groups {
            for (epoch, o) in &g.members {
                t.insert(vec![
                    Value::from(g.id as i64),
                    Value::from(*epoch as i64),
                    Value::from(o.x.mean),
                    Value::from(o.y.mean),
                    Value::from(o.flux.mean),
                ])?;
            }
        }
        Ok(t)
    }

    /// Q1 against the table simulation: slab via index range + residual.
    pub fn q1_raw_slab(tables: &[ArrayTable], region: &HyperRect) -> Result<QueryResult> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in tables {
            for row in t.slab(region)? {
                if let Some(v) = row.last().and_then(|v| v.as_f64()) {
                    sum += v;
                    n += 1;
                }
            }
        }
        Ok(QueryResult {
            name: "Q1(rel)",
            value: if n == 0 { 0.0 } else { sum / n as f64 },
            cells: n,
        })
    }

    /// Q2 against the table simulation: recook a slab of pixel rows with
    /// different calibration constants.
    pub fn q2_recook(
        table: &ArrayTable,
        region: &HyperRect,
        cal: &Calibration,
    ) -> Result<QueryResult> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in table.slab(region)? {
            if let Some(v) = row.last().and_then(|v| v.as_f64()) {
                sum += (v - cal.dark_offset) * cal.gain;
                n += 1;
            }
        }
        Ok(QueryResult {
            name: "Q2(rel)",
            value: if n == 0 { 0.0 } else { sum / n as f64 },
            cells: n,
        })
    }

    /// Q3 against the table simulation: GROUP BY computed block ids.
    pub fn q3_regrid(table: &ArrayTable, factor: i64, registry: &Registry) -> Result<QueryResult> {
        let out = table.regrid(&[factor, factor], "avg", "flux", registry)?;
        Ok(QueryResult {
            name: "Q3(rel)",
            value: out.len() as f64,
            cells: table.len(),
        })
    }

    /// Q4 against the table simulation: `SELECT COUNT(*) WHERE epoch = e`.
    pub fn q4_detect_count(obs: &Table, epoch: usize) -> Result<QueryResult> {
        let e = obs.column_index("epoch")?;
        let hits = select(obs, |row| row[e].as_i64() == Some(epoch as i64)).len();
        Ok(QueryResult {
            name: "Q4(rel)",
            value: hits as f64,
            cells: obs.len(),
        })
    }

    /// Q5 against the table simulation: spatial box as a value predicate
    /// over the centroid columns.
    pub fn q5_obs_in_box(obs: &Table, epoch: usize, region: &HyperRect) -> Result<QueryResult> {
        let (e, xc, yc) = (
            obs.column_index("epoch")?,
            obs.column_index("x")?,
            obs.column_index("y")?,
        );
        let rows = select(obs, |row| {
            row[e].as_i64() == Some(epoch as i64)
                && match (row[xc].as_f64(), row[yc].as_f64()) {
                    (Some(x), Some(y)) => region.contains(&[x.round() as i64, y.round() as i64]),
                    _ => false,
                }
        });
        let total = select(obs, |row| row[e].as_i64() == Some(epoch as i64)).len();
        Ok(QueryResult {
            name: "Q5(rel)",
            value: rows.len() as f64,
            cells: total,
        })
    }

    /// Q6 against the table simulation: the §2.13 uncertainty-aware filter,
    /// reconstructing the flux distribution from its mean/sigma columns.
    pub fn q6_bright_obs(obs: &Table, epoch: usize, f0: f64, p: f64) -> Result<QueryResult> {
        let (e, fm, fs) = (
            obs.column_index("epoch")?,
            obs.column_index("flux")?,
            obs.column_index("flux_sigma")?,
        );
        let rows = select(obs, |row| {
            row[e].as_i64() == Some(epoch as i64)
                && match (row[fm].as_f64(), row[fs].as_f64()) {
                    (Some(mean), Some(sigma)) => 1.0 - Uncertain::new(mean, sigma).cdf(f0) >= p,
                    _ => false,
                }
        });
        let total = select(obs, |row| row[e].as_i64() == Some(epoch as i64)).len();
        Ok(QueryResult {
            name: "Q6(rel)",
            value: rows.len() as f64,
            cells: total,
        })
    }

    /// Q7 against the table simulation: `GROUP BY group_id HAVING
    /// COUNT(*) >= min_epochs`.
    pub fn q7_group_count(
        groups: &Table,
        min_epochs: usize,
        reg: &Registry,
    ) -> Result<QueryResult> {
        let counts = group_aggregate(groups, &["group_id"], "count", "epoch", reg)?;
        let c = counts.column_index("count_epoch")?;
        let hits = select(&counts, |row| {
            row[c].as_i64().is_some_and(|n| n >= min_epochs as i64)
        })
        .len();
        Ok(QueryResult {
            name: "Q7(rel)",
            value: hits as f64,
            cells: groups.len(),
        })
    }

    /// Q8 against the table simulation: join each group's first and last
    /// member rows (min/max epoch aggregates) and filter on the implied
    /// per-epoch velocity.
    pub fn q8_fast_movers(groups: &Table, v_min: f64, reg: &Registry) -> Result<QueryResult> {
        let firsts = endpoint_rows(groups, "min", reg)?;
        let lasts = endpoint_rows(groups, "max", reg)?;
        let j = hash_join(&firsts, &lasts, &[("group_id", "group_id")])?;
        let (e0, x0, y0) = (
            j.column_index("epoch")?,
            j.column_index("x")?,
            j.column_index("y")?,
        );
        let (e1, x1, y1) = (
            j.column_index("epoch_r")?,
            j.column_index("x_r")?,
            j.column_index("y_r")?,
        );
        let hits = select(&j, |row| {
            let (Some(ea), Some(eb)) = (row[e0].as_i64(), row[e1].as_i64()) else {
                return false;
            };
            if ea == eb {
                return false; // single-epoch group
            }
            let d = (eb - ea) as f64;
            let (Some(xa), Some(ya), Some(xb), Some(yb)) = (
                row[x0].as_f64(),
                row[y0].as_f64(),
                row[x1].as_f64(),
                row[y1].as_f64(),
            ) else {
                return false;
            };
            ((xb - xa) / d).hypot((yb - ya) / d) > v_min
        })
        .len();
        Ok(QueryResult {
            name: "Q8(rel)",
            value: hits as f64,
            cells: j.len(),
        })
    }

    /// The member rows at each group's `min`/`max` epoch: aggregate the
    /// endpoint epoch per group, join back, keep the matching rows.
    fn endpoint_rows(groups: &Table, which: &str, reg: &Registry) -> Result<Table> {
        let ends = group_aggregate(groups, &["group_id"], which, "epoch", reg)?;
        let j = hash_join(groups, &ends, &[("group_id", "group_id")])?;
        let (e, end) = (
            j.column_index("epoch")?,
            j.column_index(&format!("{which}_epoch"))?,
        );
        let mut out = Table::new(format!("{which}_members"), groups.columns().to_vec())?;
        for row in select(&j, |row| row[e] == row[end]) {
            out.insert(row[..groups.columns().len()].to_vec())?;
        }
        Ok(out)
    }

    /// Q9 against the table simulation: the §2.13 uncertain theta-join —
    /// a nested-loop join of two epoch selections under the combined-sigma
    /// match predicate, evaluated on table columns.
    pub fn q9_uncertain_join(obs: &Table, a: usize, b: usize, k: f64) -> Result<QueryResult> {
        let e = obs.column_index("epoch")?;
        let (xc, xs) = (obs.column_index("x")?, obs.column_index("x_sigma")?);
        let (yc, ys) = (obs.column_index("y")?, obs.column_index("y_sigma")?);
        let left = select(obs, |row| row[e].as_i64() == Some(a as i64));
        let right = select(obs, |row| row[e].as_i64() == Some(b as i64));
        let axis = |m1: f64, s1: f64, m2: f64, s2: f64| {
            let s = s1.hypot(s2).max(0.5);
            (m1 - m2).abs() <= k * s.max(1.0) + k
        };
        let mut pairs = 0usize;
        for ra in &left {
            for rb in &right {
                let vals = (
                    ra[xc].as_f64(),
                    ra[xs].as_f64(),
                    ra[yc].as_f64(),
                    ra[ys].as_f64(),
                    rb[xc].as_f64(),
                    rb[xs].as_f64(),
                    rb[yc].as_f64(),
                    rb[ys].as_f64(),
                );
                if let (
                    Some(xa),
                    Some(xsa),
                    Some(ya),
                    Some(ysa),
                    Some(xb),
                    Some(xsb),
                    Some(yb),
                    Some(ysb),
                ) = vals
                {
                    if axis(xa, xsa, xb, xsb) && axis(ya, ysa, yb, ysb) {
                        pairs += 1;
                    }
                }
            }
        }
        Ok(QueryResult {
            name: "Q9(rel)",
            value: pairs as f64,
            cells: left.len() * right.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_relational::ArrayTable;

    fn bench() -> Benchmark {
        Benchmark::prepare(
            &ImageSpec {
                size: 96,
                n_sources: 10,
                min_flux: 600.0,
                noise_sigma: 0.8,
                seed: 77,
                ..Default::default()
            },
            3,
        )
        .unwrap()
    }

    #[test]
    fn full_suite_runs_and_is_plausible() {
        let b = bench();
        let results = b.run_all().unwrap();
        assert_eq!(results.len(), 9);
        let by_name = |n: &str| results.iter().find(|r| r.name == n).unwrap().value;
        // Q1: background-dominated average near zero.
        assert!(by_name("Q1").abs() < 5.0);
        // Q4: roughly the planted source count.
        assert!((by_name("Q4") - 10.0).abs() <= 3.0, "Q4 {}", by_name("Q4"));
        // Q7: most sources tracked in ≥2 epochs.
        assert!(by_name("Q7") >= 6.0, "Q7 {}", by_name("Q7"));
        // Q9: at least as many matches as tracked groups.
        assert!(by_name("Q9") >= 5.0, "Q9 {}", by_name("Q9"));
    }

    #[test]
    fn q2_recook_changes_values() {
        let b = bench();
        let slab = HyperRect::new(vec![1, 1], vec![24, 96]).unwrap();
        let base = b.q1_raw_slab(&slab).unwrap().value;
        let recooked = b
            .q2_recook(
                0,
                &slab,
                &Calibration {
                    dark_offset: 10.0,
                    gain: 1.0,
                },
            )
            .unwrap()
            .value;
        assert!((base - recooked).abs() > 5.0, "{base} vs {recooked}");
    }

    #[test]
    fn q6_threshold_monotone() {
        let b = bench();
        let loose = b.q6_bright_obs(0, 100.0, 0.5).value;
        let tight = b.q6_bright_obs(0, 2000.0, 0.95).value;
        assert!(loose >= tight);
    }

    #[test]
    fn relational_arms_agree_with_array_arms() {
        let b = bench();
        let slab = HyperRect::new(vec![1, 1], vec![24, 96]).unwrap();
        let tables: Vec<ArrayTable> = b
            .stack
            .epochs
            .iter()
            .map(|e| ArrayTable::from_array(e).unwrap())
            .collect();
        let rel = relational::q1_raw_slab(&tables, &slab).unwrap();
        let arr = b.q1_raw_slab(&slab).unwrap();
        assert_eq!(rel.cells, arr.cells);
        assert!((rel.value - arr.value).abs() < 1e-9);

        let r = Registry::with_builtins();
        let t0 = ArrayTable::from_array(&b.cooked[0]).unwrap();
        let rel3 = relational::q3_regrid(&t0, 4, &r).unwrap();
        let arr3 = b.q3_regrid(0, 4).unwrap();
        assert_eq!(rel3.value, arr3.value);
    }

    /// The full E10 comparison: every query's relational arm must agree
    /// with the array arm on the fixed dataset — exact for counts, within
    /// float-sum reassociation tolerance for the averaged slabs.
    #[test]
    fn all_nine_relational_arms_agree_with_array_arms() {
        let b = bench();
        let reg = Registry::with_builtins();
        let n = b.stack.spec.size;
        let slab = HyperRect::new(vec![1, 1], vec![n / 4, n]).unwrap();
        let box_q = HyperRect::new(vec![n / 4, n / 4], vec![3 * n / 4, 3 * n / 4]).unwrap();
        let recal = Calibration {
            dark_offset: 0.5,
            gain: 1.1,
        };

        let tables: Vec<ArrayTable> = b
            .stack
            .epochs
            .iter()
            .map(|e| ArrayTable::from_array(e).unwrap())
            .collect();
        let cooked0 = ArrayTable::from_array(&b.cooked[0]).unwrap();
        let obs = relational::obs_table(&b.observations).unwrap();
        let groups = relational::group_table(&b.groups).unwrap();
        let last = b.stack.epochs.len() - 1;

        let close = |rel: &QueryResult, arr: &QueryResult| {
            assert!(
                (rel.value - arr.value).abs() < 1e-9,
                "{}: {} vs {}: {}",
                rel.name,
                rel.value,
                arr.name,
                arr.value
            );
        };
        let exact = |rel: &QueryResult, arr: &QueryResult| {
            assert_eq!(rel.value, arr.value, "{} vs {}", rel.name, arr.name);
        };

        close(
            &relational::q1_raw_slab(&tables, &slab).unwrap(),
            &b.q1_raw_slab(&slab).unwrap(),
        );
        close(
            &relational::q2_recook(&tables[0], &slab, &recal).unwrap(),
            &b.q2_recook(0, &slab, &recal).unwrap(),
        );
        exact(
            &relational::q3_regrid(&cooked0, 4, &reg).unwrap(),
            &b.q3_regrid(0, 4).unwrap(),
        );
        exact(
            &relational::q4_detect_count(&obs, 0).unwrap(),
            &b.q4_detect_count(0),
        );
        exact(
            &relational::q5_obs_in_box(&obs, 0, &box_q).unwrap(),
            &b.q5_obs_in_box(0, &box_q),
        );
        exact(
            &relational::q6_bright_obs(&obs, 0, b.stack.spec.min_flux, 0.95).unwrap(),
            &b.q6_bright_obs(0, b.stack.spec.min_flux, 0.95),
        );
        exact(
            &relational::q7_group_count(&groups, 2, &reg).unwrap(),
            &b.q7_group_count(2),
        );
        exact(
            &relational::q8_fast_movers(&groups, 0.5, &reg).unwrap(),
            &b.q8_fast_movers(0.5),
        );
        exact(
            &relational::q9_uncertain_join(&obs, 0, last, 3.0).unwrap(),
            &b.q9_uncertain_join(0, last, 3.0),
        );
    }

    #[test]
    fn q5_box_bounded_by_total() {
        let b = bench();
        let all = HyperRect::new(vec![1, 1], vec![96, 96]).unwrap();
        let r = b.q5_obs_in_box(0, &all);
        assert_eq!(r.value as usize, b.observations[0].len());
    }
}
