//! The durability layer: WAL-backed catalog writes and ARIES-lite replay.
//!
//! A durable database ([`super::Database::open`]) owns a [`Durability`]
//! holding the group-commit [`Wal`] and the shared [`PagedDisk`] every
//! disk-backed structure writes through. Each committed operation appends
//! exactly one WAL group — `Begin`, physical bucket images, the logical
//! record that owns them, `Commit` — and fsyncs once; aborted operations
//! append nothing.
//!
//! The `op` mutex (rank `WAL` = 25, *below* `CATALOG`) serializes durable
//! writers so a group's physical records are attributable to one logical
//! operation. Long bulk loads ([`Durability::put_array_on_disk`]) run
//! while holding only this mutex: concurrent readers keep scanning the
//! previous catalog generation (MVCC over the generation counter) and the
//! catalog write lock is taken only for the final publish.
//!
//! Recovery is physical-redo with self-verification: the page file is
//! derived state rebuilt from scratch, each group's logical record is
//! re-executed with the disk in replay mode, and every bucket write the
//! re-execution produces must match the logged image byte-for-byte (and
//! lands at the logged block id). A mismatch is a replay divergence and
//! fails the open, never silently corrupts.

use super::{apply_write, system, DbCore, StoredArray};
use crate::ast::Stmt;
use crate::parser;
use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::exec::ExecContext;
use scidb_core::sync::{ranks, OrderedMutex};
use scidb_obs::{Stopwatch, Trace, LAYER_QUERY};
use scidb_storage::pool::PoolStats;
use scidb_storage::wal::{self, Record, Wal};
use scidb_storage::{
    merge_pass, CodecPolicy, DeltaStore, Disk, MergeStats, PagedDisk, StorageManager,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// State guarded by the durable-operation mutex.
struct WalState {
    wal: Wal,
    next_op: u64,
    /// Per-updatable-array history persistence, keyed by catalog name.
    deltas: HashMap<String, DeltaStore>,
}

/// The durable backend of one database: WAL appender, paged disk, and
/// recovery bookkeeping.
pub(super) struct Durability {
    /// The shared page-backed disk all durable buckets live on.
    pub(super) disk: Arc<PagedDisk>,
    op: OrderedMutex<WalState>,
    dir: PathBuf,
    replayed_ops: AtomicU64,
    replay_ms: AtomicU64,
    torn_bytes: AtomicU64,
}

impl Durability {
    /// Opens (creating if needed) the durable store under `dir` and
    /// salvages the committed WAL groups for replay. The page file is
    /// recreated empty — it is rebuilt entirely from the log.
    pub(super) fn create(dir: &Path) -> Result<(Durability, Vec<Vec<Record>>)> {
        std::fs::create_dir_all(dir)?;
        let (wal, recovered) = Wal::open(&dir.join("wal.log"))?;
        let disk = Arc::new(PagedDisk::create(&dir.join("pages.db"))?);
        let d = Durability {
            disk,
            op: OrderedMutex::new(
                ranks::WAL,
                WalState {
                    wal,
                    next_op: 0,
                    deltas: HashMap::new(),
                },
            ),
            dir: dir.to_path_buf(),
            replayed_ops: AtomicU64::new(0),
            replay_ms: AtomicU64::new(0),
            torn_bytes: AtomicU64::new(recovered.torn_bytes),
        };
        Ok((d, recovered.groups))
    }

    /// The directory this database persists under.
    pub(super) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Operations replayed by the last open.
    pub(super) fn replayed_ops(&self) -> u64 {
        self.replayed_ops.load(Ordering::Relaxed)
    }

    /// Wall milliseconds the last replay took.
    pub(super) fn replay_ms(&self) -> u64 {
        self.replay_ms.load(Ordering::Relaxed)
    }

    /// Torn-tail bytes truncated by the last open.
    pub(super) fn torn_bytes(&self) -> u64 {
        self.torn_bytes.load(Ordering::Relaxed)
    }

    /// Buffer-pool counters of the shared paged disk.
    pub(super) fn pool_stats(&self) -> PoolStats {
        self.disk.pool_stats()
    }

    /// Replays recovered WAL groups against a freshly constructed core:
    /// physical records queue on the disk, logical records re-execute and
    /// consume them under byte verification, `Commit` asserts the queue
    /// drained. Runs before the database handle is shared, single-threaded.
    pub(super) fn replay(&self, core: &DbCore, groups: Vec<Vec<Record>>) -> Result<()> {
        let sw = Stopwatch::start();
        let ctx = ExecContext::with_threads(1);
        let mut ws = self.op.lock();
        self.disk.begin_replay();
        let mut ops = 0u64;
        for group in groups {
            for rec in group {
                match rec {
                    Record::Begin { op } => ws.next_op = ws.next_op.max(op + 1),
                    Record::Commit { .. } => {
                        self.disk.assert_replay_drained()?;
                        ops += 1;
                    }
                    Record::BucketWrite { .. } | Record::BucketFree { .. } => {
                        self.disk.queue_replay(rec)
                    }
                    Record::Stmt { aql } => {
                        let stmt = parser::parse_one(&aql)?;
                        let dropped = match &stmt {
                            Stmt::Drop { name } => Some(name.clone()),
                            _ => None,
                        };
                        let trace = Trace::new();
                        let root = trace.root("recovery", LAYER_QUERY);
                        let mut state = core.state.write();
                        apply_write(core, &mut state, stmt, &root, &ctx)?;
                        drop(state);
                        root.finish();
                        if let Some(name) = dropped {
                            ws.deltas.remove(&name);
                        }
                    }
                    Record::PutArray { name, bytes } => {
                        let array = wal::decode_array(&bytes)?;
                        core.state
                            .write()
                            .arrays
                            .insert(name, StoredArray::Plain(array));
                    }
                    Record::PutArrayOnDisk { name, bytes } => {
                        let array = wal::decode_array(&bytes)?;
                        let schema = Arc::new(array.schema().renamed(&name));
                        let mut mgr = StorageManager::new(
                            Arc::clone(&self.disk) as Arc<dyn Disk>,
                            schema,
                            CodecPolicy::adaptive(),
                        );
                        mgr.store_array(&array)?;
                        core.state
                            .write()
                            .arrays
                            .insert(name, StoredArray::OnDisk(mgr));
                    }
                    Record::DeltaAppend { array, through } => {
                        let state = core.state.read();
                        let ua = match state.stored(&array)? {
                            StoredArray::Updatable(ua) => ua,
                            _ => {
                                return Err(Error::storage(format!(
                                    "wal replay: DeltaAppend target '{array}' is not updatable"
                                )))
                            }
                        };
                        if ua.current_history() != through {
                            return Err(Error::storage(format!(
                                "wal replay diverged: '{array}' history at {} but log \
                                 persisted through {through}",
                                ua.current_history()
                            )));
                        }
                        let ds = delta_store_for(&mut ws.deltas, &self.disk, &array, ua)?;
                        ds.sync_from(ua)?;
                    }
                    Record::Merge { array, factor } => {
                        let mut state = core.state.write();
                        match state.stored_mut(&array)? {
                            StoredArray::OnDisk(mgr) => {
                                merge_pass(mgr, factor)?;
                            }
                            _ => {
                                return Err(Error::storage(format!(
                                    "wal replay: Merge target '{array}' is not disk-backed"
                                )))
                            }
                        }
                    }
                }
            }
        }
        self.disk.end_replay()?;
        drop(ws);
        core.touch();
        let ms = sw.elapsed().as_millis() as u64;
        self.replayed_ops.store(ops, Ordering::Relaxed);
        self.replay_ms.store(ms, Ordering::Relaxed);
        let reg = scidb_obs::global();
        reg.gauge("scidb.storage.recovery.replay_ms").set(ms as i64);
        reg.counter("scidb.storage.recovery.replayed_ops").inc(ops);
        reg.counter("scidb.storage.recovery.torn_bytes")
            .inc(self.torn_bytes());
        Ok(())
    }

    /// Durable statement execution: applies the write under the catalog
    /// lock, syncs updatable-array deltas, and commits one WAL group.
    pub(super) fn stmt(
        &self,
        core: &DbCore,
        stmt: Stmt,
        aql: &str,
        root: &scidb_obs::Span,
        ctx: &ExecContext,
    ) -> Result<super::StmtResult> {
        let mut ws = self.op.lock();
        debug_assert!(self.disk.take_journal().is_empty());
        let dropped = match &stmt {
            Stmt::Drop { name } => Some(name.clone()),
            _ => None,
        };
        let mut state = core.state.write();
        let out = match apply_write(core, &mut state, stmt, root, ctx) {
            Ok(v) => v,
            Err(e) => {
                // Aborts append nothing; discard any journalled traffic.
                drop(state);
                let _ = self.disk.take_journal();
                return Err(e);
            }
        };
        let op = ws.next_op;
        ws.next_op += 1;
        let mut group = vec![
            Record::Begin { op },
            Record::Stmt {
                aql: aql.to_string(),
            },
        ];
        // Persist any history versions this statement added, in sorted
        // array order so replay regenerates identical bucket traffic.
        let mut names: Vec<String> = state.arrays.keys().cloned().collect();
        names.sort_unstable();
        for name in names {
            let Some(StoredArray::Updatable(ua)) = state.arrays.get(&name) else {
                continue;
            };
            let ds = delta_store_for(&mut ws.deltas, &self.disk, &name, ua)?;
            if ua.current_history() > ds.persisted_through() {
                ds.sync_from(ua)?;
                group.append(&mut self.disk.take_journal());
                group.push(Record::DeltaAppend {
                    array: name.clone(),
                    through: ua.current_history(),
                });
            }
        }
        if let Some(name) = dropped {
            ws.deltas.remove(&name);
        }
        group.push(Record::Commit { op });
        drop(state);
        core.touch();
        ws.wal.append_group(&group)?;
        Ok(out)
    }

    /// Durable bulk registration of an in-memory array.
    pub(super) fn put_array(&self, core: &DbCore, name: &str, array: Array) -> Result<()> {
        let mut ws = self.op.lock();
        let bytes = wal::encode_array(&array);
        core.put_array_plain(name, array)?;
        let op = ws.next_op;
        ws.next_op += 1;
        ws.wal.append_group(&[
            Record::Begin { op },
            Record::PutArray {
                name: name.to_string(),
                bytes,
            },
            Record::Commit { op },
        ])?;
        Ok(())
    }

    /// Durable disk-backed load. The bucket conversion — the expensive
    /// part — runs *outside* the catalog lock: readers keep scanning the
    /// previous generation and only the final publish takes the write
    /// lock briefly.
    pub(super) fn put_array_on_disk(&self, core: &DbCore, name: &str, array: &Array) -> Result<()> {
        system::reject_reserved(name)?;
        for d in array.schema().dims() {
            if d.upper.is_none() {
                return Err(Error::Unsupported(format!(
                    "on-disk array with unbounded dimension '{}'",
                    d.name
                )));
            }
        }
        let mut ws = self.op.lock();
        debug_assert!(self.disk.take_journal().is_empty());
        if core.state.read().arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        let schema = Arc::new(array.schema().renamed(name));
        let mut mgr = StorageManager::new(
            Arc::clone(&self.disk) as Arc<dyn Disk>,
            schema,
            CodecPolicy::adaptive(),
        );
        if let Err(e) = mgr.store_array(array) {
            let _ = self.disk.take_journal();
            return Err(e);
        }
        let op = ws.next_op;
        ws.next_op += 1;
        let mut group = vec![Record::Begin { op }];
        group.append(&mut self.disk.take_journal());
        group.push(Record::PutArrayOnDisk {
            name: name.to_string(),
            bytes: wal::encode_array(array),
        });
        group.push(Record::Commit { op });
        {
            let mut state = core.state.write();
            state
                .arrays
                .insert(name.to_string(), StoredArray::OnDisk(mgr));
        }
        core.touch();
        ws.wal.append_group(&group)?;
        Ok(())
    }

    /// Durable super-tile merge pass over a disk-backed array.
    pub(super) fn merge_on_disk(
        &self,
        core: &DbCore,
        name: &str,
        factor: i64,
    ) -> Result<MergeStats> {
        let mut ws = self.op.lock();
        debug_assert!(self.disk.take_journal().is_empty());
        let mut state = core.state.write();
        let stats = match state.stored_mut(name)? {
            StoredArray::OnDisk(mgr) => match merge_pass(mgr, factor) {
                Ok(s) => s,
                Err(e) => {
                    drop(state);
                    let _ = self.disk.take_journal();
                    return Err(e);
                }
            },
            _ => {
                return Err(Error::Unsupported(format!(
                    "merge of non-disk-backed array '{name}'"
                )))
            }
        };
        let op = ws.next_op;
        ws.next_op += 1;
        let mut group = vec![Record::Begin { op }];
        group.append(&mut self.disk.take_journal());
        group.push(Record::Merge {
            array: name.to_string(),
            factor,
        });
        group.push(Record::Commit { op });
        drop(state);
        core.touch();
        ws.wal.append_group(&group)?;
        Ok(stats)
    }
}

/// Gets (creating on first use) the delta store for updatable array
/// `name`, backed by the shared paged disk.
fn delta_store_for<'a>(
    deltas: &'a mut HashMap<String, DeltaStore>,
    disk: &Arc<PagedDisk>,
    name: &str,
    ua: &scidb_core::history::UpdatableArray,
) -> Result<&'a mut DeltaStore> {
    match deltas.entry(name.to_string()) {
        std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
        std::collections::hash_map::Entry::Vacant(v) => {
            let ds = DeltaStore::new(
                Arc::clone(disk) as Arc<dyn Disk>,
                ua.array().schema(),
                CodecPolicy::adaptive(),
            )?;
            Ok(v.insert(ds))
        }
    }
}
