//! The `system.*` virtual arrays: live telemetry resolved as ordinary
//! arrays so AQL itself is the monitoring API (filter/project/aggregate
//! over them run through the normal kernels).
//!
//! Six arrays exist, each rebuilt from live state at scan time:
//!
//! | array                | one row per                | source                      |
//! |----------------------|----------------------------|-----------------------------|
//! | `system.metrics`     | global registry instrument | `scidb_obs::global()`       |
//! | `system.sessions`    | registered session         | `DbCore::sessions`          |
//! | `system.slow_queries`| retained slow-log entry    | `DbCore::slow_log`          |
//! | `system.locks`       | registered lock rank       | `sync::ranks` + witness     |
//! | `system.result_cache`| (singleton)                | `DbCore::result_cache`      |
//! | `system.storage`     | (singleton)                | `Durability` + pool/WAL     |
//!
//! All are 1-dimensional over `i = 1:N`. They are virtual: the `system.`
//! prefix is reserved ([`reject_reserved`]) and never enters the catalog
//! or the result cache. Lock ordering is safe by construction — every
//! lock consulted here (`SESSION_REGISTRY` 35, `POOL` 46, `SLOW_LOG` 70,
//! `RESULT_CACHE` 80, `METRICS` 100) ranks above the `CATALOG` (30) guard
//! held while a scan evaluates. The durable-op mutex (`WAL` 25) ranks
//! *below* `CATALOG` and is therefore never consulted here —
//! `system.storage` reads WAL traffic from lock-free counters instead.

use scidb_core::array::Array;
use scidb_core::error::{Error, Result};
use scidb_core::schema::{ArraySchema, AttributeDef, DimensionDef};
use scidb_core::value::{Scalar, ScalarType, Value};
use scidb_obs::sync::{ranks, witness};
use scidb_obs::MetricValue;
use std::sync::atomic::Ordering;

use super::{DbCore, RESULT_CACHE_CAPACITY};

/// The reserved virtual-array namespace.
pub const SYSTEM_PREFIX: &str = "system.";

/// True if `name` addresses the reserved `system.*` namespace.
pub fn is_system_array(name: &str) -> bool {
    name.starts_with(SYSTEM_PREFIX)
}

/// Rejects catalog writes into the reserved namespace.
pub(super) fn reject_reserved(name: &str) -> Result<()> {
    if is_system_array(name) {
        return Err(Error::schema(format!(
            "array name '{name}': the '{SYSTEM_PREFIX}' namespace is reserved for virtual arrays"
        )));
    }
    Ok(())
}

/// Resolves a scan of a `system.*` array against live telemetry; `None`
/// for ordinary array names, an error for unknown system names.
pub(super) fn resolve(core: &DbCore, name: &str) -> Option<Result<Array>> {
    if !is_system_array(name) {
        return None;
    }
    Some(match name {
        "system.metrics" => metrics(),
        "system.sessions" => sessions(core),
        "system.slow_queries" => slow_queries(core),
        "system.locks" => locks(),
        "system.result_cache" => result_cache(core),
        "system.storage" => storage(core),
        _ => Err(Error::not_found(format!("system array '{name}'"))),
    })
}

fn int(v: u64) -> Value {
    Value::Scalar(Scalar::Int64(v.min(i64::MAX as u64) as i64))
}

fn signed(v: i64) -> Value {
    Value::Scalar(Scalar::Int64(v))
}

fn text(v: &str) -> Value {
    Value::Scalar(Scalar::String(v.to_string()))
}

/// Builds a 1-D array `i = 1:max(rows,1)` over the given scalar attrs.
fn table(name: &str, attrs: &[(&str, ScalarType)], rows: Vec<Vec<Value>>) -> Result<Array> {
    let attr_defs = attrs
        .iter()
        .map(|(n, t)| AttributeDef::scalar(*n, *t))
        .collect();
    let dims = vec![DimensionDef::bounded("i", rows.len().max(1) as i64)];
    let mut out = Array::new(ArraySchema::new(name, attr_defs, dims)?);
    for (idx, rec) in rows.into_iter().enumerate() {
        out.set_cell(&[idx as i64 + 1], rec)?;
    }
    Ok(out)
}

/// `system.metrics`: the global registry snapshot, one row per
/// instrument, sorted by name. Counters/gauges fill `value`; histograms
/// fill `count`/`sum`.
fn metrics() -> Result<Array> {
    let snap = scidb_obs::global().snapshot();
    let rows = snap
        .values
        .iter()
        .map(|(name, v)| match v {
            MetricValue::Counter(c) => {
                vec![
                    text(name),
                    text("counter"),
                    int(*c),
                    Value::Null,
                    Value::Null,
                ]
            }
            MetricValue::Gauge(g) => {
                vec![
                    text(name),
                    text("gauge"),
                    signed(*g),
                    Value::Null,
                    Value::Null,
                ]
            }
            MetricValue::Hist(h) => vec![
                text(name),
                text("histogram"),
                Value::Null,
                int(h.count),
                int(h.sum),
            ],
        })
        .collect();
    table(
        "system.metrics",
        &[
            ("name", ScalarType::String),
            ("kind", ScalarType::String),
            ("value", ScalarType::Int64),
            ("count", ScalarType::Int64),
            ("sum", ScalarType::Int64),
        ],
        rows,
    )
}

/// `system.sessions`: one row per registered execution handle, by id.
fn sessions(core: &DbCore) -> Result<Array> {
    let rows = core
        .sessions
        .read()
        .values()
        .map(|s| {
            vec![
                int(s.id()),
                int(s.statements()),
                int(s.errors()),
                int(s.cache_hits()),
                int(s.cells_scanned()),
                int(s.active()),
                int(s.queue_wait_us()),
                int(s.timed_out()),
            ]
        })
        .collect();
    table(
        "system.sessions",
        &[
            ("sid", ScalarType::Int64),
            ("statements", ScalarType::Int64),
            ("errors", ScalarType::Int64),
            ("cache_hits", ScalarType::Int64),
            ("cells_scanned", ScalarType::Int64),
            ("active", ScalarType::Int64),
            ("queue_wait_us", ScalarType::Int64),
            ("timed_out", ScalarType::Int64),
        ],
        rows,
    )
}

/// `system.slow_queries`: the retained slow-log ring, oldest first.
fn slow_queries(core: &DbCore) -> Result<Array> {
    let rows = core
        .slow_log
        .read()
        .entries()
        .iter()
        .map(|e| {
            vec![
                int(e.session),
                text(&e.fingerprint),
                text(&e.label),
                int(e.wall.as_micros() as u64),
                int(e.trace.spans.len() as u64),
            ]
        })
        .collect();
    table(
        "system.slow_queries",
        &[
            ("sid", ScalarType::Int64),
            ("fingerprint", ScalarType::String),
            ("aql", ScalarType::String),
            ("wall_us", ScalarType::Int64),
            ("spans", ScalarType::Int64),
        ],
        rows,
    )
}

/// `system.locks`: the registered rank table plus a `total` row carrying
/// the process-wide witness counters (per-pair counters live in
/// `system.metrics` as `scidb.sync.pair.*`).
fn locks() -> Result<Array> {
    let mut rows: Vec<Vec<Value>> = ranks::ALL
        .iter()
        .map(|r| {
            vec![
                text(r.name()),
                signed(i64::from(r.level())),
                Value::Null,
                Value::Null,
            ]
        })
        .collect();
    let stats = witness::stats();
    rows.push(vec![
        text("total"),
        Value::Null,
        int(stats.acquisitions),
        int(stats.contended),
    ]);
    table(
        "system.locks",
        &[
            ("name", ScalarType::String),
            ("rank", ScalarType::Int64),
            ("acquisitions", ScalarType::Int64),
            ("contended", ScalarType::Int64),
        ],
        rows,
    )
}

/// `system.storage`: a singleton row describing the durable backend —
/// buffer-pool effectiveness, WAL traffic, and the last recovery. On a
/// non-durable database `durable` is 0 and the instance columns are 0;
/// the `wal_*` columns mirror the process-wide counters either way.
fn storage(core: &DbCore) -> Result<Array> {
    let reg = scidb_obs::global();
    let (durable, pool, replayed_ops, replay_ms, torn_bytes) = match &core.durable {
        Some(d) => (
            1u64,
            d.pool_stats(),
            d.replayed_ops(),
            d.replay_ms(),
            d.torn_bytes(),
        ),
        None => (0, Default::default(), 0, 0, 0),
    };
    let row = vec![
        int(durable),
        int(pool.hits),
        int(pool.misses),
        int(pool.evictions),
        int(pool.frames as u64),
        int(pool.capacity as u64),
        int(reg.counter("scidb.storage.wal.records").get()),
        int(reg.counter("scidb.storage.wal.commits").get()),
        int(reg.counter("scidb.storage.wal.bytes").get()),
        int(reg.histogram("scidb.storage.wal.fsync_us").count()),
        int(replayed_ops),
        int(replay_ms),
        int(torn_bytes),
    ];
    table(
        "system.storage",
        &[
            ("durable", ScalarType::Int64),
            ("pool_hits", ScalarType::Int64),
            ("pool_misses", ScalarType::Int64),
            ("pool_evictions", ScalarType::Int64),
            ("pool_frames", ScalarType::Int64),
            ("pool_capacity", ScalarType::Int64),
            ("wal_records", ScalarType::Int64),
            ("wal_commits", ScalarType::Int64),
            ("wal_bytes", ScalarType::Int64),
            ("wal_fsyncs", ScalarType::Int64),
            ("replayed_ops", ScalarType::Int64),
            ("replay_ms", ScalarType::Int64),
            ("torn_bytes", ScalarType::Int64),
        ],
        vec![row],
    )
}

/// `system.result_cache`: a singleton row describing the shared cache.
fn result_cache(core: &DbCore) -> Result<Array> {
    let row = vec![
        int(core.generation.load(Ordering::SeqCst)),
        int(core.result_cache.read().len() as u64),
        int(RESULT_CACHE_CAPACITY as u64),
        int(scidb_obs::global().counter("scidb.query.cache_hits").get()),
    ];
    table(
        "system.result_cache",
        &[
            ("generation", ScalarType::Int64),
            ("entries", ScalarType::Int64),
            ("capacity", ScalarType::Int64),
            ("hits", ScalarType::Int64),
        ],
        vec![row],
    )
}
