//! Planning: name resolution, dimension-predicate legality checking, and
//! algebraic rewrites.
//!
//! The interesting optimizations come straight from the paper:
//!
//! * §2.2.1 — structural operators "do not necessarily have to read the
//!   data values … they present opportunity for optimization": Subsample is
//!   pushed *below* content-dependent operators (Filter/Apply) so chunk
//!   pruning happens before any data is touched, and adjacent Subsamples
//!   are merged into one conjunction.
//! * §2.2.1 — the Subsample predicate "must be a conjunction of conditions
//!   on each dimension independently. Thus, the predicate 'X = 3 and Y < 4'
//!   is legal, while the predicate 'X = Y' is not":
//!   [`expr_to_dim_predicate`] enforces exactly that rule when lowering the
//!   parsed predicate.

use crate::ast::AExpr;
use scidb_core::error::{Error, Result};
use scidb_core::expr::{BinOp, Expr};
use scidb_core::ops::structural::{DimCond, DimPredicate};
use scidb_core::schema::ArraySchema;
use scidb_core::value::{Scalar, ScalarType};

/// Canonical plan-node name for an algebra expression, used to label
/// executor spans (one span per plan node in `explain analyze`).
pub fn node_name(e: &AExpr) -> &'static str {
    match e {
        AExpr::Scan(_) => "scan",
        AExpr::Subsample { .. } => "subsample",
        AExpr::Filter { .. } => "filter",
        AExpr::Aggregate { .. } => "aggregate",
        AExpr::Sjoin { .. } => "sjoin",
        AExpr::Cjoin { .. } => "cjoin",
        AExpr::Apply { .. } => "apply",
        AExpr::Project { .. } => "project",
        AExpr::Reshape { .. } => "reshape",
        AExpr::Regrid { .. } => "regrid",
        AExpr::Concat { .. } => "concat",
        AExpr::Cross { .. } => "cross",
        AExpr::AddDim { .. } => "adddim",
        AExpr::Slice { .. } => "slice",
    }
}

// ---- dimension predicate lowering -------------------------------------------

/// Lowers a parsed value expression to a [`DimPredicate`], enforcing the
/// paper's legality rule: a conjunction of per-dimension conditions.
pub fn expr_to_dim_predicate(expr: &Expr) -> Result<DimPredicate> {
    let mut pred = DimPredicate::new();
    collect_conjuncts(expr, &mut pred)?;
    Ok(pred)
}

fn collect_conjuncts(expr: &Expr, pred: &mut DimPredicate) -> Result<()> {
    match expr {
        Expr::Binary(BinOp::And, a, b) => {
            collect_conjuncts(a, pred)?;
            collect_conjuncts(b, pred)?;
            Ok(())
        }
        other => {
            let (dim, cond) = atom_to_cond(other)?;
            *pred = std::mem::take(pred).with(dim, cond);
            Ok(())
        }
    }
}

fn name_of(e: &Expr) -> Option<&str> {
    match e {
        Expr::Attr(n) | Expr::Dim(n) => Some(n),
        _ => None,
    }
}

fn int_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Scalar::Int64(v)) => Some(*v),
        _ => None,
    }
}

fn atom_to_cond(e: &Expr) -> Result<(String, DimCond)> {
    match e {
        // dim <op> const  |  const <op> dim
        Expr::Binary(op, a, b) => {
            let (dim, v, flipped) = match (name_of(a), int_of(b), name_of(b), int_of(a)) {
                (Some(d), Some(v), _, _) => (d, v, false),
                (_, _, Some(d), Some(v)) => (d, v, true),
                (Some(_), None, Some(_), None) => {
                    // The paper's illegal `X = Y` case.
                    return Err(Error::dimension(
                        "subsample predicate must constrain each dimension \
                         independently (e.g. `X = 3 and Y < 4`); cross-dimension \
                         conditions like `X = Y` are not legal",
                    ));
                }
                _ => {
                    return Err(Error::dimension(format!(
                        "unsupported dimension condition: {e:?}"
                    )))
                }
            };
            let cond = match (op, flipped) {
                (BinOp::Eq, _) => DimCond::Eq(v),
                (BinOp::Ne, _) => DimCond::Ne(v),
                (BinOp::Lt, false) | (BinOp::Gt, true) => DimCond::Lt(v),
                (BinOp::Le, false) | (BinOp::Ge, true) => DimCond::Le(v),
                (BinOp::Gt, false) | (BinOp::Lt, true) => DimCond::Gt(v),
                (BinOp::Ge, false) | (BinOp::Le, true) => DimCond::Ge(v),
                _ => {
                    return Err(Error::dimension(format!(
                        "unsupported dimension operator {op:?}"
                    )))
                }
            };
            Ok((dim.to_string(), cond))
        }
        // Unary UDF over one dimension: even(X), odd(X), custom(X).
        Expr::Func(name, args) => {
            if args.len() != 1 {
                return Err(Error::dimension(
                    "dimension predicate functions take one dimension argument",
                ));
            }
            let dim = name_of(&args[0]).ok_or_else(|| {
                Error::dimension("dimension predicate function argument must be a dimension")
            })?;
            let lower = name.to_ascii_lowercase();
            let cond = match lower.as_str() {
                "even" => DimCond::Even,
                "odd" => DimCond::Odd,
                _ => DimCond::Fn(name.clone()),
            };
            Ok((dim.to_string(), cond))
        }
        other => Err(Error::dimension(format!(
            "unsupported dimension condition: {other:?}"
        ))),
    }
}

// ---- name resolution ---------------------------------------------------------

/// Resolves bare and qualified names in a value expression against a
/// schema: an identifier becomes `Attr` if it names an attribute, `Dim` if
/// it names a dimension. Qualified `Q.x` tries `Q.x`, then `x`, then the
/// join-renamed `x_r`.
pub fn resolve_expr(expr: &Expr, schema: &ArraySchema) -> Result<Expr> {
    Ok(match expr {
        Expr::Attr(raw) | Expr::Dim(raw) => {
            let candidates: Vec<String> = if let Some((_, bare)) = raw.split_once('.') {
                vec![raw.clone(), bare.to_string(), format!("{bare}_r")]
            } else {
                vec![raw.clone()]
            };
            let mut found = None;
            for cand in &candidates {
                if schema.attr_index(cand).is_some() {
                    found = Some(Expr::Attr(cand.clone()));
                    break;
                }
                if schema.dim_index(cand).is_some() {
                    found = Some(Expr::Dim(cand.clone()));
                    break;
                }
            }
            found.ok_or_else(|| {
                Error::not_found(format!(
                    "name '{raw}' in array '{}' (not an attribute or dimension)",
                    schema.name()
                ))
            })?
        }
        Expr::Const(_) | Expr::Null => expr.clone(),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(resolve_expr(e, schema)?)),
        Expr::IsNull(e) => Expr::IsNull(Box::new(resolve_expr(e, schema)?)),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(resolve_expr(a, schema)?),
            Box::new(resolve_expr(b, schema)?),
        ),
        Expr::Func(name, args) => Expr::Func(
            name.clone(),
            args.iter()
                .map(|a| resolve_expr(a, schema))
                .collect::<Result<Vec<_>>>()?,
        ),
    })
}

/// Infers the scalar type of a resolved expression (used by `Apply`).
pub fn infer_type(expr: &Expr, schema: &ArraySchema) -> ScalarType {
    match expr {
        Expr::Attr(n) => schema
            .attr_index(n)
            .and_then(|i| schema.attrs()[i].ty.as_scalar())
            .unwrap_or(ScalarType::Float64),
        Expr::Dim(_) => ScalarType::Int64,
        Expr::Const(s) => s.scalar_type(),
        Expr::Null => ScalarType::Float64,
        Expr::IsNull(_) => ScalarType::Bool,
        Expr::Unary(scidb_core::expr::UnaryOp::Not, _) => ScalarType::Bool,
        Expr::Unary(scidb_core::expr::UnaryOp::Neg, e) => infer_type(e, schema),
        Expr::Binary(op, a, b) => match op {
            BinOp::And
            | BinOp::Or
            | BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge => ScalarType::Bool,
            _ => {
                let (ta, tb) = (infer_type(a, schema), infer_type(b, schema));
                if ta == ScalarType::UncertainFloat64 || tb == ScalarType::UncertainFloat64 {
                    ScalarType::UncertainFloat64
                } else if ta == ScalarType::Int64 && tb == ScalarType::Int64 {
                    ScalarType::Int64
                } else if ta == ScalarType::String && tb == ScalarType::String {
                    ScalarType::String
                } else {
                    ScalarType::Float64
                }
            }
        },
        Expr::Func(name, _) => match name.to_ascii_lowercase().as_str() {
            "even" | "odd" | "prob_below" => ScalarType::Bool,
            "uncertain" => ScalarType::UncertainFloat64,
            _ => ScalarType::Float64,
        },
    }
}

// ---- algebraic rewrites --------------------------------------------------------

/// Optimizes an array expression: merges adjacent Subsamples and pushes
/// Subsample below Filter and Apply (structural-first execution, §2.2.1).
/// The rewrite runs to a fixpoint.
pub fn optimize(expr: AExpr) -> AExpr {
    let mut current = expr;
    loop {
        let (next, changed) = rewrite(current);
        current = next;
        if !changed {
            return current;
        }
    }
}

fn rewrite(expr: AExpr) -> (AExpr, bool) {
    // Rewrite children first.
    let (expr, mut changed) = rewrite_children(expr);
    let out = match expr {
        // Subsample(Subsample(x, p1), p2) → Subsample(x, p1 AND p2)
        AExpr::Subsample { input, pred } => match *input {
            AExpr::Subsample {
                input: inner,
                pred: p1,
            } => {
                changed = true;
                AExpr::Subsample {
                    input: inner,
                    pred: p1.and(pred),
                }
            }
            // Subsample(Filter(x, f), p) → Filter(Subsample(x, p), f)
            AExpr::Filter {
                input: inner,
                pred: f,
            } => {
                changed = true;
                AExpr::Filter {
                    input: AExpr::Subsample { input: inner, pred }.boxed(),
                    pred: f,
                }
            }
            // Subsample(Apply(x, n, e), p) → Apply(Subsample(x, p), n, e)
            AExpr::Apply {
                input: inner,
                name,
                expr: e,
            } => {
                changed = true;
                AExpr::Apply {
                    input: AExpr::Subsample { input: inner, pred }.boxed(),
                    name,
                    expr: e,
                }
            }
            other => AExpr::Subsample {
                input: other.boxed(),
                pred,
            },
        },
        other => other,
    };
    (out, changed)
}

fn rewrite_children(expr: AExpr) -> (AExpr, bool) {
    macro_rules! go {
        ($e:expr) => {{
            let (e, c) = rewrite(*$e);
            (e.boxed(), c)
        }};
    }
    match expr {
        AExpr::Scan(_) => (expr, false),
        AExpr::Subsample { input, pred } => {
            let (input, c) = go!(input);
            (AExpr::Subsample { input, pred }, c)
        }
        AExpr::Filter { input, pred } => {
            let (input, c) = go!(input);
            (AExpr::Filter { input, pred }, c)
        }
        AExpr::Aggregate {
            input,
            group,
            agg,
            arg,
        } => {
            let (input, c) = go!(input);
            (
                AExpr::Aggregate {
                    input,
                    group,
                    agg,
                    arg,
                },
                c,
            )
        }
        AExpr::Sjoin { left, right, on } => {
            let (left, c1) = go!(left);
            let (right, c2) = go!(right);
            (AExpr::Sjoin { left, right, on }, c1 || c2)
        }
        AExpr::Cjoin { left, right, pred } => {
            let (left, c1) = go!(left);
            let (right, c2) = go!(right);
            (AExpr::Cjoin { left, right, pred }, c1 || c2)
        }
        AExpr::Apply { input, name, expr } => {
            let (input, c) = go!(input);
            (AExpr::Apply { input, name, expr }, c)
        }
        AExpr::Project { input, attrs } => {
            let (input, c) = go!(input);
            (AExpr::Project { input, attrs }, c)
        }
        AExpr::Reshape {
            input,
            order,
            new_dims,
        } => {
            let (input, c) = go!(input);
            (
                AExpr::Reshape {
                    input,
                    order,
                    new_dims,
                },
                c,
            )
        }
        AExpr::Regrid {
            input,
            factors,
            agg,
        } => {
            let (input, c) = go!(input);
            (
                AExpr::Regrid {
                    input,
                    factors,
                    agg,
                },
                c,
            )
        }
        AExpr::Concat { left, right, dim } => {
            let (left, c1) = go!(left);
            let (right, c2) = go!(right);
            (AExpr::Concat { left, right, dim }, c1 || c2)
        }
        AExpr::Cross { left, right } => {
            let (left, c1) = go!(left);
            let (right, c2) = go!(right);
            (AExpr::Cross { left, right }, c1 || c2)
        }
        AExpr::AddDim { input, name } => {
            let (input, c) = go!(input);
            (AExpr::AddDim { input, name }, c)
        }
        AExpr::Slice { input, dim, at } => {
            let (input, c) = go!(input);
            (AExpr::Slice { input, dim, at }, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_core::schema::SchemaBuilder;

    fn schema() -> ArraySchema {
        SchemaBuilder::new("T")
            .attr("v", ScalarType::Float64)
            .attr("n", ScalarType::Int64)
            .dim("X", 10)
            .dim("Y", 10)
            .build()
            .unwrap()
    }

    #[test]
    fn legal_paper_predicate_lowers() {
        // "X = 3 and Y < 4" is legal.
        let e = Expr::attr("X")
            .eq(Expr::lit(3i64))
            .and(Expr::attr("Y").lt(Expr::lit(4i64)));
        let pred = expr_to_dim_predicate(&e).unwrap();
        assert_eq!(pred.conds().len(), 2);
    }

    #[test]
    fn illegal_cross_dimension_predicate_rejected() {
        // "X = Y" is not legal.
        let e = Expr::attr("X").eq(Expr::attr("Y"));
        let err = expr_to_dim_predicate(&e).unwrap_err();
        assert!(err.to_string().contains("X = 3 and Y < 4"), "{err}");
    }

    #[test]
    fn flipped_comparisons_normalize() {
        // "3 < X" means X > 3.
        let e = Expr::lit(3i64).lt(Expr::attr("X"));
        let pred = expr_to_dim_predicate(&e).unwrap();
        assert!(matches!(pred.conds()[0].1, DimCond::Gt(3)));
    }

    #[test]
    fn udf_predicates_lower_to_fn_conds() {
        let e = Expr::func("even", vec![Expr::attr("X")]);
        let pred = expr_to_dim_predicate(&e).unwrap();
        assert!(matches!(pred.conds()[0].1, DimCond::Even));
        let e = Expr::func("is_prime", vec![Expr::attr("X")]);
        let pred = expr_to_dim_predicate(&e).unwrap();
        assert!(matches!(&pred.conds()[0].1, DimCond::Fn(f) if f == "is_prime"));
    }

    #[test]
    fn disjunction_rejected() {
        let e = Expr::attr("X")
            .eq(Expr::lit(1i64))
            .or(Expr::attr("Y").eq(Expr::lit(2i64)));
        assert!(expr_to_dim_predicate(&e).is_err());
    }

    #[test]
    fn resolve_classifies_names() {
        let s = schema();
        let e = resolve_expr(&Expr::attr("v").gt(Expr::attr("X")), &s).unwrap();
        assert_eq!(e, Expr::Attr("v".into()).gt(Expr::Dim("X".into())));
        assert!(resolve_expr(&Expr::attr("zz"), &s).is_err());
    }

    #[test]
    fn resolve_qualified_names() {
        let s = schema();
        // T.v resolves to the bare attribute.
        let e = resolve_expr(&Expr::attr("T.v"), &s).unwrap();
        assert_eq!(e, Expr::Attr("v".into()));
        // Join-renamed fallback: B.v where only v_r exists.
        let joined = SchemaBuilder::new("J")
            .attr("v", ScalarType::Float64)
            .attr("v_r", ScalarType::Float64)
            .dim("X", 2)
            .build()
            .unwrap();
        // A.v hits "v" first; to address the right side one writes v_r
        // (or a qualifier that only matches the renamed attribute).
        let e = resolve_expr(&Expr::attr("v_r"), &joined).unwrap();
        assert_eq!(e, Expr::Attr("v_r".into()));
    }

    #[test]
    fn infer_types() {
        let s = schema();
        assert_eq!(infer_type(&Expr::Attr("n".into()), &s), ScalarType::Int64);
        assert_eq!(
            infer_type(&Expr::Attr("n".into()).add(Expr::lit(1i64)), &s),
            ScalarType::Int64
        );
        assert_eq!(
            infer_type(&Expr::Attr("v".into()).add(Expr::Attr("n".into())), &s),
            ScalarType::Float64
        );
        assert_eq!(
            infer_type(&Expr::Attr("v".into()).gt(Expr::lit(1.0)), &s),
            ScalarType::Bool
        );
        assert_eq!(infer_type(&Expr::Dim("X".into()), &s), ScalarType::Int64);
    }

    #[test]
    fn optimize_merges_subsamples() {
        let e = AExpr::Subsample {
            input: AExpr::Subsample {
                input: AExpr::Scan("A".into()).boxed(),
                pred: Expr::attr("X").eq(Expr::lit(1i64)),
            }
            .boxed(),
            pred: Expr::attr("Y").eq(Expr::lit(2i64)),
        };
        let opt = optimize(e);
        match opt {
            AExpr::Subsample { input, pred } => {
                assert_eq!(*input, AExpr::Scan("A".into()));
                // Both conditions present in the merged conjunction.
                let p = expr_to_dim_predicate(&pred).unwrap();
                assert_eq!(p.conds().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optimize_pushes_subsample_below_filter() {
        let e = AExpr::Subsample {
            input: AExpr::Filter {
                input: AExpr::Scan("A".into()).boxed(),
                pred: Expr::attr("v").gt(Expr::lit(0.0)),
            }
            .boxed(),
            pred: Expr::attr("X").eq(Expr::lit(1i64)),
        };
        let opt = optimize(e);
        assert!(
            matches!(&opt, AExpr::Filter { input, .. } if matches!(**input, AExpr::Subsample { .. })),
            "filter on top, subsample pushed down: {opt:?}"
        );
    }

    #[test]
    fn optimize_pushes_through_filter_chain_to_fixpoint() {
        // Subsample over Filter over Filter: pushed to the bottom.
        let e = AExpr::Subsample {
            input: AExpr::Filter {
                input: AExpr::Filter {
                    input: AExpr::Scan("A".into()).boxed(),
                    pred: Expr::attr("v").gt(Expr::lit(0.0)),
                }
                .boxed(),
                pred: Expr::attr("v").lt(Expr::lit(9.0)),
            }
            .boxed(),
            pred: Expr::attr("X").eq(Expr::lit(1i64)),
        };
        let opt = optimize(e);
        // Expect Filter(Filter(Subsample(Scan))).
        let mut node = &opt;
        let mut filters = 0;
        while let AExpr::Filter { input, .. } = node {
            filters += 1;
            node = input;
        }
        assert_eq!(filters, 2);
        assert!(matches!(node, AExpr::Subsample { .. }));
    }
}
