//! The Rust language binding (§2.4).
//!
//! "There will be multiple language bindings. These will map from the
//! language-specific representation to this parse tree format. In the style
//! of Ruby-on-Rails, LINQ and Hibernate, these language bindings will
//! attempt to fit large array manipulation cleanly into the target language
//! using the control structures of the language in question. In our
//! opinion, the data-sublanguage approach epitomized by ODBC and JDBC has
//! been a huge mistake."
//!
//! [`Q`] is that binding for Rust: a fluent builder whose methods mirror
//! the operator algebra and produce the same parse trees as the AQL text
//! front end — no string splicing, no interface code. `Q::to_aql()` renders
//! the canonical text for logging/provenance.

use crate::ast::{AExpr, AggArg, Stmt};
use scidb_core::expr::Expr;

/// A fluent array-expression builder.
#[derive(Debug, Clone, PartialEq)]
pub struct Q(AExpr);

/// Starts a pipeline from a stored array.
pub fn scan(name: impl Into<String>) -> Q {
    Q(AExpr::Scan(name.into()))
}

impl Q {
    /// `Subsample(self, pred)` — pred is a dimension predicate expression
    /// (checked for the §2.2.1 legality rule at plan time).
    pub fn subsample(self, pred: Expr) -> Q {
        Q(AExpr::Subsample {
            input: self.0.boxed(),
            pred,
        })
    }

    /// `Filter(self, pred)`.
    pub fn filter(self, pred: Expr) -> Q {
        Q(AExpr::Filter {
            input: self.0.boxed(),
            pred,
        })
    }

    /// `Aggregate(self, {dims}, agg(*))`.
    pub fn aggregate_star(self, dims: &[&str], agg: &str) -> Q {
        Q(AExpr::Aggregate {
            input: self.0.boxed(),
            group: dims.iter().map(|s| s.to_string()).collect(),
            agg: agg.to_string(),
            arg: AggArg::Star,
        })
    }

    /// `Aggregate(self, {dims}, agg(attr))`.
    pub fn aggregate(self, dims: &[&str], agg: &str, attr: &str) -> Q {
        Q(AExpr::Aggregate {
            input: self.0.boxed(),
            group: dims.iter().map(|s| s.to_string()).collect(),
            agg: agg.to_string(),
            arg: AggArg::Attr(attr.to_string()),
        })
    }

    /// `Sjoin(self, other, pairs)`.
    pub fn sjoin(self, other: Q, on: &[(&str, &str)]) -> Q {
        Q(AExpr::Sjoin {
            left: self.0.boxed(),
            right: other.0.boxed(),
            on: on
                .iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
        })
    }

    /// `Cjoin(self, other, pred)`.
    pub fn cjoin(self, other: Q, pred: Expr) -> Q {
        Q(AExpr::Cjoin {
            left: self.0.boxed(),
            right: other.0.boxed(),
            pred,
        })
    }

    /// `Apply(self, name, expr)`.
    pub fn apply(self, name: &str, expr: Expr) -> Q {
        Q(AExpr::Apply {
            input: self.0.boxed(),
            name: name.to_string(),
            expr,
        })
    }

    /// `Project(self, attrs…)`.
    pub fn project(self, attrs: &[&str]) -> Q {
        Q(AExpr::Project {
            input: self.0.boxed(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// `Reshape(self, [order…], [new = 1:n…])`.
    pub fn reshape(self, order: &[&str], new_dims: &[(&str, i64)]) -> Q {
        Q(AExpr::Reshape {
            input: self.0.boxed(),
            order: order.iter().map(|s| s.to_string()).collect(),
            new_dims: new_dims.iter().map(|(n, e)| (n.to_string(), *e)).collect(),
        })
    }

    /// `Regrid(self, factors, agg)`.
    pub fn regrid(self, factors: &[i64], agg: &str) -> Q {
        Q(AExpr::Regrid {
            input: self.0.boxed(),
            factors: factors.to_vec(),
            agg: agg.to_string(),
        })
    }

    /// `Concat(self, other, dim)`.
    pub fn concat(self, other: Q, dim: &str) -> Q {
        Q(AExpr::Concat {
            left: self.0.boxed(),
            right: other.0.boxed(),
            dim: dim.to_string(),
        })
    }

    /// `Cross(self, other)`.
    pub fn cross(self, other: Q) -> Q {
        Q(AExpr::Cross {
            left: self.0.boxed(),
            right: other.0.boxed(),
        })
    }

    /// `AddDim(self, name)`.
    pub fn add_dim(self, name: &str) -> Q {
        Q(AExpr::AddDim {
            input: self.0.boxed(),
            name: name.to_string(),
        })
    }

    /// `Slice(self, dim, at)`.
    pub fn slice(self, dim: &str, at: i64) -> Q {
        Q(AExpr::Slice {
            input: self.0.boxed(),
            dim: dim.to_string(),
            at,
        })
    }

    /// The underlying parse tree.
    pub fn build(self) -> AExpr {
        self.0
    }

    /// As a query statement.
    pub fn into_stmt(self) -> Stmt {
        Stmt::Query(self.0)
    }

    /// Canonical AQL text for this pipeline.
    pub fn to_aql(&self) -> String {
        self.0.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Database;
    use crate::parser::parse_one;
    use scidb_core::value::Value;

    #[test]
    fn binding_builds_same_tree_as_parser() {
        // The same pipeline written in both front ends lowers to one tree.
        let from_rust = scan("H")
            .filter(Expr::attr("v").gt(Expr::lit(4i64)))
            .aggregate_star(&["Y"], "sum")
            .build();
        let from_text = parse_one("aggregate(filter(scan(H), v > 4), {Y}, sum(*))").unwrap();
        assert_eq!(crate::ast::Stmt::Query(from_rust), from_text);
    }

    #[test]
    fn to_aql_roundtrips_through_parser() {
        let q = scan("A")
            .subsample(Expr::attr("X").le(Expr::lit(8i64)))
            .apply("dbl", Expr::attr("v").mul(Expr::lit(2i64)))
            .project(&["dbl"]);
        let text = q.to_aql();
        let reparsed = parse_one(&text).unwrap();
        assert_eq!(reparsed, q.clone().into_stmt());
    }

    #[test]
    fn binding_executes_against_database() {
        let mut db = Database::new();
        db.run(
            "define T (v = int) (X = 1:4);
             create A as T [4];
             insert into A[1] values (10); insert into A[2] values (20);
             insert into A[3] values (30); insert into A[4] values (40);",
        )
        .unwrap();
        let stmt = scan("A")
            .subsample(Expr::attr("X").ge(Expr::lit(3i64)))
            .aggregate(&[], "sum", "v")
            .into_stmt();
        let out = db.execute(stmt).unwrap().into_array().unwrap();
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(70i64)]));
    }

    #[test]
    fn join_and_structure_builders() {
        let q = scan("A")
            .sjoin(scan("B"), &[("i", "i")])
            .add_dim("layer")
            .slice("layer", 1);
        assert_eq!(
            q.to_aql(),
            "slice(adddim(sjoin(scan(A), scan(B), left.i = right.i), layer), layer, 1)"
        );
    }

    #[test]
    fn reshape_and_regrid_builders() {
        let q = scan("G")
            .reshape(&["X", "Z", "Y"], &[("U", 8), ("V", 3)])
            .regrid(&[2, 1], "avg");
        let reparsed = parse_one(&q.to_aql()).unwrap();
        assert_eq!(reparsed, q.into_stmt());
    }
}
