//! The query executor: a [`Database`] catalog plus statement evaluation.
//!
//! `Database` owns defined array types, array instances (plain and
//! updatable), the function [`Registry`], and an [`ExecContext`] — the
//! thread budget and metrics sink threaded into every operator kernel.
//! `execute` runs one parsed statement; `run` parses, plans (see
//! [`crate::plan`]), and executes AQL text — the full §2.4 pipeline from any
//! language binding down to the engine.
//!
//! Chunk-separable operators (Subsample, Filter, Apply, Project, Aggregate,
//! Regrid) execute chunk-parallel up to the context's thread budget;
//! [`Database::with_threads`] (or `with_threads(1)` as the escape hatch)
//! controls it, and [`Database::metrics`] reports per-operator chunk/cell
//! counts and wall time for the last `run`/`query`.

use crate::ast::{AExpr, AggArg, Literal, Stmt};
use crate::parser;
use crate::plan;
use scidb_core::array::Array;
use scidb_core::enhance::WallClock;
use scidb_core::error::{Error, Result};
use scidb_core::exec::{ExecContext, QueryMetrics};
use scidb_core::history::UpdatableArray;
use scidb_core::ops::{self, AggInput};
use scidb_core::registry::Registry;
use scidb_core::schema::{ArraySchema, AttributeDef, DimensionDef};
use scidb_core::uncertain::Uncertain;
use scidb_core::value::{ScalarType, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A stored array instance.
#[derive(Debug)]
pub enum StoredArray {
    /// A plain array.
    Plain(Array),
    /// An updatable (no-overwrite) array (§2.5).
    Updatable(UpdatableArray),
}

impl StoredArray {
    /// A scannable view: plain arrays as-is; updatable arrays expose their
    /// full inner array including the history dimension.
    pub fn as_array(&self) -> &Array {
        match self {
            StoredArray::Plain(a) => a,
            StoredArray::Updatable(u) => u.array(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug)]
pub enum StmtResult {
    /// DDL/DML acknowledgement.
    Done(String),
    /// A query result array.
    Array(Array),
    /// A scalar probe result (`exists`).
    Bool(bool),
}

impl StmtResult {
    /// The result kind, for error messages and dispatch.
    pub fn kind(&self) -> &'static str {
        match self {
            StmtResult::Done(_) => "acknowledgement",
            StmtResult::Array(_) => "array",
            StmtResult::Bool(_) => "bool",
        }
    }

    /// Borrows the array result, if this is one.
    pub fn as_array(&self) -> Option<&Array> {
        match self {
            StmtResult::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean probe result, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            StmtResult::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array result, if any.
    pub fn into_array(self) -> Result<Array> {
        match self {
            StmtResult::Array(a) => Ok(a),
            other => Err(Error::eval(format!(
                "expected array result, got {} result",
                other.kind()
            ))),
        }
    }

    /// The DDL/DML acknowledgement message, erroring on any other kind.
    pub fn expect_done(self) -> Result<String> {
        match self {
            StmtResult::Done(msg) => Ok(msg),
            other => Err(Error::eval(format!(
                "expected statement acknowledgement, got {} result",
                other.kind()
            ))),
        }
    }
}

/// The catalog + executor.
pub struct Database {
    types: HashMap<String, ArraySchema>,
    arrays: HashMap<String, StoredArray>,
    registry: Registry,
    ctx: ExecContext,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates a database with the built-in function library and a
    /// machine-sized thread budget.
    pub fn new() -> Self {
        Database::with_threads(0)
    }

    /// Creates a database with an explicit thread budget (`1` forces serial
    /// execution, `0` auto-sizes to the machine).
    pub fn with_threads(threads: usize) -> Self {
        Database {
            types: HashMap::new(),
            arrays: HashMap::new(),
            registry: Registry::with_builtins(),
            ctx: ExecContext::with_threads(threads),
        }
    }

    /// The execution context statements run under.
    pub fn exec_context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Replaces the thread budget (metrics accumulated so far are dropped).
    pub fn set_threads(&mut self, threads: usize) {
        self.ctx = ExecContext::with_threads(threads);
    }

    /// Per-operator metrics for the statements executed since the last
    /// [`run`](Self::run)/[`query`](Self::query) began.
    pub fn metrics(&self) -> QueryMetrics {
        self.ctx.metrics()
    }

    /// Opens a [`Session`]: a handle that shares this database's
    /// [`ExecContext`] and accumulates metrics across statements instead of
    /// resetting them per call.
    pub fn session(&mut self) -> Session<'_> {
        self.ctx.take_metrics();
        Session { db: self }
    }

    /// The function registry (register UDFs, aggregates, enhancements,
    /// shapes here — §2.3).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Looks up a stored array.
    pub fn array(&self, name: &str) -> Result<&StoredArray> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// Mutable access to a stored array.
    pub fn array_mut(&mut self, name: &str) -> Result<&mut StoredArray> {
        self.arrays
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// Registers an existing array under a name (bulk-load path used by
    /// examples and benches).
    pub fn put_array(&mut self, name: &str, array: Array) -> Result<()> {
        if self.arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        self.arrays
            .insert(name.to_string(), StoredArray::Plain(array));
        Ok(())
    }

    /// Array names in the catalog (sorted).
    pub fn array_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.arrays.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Parses, plans, and executes a script; returns one result per
    /// statement. Resets [`metrics`](Self::metrics) first.
    pub fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        self.ctx.take_metrics();
        let stmts = parser::parse(text)?;
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Runs a single-statement query expecting an array result. Resets
    /// [`metrics`](Self::metrics) first.
    pub fn query(&mut self, text: &str) -> Result<Array> {
        self.ctx.take_metrics();
        let stmt = parser::parse_one(text)?;
        self.execute(stmt)?.into_array()
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<StmtResult> {
        match stmt {
            Stmt::DefineArray {
                name,
                updatable,
                attrs,
                dims,
            } => {
                if self.types.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("type '{name}'")));
                }
                let mut attr_defs = Vec::new();
                for (aname, tname) in &attrs {
                    let ty = ScalarType::parse(tname)
                        .or_else(|| {
                            // User-defined types resolve to their base.
                            self.registry.type_def(tname).ok().map(|t| t.base())
                        })
                        .ok_or_else(|| Error::schema(format!("unknown type '{tname}'")))?;
                    attr_defs.push(AttributeDef::scalar(aname.clone(), ty));
                }
                let mut dim_defs = Vec::new();
                for d in &dims {
                    let mut def = match d.upper {
                        Some(u) => DimensionDef::bounded(d.name.clone(), u),
                        None => DimensionDef::unbounded(d.name.clone()),
                    };
                    if let Some(c) = d.chunk {
                        def = def.with_chunk(c);
                    }
                    dim_defs.push(def);
                }
                let mut schema = ArraySchema::new(&name, attr_defs, dim_defs)?;
                if updatable {
                    schema = schema.updatable()?;
                }
                self.types.insert(name.clone(), schema);
                Ok(StmtResult::Done(format!("defined type {name}")))
            }
            Stmt::CreateArray {
                name,
                type_name,
                bounds,
            } => {
                if self.arrays.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("array '{name}'")));
                }
                let ty = self
                    .types
                    .get(&type_name)
                    .ok_or_else(|| Error::not_found(format!("type '{type_name}'")))?;
                // Updatable types: bounds exclude the implicit history dim.
                let schema = if ty.is_updatable() && bounds.len() == ty.rank() - 1 {
                    let mut b = bounds.clone();
                    b.push(None);
                    ty.instantiate(&name, &b)?
                } else {
                    ty.instantiate(&name, &bounds)?
                };
                let stored = if schema.is_updatable() {
                    StoredArray::Updatable(UpdatableArray::new(schema)?)
                } else {
                    StoredArray::Plain(Array::new(schema))
                };
                self.arrays.insert(name.clone(), stored);
                Ok(StmtResult::Done(format!("created array {name}")))
            }
            Stmt::Enhance { array, function } => {
                let f = self.registry.enhancement(&function)?;
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.enhance(f)?,
                    StoredArray::Updatable(u) => {
                        if f.output_names().len() == 1 {
                            u.set_clock(f)?;
                        } else {
                            return Err(Error::Unsupported(
                                "multi-dimension enhancement of an updatable array".into(),
                            ));
                        }
                    }
                }
                Ok(StmtResult::Done(format!(
                    "enhanced {array} with {function}"
                )))
            }
            Stmt::Shape { array, function } => {
                let f = self.registry.shape(&function)?;
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.set_shape(f)?,
                    StoredArray::Updatable(_) => {
                        return Err(Error::Unsupported(
                            "shape functions on updatable arrays".into(),
                        ))
                    }
                }
                Ok(StmtResult::Done(format!("shaped {array} with {function}")))
            }
            Stmt::Insert {
                array,
                coords,
                values,
            } => {
                let record: Vec<Value> = values.iter().map(literal_to_value).collect();
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.set_cell(&coords, record)?,
                    StoredArray::Updatable(u) => {
                        // No-overwrite: the insert lands at the next
                        // history version (§2.5).
                        u.commit_put(&coords, record)?;
                    }
                }
                Ok(StmtResult::Done(format!("inserted into {array}")))
            }
            Stmt::Store { expr, into } => {
                if self.arrays.contains_key(&into) {
                    return Err(Error::AlreadyExists(format!("array '{into}'")));
                }
                let result = self.eval(plan::optimize(expr))?;
                let renamed_schema = result.schema().renamed(&into);
                let mut out = Array::new(renamed_schema);
                for (coords, rec) in result.cells() {
                    out.set_cell(&coords, rec)?;
                }
                self.arrays.insert(into.clone(), StoredArray::Plain(out));
                Ok(StmtResult::Done(format!("stored into {into}")))
            }
            Stmt::Drop { name } => {
                self.arrays
                    .remove(&name)
                    .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
                Ok(StmtResult::Done(format!("dropped {name}")))
            }
            Stmt::Exists { array, coords } => {
                let a = self.array(&array)?.as_array();
                Ok(StmtResult::Bool(a.exists(&coords)))
            }
            Stmt::Query(expr) => Ok(StmtResult::Array(self.eval(plan::optimize(expr))?)),
        }
    }

    /// Evaluates an (optimized) array expression.
    fn eval(&self, expr: AExpr) -> Result<Array> {
        match expr {
            AExpr::Scan(name) => Ok(self.array(&name)?.as_array().clone()),
            AExpr::Subsample { input, pred } => {
                let input = self.eval(*input)?;
                let dp = plan::expr_to_dim_predicate(&pred)?;
                ops::subsample_with(&input, &dp, Some(&self.registry), &self.ctx)
            }
            AExpr::Filter { input, pred } => {
                let input = self.eval(*input)?;
                let pred = plan::resolve_expr(&pred, input.schema())?;
                ops::filter_with(&input, &pred, Some(&self.registry), &self.ctx)
            }
            AExpr::Aggregate {
                input,
                group,
                agg,
                arg,
            } => {
                let input = self.eval(*input)?;
                let groups: Vec<&str> = group.iter().map(String::as_str).collect();
                let agg_input = match arg {
                    AggArg::Star => AggInput::Star,
                    AggArg::Attr(a) => AggInput::Attr(a),
                };
                ops::aggregate_with(&input, &groups, &agg, agg_input, &self.registry, &self.ctx)
            }
            AExpr::Sjoin { left, right, on } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                let pairs: Vec<(&str, &str)> =
                    on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
                self.timed_serial("sjoin", &left, || ops::sjoin(&left, &right, &pairs))
            }
            AExpr::Cjoin { left, right, pred } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                // Resolve the predicate against the combined schema by
                // dry-running the join on empty inputs.
                let probe = ops::cjoin(
                    &Array::from_arc(left.schema_arc()),
                    &Array::from_arc(right.schema_arc()),
                    &scidb_core::expr::Expr::lit(true),
                    None,
                )?;
                let pred = plan::resolve_expr(&pred, probe.schema())?;
                self.timed_serial("cjoin", &left, || {
                    ops::cjoin(&left, &right, &pred, Some(&self.registry))
                })
            }
            AExpr::Apply { input, name, expr } => {
                let input = self.eval(*input)?;
                let expr = plan::resolve_expr(&expr, input.schema())?;
                let ty = plan::infer_type(&expr, input.schema());
                ops::apply_with(&input, &name, &expr, ty, Some(&self.registry), &self.ctx)
            }
            AExpr::Project { input, attrs } => {
                let input = self.eval(*input)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                ops::project_with(&input, &keep, &self.ctx)
            }
            AExpr::Reshape {
                input,
                order,
                new_dims,
            } => {
                let input = self.eval(*input)?;
                let order: Vec<&str> = order.iter().map(String::as_str).collect();
                self.timed_serial("reshape", &input, || {
                    ops::reshape(&input, &order, &new_dims)
                })
            }
            AExpr::Regrid {
                input,
                factors,
                agg,
            } => {
                let input = self.eval(*input)?;
                ops::regrid_with(&input, &factors, &agg, &self.registry, &self.ctx)
            }
            AExpr::Concat { left, right, dim } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                self.timed_serial("concat", &left, || ops::concat(&left, &right, &dim))
            }
            AExpr::Cross { left, right } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                self.timed_serial("cross", &left, || ops::cross_product(&left, &right))
            }
            AExpr::AddDim { input, name } => {
                let input = self.eval(*input)?;
                self.timed_serial("add_dim", &input, || ops::add_dimension(&input, &name))
            }
            AExpr::Slice { input, dim, at } => {
                let input = self.eval(*input)?;
                self.timed_serial("slice", &input, || ops::remove_dimension(&input, &dim, at))
            }
        }
    }

    /// Times a serial (non-chunk-parallel) operator and records its metrics
    /// against the primary input's chunk and cell counts.
    fn timed_serial<R>(&self, op: &str, input: &Array, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let start = Instant::now();
        let out = f()?;
        self.ctx.record(
            op,
            input.chunks().len() as u64,
            input.cell_count() as u64,
            start.elapsed(),
        );
        Ok(out)
    }

    /// Installs a wall-clock enhancement helper (convenience for §2.5
    /// examples).
    pub fn register_clock(&mut self, name: &str, base: i64, step: i64) -> Result<()> {
        self.registry
            .register_enhancement(Arc::new(WallClock::new(name, base, step)))
    }
}

/// A statement-execution handle over a [`Database`] that borrows its
/// [`ExecContext`]. Unlike `Database::run`/`query`, a session accumulates
/// metrics across all statements it executes; drain them with
/// [`take_metrics`](Self::take_metrics).
pub struct Session<'db> {
    db: &'db mut Database,
}

impl Session<'_> {
    /// The shared execution context (thread budget + metrics sink).
    pub fn ctx(&self) -> &ExecContext {
        &self.db.ctx
    }

    /// Parses, plans, and executes a script without resetting metrics.
    pub fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        let stmts = parser::parse(text)?;
        stmts.into_iter().map(|s| self.db.execute(s)).collect()
    }

    /// Runs a single-statement query expecting an array result, without
    /// resetting metrics.
    pub fn query(&mut self, text: &str) -> Result<Array> {
        let stmt = parser::parse_one(text)?;
        self.db.execute(stmt)?.into_array()
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<StmtResult> {
        self.db.execute(stmt)
    }

    /// Snapshot of the metrics accumulated so far in this session.
    pub fn metrics(&self) -> QueryMetrics {
        self.db.ctx.metrics()
    }

    /// Drains and returns the session's accumulated metrics.
    pub fn take_metrics(&mut self) -> QueryMetrics {
        self.db.ctx.take_metrics()
    }
}

fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::from(*v),
        Literal::Float(v) => Value::from(*v),
        Literal::Str(s) => Value::from(s.clone()),
        Literal::Bool(b) => Value::from(*b),
        Literal::Null => Value::Null,
        Literal::Uncertain(m, s) => Value::from(Uncertain::new(*m, *s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_h() -> Database {
        let mut db = Database::new();
        db.run(
            "define H (v = int) (X = 1:2, Y = 1:2);
             create A as H [2, 2];
             insert into A[1, 1] values (1);
             insert into A[2, 1] values (3);
             insert into A[1, 2] values (2);
             insert into A[2, 2] values (5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn define_create_insert_scan() {
        let mut db = db_with_h();
        let a = db.query("scan(A)").unwrap();
        assert_eq!(a.cell_count(), 4);
        assert_eq!(a.get_cell(&[2, 2]), Some(vec![Value::from(5i64)]));
    }

    #[test]
    fn figure2_through_aql() {
        let mut db = db_with_h();
        let out = db.query("Aggregate(A, {Y}, Sum(*))").unwrap();
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(4i64)]));
        assert_eq!(out.get_cell(&[2]), Some(vec![Value::from(7i64)]));
    }

    #[test]
    fn subsample_with_even_and_legality() {
        let mut db = db_with_h();
        let out = db.query("Subsample(A, even(X))").unwrap();
        assert_eq!(out.cell_count(), 2);
        // The paper's illegal predicate errors with a helpful message.
        let err = db.query("Subsample(A, X = Y)").unwrap_err();
        assert!(err.to_string().contains("not legal"), "{err}");
    }

    #[test]
    fn filter_apply_project_pipeline() {
        let mut db = db_with_h();
        let out = db
            .query("project(apply(filter(A, v > 2), dbl, v * 2), dbl)")
            .unwrap();
        assert_eq!(out.schema().attrs().len(), 1);
        assert_eq!(out.get_cell(&[2, 2]), Some(vec![Value::from(10i64)]));
        // Filtered-out cells are NULL.
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::Null]));
    }

    #[test]
    fn joins_through_aql() {
        let mut db = Database::new();
        db.run(
            "define T (val = int) (i = 1:2);
             create A as T [2]; create B as T [2];
             insert into A[1] values (1); insert into A[2] values (2);
             insert into B[1] values (1); insert into B[2] values (2);",
        )
        .unwrap();
        let s = db.query("sjoin(A, B, A.i = B.i)").unwrap();
        assert_eq!(s.rank(), 1);
        assert_eq!(s.cell_count(), 2);
        let c = db.query("cjoin(A, B, A.val = B.val_r)").unwrap();
        assert_eq!(c.rank(), 2);
        assert_eq!(
            c.get_cell(&[1, 1]),
            Some(vec![Value::from(1i64), Value::from(1i64)])
        );
        assert_eq!(c.get_cell(&[1, 2]), Some(vec![Value::Null, Value::Null]));
    }

    #[test]
    fn store_and_drop() {
        let mut db = db_with_h();
        db.run("store filter(A, v > 2) into Big").unwrap();
        let big = db.query("scan(Big)").unwrap();
        assert_eq!(big.schema().name(), "Big");
        assert_eq!(big.cell_count(), 4);
        db.run("drop array Big").unwrap();
        assert!(db.query("scan(Big)").is_err());
        assert!(db.run("drop array Big").is_err());
    }

    #[test]
    fn updatable_array_no_overwrite_via_aql() {
        let mut db = Database::new();
        db.run(
            "define updatable R (v = float) (I = 1:4, J = 1:4);
             create M as R [4, 4];
             insert into M[2, 2] values (1.0);
             insert into M[2, 2] values (9.0);",
        )
        .unwrap();
        match db.array("M").unwrap() {
            StoredArray::Updatable(u) => {
                assert_eq!(u.current_history(), 2);
                assert_eq!(u.get_at(&[2, 2], 1), Some(vec![Value::from(1.0)]));
                assert_eq!(u.get_latest(&[2, 2]), Some(vec![Value::from(9.0)]));
            }
            other => panic!("expected updatable, got {other:?}"),
        }
        // Scan exposes the history dimension.
        let scan = db.query("scan(M)").unwrap();
        assert_eq!(scan.rank(), 3);
        assert_eq!(scan.cell_count(), 2);
    }

    #[test]
    fn exists_probe() {
        let mut db = db_with_h();
        let r = db.run("exists(A, 2, 2); exists(A, 9, 9)").unwrap();
        assert!(matches!(r[0], StmtResult::Bool(true)));
        assert!(matches!(r[1], StmtResult::Bool(false)));
    }

    #[test]
    fn regrid_and_reshape_via_aql() {
        let mut db = db_with_h();
        let rg = db.query("regrid(A, [2, 2], sum)").unwrap();
        assert_eq!(rg.cell_count(), 1);
        assert_eq!(rg.get_cell(&[1, 1]), Some(vec![Value::from(11i64)]));
        let rs = db.query("reshape(A, [X, Y], [k = 1:4])").unwrap();
        assert_eq!(rs.rank(), 1);
        assert_eq!(rs.cell_count(), 4);
    }

    #[test]
    fn unknown_names_error() {
        let mut db = Database::new();
        assert!(db.query("scan(nope)").is_err());
        assert!(db.run("create X as NoType [2]").is_err());
        assert!(db.run("define T (v = blob) (X = 1:2)").is_err());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut db = db_with_h();
        assert!(db.run("define H (v = int) (X = 1:2)").is_err());
        assert!(db.run("create A as H [2, 2]").is_err());
    }

    #[test]
    fn stmt_result_typed_accessors() {
        let mut db = db_with_h();
        let r = db.run("scan(A)").unwrap().pop().unwrap();
        assert_eq!(r.kind(), "array");
        assert!(r.as_bool().is_none());
        assert_eq!(r.as_array().unwrap().cell_count(), 4);
        assert!(r.expect_done().is_err());

        let r = db.run("exists(A, 1, 1)").unwrap().pop().unwrap();
        assert_eq!(r.as_bool(), Some(true));
        assert!(r.as_array().is_none());
        assert!(r.into_array().is_err());

        let r = db.run("drop array A").unwrap().pop().unwrap();
        assert_eq!(r.kind(), "acknowledgement");
        assert!(r.expect_done().unwrap().contains("dropped"));
    }

    #[test]
    fn into_array_error_names_result_kind() {
        let mut db = db_with_h();
        let err = db
            .run("exists(A, 1, 1)")
            .unwrap()
            .pop()
            .unwrap()
            .into_array()
            .unwrap_err();
        assert!(err.to_string().contains("bool result"), "{err}");
    }

    #[test]
    fn query_metrics_report_per_operator() {
        let mut db = db_with_h();
        db.query("aggregate(filter(A, v > 1), {Y}, sum(*))")
            .unwrap();
        let m = db.metrics();
        let ops: Vec<&str> = m.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["filter", "aggregate"]);
        assert!(m.ops[0].cells_touched == 4);
        assert!(m.chunks_scanned() >= 2);
        // The next query resets the metrics.
        db.query("scan(A)").unwrap();
        assert!(db.metrics().ops.is_empty());
    }

    #[test]
    fn parallel_database_matches_serial() {
        let script = "define H (v = int) (X = 1:8, Y = 1:8);
             create A as H [8, 8];";
        let mut serial = Database::with_threads(1);
        let mut parallel = Database::with_threads(4);
        serial.run(script).unwrap();
        parallel.run(script).unwrap();
        for x in 1..=8 {
            for y in 1..=8 {
                let ins = format!("insert into A[{x}, {y}] values ({})", x * 10 + y);
                serial.run(&ins).unwrap();
                parallel.run(&ins).unwrap();
            }
        }
        for q in [
            "filter(A, v > 30)",
            "subsample(A, even(X))",
            "project(apply(A, w, v * 2), w)",
            "aggregate(A, {X}, avg(v))",
            "regrid(A, [2, 2], sum)",
        ] {
            let a = serial.query(q).unwrap();
            let b = parallel.query(q).unwrap();
            assert_eq!(a, b, "{q} must be identical at any thread count");
        }
    }

    #[test]
    fn session_accumulates_metrics_across_statements() {
        let mut db = db_with_h();
        let mut session = db.session();
        assert!(session.ctx().threads() >= 1);
        session.query("filter(A, v > 1)").unwrap();
        session.query("aggregate(A, {Y}, sum(*))").unwrap();
        let m = session.metrics();
        let ops: Vec<&str> = m.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["filter", "aggregate"]);
        // Draining empties the sink; subsequent statements start fresh.
        assert_eq!(session.take_metrics().ops.len(), 2);
        assert!(session.metrics().ops.is_empty());
        let r = session.run("exists(A, 1, 1)").unwrap().pop().unwrap();
        assert_eq!(r.as_bool(), Some(true));
    }

    #[test]
    fn user_defined_type_in_define() {
        let mut db = Database::new();
        db.registry_mut()
            .register_type(scidb_core::udf::TypeDef::new(
                "declination",
                ScalarType::Float64,
            ))
            .unwrap();
        db.run("define S (dec = declination) (i = 1:4); create D as S [4]")
            .unwrap();
        db.run("insert into D[1] values (45.0)").unwrap();
        let out = db.query("scan(D)").unwrap();
        assert_eq!(out.get_f64(0, &[1]), Some(45.0));
    }
}
