//! The query executor: a [`Database`] catalog plus statement evaluation.
//!
//! `Database` owns defined array types, array instances (plain and
//! updatable), and the function [`Registry`]. `execute` runs one parsed
//! statement; `run` parses, plans (see [`crate::plan`]), and executes AQL
//! text — the full §2.4 pipeline from any language binding down to the
//! engine.

use crate::ast::{AExpr, AggArg, Literal, Stmt};
use crate::parser;
use crate::plan;
use scidb_core::array::Array;
use scidb_core::enhance::WallClock;
use scidb_core::error::{Error, Result};
use scidb_core::history::UpdatableArray;
use scidb_core::ops::{self, AggInput};
use scidb_core::registry::Registry;
use scidb_core::schema::{ArraySchema, AttributeDef, DimensionDef};
use scidb_core::uncertain::Uncertain;
use scidb_core::value::{ScalarType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A stored array instance.
#[derive(Debug)]
pub enum StoredArray {
    /// A plain array.
    Plain(Array),
    /// An updatable (no-overwrite) array (§2.5).
    Updatable(UpdatableArray),
}

impl StoredArray {
    /// A scannable view: plain arrays as-is; updatable arrays expose their
    /// full inner array including the history dimension.
    pub fn as_array(&self) -> &Array {
        match self {
            StoredArray::Plain(a) => a,
            StoredArray::Updatable(u) => u.array(),
        }
    }
}

/// Result of executing one statement.
#[derive(Debug)]
pub enum StmtResult {
    /// DDL/DML acknowledgement.
    Done(String),
    /// A query result array.
    Array(Array),
    /// A scalar probe result (`exists`).
    Bool(bool),
}

impl StmtResult {
    /// The array result, if any.
    pub fn into_array(self) -> Result<Array> {
        match self {
            StmtResult::Array(a) => Ok(a),
            other => Err(Error::eval(format!("expected array result, got {other:?}"))),
        }
    }
}

/// The catalog + executor.
pub struct Database {
    types: HashMap<String, ArraySchema>,
    arrays: HashMap<String, StoredArray>,
    registry: Registry,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates a database with the built-in function library.
    pub fn new() -> Self {
        Database {
            types: HashMap::new(),
            arrays: HashMap::new(),
            registry: Registry::with_builtins(),
        }
    }

    /// The function registry (register UDFs, aggregates, enhancements,
    /// shapes here — §2.3).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Looks up a stored array.
    pub fn array(&self, name: &str) -> Result<&StoredArray> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// Mutable access to a stored array.
    pub fn array_mut(&mut self, name: &str) -> Result<&mut StoredArray> {
        self.arrays
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    /// Registers an existing array under a name (bulk-load path used by
    /// examples and benches).
    pub fn put_array(&mut self, name: &str, array: Array) -> Result<()> {
        if self.arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        self.arrays.insert(name.to_string(), StoredArray::Plain(array));
        Ok(())
    }

    /// Array names in the catalog (sorted).
    pub fn array_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.arrays.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Parses, plans, and executes a script; returns one result per
    /// statement.
    pub fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        let stmts = parser::parse(text)?;
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Runs a single-statement query expecting an array result.
    pub fn query(&mut self, text: &str) -> Result<Array> {
        let stmt = parser::parse_one(text)?;
        self.execute(stmt)?.into_array()
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<StmtResult> {
        match stmt {
            Stmt::DefineArray {
                name,
                updatable,
                attrs,
                dims,
            } => {
                if self.types.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("type '{name}'")));
                }
                let mut attr_defs = Vec::new();
                for (aname, tname) in &attrs {
                    let ty = ScalarType::parse(tname)
                        .or_else(|| {
                            // User-defined types resolve to their base.
                            self.registry.type_def(tname).ok().map(|t| t.base())
                        })
                        .ok_or_else(|| Error::schema(format!("unknown type '{tname}'")))?;
                    attr_defs.push(AttributeDef::scalar(aname.clone(), ty));
                }
                let mut dim_defs = Vec::new();
                for d in &dims {
                    let mut def = match d.upper {
                        Some(u) => DimensionDef::bounded(d.name.clone(), u),
                        None => DimensionDef::unbounded(d.name.clone()),
                    };
                    if let Some(c) = d.chunk {
                        def = def.with_chunk(c);
                    }
                    dim_defs.push(def);
                }
                let mut schema = ArraySchema::new(&name, attr_defs, dim_defs)?;
                if updatable {
                    schema = schema.updatable()?;
                }
                self.types.insert(name.clone(), schema);
                Ok(StmtResult::Done(format!("defined type {name}")))
            }
            Stmt::CreateArray {
                name,
                type_name,
                bounds,
            } => {
                if self.arrays.contains_key(&name) {
                    return Err(Error::AlreadyExists(format!("array '{name}'")));
                }
                let ty = self
                    .types
                    .get(&type_name)
                    .ok_or_else(|| Error::not_found(format!("type '{type_name}'")))?;
                // Updatable types: bounds exclude the implicit history dim.
                let schema = if ty.is_updatable() && bounds.len() == ty.rank() - 1 {
                    let mut b = bounds.clone();
                    b.push(None);
                    ty.instantiate(&name, &b)?
                } else {
                    ty.instantiate(&name, &bounds)?
                };
                let stored = if schema.is_updatable() {
                    StoredArray::Updatable(UpdatableArray::new(schema)?)
                } else {
                    StoredArray::Plain(Array::new(schema))
                };
                self.arrays.insert(name.clone(), stored);
                Ok(StmtResult::Done(format!("created array {name}")))
            }
            Stmt::Enhance { array, function } => {
                let f = self.registry.enhancement(&function)?;
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.enhance(f)?,
                    StoredArray::Updatable(u) => {
                        if f.output_names().len() == 1 {
                            u.set_clock(f)?;
                        } else {
                            return Err(Error::Unsupported(
                                "multi-dimension enhancement of an updatable array".into(),
                            ));
                        }
                    }
                }
                Ok(StmtResult::Done(format!(
                    "enhanced {array} with {function}"
                )))
            }
            Stmt::Shape { array, function } => {
                let f = self.registry.shape(&function)?;
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.set_shape(f)?,
                    StoredArray::Updatable(_) => {
                        return Err(Error::Unsupported(
                            "shape functions on updatable arrays".into(),
                        ))
                    }
                }
                Ok(StmtResult::Done(format!("shaped {array} with {function}")))
            }
            Stmt::Insert {
                array,
                coords,
                values,
            } => {
                let record: Vec<Value> = values.iter().map(literal_to_value).collect();
                match self.array_mut(&array)? {
                    StoredArray::Plain(a) => a.set_cell(&coords, record)?,
                    StoredArray::Updatable(u) => {
                        // No-overwrite: the insert lands at the next
                        // history version (§2.5).
                        u.commit_put(&coords, record)?;
                    }
                }
                Ok(StmtResult::Done(format!("inserted into {array}")))
            }
            Stmt::Store { expr, into } => {
                if self.arrays.contains_key(&into) {
                    return Err(Error::AlreadyExists(format!("array '{into}'")));
                }
                let result = self.eval(plan::optimize(expr))?;
                let renamed_schema = result.schema().renamed(&into);
                let mut out = Array::new(renamed_schema);
                for (coords, rec) in result.cells() {
                    out.set_cell(&coords, rec)?;
                }
                self.arrays.insert(into.clone(), StoredArray::Plain(out));
                Ok(StmtResult::Done(format!("stored into {into}")))
            }
            Stmt::Drop { name } => {
                self.arrays
                    .remove(&name)
                    .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
                Ok(StmtResult::Done(format!("dropped {name}")))
            }
            Stmt::Exists { array, coords } => {
                let a = self.array(&array)?.as_array();
                Ok(StmtResult::Bool(a.exists(&coords)))
            }
            Stmt::Query(expr) => Ok(StmtResult::Array(self.eval(plan::optimize(expr))?)),
        }
    }

    /// Evaluates an (optimized) array expression.
    fn eval(&self, expr: AExpr) -> Result<Array> {
        match expr {
            AExpr::Scan(name) => Ok(self.array(&name)?.as_array().clone()),
            AExpr::Subsample { input, pred } => {
                let input = self.eval(*input)?;
                let dp = plan::expr_to_dim_predicate(&pred)?;
                ops::subsample(&input, &dp, Some(&self.registry))
            }
            AExpr::Filter { input, pred } => {
                let input = self.eval(*input)?;
                let pred = plan::resolve_expr(&pred, input.schema())?;
                ops::filter(&input, &pred, Some(&self.registry))
            }
            AExpr::Aggregate {
                input,
                group,
                agg,
                arg,
            } => {
                let input = self.eval(*input)?;
                let groups: Vec<&str> = group.iter().map(String::as_str).collect();
                let agg_input = match arg {
                    AggArg::Star => AggInput::Star,
                    AggArg::Attr(a) => AggInput::Attr(a),
                };
                ops::aggregate(&input, &groups, &agg, agg_input, &self.registry)
            }
            AExpr::Sjoin { left, right, on } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                let pairs: Vec<(&str, &str)> =
                    on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
                ops::sjoin(&left, &right, &pairs)
            }
            AExpr::Cjoin { left, right, pred } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                // Resolve the predicate against the combined schema by
                // dry-running the join on empty inputs.
                let probe = ops::cjoin(
                    &Array::from_arc(left.schema_arc()),
                    &Array::from_arc(right.schema_arc()),
                    &scidb_core::expr::Expr::lit(true),
                    None,
                )?;
                let pred = plan::resolve_expr(&pred, probe.schema())?;
                ops::cjoin(&left, &right, &pred, Some(&self.registry))
            }
            AExpr::Apply { input, name, expr } => {
                let input = self.eval(*input)?;
                let expr = plan::resolve_expr(&expr, input.schema())?;
                let ty = plan::infer_type(&expr, input.schema());
                ops::apply(&input, &name, &expr, ty, Some(&self.registry))
            }
            AExpr::Project { input, attrs } => {
                let input = self.eval(*input)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                ops::project(&input, &keep)
            }
            AExpr::Reshape {
                input,
                order,
                new_dims,
            } => {
                let input = self.eval(*input)?;
                let order: Vec<&str> = order.iter().map(String::as_str).collect();
                ops::reshape(&input, &order, &new_dims)
            }
            AExpr::Regrid {
                input,
                factors,
                agg,
            } => {
                let input = self.eval(*input)?;
                ops::regrid(&input, &factors, &agg, &self.registry)
            }
            AExpr::Concat { left, right, dim } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                ops::concat(&left, &right, &dim)
            }
            AExpr::Cross { left, right } => {
                let left = self.eval(*left)?;
                let right = self.eval(*right)?;
                ops::cross_product(&left, &right)
            }
            AExpr::AddDim { input, name } => {
                let input = self.eval(*input)?;
                ops::add_dimension(&input, &name)
            }
            AExpr::Slice { input, dim, at } => {
                let input = self.eval(*input)?;
                ops::remove_dimension(&input, &dim, at)
            }
        }
    }

    /// Installs a wall-clock enhancement helper (convenience for §2.5
    /// examples).
    pub fn register_clock(&mut self, name: &str, base: i64, step: i64) -> Result<()> {
        self.registry
            .register_enhancement(Arc::new(WallClock::new(name, base, step)))
    }
}

fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::from(*v),
        Literal::Float(v) => Value::from(*v),
        Literal::Str(s) => Value::from(s.clone()),
        Literal::Bool(b) => Value::from(*b),
        Literal::Null => Value::Null,
        Literal::Uncertain(m, s) => Value::from(Uncertain::new(*m, *s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_h() -> Database {
        let mut db = Database::new();
        db.run(
            "define H (v = int) (X = 1:2, Y = 1:2);
             create A as H [2, 2];
             insert into A[1, 1] values (1);
             insert into A[2, 1] values (3);
             insert into A[1, 2] values (2);
             insert into A[2, 2] values (5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn define_create_insert_scan() {
        let mut db = db_with_h();
        let a = db.query("scan(A)").unwrap();
        assert_eq!(a.cell_count(), 4);
        assert_eq!(a.get_cell(&[2, 2]), Some(vec![Value::from(5i64)]));
    }

    #[test]
    fn figure2_through_aql() {
        let mut db = db_with_h();
        let out = db.query("Aggregate(A, {Y}, Sum(*))").unwrap();
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(4i64)]));
        assert_eq!(out.get_cell(&[2]), Some(vec![Value::from(7i64)]));
    }

    #[test]
    fn subsample_with_even_and_legality() {
        let mut db = db_with_h();
        let out = db.query("Subsample(A, even(X))").unwrap();
        assert_eq!(out.cell_count(), 2);
        // The paper's illegal predicate errors with a helpful message.
        let err = db.query("Subsample(A, X = Y)").unwrap_err();
        assert!(err.to_string().contains("not legal"), "{err}");
    }

    #[test]
    fn filter_apply_project_pipeline() {
        let mut db = db_with_h();
        let out = db
            .query("project(apply(filter(A, v > 2), dbl, v * 2), dbl)")
            .unwrap();
        assert_eq!(out.schema().attrs().len(), 1);
        assert_eq!(out.get_cell(&[2, 2]), Some(vec![Value::from(10i64)]));
        // Filtered-out cells are NULL.
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::Null]));
    }

    #[test]
    fn joins_through_aql() {
        let mut db = Database::new();
        db.run(
            "define T (val = int) (i = 1:2);
             create A as T [2]; create B as T [2];
             insert into A[1] values (1); insert into A[2] values (2);
             insert into B[1] values (1); insert into B[2] values (2);",
        )
        .unwrap();
        let s = db.query("sjoin(A, B, A.i = B.i)").unwrap();
        assert_eq!(s.rank(), 1);
        assert_eq!(s.cell_count(), 2);
        let c = db.query("cjoin(A, B, A.val = B.val_r)").unwrap();
        assert_eq!(c.rank(), 2);
        assert_eq!(
            c.get_cell(&[1, 1]),
            Some(vec![Value::from(1i64), Value::from(1i64)])
        );
        assert_eq!(c.get_cell(&[1, 2]), Some(vec![Value::Null, Value::Null]));
    }

    #[test]
    fn store_and_drop() {
        let mut db = db_with_h();
        db.run("store filter(A, v > 2) into Big").unwrap();
        let big = db.query("scan(Big)").unwrap();
        assert_eq!(big.schema().name(), "Big");
        assert_eq!(big.cell_count(), 4);
        db.run("drop array Big").unwrap();
        assert!(db.query("scan(Big)").is_err());
        assert!(db.run("drop array Big").is_err());
    }

    #[test]
    fn updatable_array_no_overwrite_via_aql() {
        let mut db = Database::new();
        db.run(
            "define updatable R (v = float) (I = 1:4, J = 1:4);
             create M as R [4, 4];
             insert into M[2, 2] values (1.0);
             insert into M[2, 2] values (9.0);",
        )
        .unwrap();
        match db.array("M").unwrap() {
            StoredArray::Updatable(u) => {
                assert_eq!(u.current_history(), 2);
                assert_eq!(u.get_at(&[2, 2], 1), Some(vec![Value::from(1.0)]));
                assert_eq!(u.get_latest(&[2, 2]), Some(vec![Value::from(9.0)]));
            }
            other => panic!("expected updatable, got {other:?}"),
        }
        // Scan exposes the history dimension.
        let scan = db.query("scan(M)").unwrap();
        assert_eq!(scan.rank(), 3);
        assert_eq!(scan.cell_count(), 2);
    }

    #[test]
    fn exists_probe() {
        let mut db = db_with_h();
        let r = db.run("exists(A, 2, 2); exists(A, 9, 9)").unwrap();
        assert!(matches!(r[0], StmtResult::Bool(true)));
        assert!(matches!(r[1], StmtResult::Bool(false)));
    }

    #[test]
    fn regrid_and_reshape_via_aql() {
        let mut db = db_with_h();
        let rg = db.query("regrid(A, [2, 2], sum)").unwrap();
        assert_eq!(rg.cell_count(), 1);
        assert_eq!(rg.get_cell(&[1, 1]), Some(vec![Value::from(11i64)]));
        let rs = db.query("reshape(A, [X, Y], [k = 1:4])").unwrap();
        assert_eq!(rs.rank(), 1);
        assert_eq!(rs.cell_count(), 4);
    }

    #[test]
    fn unknown_names_error() {
        let mut db = Database::new();
        assert!(db.query("scan(nope)").is_err());
        assert!(db.run("create X as NoType [2]").is_err());
        assert!(db
            .run("define T (v = blob) (X = 1:2)")
            .is_err());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut db = db_with_h();
        assert!(db.run("define H (v = int) (X = 1:2)").is_err());
        assert!(db.run("create A as H [2, 2]").is_err());
    }

    #[test]
    fn user_defined_type_in_define() {
        let mut db = Database::new();
        db.registry_mut()
            .register_type(scidb_core::udf::TypeDef::new(
                "declination",
                ScalarType::Float64,
            ))
            .unwrap();
        db.run("define S (dec = declination) (i = 1:4); create D as S [4]")
            .unwrap();
        db.run("insert into D[1] values (45.0)").unwrap();
        let out = db.query("scan(D)").unwrap();
        assert_eq!(out.get_f64(0, &[1]), Some(45.0));
    }
}
