//! The query executor: a [`Database`] catalog plus statement evaluation.
//!
//! Since the serving-layer redesign the catalog lives in an internal,
//! interior-synchronized core (`DbCore`): an immutable handle to it can be
//! shared across threads, and every statement executes through that shared
//! core under a reader/writer lock — read statements (`Query`, `exists`)
//! take the read side and run concurrently, DDL/DML takes the write side.
//! Three public handles wrap the core:
//!
//! * [`Database`] — the classic owning handle. All historic `&mut self`
//!   entry points (`run`, `query`, `execute`, …) are thin wrappers over the
//!   shared core, so single-threaded callers are unaffected.
//! * [`SharedDatabase`] — a cheaply cloneable (`Arc`) handle for serving
//!   layers; it opens per-connection [`Session`]s.
//! * [`Session`] — an owning statement-execution handle with its *own*
//!   [`ExecContext`] and trace/metric accumulation, so concurrent sessions
//!   never share per-statement state (the context's current-span slot in
//!   particular must not be shared between concurrently executing
//!   statements).
//!
//! Statement texts prepare into [`Prepared`] handles exposing the §2.4
//! canonical parse-tree cache key (`Stmt`'s `Display` rendering); the core
//! keeps an opt-in result cache keyed on that canonical form, invalidated
//! by a generation counter that every catalog write bumps.
//!
//! Every statement executes under a [`Trace`]: the executor opens a root
//! `statement` span, one child span per plan node, and the storage layer
//! nests `read_region` spans beneath the `scan` that triggered them, so
//! `explain analyze <stmt>` renders the full cross-layer tree.
//! [`Database::metrics`] is a thin view derived from those traces
//! (see [`QueryMetrics::from_traces`]); statements slower than the
//! configured threshold are retained in a [`SlowLog`] ring shared by all
//! handles to one database, retrievable via [`Database::slow_queries`].
//!
//! Chunk-separable operators (Subsample, Filter, Apply, Project, Aggregate,
//! Regrid) execute chunk-parallel up to the context's thread budget;
//! [`Database::with_threads`] (or `with_threads(1)` as the escape hatch)
//! controls it.

use crate::ast::{AExpr, AggArg, Literal, Stmt};
use crate::parser;
use crate::plan;
use scidb_core::array::Array;
use scidb_core::enhance::WallClock;
use scidb_core::error::{Error, Result};
use scidb_core::exec::{ExecContext, QueryMetrics};
use scidb_core::geometry::HyperRect;
use scidb_core::history::UpdatableArray;
use scidb_core::ops::{self, AggInput};
use scidb_core::registry::Registry;
use scidb_core::schema::{ArraySchema, AttributeDef, DimensionDef};
use scidb_core::sync::{
    ranks, OrderedMappedReadGuard, OrderedMappedWriteGuard, OrderedRwLock, OrderedRwLockReadGuard,
    OrderedRwLockWriteGuard,
};
use scidb_core::uncertain::Uncertain;
use scidb_core::value::{ScalarType, Value};
use scidb_obs::{
    RenderOptions, SlowEntry, SlowLog, Span, Trace, TraceData, EVENT_RETRY, LAYER_QUERY,
};
use scidb_storage::{merge_pass, CodecPolicy, MemDisk, MergeStats, ReadOptions, StorageManager};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

mod durable;
mod system;

use durable::Durability;

pub use system::{is_system_array, SYSTEM_PREFIX};

/// Default slow-query threshold (see [`Database::set_slow_query_threshold`]).
pub const DEFAULT_SLOW_QUERY_THRESHOLD: Duration = Duration::from_millis(100);

/// Default slow-query ring capacity.
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 32;

/// Result-cache entry budget; when full the cache is wholesale-evicted
/// (entries are invalidated by catalog writes far more often in practice).
pub const RESULT_CACHE_CAPACITY: usize = 64;

/// A stored array instance.
#[derive(Debug)]
pub enum StoredArray {
    /// A plain in-memory array.
    Plain(Array),
    /// An updatable (no-overwrite) array (§2.5).
    Updatable(UpdatableArray),
    /// A disk-backed array served by the storage manager (§2.8); scans
    /// stream through [`StorageManager::read_region_traced`].
    OnDisk(StorageManager),
}

impl StoredArray {
    /// A scannable in-memory view: plain arrays as-is; updatable arrays
    /// expose their full inner array including the history dimension.
    /// Disk-backed arrays have no resident view — scan them instead.
    pub fn as_array(&self) -> Option<&Array> {
        match self {
            StoredArray::Plain(a) => Some(a),
            StoredArray::Updatable(u) => Some(u.array()),
            StoredArray::OnDisk(_) => None,
        }
    }
}

/// Result of executing one statement.
#[derive(Debug)]
pub enum StmtResult {
    /// DDL/DML acknowledgement.
    Done(String),
    /// A query result array.
    Array(Array),
    /// A scalar probe result (`exists`).
    Bool(bool),
    /// The rendered span tree of an `explain analyze` statement.
    Explain(String),
}

impl StmtResult {
    /// The result kind, for error messages and dispatch.
    pub fn kind(&self) -> &'static str {
        match self {
            StmtResult::Done(_) => "acknowledgement",
            StmtResult::Array(_) => "array",
            StmtResult::Bool(_) => "bool",
            StmtResult::Explain(_) => "explain",
        }
    }

    /// Borrows the array result, if this is one.
    pub fn as_array(&self) -> Option<&Array> {
        match self {
            StmtResult::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean probe result, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            StmtResult::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The `explain analyze` report, if this is one.
    pub fn as_explain(&self) -> Option<&str> {
        match self {
            StmtResult::Explain(s) => Some(s),
            _ => None,
        }
    }

    /// The array result, if any.
    pub fn into_array(self) -> Result<Array> {
        match self {
            StmtResult::Array(a) => Ok(a),
            other => Err(Error::eval(format!(
                "expected array result, got {} result",
                other.kind()
            ))),
        }
    }

    /// The DDL/DML acknowledgement message, erroring on any other kind.
    pub fn expect_done(self) -> Result<String> {
        match self {
            StmtResult::Done(msg) => Ok(msg),
            other => Err(Error::eval(format!(
                "expected statement acknowledgement, got {} result",
                other.kind()
            ))),
        }
    }
}

/// Shared read access to a stored array (released on drop).
pub type ArrayRef<'a> = OrderedMappedReadGuard<'a, StoredArray>;
/// Exclusive access to a stored array (released on drop).
pub type ArrayRefMut<'a> = OrderedMappedWriteGuard<'a, StoredArray>;
/// Shared read access to the function registry.
pub type RegistryRef<'a> = OrderedMappedReadGuard<'a, Registry>;
/// Exclusive access to the function registry.
pub type RegistryRefMut<'a> = OrderedMappedWriteGuard<'a, Registry>;
/// Shared read access to the slow-query log.
pub type SlowLogRef<'a> = OrderedRwLockReadGuard<'a, SlowLog>;
/// Exclusive access to the slow-query log.
pub type SlowLogRefMut<'a> = OrderedRwLockWriteGuard<'a, SlowLog>;

/// The lock-guarded catalog: array types, array instances, and the
/// function registry move together under one reader/writer lock so a
/// statement sees an atomic snapshot of all three.
struct CatalogState {
    types: HashMap<String, ArraySchema>,
    arrays: HashMap<String, StoredArray>,
    registry: Registry,
}

impl CatalogState {
    fn stored(&self, name: &str) -> Result<&StoredArray> {
        self.arrays
            .get(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }

    fn stored_mut(&mut self, name: &str) -> Result<&mut StoredArray> {
        self.arrays
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("array '{name}'")))
    }
}

/// One cached query result, valid while the catalog generation matches.
struct CachedQuery {
    generation: u64,
    array: Array,
}

/// Live, lock-free execution counters for one registered handle (a
/// [`Session`] or the owning [`Database`]), surfaced as one row of the
/// `system.sessions` virtual array. All counters are relaxed atomics:
/// they are monitoring data, not synchronization.
#[derive(Debug)]
pub struct SessionStats {
    id: u64,
    statements: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cells_scanned: AtomicU64,
    queue_wait_us: AtomicU64,
    active: AtomicU64,
    timed_out: AtomicU64,
}

impl SessionStats {
    fn new(id: u64) -> Self {
        SessionStats {
            id,
            statements: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cells_scanned: AtomicU64::new(0),
            queue_wait_us: AtomicU64::new(0),
            active: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
        }
    }

    /// The database-wide session id (1-based, allocation order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Statements executed through this handle.
    pub fn statements(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    /// Statements that returned an error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Query statements answered from the result cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cells produced by `scan` nodes across this handle's statements
    /// (system arrays excluded).
    pub fn cells_scanned(&self) -> u64 {
        self.cells_scanned.load(Ordering::Relaxed)
    }

    /// Cumulative admission queue wait attributed by the serving layer.
    pub fn queue_wait_us(&self) -> u64 {
        self.queue_wait_us.load(Ordering::Relaxed)
    }

    /// Statements currently executing.
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Admission waits that timed out, attributed by the serving layer.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }

    /// Adds admission queue wait (serving layer).
    pub fn add_queue_wait(&self, micros: u64) {
        self.queue_wait_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records an admission timeout (serving layer).
    pub fn add_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-statement resource profile derived from a finished trace — the
/// payload of the wire protocol's `QueryStats` trailer and the source of
/// the `scidb.query.cells_scanned` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatementProfile {
    /// Statement wall time in microseconds (the root span's wall).
    pub exec_us: u64,
    /// Cells produced by `scan` nodes over stored arrays (`system.*`
    /// virtual arrays excluded).
    pub cells_scanned: u64,
    /// Bytes read by storage `read_region` spans.
    pub bytes_decoded: u64,
    /// Whether the statement was answered from the result cache.
    pub cache_hit: bool,
    /// Retry events observed anywhere in the trace.
    pub retries: u64,
}

impl StatementProfile {
    /// Derives the profile from a finished statement trace.
    pub fn from_trace(trace: &TraceData) -> Self {
        let mut p = StatementProfile::default();
        for s in &trace.spans {
            if s.parent.is_none() {
                p.exec_us = s.wall.as_micros() as u64;
                p.cache_hit = s
                    .attr("cache_hit")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
            }
            if s.name == "scan" && s.attr("system").is_none() {
                p.cells_scanned += s.attr("cells_out").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            if s.name == "read_region" {
                p.bytes_decoded += s.attr("bytes_read").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            p.retries += s.events.iter().filter(|e| e.name == EVENT_RETRY).count() as u64;
        }
        p
    }
}

/// The interior-synchronized database core shared by every handle.
struct DbCore {
    state: OrderedRwLock<CatalogState>,
    slow_log: OrderedRwLock<SlowLog>,
    /// The configured thread budget (0 = auto) new sessions inherit.
    threads: AtomicUsize,
    /// Bumped by every catalog write; versions the result cache.
    generation: AtomicU64,
    result_cache: OrderedRwLock<HashMap<String, CachedQuery>>,
    /// Registered execution handles, keyed by session id — the live rows
    /// of `system.sessions`.
    sessions: OrderedRwLock<BTreeMap<u64, Arc<SessionStats>>>,
    next_session: AtomicU64,
    /// The WAL/paged-disk backend of a durable database
    /// ([`Database::open`]); `None` for the classic in-memory engine.
    durable: Option<Durability>,
}

impl DbCore {
    fn new(threads: usize) -> Self {
        DbCore::new_with(threads, None)
    }

    fn new_with(threads: usize, durable: Option<Durability>) -> Self {
        DbCore {
            state: OrderedRwLock::new(
                ranks::CATALOG,
                CatalogState {
                    types: HashMap::new(),
                    arrays: HashMap::new(),
                    registry: Registry::with_builtins(),
                },
            ),
            slow_log: OrderedRwLock::new(
                ranks::SLOW_LOG,
                SlowLog::new(DEFAULT_SLOW_QUERY_THRESHOLD, DEFAULT_SLOW_QUERY_CAPACITY),
            ),
            threads: AtomicUsize::new(threads),
            generation: AtomicU64::new(0),
            result_cache: OrderedRwLock::new(ranks::RESULT_CACHE, HashMap::new()),
            sessions: OrderedRwLock::new(ranks::SESSION_REGISTRY, BTreeMap::new()),
            next_session: AtomicU64::new(0),
            durable,
        }
    }

    /// Allocates a session id and registers its stats row.
    fn register_session(&self) -> Arc<SessionStats> {
        let id = self.next_session.fetch_add(1, Ordering::SeqCst) + 1;
        let stats = Arc::new(SessionStats::new(id));
        self.sessions.write().insert(id, Arc::clone(&stats));
        stats
    }

    /// Removes a closed session's stats row.
    fn deregister_session(&self, id: u64) {
        self.sessions.write().remove(&id);
    }

    /// Records a catalog write: versions the result cache. Called while
    /// the state write lock is held (or handed out), so readers acquiring
    /// the read lock afterwards observe the new generation.
    fn touch(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Executes one statement under a root `statement` span, records
    /// process-wide counters, and offers the trace to the shared
    /// slow-query log. Returns the result *and* the statement trace; the
    /// calling handle retains the trace for its own metrics view.
    fn execute_stmt(
        &self,
        stmt: Stmt,
        ctx: &ExecContext,
        use_cache: bool,
        stats: &SessionStats,
    ) -> (Result<StmtResult>, TraceData) {
        let mut stmt = stmt;
        let mut explain = false;
        while let Stmt::ExplainAnalyze(inner) = stmt {
            explain = true;
            stmt = *inner;
        }
        let aql = stmt.to_string();
        let trace = Trace::new();
        let root = trace.root("statement", LAYER_QUERY);
        root.set_attr("aql", aql.as_str());
        let reg = scidb_obs::global();
        reg.counter("scidb.query.statements").inc(1);
        stats.statements.fetch_add(1, Ordering::Relaxed);
        stats.active.fetch_add(1, Ordering::Relaxed);
        let result = self.dispatch(stmt, &aql, &root, ctx, use_cache);
        if let Err(e) = &result {
            root.set_attr("error", e.to_string());
            reg.counter("scidb.query.errors").inc(1);
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let wall = root.finish();
        reg.histogram("scidb.query.statement_wall_us")
            .record(wall.as_micros() as u64);
        let data = trace.finish();
        let profile = StatementProfile::from_trace(&data);
        reg.counter("scidb.query.cells_scanned")
            .inc(profile.cells_scanned);
        stats
            .cells_scanned
            .fetch_add(profile.cells_scanned, Ordering::Relaxed);
        if profile.cache_hit {
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        stats.active.fetch_sub(1, Ordering::Relaxed);
        self.slow_log.write().observe(&aql, stats.id, wall, &data);
        let result = if explain {
            // `explain analyze` returns the rendered span tree — wall
            // times and kernel events included — instead of the result.
            result.map(|_| {
                StmtResult::Explain(data.render_tree(&RenderOptions {
                    times: true,
                    events: true,
                }))
            })
        } else {
            result
        };
        (result, data)
    }

    /// Statement dispatch, inside the root span: reads take the state
    /// read lock, writes the write lock.
    fn dispatch(
        &self,
        stmt: Stmt,
        aql: &str,
        root: &Span,
        ctx: &ExecContext,
        use_cache: bool,
    ) -> Result<StmtResult> {
        match stmt {
            // Unreachable from `execute_stmt`, which strips explains
            // first; a direct call degrades to the inner statement.
            Stmt::ExplainAnalyze(inner) => self.dispatch(*inner, aql, root, ctx, use_cache),
            Stmt::Query(expr) => {
                // `system.*` scans read live telemetry the generation
                // counter does not version, so they never enter the result
                // cache (the canonical rendering names every scanned array).
                let cacheable = use_cache && !aql.contains("scan(system.");
                let key = if cacheable { Some(aql) } else { None };
                Ok(StmtResult::Array(self.execute_query(expr, root, ctx, key)?))
            }
            Stmt::Exists { array, coords } => {
                let state = self.state.read();
                let found = match state.stored(&array)? {
                    StoredArray::OnDisk(mgr) => {
                        let span = root.child("exists", LAYER_QUERY);
                        span.set_attr("array", array.as_str());
                        let res = exists_on_disk(mgr, &coords, &span);
                        match &res {
                            Ok(b) => span.set_attr("found", *b),
                            Err(e) => span.set_attr("error", e.to_string()),
                        }
                        span.finish();
                        res?
                    }
                    other => other.as_array().is_some_and(|a| a.exists(&coords)),
                };
                Ok(StmtResult::Bool(found))
            }
            write => {
                // Durable engines route the write through the WAL: the
                // durable-op mutex (rank WAL, below CATALOG) is taken
                // first so the whole operation commits as one log group.
                if let Some(d) = &self.durable {
                    return d.stmt(self, write, aql, root, ctx);
                }
                let mut state = self.state.write();
                let out = apply_write(self, &mut state, write, root, ctx);
                if out.is_ok() {
                    self.touch();
                }
                out
            }
        }
    }

    /// Evaluates a query expression under the state read lock, consulting
    /// the result cache first when a key is supplied. A hit is recorded on
    /// the root span (`cache_hit`) and skips evaluation entirely.
    fn execute_query(
        &self,
        expr: AExpr,
        root: &Span,
        ctx: &ExecContext,
        cache_key: Option<&str>,
    ) -> Result<Array> {
        if let Some(key) = cache_key {
            let generation = self.generation.load(Ordering::SeqCst);
            if let Some(hit) = self.result_cache.read().get(key) {
                if hit.generation == generation {
                    root.set_attr("cache_hit", true);
                    scidb_obs::global().counter("scidb.query.cache_hits").inc(1);
                    return Ok(hit.array.clone());
                }
            }
        }
        let state = self.state.read();
        // Stable while the read lock is held: writers bump under the
        // write lock, so this generation exactly versions the snapshot
        // the evaluation is about to read.
        let generation = self.generation.load(Ordering::SeqCst);
        let ev = Evaluator {
            state: &state,
            ctx,
            core: self,
        };
        let out = ev.eval_node(root, plan::optimize(expr))?;
        drop(state);
        if let Some(key) = cache_key {
            let mut cache = self.result_cache.write();
            if cache.len() >= RESULT_CACHE_CAPACITY && !cache.contains_key(key) {
                cache.clear();
            }
            cache.insert(
                key.to_string(),
                CachedQuery {
                    generation,
                    array: out.clone(),
                },
            );
        }
        Ok(out)
    }

    // ---- catalog helpers shared by Database and SharedDatabase ----------

    fn put_array(&self, name: &str, array: Array) -> Result<()> {
        if let Some(d) = &self.durable {
            return d.put_array(self, name, array);
        }
        self.put_array_plain(name, array)
    }

    fn put_array_plain(&self, name: &str, array: Array) -> Result<()> {
        system::reject_reserved(name)?;
        let mut state = self.state.write();
        if state.arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        state
            .arrays
            .insert(name.to_string(), StoredArray::Plain(array));
        self.touch();
        Ok(())
    }

    fn put_array_on_disk(&self, name: &str, array: &Array) -> Result<()> {
        if let Some(d) = &self.durable {
            return d.put_array_on_disk(self, name, array);
        }
        system::reject_reserved(name)?;
        let mut state = self.state.write();
        if state.arrays.contains_key(name) {
            return Err(Error::AlreadyExists(format!("array '{name}'")));
        }
        for d in array.schema().dims() {
            if d.upper.is_none() {
                return Err(Error::Unsupported(format!(
                    "on-disk array with unbounded dimension '{}'",
                    d.name
                )));
            }
        }
        let schema = Arc::new(array.schema().renamed(name));
        let mut mgr =
            StorageManager::new(Arc::new(MemDisk::new()), schema, CodecPolicy::adaptive());
        mgr.store_array(array)?;
        state
            .arrays
            .insert(name.to_string(), StoredArray::OnDisk(mgr));
        self.touch();
        Ok(())
    }

    fn merge_on_disk(&self, name: &str, factor: i64) -> Result<MergeStats> {
        if let Some(d) = &self.durable {
            return d.merge_on_disk(self, name, factor);
        }
        let mut state = self.state.write();
        let stats = match state.stored_mut(name)? {
            StoredArray::OnDisk(mgr) => merge_pass(mgr, factor)?,
            _ => {
                return Err(Error::Unsupported(format!(
                    "merge of non-disk-backed array '{name}'"
                )))
            }
        };
        self.touch();
        Ok(stats)
    }

    fn array_names(&self) -> Vec<String> {
        let state = self.state.read();
        let mut v: Vec<String> = state.arrays.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    fn array_guard(&self, name: &str) -> Result<ArrayRef<'_>> {
        OrderedRwLockReadGuard::try_map(self.state.read(), |s| s.arrays.get(name))
            .map_err(|_| Error::not_found(format!("array '{name}'")))
    }

    fn array_guard_mut(&self, name: &str) -> Result<ArrayRefMut<'_>> {
        match OrderedRwLockWriteGuard::try_map(self.state.write(), |s| s.arrays.get_mut(name)) {
            Ok(g) => {
                // The caller may mutate through the guard; invalidate
                // conservatively while the write lock is still held.
                self.touch();
                Ok(g)
            }
            Err(_) => Err(Error::not_found(format!("array '{name}'"))),
        }
    }
}

/// Applies a DDL/DML statement to the exclusively borrowed catalog.
/// `core` rides along so `store(...)` evaluations can resolve `system.*`
/// virtual arrays against live telemetry.
fn apply_write(
    core: &DbCore,
    state: &mut CatalogState,
    stmt: Stmt,
    root: &Span,
    ctx: &ExecContext,
) -> Result<StmtResult> {
    match stmt {
        Stmt::DefineArray {
            name,
            updatable,
            attrs,
            dims,
        } => {
            if state.types.contains_key(&name) {
                return Err(Error::AlreadyExists(format!("type '{name}'")));
            }
            let mut attr_defs = Vec::new();
            for (aname, tname) in &attrs {
                let ty = ScalarType::parse(tname)
                    .or_else(|| {
                        // User-defined types resolve to their base.
                        state.registry.type_def(tname).ok().map(|t| t.base())
                    })
                    .ok_or_else(|| Error::schema(format!("unknown type '{tname}'")))?;
                attr_defs.push(AttributeDef::scalar(aname.clone(), ty));
            }
            let mut dim_defs = Vec::new();
            for d in &dims {
                let mut def = match d.upper {
                    Some(u) => DimensionDef::bounded(d.name.clone(), u),
                    None => DimensionDef::unbounded(d.name.clone()),
                };
                if let Some(c) = d.chunk {
                    def = def.with_chunk(c);
                }
                dim_defs.push(def);
            }
            let mut schema = ArraySchema::new(&name, attr_defs, dim_defs)?;
            if updatable {
                schema = schema.updatable()?;
            }
            state.types.insert(name.clone(), schema);
            Ok(StmtResult::Done(format!("defined type {name}")))
        }
        Stmt::CreateArray {
            name,
            type_name,
            bounds,
        } => {
            system::reject_reserved(&name)?;
            if state.arrays.contains_key(&name) {
                return Err(Error::AlreadyExists(format!("array '{name}'")));
            }
            let ty = state
                .types
                .get(&type_name)
                .ok_or_else(|| Error::not_found(format!("type '{type_name}'")))?;
            // Updatable types: bounds exclude the implicit history dim.
            let schema = if ty.is_updatable() && bounds.len() == ty.rank() - 1 {
                let mut b = bounds.clone();
                b.push(None);
                ty.instantiate(&name, &b)?
            } else {
                ty.instantiate(&name, &bounds)?
            };
            let stored = if schema.is_updatable() {
                StoredArray::Updatable(UpdatableArray::new(schema)?)
            } else {
                StoredArray::Plain(Array::new(schema))
            };
            state.arrays.insert(name.clone(), stored);
            Ok(StmtResult::Done(format!("created array {name}")))
        }
        Stmt::Enhance { array, function } => {
            let f = state.registry.enhancement(&function)?;
            match state.stored_mut(&array)? {
                StoredArray::Plain(a) => a.enhance(f)?,
                StoredArray::Updatable(u) => {
                    if f.output_names().len() == 1 {
                        u.set_clock(f)?;
                    } else {
                        return Err(Error::Unsupported(
                            "multi-dimension enhancement of an updatable array".into(),
                        ));
                    }
                }
                StoredArray::OnDisk(_) => {
                    return Err(Error::Unsupported(
                        "enhancement of a disk-backed array".into(),
                    ))
                }
            }
            Ok(StmtResult::Done(format!(
                "enhanced {array} with {function}"
            )))
        }
        Stmt::Shape { array, function } => {
            let f = state.registry.shape(&function)?;
            match state.stored_mut(&array)? {
                StoredArray::Plain(a) => a.set_shape(f)?,
                StoredArray::Updatable(_) => {
                    return Err(Error::Unsupported(
                        "shape functions on updatable arrays".into(),
                    ))
                }
                StoredArray::OnDisk(_) => {
                    return Err(Error::Unsupported(
                        "shape functions on disk-backed arrays".into(),
                    ))
                }
            }
            Ok(StmtResult::Done(format!("shaped {array} with {function}")))
        }
        Stmt::Insert {
            array,
            coords,
            values,
        } => {
            let record: Vec<Value> = values.iter().map(literal_to_value).collect();
            match state.stored_mut(&array)? {
                StoredArray::Plain(a) => a.set_cell(&coords, record)?,
                StoredArray::Updatable(u) => {
                    // No-overwrite: the insert lands at the next
                    // history version (§2.5).
                    u.commit_put(&coords, record)?;
                }
                StoredArray::OnDisk(_) => {
                    return Err(Error::Unsupported(
                        "cell insert into a disk-backed array".into(),
                    ))
                }
            }
            Ok(StmtResult::Done(format!("inserted into {array}")))
        }
        Stmt::Store { expr, into } => {
            system::reject_reserved(&into)?;
            if state.arrays.contains_key(&into) {
                return Err(Error::AlreadyExists(format!("array '{into}'")));
            }
            let ev = Evaluator {
                state: &*state,
                ctx,
                core,
            };
            let result = ev.eval_node(root, plan::optimize(expr))?;
            let renamed_schema = result.schema().renamed(&into);
            let mut out = Array::new(renamed_schema);
            for (coords, rec) in result.cells() {
                out.set_cell(&coords, rec)?;
            }
            state.arrays.insert(into.clone(), StoredArray::Plain(out));
            Ok(StmtResult::Done(format!("stored into {into}")))
        }
        Stmt::Drop { name } => {
            state
                .arrays
                .remove(&name)
                .ok_or_else(|| Error::not_found(format!("array '{name}'")))?;
            Ok(StmtResult::Done(format!("dropped {name}")))
        }
        // Read statements never reach here (dispatch routes them to the
        // read path); degrade to a typed error rather than panicking.
        other => Err(Error::eval(format!(
            "statement '{other}' is not a catalog write"
        ))),
    }
}

/// Single-cell probe against a disk-backed array: out-of-domain coords
/// are simply absent; in-domain coords cost one serial region read.
fn exists_on_disk(mgr: &StorageManager, coords: &[i64], span: &Span) -> Result<bool> {
    if !full_domain(mgr.schema())?.contains(coords) {
        return Ok(false);
    }
    let cell = HyperRect::new(coords.to_vec(), coords.to_vec())?;
    let (a, _stats) = mgr.read_region_traced(&cell, ReadOptions::serial(), span)?;
    Ok(a.cell_count() > 0)
}

/// A borrowed view over one catalog snapshot plus the execution context
/// the statement runs under — the read-side evaluation engine. The core
/// handle resolves `system.*` virtual arrays from live telemetry.
struct Evaluator<'a> {
    state: &'a CatalogState,
    ctx: &'a ExecContext,
    core: &'a DbCore,
}

impl Evaluator<'_> {
    /// Evaluates an (optimized) array expression as a child span of
    /// `parent`, recording output chunk/cell counts (or the error).
    fn eval_node(&self, parent: &Span, expr: AExpr) -> Result<Array> {
        let span = parent.child(plan::node_name(&expr), LAYER_QUERY);
        let result = self.eval_kernel(&span, expr);
        match &result {
            Ok(a) => {
                span.set_attr("chunks_out", a.chunks().len() as u64);
                span.set_attr("cells_out", a.cell_count() as u64);
            }
            Err(e) => span.set_attr("error", e.to_string()),
        }
        span.finish();
        result
    }

    /// The operator dispatch for one plan node, inside its span. Kernel
    /// calls run with `span` installed as the context's current span, so
    /// [`ExecContext::record`] lands per-operator timing in the trace.
    fn eval_kernel(&self, span: &Span, expr: AExpr) -> Result<Array> {
        let registry = &self.state.registry;
        match expr {
            AExpr::Scan(name) => {
                span.set_attr("array", name.as_str());
                if let Some(built) = system::resolve(self.core, &name) {
                    // Virtual arrays are built from live telemetry, not
                    // storage; the attr excludes them from cells-scanned
                    // accounting.
                    span.set_attr("system", true);
                    return built;
                }
                match self.state.stored(&name)? {
                    StoredArray::Plain(a) => Ok(a.clone()),
                    StoredArray::Updatable(u) => Ok(u.array().clone()),
                    StoredArray::OnDisk(mgr) => {
                        let region = full_domain(mgr.schema())?;
                        let opts = if self.ctx.threads() == 1 {
                            ReadOptions::serial()
                        } else {
                            ReadOptions::parallel_with(self.ctx.threads())
                        };
                        let (a, _stats) = mgr.read_region_traced(&region, opts, span)?;
                        Ok(a)
                    }
                }
            }
            AExpr::Subsample { input, pred } => {
                let input = self.eval_node(span, *input)?;
                let dp = plan::expr_to_dim_predicate(&pred)?;
                self.with_kernel(span, || {
                    ops::subsample_with(&input, &dp, Some(registry), self.ctx)
                })
            }
            AExpr::Filter { input, pred } => {
                let input = self.eval_node(span, *input)?;
                let pred = plan::resolve_expr(&pred, input.schema())?;
                self.with_kernel(span, || {
                    ops::filter_with(&input, &pred, Some(registry), self.ctx)
                })
            }
            AExpr::Aggregate {
                input,
                group,
                agg,
                arg,
            } => {
                let input = self.eval_node(span, *input)?;
                let groups: Vec<&str> = group.iter().map(String::as_str).collect();
                let agg_input = match arg {
                    AggArg::Star => AggInput::Star,
                    AggArg::Attr(a) => AggInput::Attr(a),
                };
                self.with_kernel(span, || {
                    ops::aggregate_with(&input, &groups, &agg, agg_input, registry, self.ctx)
                })
            }
            AExpr::Sjoin { left, right, on } => {
                let left = self.eval_node(span, *left)?;
                let right = self.eval_node(span, *right)?;
                let pairs: Vec<(&str, &str)> =
                    on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
                self.timed_serial(span, "sjoin", &left, || ops::sjoin(&left, &right, &pairs))
            }
            AExpr::Cjoin { left, right, pred } => {
                let left = self.eval_node(span, *left)?;
                let right = self.eval_node(span, *right)?;
                // Resolve the predicate against the combined schema by
                // dry-running the join on empty inputs.
                let probe = ops::cjoin(
                    &Array::from_arc(left.schema_arc()),
                    &Array::from_arc(right.schema_arc()),
                    &scidb_core::expr::Expr::lit(true),
                    None,
                )?;
                let pred = plan::resolve_expr(&pred, probe.schema())?;
                self.timed_serial(span, "cjoin", &left, || {
                    ops::cjoin(&left, &right, &pred, Some(registry))
                })
            }
            AExpr::Apply { input, name, expr } => {
                let input = self.eval_node(span, *input)?;
                let expr = plan::resolve_expr(&expr, input.schema())?;
                let ty = plan::infer_type(&expr, input.schema());
                self.with_kernel(span, || {
                    ops::apply_with(&input, &name, &expr, ty, Some(registry), self.ctx)
                })
            }
            AExpr::Project { input, attrs } => {
                let input = self.eval_node(span, *input)?;
                let keep: Vec<&str> = attrs.iter().map(String::as_str).collect();
                self.with_kernel(span, || ops::project_with(&input, &keep, self.ctx))
            }
            AExpr::Reshape {
                input,
                order,
                new_dims,
            } => {
                let input = self.eval_node(span, *input)?;
                let order: Vec<&str> = order.iter().map(String::as_str).collect();
                self.timed_serial(span, "reshape", &input, || {
                    ops::reshape(&input, &order, &new_dims)
                })
            }
            AExpr::Regrid {
                input,
                factors,
                agg,
            } => {
                let input = self.eval_node(span, *input)?;
                self.with_kernel(span, || {
                    ops::regrid_with(&input, &factors, &agg, registry, self.ctx)
                })
            }
            AExpr::Concat { left, right, dim } => {
                let left = self.eval_node(span, *left)?;
                let right = self.eval_node(span, *right)?;
                self.timed_serial(span, "concat", &left, || ops::concat(&left, &right, &dim))
            }
            AExpr::Cross { left, right } => {
                let left = self.eval_node(span, *left)?;
                let right = self.eval_node(span, *right)?;
                self.timed_serial(span, "cross", &left, || ops::cross_product(&left, &right))
            }
            AExpr::AddDim { input, name } => {
                let input = self.eval_node(span, *input)?;
                self.timed_serial(span, "add_dim", &input, || {
                    ops::add_dimension(&input, &name)
                })
            }
            AExpr::Slice { input, dim, at } => {
                let input = self.eval_node(span, *input)?;
                self.timed_serial(span, "slice", &input, || {
                    ops::remove_dimension(&input, &dim, at)
                })
            }
        }
    }

    /// Runs `f` with `span` installed as the context's current kernel span,
    /// restoring the previous one on return.
    fn with_kernel<R>(&self, span: &Span, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let prev = self.ctx.set_current_span(Some(span.clone()));
        let out = f();
        self.ctx.set_current_span(prev);
        out
    }

    /// Times a serial (non-chunk-parallel) operator through the context's
    /// single timing path ([`ExecContext::timed`]), charging the primary
    /// input's chunk and cell counts.
    fn timed_serial<R>(
        &self,
        span: &Span,
        op: &str,
        input: &Array,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        let chunks = input.chunks().len() as u64;
        let cells = input.cell_count() as u64;
        self.with_kernel(span, || {
            self.ctx.timed(op, || f().map(|r| (r, chunks, cells)))
        })
    }
}

/// A prepared statement: the parsed tree plus the canonical parse-tree
/// cache key (§2.4) it renders to. Prepare once, execute many times —
/// re-execution skips the parser, and (when the result cache is enabled)
/// query results are reused across *any* statement with the same key
/// until a catalog write invalidates them.
#[derive(Debug, Clone)]
pub struct Prepared {
    stmt: Stmt,
    key: String,
}

impl Prepared {
    fn from_stmt(stmt: Stmt) -> Self {
        Prepared {
            key: stmt.to_string(),
            stmt,
        }
    }

    /// The canonical cache key: the parse tree rendered back to canonical
    /// AQL, so differently spelled but structurally identical statements
    /// share one key.
    pub fn cache_key(&self) -> &str {
        &self.key
    }

    /// The parsed statement.
    pub fn stmt(&self) -> &Stmt {
        &self.stmt
    }
}

/// The catalog + executor: the classic owning handle.
pub struct Database {
    core: Arc<DbCore>,
    ctx: ExecContext,
    traces: Vec<TraceData>,
    use_cache: bool,
    stats: Arc<SessionStats>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.core.deregister_session(self.stats.id());
    }
}

impl Database {
    /// Creates a database with the built-in function library and a
    /// machine-sized thread budget.
    pub fn new() -> Self {
        Database::with_threads(0)
    }

    /// Creates a database with an explicit thread budget (`1` forces serial
    /// execution, `0` auto-sizes to the machine).
    pub fn with_threads(threads: usize) -> Self {
        let core = Arc::new(DbCore::new(threads));
        let stats = core.register_session();
        Database {
            core,
            ctx: ExecContext::with_threads(threads),
            traces: Vec::new(),
            use_cache: false,
            stats,
        }
    }

    /// Opens (creating if needed) a *durable* database persisted under
    /// `path`: every catalog write commits through a write-ahead log
    /// (`wal.log`) and disk-backed buckets live in a buffer-pooled page
    /// file (`pages.db`). Committed operations found in the log are
    /// replayed — with byte verification of every bucket image — before
    /// the handle is returned; a torn log tail is truncated away
    /// (ARIES-lite redo, see DESIGN.md §15).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Database::open_with_threads(path, 0)
    }

    /// [`Database::open`] with an explicit thread budget.
    pub fn open_with_threads(path: impl AsRef<Path>, threads: usize) -> Result<Self> {
        let (durable, groups) = Durability::create(path.as_ref())?;
        let core = Arc::new(DbCore::new_with(threads, Some(durable)));
        if let Some(d) = &core.durable {
            d.replay(&core, groups)?;
        }
        let stats = core.register_session();
        Ok(Database {
            core,
            ctx: ExecContext::with_threads(threads),
            traces: Vec::new(),
            use_cache: false,
            stats,
        })
    }

    /// True if this database persists through a WAL ([`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.core.durable.is_some()
    }

    /// The directory a durable database persists under.
    pub fn storage_dir(&self) -> Option<&Path> {
        self.core.durable.as_ref().map(|d| d.dir())
    }

    /// Runs one super-tile merge pass (factor × the chunk stride) over a
    /// disk-backed array, compacting small buckets (§2.8). On a durable
    /// database the pass commits as a WAL group and is re-run (and
    /// byte-verified) on recovery.
    pub fn merge_on_disk(&mut self, name: &str, factor: i64) -> Result<MergeStats> {
        self.core.merge_on_disk(name, factor)
    }

    /// This handle's live execution counters (its `system.sessions` row).
    pub fn session_stats(&self) -> Arc<SessionStats> {
        Arc::clone(&self.stats)
    }

    /// A cheaply cloneable handle to the same catalog, registry, and
    /// slow-query log — the entry point for serving layers.
    pub fn share(&self) -> SharedDatabase {
        SharedDatabase {
            core: Arc::clone(&self.core),
        }
    }

    /// The execution context statements run under.
    pub fn exec_context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Replaces the thread budget. Traces and metrics accumulated so far
    /// are preserved (they describe completed statements and remain
    /// valid), as is the slow-query log; sessions opened later inherit
    /// the new budget.
    pub fn set_threads(&mut self, threads: usize) {
        self.core.threads.store(threads, Ordering::SeqCst);
        self.ctx = ExecContext::with_threads(threads);
    }

    /// Enables or disables the canonical-key result cache for query
    /// statements executed through this handle (disabled by default; the
    /// serving layer turns it on per session).
    pub fn set_result_cache(&mut self, enabled: bool) {
        self.use_cache = enabled;
    }

    /// Per-operator metrics for the statements executed since the last
    /// [`run`](Self::run)/[`query`](Self::query) began — a thin view
    /// derived from the retained [`traces`](Self::traces).
    pub fn metrics(&self) -> QueryMetrics {
        QueryMetrics::from_traces(self.traces.iter())
    }

    /// Traces of the statements executed since the last
    /// [`run`](Self::run)/[`query`](Self::query) began, in execution order.
    pub fn traces(&self) -> &[TraceData] {
        &self.traces
    }

    /// The trace of the most recently executed statement, if any.
    pub fn last_trace(&self) -> Option<&TraceData> {
        self.traces.last()
    }

    /// The slow-query log (process-lifetime: survives `run`/`query`
    /// resets, shared with every handle to this database).
    pub fn slow_log(&self) -> SlowLogRef<'_> {
        self.core.slow_log.read()
    }

    /// Mutable slow-query log access (reconfigure threshold/capacity).
    pub fn slow_log_mut(&mut self) -> SlowLogRefMut<'_> {
        self.core.slow_log.write()
    }

    /// Retained slow-query entries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowEntry> {
        self.core.slow_log.read().entries().to_vec()
    }

    /// Statements with wall time at or above `threshold` are retained in
    /// the slow-query log.
    pub fn set_slow_query_threshold(&mut self, threshold: Duration) {
        self.core.slow_log.write().set_threshold(threshold);
    }

    /// Opens an owning [`Session`] over the same shared core. The session
    /// gets its own execution context (inheriting this database's thread
    /// budget) and accumulates traces across statements instead of
    /// resetting them per call. This handle's own accumulated
    /// traces/metrics are reset, as before the serving-layer redesign.
    pub fn session(&mut self) -> Session {
        self.ctx.take_metrics();
        self.traces.clear();
        Session::over(Arc::clone(&self.core))
    }

    /// The function registry (register UDFs, aggregates, enhancements,
    /// shapes here — §2.3).
    pub fn registry(&self) -> RegistryRef<'_> {
        OrderedRwLockReadGuard::map(self.core.state.read(), |s| &s.registry)
    }

    /// Mutable registry access.
    pub fn registry_mut(&mut self) -> RegistryRefMut<'_> {
        self.core.touch();
        OrderedRwLockWriteGuard::map(self.core.state.write(), |s| &mut s.registry)
    }

    /// Looks up a stored array (shared read access; release the guard
    /// before executing further statements).
    pub fn array(&self, name: &str) -> Result<ArrayRef<'_>> {
        self.core.array_guard(name)
    }

    /// Mutable access to a stored array.
    pub fn array_mut(&mut self, name: &str) -> Result<ArrayRefMut<'_>> {
        self.core.array_guard_mut(name)
    }

    /// Registers an existing array under a name (bulk-load path used by
    /// examples and benches).
    pub fn put_array(&mut self, name: &str, array: Array) -> Result<()> {
        self.core.put_array(name, array)
    }

    /// Registers an array as a disk-backed instance: its chunks are
    /// compressed into storage-manager buckets (in-memory disk, default
    /// codec policy) and subsequent scans stream through
    /// [`StorageManager::read_region_traced`], nesting storage spans under
    /// the query's trace. All dimensions must be bounded.
    pub fn put_array_on_disk(&mut self, name: &str, array: &Array) -> Result<()> {
        self.core.put_array_on_disk(name, array)
    }

    /// Array names in the catalog (sorted).
    pub fn array_names(&self) -> Vec<String> {
        self.core.array_names()
    }

    /// Parses, plans, and executes a script; returns one result per
    /// statement. Resets [`traces`](Self::traces)/[`metrics`](Self::metrics)
    /// first.
    pub fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        self.ctx.take_metrics();
        self.traces.clear();
        let stmts = parser::parse(text)?;
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Runs a single-statement query expecting an array result. Resets
    /// [`traces`](Self::traces)/[`metrics`](Self::metrics) first.
    pub fn query(&mut self, text: &str) -> Result<Array> {
        self.ctx.take_metrics();
        self.traces.clear();
        let stmt = parser::parse_one(text)?;
        self.execute(stmt)?.into_array()
    }

    /// Executes one parsed statement under a fresh trace.
    pub fn execute(&mut self, stmt: Stmt) -> Result<StmtResult> {
        let (result, trace) = self
            .core
            .execute_stmt(stmt, &self.ctx, self.use_cache, &self.stats);
        self.traces.push(trace);
        result
    }

    /// Parses a single statement into a reusable [`Prepared`] handle
    /// carrying the canonical cache key.
    pub fn prepare(&self, text: &str) -> Result<Prepared> {
        Ok(Prepared::from_stmt(parser::parse_one(text)?))
    }

    /// Executes a prepared statement (without resetting traces), skipping
    /// the parser.
    pub fn execute_prepared(&mut self, prepared: &Prepared) -> Result<StmtResult> {
        self.execute(prepared.stmt.clone())
    }

    /// Installs a wall-clock enhancement helper (convenience for §2.5
    /// examples).
    pub fn register_clock(&mut self, name: &str, base: i64, step: i64) -> Result<()> {
        self.registry_mut()
            .register_enhancement(Arc::new(WallClock::new(name, base, step)))
    }
}

/// A cheaply cloneable, thread-safe handle to one database core. Clones
/// share the catalog, registry, result cache, and slow-query log; each
/// [`session`](Self::session) gets its own execution context and trace
/// accumulation, so any number of sessions may execute concurrently.
#[derive(Clone)]
pub struct SharedDatabase {
    core: Arc<DbCore>,
}

impl SharedDatabase {
    /// Opens an owning [`Session`] with a fresh execution context
    /// inheriting the database's configured thread budget.
    pub fn session(&self) -> Session {
        Session::over(Arc::clone(&self.core))
    }

    /// Registers an existing array under a name (the serving layer's
    /// bulk-load path).
    pub fn put_array(&self, name: &str, array: Array) -> Result<()> {
        self.core.put_array(name, array)
    }

    /// Registers an array as a disk-backed instance (see
    /// [`Database::put_array_on_disk`]).
    pub fn put_array_on_disk(&self, name: &str, array: &Array) -> Result<()> {
        self.core.put_array_on_disk(name, array)
    }

    /// Array names in the catalog (sorted).
    pub fn array_names(&self) -> Vec<String> {
        self.core.array_names()
    }

    /// An owned clone of a stored array's in-memory view (plain arrays
    /// as-is, updatable arrays including the history dimension);
    /// disk-backed arrays have no resident view and must be scanned.
    pub fn snapshot(&self, name: &str) -> Result<Array> {
        let guard = self.core.array_guard(name)?;
        guard
            .as_array()
            .cloned()
            .ok_or_else(|| Error::Unsupported(format!("snapshot of disk-backed array '{name}'")))
    }

    /// Retained slow-query entries, oldest first (shared log).
    pub fn slow_queries(&self) -> Vec<SlowEntry> {
        self.core.slow_log.read().entries().to_vec()
    }

    /// Execution sessions currently registered on the shared core.
    pub fn session_count(&self) -> usize {
        self.core.sessions.read().len()
    }

    /// Statements with wall time at or above `threshold` are retained in
    /// the shared slow-query log.
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        self.core.slow_log.write().set_threshold(threshold);
    }
}

/// The full (1-based) stored domain of a disk-backed schema; errors on
/// unbounded dimensions (rejected at `put_array_on_disk` time).
fn full_domain(schema: &ArraySchema) -> Result<HyperRect> {
    let mut low = Vec::with_capacity(schema.rank());
    let mut high = Vec::with_capacity(schema.rank());
    for d in schema.dims() {
        let upper = d.upper.ok_or_else(|| {
            Error::Unsupported(format!("scan of unbounded on-disk dimension '{}'", d.name))
        })?;
        low.push(1);
        high.push(upper);
    }
    HyperRect::new(low, high)
}

/// An owning statement-execution handle over a shared database core.
/// Unlike `Database::run`/`query`, a session accumulates traces (and
/// therefore metrics) across all statements it executes; drain them with
/// [`take_metrics`](Self::take_metrics). Each session owns its execution
/// context, so sessions on one database execute concurrently without
/// sharing per-statement state.
pub struct Session {
    core: Arc<DbCore>,
    ctx: ExecContext,
    traces: Vec<TraceData>,
    use_cache: bool,
    stats: Arc<SessionStats>,
}

impl Drop for Session {
    fn drop(&mut self) {
        self.core.deregister_session(self.stats.id());
    }
}

impl Session {
    fn over(core: Arc<DbCore>) -> Self {
        let threads = core.threads.load(Ordering::SeqCst);
        let stats = core.register_session();
        Session {
            core,
            ctx: ExecContext::with_threads(threads),
            traces: Vec::new(),
            use_cache: false,
            stats,
        }
    }

    /// The session's execution context (thread budget).
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// The database-wide session id (also the `sid` of this session's
    /// `system.sessions` row).
    pub fn id(&self) -> u64 {
        self.stats.id()
    }

    /// This session's live execution counters; the serving layer adds
    /// admission queue-wait and timeout attribution through this handle.
    pub fn session_stats(&self) -> Arc<SessionStats> {
        Arc::clone(&self.stats)
    }

    /// Enables or disables the shared canonical-key result cache for
    /// query statements executed through this session.
    pub fn set_result_cache(&mut self, enabled: bool) {
        self.use_cache = enabled;
    }

    /// Parses, plans, and executes a script without resetting traces.
    pub fn run(&mut self, text: &str) -> Result<Vec<StmtResult>> {
        let stmts = parser::parse(text)?;
        stmts.into_iter().map(|s| self.execute(s)).collect()
    }

    /// Runs a single-statement query expecting an array result, without
    /// resetting traces.
    pub fn query(&mut self, text: &str) -> Result<Array> {
        let stmt = parser::parse_one(text)?;
        self.execute(stmt)?.into_array()
    }

    /// Executes one parsed statement.
    pub fn execute(&mut self, stmt: Stmt) -> Result<StmtResult> {
        let (result, trace) = self
            .core
            .execute_stmt(stmt, &self.ctx, self.use_cache, &self.stats);
        self.traces.push(trace);
        result
    }

    /// Parses a single statement into a reusable [`Prepared`] handle.
    pub fn prepare(&self, text: &str) -> Result<Prepared> {
        Ok(Prepared::from_stmt(parser::parse_one(text)?))
    }

    /// Executes a prepared statement, skipping the parser.
    pub fn execute_prepared(&mut self, prepared: &Prepared) -> Result<StmtResult> {
        self.execute(prepared.stmt.clone())
    }

    /// Traces of the statements executed by this session so far.
    pub fn traces(&self) -> &[TraceData] {
        &self.traces
    }

    /// The trace of the session's most recently executed statement.
    pub fn last_trace(&self) -> Option<&TraceData> {
        self.traces.last()
    }

    /// Snapshot of the metrics accumulated so far in this session, derived
    /// from its retained traces.
    pub fn metrics(&self) -> QueryMetrics {
        QueryMetrics::from_traces(self.traces.iter())
    }

    /// Drains the session's retained traces, returning the metrics view.
    pub fn take_metrics(&mut self) -> QueryMetrics {
        let m = QueryMetrics::from_traces(self.traces.iter());
        self.traces.clear();
        self.ctx.take_metrics();
        m
    }
}

fn literal_to_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::from(*v),
        Literal::Float(v) => Value::from(*v),
        Literal::Str(s) => Value::from(s.clone()),
        Literal::Bool(b) => Value::from(*b),
        Literal::Null => Value::Null,
        Literal::Uncertain(m, s) => Value::from(Uncertain::new(*m, *s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_h() -> Database {
        let mut db = Database::new();
        db.run(
            "define H (v = int) (X = 1:2, Y = 1:2);
             create A as H [2, 2];
             insert into A[1, 1] values (1);
             insert into A[2, 1] values (3);
             insert into A[1, 2] values (2);
             insert into A[2, 2] values (5);",
        )
        .unwrap();
        db
    }

    /// A serial database with a 4×4 array stored both in memory (`Tmp`)
    /// and on disk (`D`).
    fn disk_db() -> Database {
        let mut db = Database::with_threads(1);
        db.run("define H (v = int) (X = 1:4, Y = 1:4); create Tmp as H [4, 4];")
            .unwrap();
        for x in 1..=4 {
            for y in 1..=4 {
                db.run(&format!(
                    "insert into Tmp[{x}, {y}] values ({})",
                    x * 10 + y
                ))
                .unwrap();
            }
        }
        let arr = match &*db.array("Tmp").unwrap() {
            StoredArray::Plain(a) => a.clone(),
            other => panic!("expected plain, got {other:?}"),
        };
        db.put_array_on_disk("D", &arr).unwrap();
        db
    }

    #[test]
    fn define_create_insert_scan() {
        let mut db = db_with_h();
        let a = db.query("scan(A)").unwrap();
        assert_eq!(a.cell_count(), 4);
        assert_eq!(a.get_cell(&[2, 2]), Some(vec![Value::from(5i64)]));
    }

    #[test]
    fn figure2_through_aql() {
        let mut db = db_with_h();
        let out = db.query("Aggregate(A, {Y}, Sum(*))").unwrap();
        assert_eq!(out.get_cell(&[1]), Some(vec![Value::from(4i64)]));
        assert_eq!(out.get_cell(&[2]), Some(vec![Value::from(7i64)]));
    }

    #[test]
    fn subsample_with_even_and_legality() {
        let mut db = db_with_h();
        let out = db.query("Subsample(A, even(X))").unwrap();
        assert_eq!(out.cell_count(), 2);
        // The paper's illegal predicate errors with a helpful message.
        let err = db.query("Subsample(A, X = Y)").unwrap_err();
        assert!(err.to_string().contains("not legal"), "{err}");
    }

    #[test]
    fn filter_apply_project_pipeline() {
        let mut db = db_with_h();
        let out = db
            .query("project(apply(filter(A, v > 2), dbl, v * 2), dbl)")
            .unwrap();
        assert_eq!(out.schema().attrs().len(), 1);
        assert_eq!(out.get_cell(&[2, 2]), Some(vec![Value::from(10i64)]));
        // Filtered-out cells are NULL.
        assert_eq!(out.get_cell(&[1, 1]), Some(vec![Value::Null]));
    }

    #[test]
    fn joins_through_aql() {
        let mut db = Database::new();
        db.run(
            "define T (val = int) (i = 1:2);
             create A as T [2]; create B as T [2];
             insert into A[1] values (1); insert into A[2] values (2);
             insert into B[1] values (1); insert into B[2] values (2);",
        )
        .unwrap();
        let s = db.query("sjoin(A, B, A.i = B.i)").unwrap();
        assert_eq!(s.rank(), 1);
        assert_eq!(s.cell_count(), 2);
        let c = db.query("cjoin(A, B, A.val = B.val_r)").unwrap();
        assert_eq!(c.rank(), 2);
        assert_eq!(
            c.get_cell(&[1, 1]),
            Some(vec![Value::from(1i64), Value::from(1i64)])
        );
        assert_eq!(c.get_cell(&[1, 2]), Some(vec![Value::Null, Value::Null]));
    }

    #[test]
    fn store_and_drop() {
        let mut db = db_with_h();
        db.run("store filter(A, v > 2) into Big").unwrap();
        let big = db.query("scan(Big)").unwrap();
        assert_eq!(big.schema().name(), "Big");
        assert_eq!(big.cell_count(), 4);
        db.run("drop array Big").unwrap();
        assert!(db.query("scan(Big)").is_err());
        assert!(db.run("drop array Big").is_err());
    }

    #[test]
    fn updatable_array_no_overwrite_via_aql() {
        let mut db = Database::new();
        db.run(
            "define updatable R (v = float) (I = 1:4, J = 1:4);
             create M as R [4, 4];
             insert into M[2, 2] values (1.0);
             insert into M[2, 2] values (9.0);",
        )
        .unwrap();
        match &*db.array("M").unwrap() {
            StoredArray::Updatable(u) => {
                assert_eq!(u.current_history(), 2);
                assert_eq!(u.get_at(&[2, 2], 1), Some(vec![Value::from(1.0)]));
                assert_eq!(u.get_latest(&[2, 2]), Some(vec![Value::from(9.0)]));
            }
            other => panic!("expected updatable, got {other:?}"),
        }
        // Scan exposes the history dimension.
        let scan = db.query("scan(M)").unwrap();
        assert_eq!(scan.rank(), 3);
        assert_eq!(scan.cell_count(), 2);
    }

    #[test]
    fn exists_probe() {
        let mut db = db_with_h();
        let r = db.run("exists(A, 2, 2); exists(A, 9, 9)").unwrap();
        assert!(matches!(r[0], StmtResult::Bool(true)));
        assert!(matches!(r[1], StmtResult::Bool(false)));
    }

    #[test]
    fn regrid_and_reshape_via_aql() {
        let mut db = db_with_h();
        let rg = db.query("regrid(A, [2, 2], sum)").unwrap();
        assert_eq!(rg.cell_count(), 1);
        assert_eq!(rg.get_cell(&[1, 1]), Some(vec![Value::from(11i64)]));
        let rs = db.query("reshape(A, [X, Y], [k = 1:4])").unwrap();
        assert_eq!(rs.rank(), 1);
        assert_eq!(rs.cell_count(), 4);
    }

    #[test]
    fn unknown_names_error() {
        let mut db = Database::new();
        assert!(db.query("scan(nope)").is_err());
        assert!(db.run("create X as NoType [2]").is_err());
        assert!(db.run("define T (v = blob) (X = 1:2)").is_err());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let mut db = db_with_h();
        assert!(db.run("define H (v = int) (X = 1:2)").is_err());
        assert!(db.run("create A as H [2, 2]").is_err());
    }

    #[test]
    fn stmt_result_typed_accessors() {
        let mut db = db_with_h();
        let r = db.run("scan(A)").unwrap().pop().unwrap();
        assert_eq!(r.kind(), "array");
        assert!(r.as_bool().is_none());
        assert!(r.as_explain().is_none());
        assert_eq!(r.as_array().unwrap().cell_count(), 4);
        assert!(r.expect_done().is_err());

        let r = db.run("exists(A, 1, 1)").unwrap().pop().unwrap();
        assert_eq!(r.as_bool(), Some(true));
        assert!(r.as_array().is_none());
        assert!(r.into_array().is_err());

        let r = db.run("drop array A").unwrap().pop().unwrap();
        assert_eq!(r.kind(), "acknowledgement");
        assert!(r.expect_done().unwrap().contains("dropped"));
    }

    #[test]
    fn into_array_error_names_result_kind() {
        let mut db = db_with_h();
        let err = db
            .run("exists(A, 1, 1)")
            .unwrap()
            .pop()
            .unwrap()
            .into_array()
            .unwrap_err();
        assert!(err.to_string().contains("bool result"), "{err}");
    }

    #[test]
    fn query_metrics_report_per_operator() {
        let mut db = db_with_h();
        db.query("aggregate(filter(A, v > 1), {Y}, sum(*))")
            .unwrap();
        let m = db.metrics();
        let ops: Vec<&str> = m.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["filter", "aggregate"]);
        assert!(m.ops[0].cells_touched == 4);
        assert!(m.chunks_scanned() >= 2);
        // The next query resets the metrics.
        db.query("scan(A)").unwrap();
        assert!(db.metrics().ops.is_empty());
    }

    #[test]
    fn parallel_database_matches_serial() {
        let script = "define H (v = int) (X = 1:8, Y = 1:8);
             create A as H [8, 8];";
        let mut serial = Database::with_threads(1);
        let mut parallel = Database::with_threads(4);
        serial.run(script).unwrap();
        parallel.run(script).unwrap();
        for x in 1..=8 {
            for y in 1..=8 {
                let ins = format!("insert into A[{x}, {y}] values ({})", x * 10 + y);
                serial.run(&ins).unwrap();
                parallel.run(&ins).unwrap();
            }
        }
        for q in [
            "filter(A, v > 30)",
            "subsample(A, even(X))",
            "project(apply(A, w, v * 2), w)",
            "aggregate(A, {X}, avg(v))",
            "regrid(A, [2, 2], sum)",
        ] {
            let a = serial.query(q).unwrap();
            let b = parallel.query(q).unwrap();
            assert_eq!(a, b, "{q} must be identical at any thread count");
        }
    }

    #[test]
    fn session_accumulates_metrics_across_statements() {
        let mut db = db_with_h();
        let mut session = db.session();
        assert!(session.ctx().threads() >= 1);
        session.query("filter(A, v > 1)").unwrap();
        session.query("aggregate(A, {Y}, sum(*))").unwrap();
        let m = session.metrics();
        let ops: Vec<&str> = m.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["filter", "aggregate"]);
        // Draining empties the sink; subsequent statements start fresh.
        assert_eq!(session.take_metrics().ops.len(), 2);
        assert!(session.metrics().ops.is_empty());
        let r = session.run("exists(A, 1, 1)").unwrap().pop().unwrap();
        assert_eq!(r.as_bool(), Some(true));
    }

    #[test]
    fn user_defined_type_in_define() {
        let mut db = Database::new();
        db.registry_mut()
            .register_type(scidb_core::udf::TypeDef::new(
                "declination",
                ScalarType::Float64,
            ))
            .unwrap();
        db.run("define S (dec = declination) (i = 1:4); create D as S [4]")
            .unwrap();
        db.run("insert into D[1] values (45.0)").unwrap();
        let out = db.query("scan(D)").unwrap();
        assert_eq!(out.get_f64(0, &[1]), Some(45.0));
    }

    #[test]
    fn on_disk_scan_matches_memory() {
        let mut db = disk_db();
        let mem = db.query("scan(Tmp)").unwrap();
        let disk = db.query("scan(D)").unwrap();
        assert_eq!(mem.cell_count(), disk.cell_count());
        for x in 1..=4 {
            for y in 1..=4 {
                assert_eq!(mem.get_cell(&[x, y]), disk.get_cell(&[x, y]));
            }
        }
        // Probes hit the storage layer; out-of-domain coords are absent.
        let r = db.run("exists(D, 2, 2); exists(D, 9, 9)").unwrap();
        assert!(matches!(r[0], StmtResult::Bool(true)));
        assert!(matches!(r[1], StmtResult::Bool(false)));
    }

    #[test]
    fn on_disk_arrays_reject_mutation_and_duplicates() {
        let mut db = disk_db();
        assert!(db.run("insert into D[1, 1] values (0)").is_err());
        let arr = match &*db.array("Tmp").unwrap() {
            StoredArray::Plain(a) => a.clone(),
            other => panic!("expected plain, got {other:?}"),
        };
        assert!(db.put_array_on_disk("D", &arr).is_err());
        // Unbounded dimensions cannot be fully scanned, so they are
        // rejected at registration time.
        let mut unbounded = Database::new();
        unbounded
            .run("define U (v = int) (X = 1:4, Y); create Ub as U [4, *]")
            .unwrap();
        let arr = match &*unbounded.array("Ub").unwrap() {
            StoredArray::Plain(a) => a.clone(),
            other => panic!("expected plain, got {other:?}"),
        };
        assert!(unbounded.put_array_on_disk("UbDisk", &arr).is_err());
    }

    #[test]
    fn explain_analyze_renders_cross_layer_span_tree() {
        let mut db = disk_db();
        let report = db
            .run("explain analyze aggregate(filter(scan(D), v > 20), {Y}, sum(*))")
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(report.kind(), "explain");
        let text = report.as_explain().unwrap().to_string();
        // The user-facing report spans all three layers and carries wall
        // times and kernel events.
        for needle in [
            "statement [query]",
            "aggregate [query]",
            "filter [query]",
            "scan [query]",
            "read_region [storage]",
            "wall=",
            "· kernel",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }

        // Golden rendering: with times suppressed the tree is byte-stable.
        // bytes_read comes from an independent read of the same region.
        let bytes_read = match &*db.array("D").unwrap() {
            StoredArray::OnDisk(mgr) => {
                let region = HyperRect::new(vec![1, 1], vec![4, 4]).unwrap();
                let (_, stats) = mgr.read_region(&region, ReadOptions::serial()).unwrap();
                stats.bytes_read
            }
            other => panic!("expected on-disk, got {other:?}"),
        };
        let expected = format!(
            "statement [query] aql=\"aggregate(filter(scan(D), (v > 20)), {{Y}}, sum(*))\"\n\
             └─ aggregate [query] chunks_out=1 cells_out=4\n   \
             └─ filter [query] chunks_out=1 cells_out=16\n      \
             └─ scan [query] array=\"D\" chunks_out=1 cells_out=16\n         \
             └─ read_region [storage] buckets=1 bytes_read={bytes_read} \
             cells_decoded=16 cells_returned=16 parallel=false\n"
        );
        let got = db.last_trace().unwrap().render_tree(&RenderOptions {
            times: false,
            events: false,
        });
        assert_eq!(got, expected);

        // Per-layer self-time attribution covers query, core (kernel
        // events), and storage.
        let layers: Vec<&str> = db
            .last_trace()
            .unwrap()
            .layer_totals()
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        for layer in ["query", "core", "storage"] {
            assert!(
                layers.contains(&layer),
                "missing layer {layer} in {layers:?}"
            );
        }
    }

    #[test]
    fn explain_analyze_unwraps_nesting_and_propagates_errors() {
        let mut db = db_with_h();
        let r = db
            .run("explain analyze explain analyze scan(A)")
            .unwrap()
            .pop()
            .unwrap();
        assert!(r.as_explain().unwrap().contains("scan [query]"));
        // Errors in the traced statement surface as errors, and the failed
        // trace is still retained with an error attribute.
        assert!(db.run("explain analyze scan(nope)").is_err());
        let root = &db.last_trace().unwrap().spans[0];
        assert!(root.attr("error").is_some());
    }

    #[test]
    fn slow_query_log_threshold_and_capture() {
        let mut db = db_with_h();
        assert!(db.slow_queries().is_empty());
        db.set_slow_query_threshold(Duration::ZERO);
        db.query("filter(A, v > 1)").unwrap();
        assert_eq!(db.slow_queries().len(), 1);
        let entries = db.slow_queries();
        let e = &entries[0];
        assert_eq!(e.label, "filter(scan(A), (v > 1))");
        assert!(e.trace.spans.iter().any(|s| s.name == "filter"));
        // Raising the threshold stops retention; the log itself survives
        // run/query resets.
        db.set_slow_query_threshold(Duration::from_secs(3600));
        db.query("scan(A)").unwrap();
        assert_eq!(db.slow_queries().len(), 1);
    }

    #[test]
    fn traces_capture_statement_spans_and_reset_per_run() {
        let mut db = db_with_h();
        db.run("scan(A); exists(A, 1, 1)").unwrap();
        assert_eq!(db.traces().len(), 2);
        let aql: Vec<&str> = db
            .traces()
            .iter()
            .filter_map(|t| t.spans[0].attr("aql").and_then(|v| v.as_str()))
            .collect();
        assert_eq!(aql, ["scan(A)", "exists(A, 1, 1)"]);
        db.run("scan(A)").unwrap();
        assert_eq!(db.traces().len(), 1);
    }

    #[test]
    fn set_threads_preserves_traces_and_slow_log() {
        // Regression: set_threads used to drop every accumulated trace
        // (and with them the metrics view) as a side effect of replacing
        // the execution context.
        let mut db = db_with_h();
        db.set_slow_query_threshold(Duration::ZERO);
        db.query("filter(A, v > 1)").unwrap();
        assert_eq!(db.traces().len(), 1);
        db.set_threads(2);
        assert_eq!(db.traces().len(), 1, "traces must survive set_threads");
        assert!(!db.metrics().ops.is_empty());
        assert_eq!(db.slow_queries().len(), 1);
        // The new budget is live for subsequent statements and inherited
        // by new sessions.
        assert!(db.exec_context().threads() >= 2);
        assert!(db.session().ctx().threads() >= 2);
    }

    #[test]
    fn prepared_statements_expose_canonical_key_and_reexecute() {
        let mut db = db_with_h();
        // Differently spelled, structurally identical statements share
        // one canonical key.
        let p1 = db.prepare("Filter(A, v > 1)").unwrap();
        let p2 = db.prepare("filter(  A ,   v>1 )").unwrap();
        assert_eq!(p1.cache_key(), "filter(scan(A), (v > 1))");
        assert_eq!(p1.cache_key(), p2.cache_key());
        assert!(matches!(p1.stmt(), Stmt::Query(_)));
        let a = db.execute_prepared(&p1).unwrap().into_array().unwrap();
        let b = db.execute_prepared(&p2).unwrap().into_array().unwrap();
        assert_eq!(a, b);
        // Prepared handles survive catalog changes and re-execute
        // against the current data.
        db.run("insert into A[1, 1] values (7)").unwrap();
        let c = db.execute_prepared(&p1).unwrap().into_array().unwrap();
        assert_eq!(c.get_cell(&[1, 1]), Some(vec![Value::from(7i64)]));
    }

    #[test]
    fn result_cache_hits_and_invalidates_on_writes() {
        let mut db = db_with_h();
        db.set_result_cache(true);
        let p = db.prepare("filter(A, v > 1)").unwrap();
        let first = db.execute_prepared(&p).unwrap().into_array().unwrap();
        assert!(db.last_trace().unwrap().spans[0]
            .attr("cache_hit")
            .is_none());
        let second = db.execute_prepared(&p).unwrap().into_array().unwrap();
        assert_eq!(first, second);
        assert!(
            db.last_trace().unwrap().spans[0]
                .attr("cache_hit")
                .is_some(),
            "second execution must be served from the result cache"
        );
        // Any catalog write invalidates: the next execution re-evaluates
        // and sees the new data.
        db.execute(parser::parse_one("insert into A[1, 1] values (9)").unwrap())
            .unwrap();
        let third = db.execute_prepared(&p).unwrap().into_array().unwrap();
        assert!(db.last_trace().unwrap().spans[0]
            .attr("cache_hit")
            .is_none());
        assert_eq!(third.get_cell(&[1, 1]), Some(vec![Value::from(9i64)]));
    }

    #[test]
    fn shared_database_sessions_are_isolated() {
        let db = db_with_h();
        let shared = db.share();
        let mut s1 = shared.session();
        let mut s2 = shared.session();
        s1.query("filter(A, v > 1)").unwrap();
        s2.query("scan(A)").unwrap();
        s2.query("scan(A)").unwrap();
        // Traces/metrics accumulate per session, not on the shared core.
        assert_eq!(s1.traces().len(), 1);
        assert_eq!(s2.traces().len(), 2);
        let m1 = s1.metrics();
        let ops1: Vec<&str> = m1.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops1, ["filter"]);
        // Writes through one session are visible to the other.
        s1.run("store filter(A, v > 2) into Big").unwrap();
        assert_eq!(s2.query("scan(Big)").unwrap().cell_count(), 4);
        assert_eq!(shared.array_names(), vec!["A", "Big"]);
    }

    #[test]
    fn shared_database_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<SharedDatabase>();
        assert_send::<Session>();
    }

    use scidb_core::value::Scalar;

    #[test]
    fn system_metrics_is_a_queryable_array() {
        let mut db = db_with_h();
        db.query("scan(A)").unwrap();
        let m = db.query("scan(system.metrics)").unwrap();
        assert!(m.cell_count() > 0);
        let names: Vec<String> = m
            .cells()
            .map(|(_, rec)| match &rec[0] {
                Value::Scalar(Scalar::String(s)) => s.clone(),
                other => panic!("name must be a string, got {other:?}"),
            })
            .collect();
        assert!(
            names.iter().any(|n| n == "scidb.query.statements"),
            "{names:?}"
        );
        // The rows flow through the ordinary kernels: filter on an
        // attribute, then count the survivors with aggregate.
        let counters = db.query("filter(system.metrics, value >= 0)").unwrap();
        assert!(counters.cell_count() > 0, "counter/gauge rows survive");
        let total = db.query("aggregate(system.metrics, {}, count(*))").unwrap();
        assert!(total.cell_count() > 0);
    }

    #[test]
    fn system_sessions_tracks_live_handles() {
        let db = db_with_h();
        let shared = db.share();
        let mut s = shared.session();
        s.query("scan(A)").unwrap();
        s.query("scan(A)").unwrap();
        let rows = s.query("scan(system.sessions)").unwrap();
        // The Database handle registers a session too.
        assert_eq!(rows.cell_count(), 2);
        let sid = s.id();
        let mine = rows
            .cells()
            .find(|(_, rec)| rec[0] == Value::from(sid as i64))
            .expect("own row");
        // statements counts this very scan as the third statement.
        assert_eq!(mine.1[1], Value::from(3i64));
        // Dropping a session removes its row.
        let other_sid = {
            let mut other = shared.session();
            other.query("scan(A)").unwrap();
            other.id()
        };
        let rows = s.query("scan(system.sessions)").unwrap();
        assert!(
            !rows
                .cells()
                .any(|(_, rec)| rec[0] == Value::from(other_sid as i64)),
            "dropped sessions deregister"
        );
    }

    #[test]
    fn system_slow_queries_carries_session_and_fingerprint() {
        let mut db = db_with_h();
        db.set_slow_query_threshold(Duration::ZERO);
        db.query("filter(A, v > 1)").unwrap();
        let rows = db.query("scan(system.slow_queries)").unwrap();
        let (_, rec) = rows
            .cells()
            .find(|(_, rec)| rec[2] == Value::from("filter(scan(A), (v > 1))".to_string()))
            .expect("slow entry row");
        assert_eq!(rec[0], Value::from(db.session_stats().id() as i64));
        assert_eq!(
            rec[1],
            Value::from(scidb_obs::fingerprint("filter(scan(A), (v > 1))"))
        );
    }

    #[test]
    fn system_locks_and_result_cache_render() {
        let mut db = db_with_h();
        db.set_result_cache(true);
        db.query("scan(A)").unwrap();
        db.query("scan(A)").unwrap();
        let locks = db.query("scan(system.locks)").unwrap();
        // One row per registered rank plus the `total` witness row.
        assert_eq!(locks.cell_count(), scidb_obs::sync::ranks::ALL.len() + 1);
        let cache = db.query("scan(system.result_cache)").unwrap();
        assert_eq!(cache.cell_count(), 1);
        let (_, rec) = cache.cells().next().unwrap();
        assert!(
            matches!(rec[1], Value::Scalar(Scalar::Int64(n)) if n >= 1),
            "the cached scan(A) entry is visible: {rec:?}"
        );
    }

    #[test]
    fn system_namespace_is_reserved_and_uncached() {
        let mut db = db_with_h();
        for stmt in ["create system.x as H [4, 4]", "store scan(A) into system.y"] {
            let err = db.run(stmt).unwrap_err();
            assert!(matches!(err, Error::Schema(_)), "{stmt}: {err:?}");
        }
        let copy = db.query("scan(A)").unwrap();
        let err = db.put_array("system.z", copy);
        assert!(matches!(err, Err(Error::Schema(_))), "{err:?}");
        // Unknown system arrays are a not-found error, not a catalog miss.
        let err = db.query("scan(system.nope)").unwrap_err();
        assert!(matches!(err, Error::NotFound(_)), "{err:?}");
        // system.* scans bypass the result cache even when it is enabled:
        // re-scanning metrics never reports a cache hit.
        db.set_result_cache(true);
        db.query("scan(system.metrics)").unwrap();
        db.query("scan(system.metrics)").unwrap();
        assert!(
            db.last_trace().unwrap().spans[0]
                .attr("cache_hit")
                .is_none(),
            "system scans must not be served from the result cache"
        );
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scidb_durable_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Cell-level canonical form for whole-array equality checks.
    fn canon(a: &Array) -> Vec<(Vec<i64>, Vec<Value>)> {
        a.cells().collect()
    }

    #[test]
    fn durable_reopen_replays_committed_state() {
        let dir = durable_dir("reopen");
        let before = {
            let mut db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            db.run("define H (v = int) (X = 1:2, Y = 1:2)").unwrap();
            db.run("create A as H [2, 2]").unwrap();
            db.run("insert into A[1, 1] values (1)").unwrap();
            db.run("insert into A[2, 2] values (4)").unwrap();
            db.run("define updatable R (v = int) (I = 1:2, J = 1:2)")
                .unwrap();
            db.run("create U as R [2, 2]").unwrap();
            db.run("insert into U[1, 2] values (7)").unwrap();
            db.run("insert into U[1, 2] values (8)").unwrap();
            db.run("store filter(scan(A), (v > 1)) into B").unwrap();
            // Direct-API paths: put_array, put_array_on_disk, merge.
            let arr = db.query("scan(A)").unwrap();
            db.put_array("P", arr.clone()).unwrap();
            db.put_array_on_disk("D", &arr).unwrap();
            db.merge_on_disk("D", 4).unwrap();
            ["A", "U", "B", "P", "D"].map(|n| canon(&db.query(&format!("scan({n})")).unwrap()))
        };
        let mut db = Database::open(&dir).unwrap();
        let after =
            ["A", "U", "B", "P", "D"].map(|n| canon(&db.query(&format!("scan({n})")).unwrap()));
        assert_eq!(before, after, "reopen must replay to identical state");
        // The replayed database accepts further writes.
        db.run("insert into A[1, 2] values (9)").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_drop_survives_reopen() {
        let dir = durable_dir("drop");
        {
            let mut db = Database::open(&dir).unwrap();
            db.run("define updatable R (v = int) (I = 1:2, J = 1:2)")
                .unwrap();
            db.run("create U as R [2, 2]").unwrap();
            db.run("insert into U[1, 1] values (3)").unwrap();
            db.run("drop array U").unwrap();
            // Re-creating under the same name after a drop must replay
            // cleanly (the delta-store bookkeeping is keyed by name).
            db.run("create U as R [2, 2]").unwrap();
            db.run("insert into U[2, 2] values (5)").unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        let u = db.query("scan(U)").unwrap();
        assert_eq!(u.cell_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_failed_statement_appends_nothing() {
        let dir = durable_dir("failed");
        let len_after_ddl;
        {
            let mut db = Database::open(&dir).unwrap();
            db.run("define H (v = int) (X = 1:2, Y = 1:2)").unwrap();
            db.run("create A as H [2, 2]").unwrap();
            len_after_ddl = std::fs::metadata(dir.join("wal.log")).unwrap().len();
            db.run("insert into A[9, 9] values (1)").unwrap_err();
            assert_eq!(
                std::fs::metadata(dir.join("wal.log")).unwrap().len(),
                len_after_ddl,
                "a failed statement must not reach the log"
            );
        }
        let mut db = Database::open(&dir).unwrap();
        assert_eq!(db.query("scan(A)").unwrap().cell_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn system_storage_reports_durability() {
        // Non-durable: the singleton row exists with durable = 0.
        let mut mem = db_with_h();
        assert!(!mem.is_durable());
        let row = mem.query("scan(system.storage)").unwrap();
        assert_eq!(row.cell_count(), 1);
        let (_, rec) = row.cells().next().unwrap();
        assert_eq!(rec[0], Value::from(0i64), "durable flag: {rec:?}");

        // Durable: durable = 1 and WAL commits are visible.
        let dir = durable_dir("system");
        let mut db = Database::open(&dir).unwrap();
        assert!(db.storage_dir().is_some());
        db.run("define H (v = int) (X = 1:2, Y = 1:2)").unwrap();
        db.run("create A as H [2, 2]").unwrap();
        db.run("insert into A[1, 1] values (1)").unwrap();
        let row = db.query("scan(system.storage)").unwrap();
        let (_, rec) = row.cells().next().unwrap();
        assert_eq!(rec[0], Value::from(1i64), "durable flag: {rec:?}");
        assert!(
            matches!(rec[7], Value::Scalar(Scalar::Int64(n)) if n >= 3),
            "wal_commits after three statements: {rec:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
