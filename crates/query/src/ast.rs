//! The parse-tree command representation (§2.4).
//!
//! "SciDB will have a parse-tree representation for commands. Then, there
//! will be multiple language bindings. These will map from the
//! language-specific representation to this parse tree format." Both the
//! AQL text front end ([`crate::parser`]) and the fluent Rust binding
//! ([`crate::binding`]) lower to the types in this module; `Display`
//! renders any tree back to canonical AQL, so bindings round-trip.

use scidb_core::expr::Expr;
use std::fmt;

/// A dimension specification in `define`.
#[derive(Debug, Clone, PartialEq)]
pub struct DimSpec {
    /// Dimension name.
    pub name: String,
    /// Upper bound; `None` = `*` (unbounded).
    pub upper: Option<i64>,
    /// Optional chunk stride override.
    pub chunk: Option<i64>,
}

/// A literal value in `insert`.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// NULL.
    Null,
    /// `uncertain(mean, sigma)`.
    Uncertain(f64, f64),
}

/// The aggregate argument: `Sum(*)` or `Sum(attr)`.
#[derive(Debug, Clone, PartialEq)]
pub enum AggArg {
    /// `*`
    Star,
    /// A named attribute.
    Attr(String),
}

/// An array-algebra expression (the operator suite of §2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// Scan of a stored array.
    Scan(String),
    /// `Subsample(input, dim-predicate)`.
    Subsample {
        /// Input.
        input: Box<AExpr>,
        /// The dimension predicate as a (legality-unchecked) value
        /// expression; the planner converts it to a
        /// [`scidb_core::ops::DimPredicate`], rejecting cross-dimension
        /// conditions like `X = Y`.
        pred: Expr,
    },
    /// `Filter(input, value-predicate)`.
    Filter {
        /// Input.
        input: Box<AExpr>,
        /// Cell predicate.
        pred: Expr,
    },
    /// `Aggregate(input, {dims}, Agg(arg))`.
    Aggregate {
        /// Input.
        input: Box<AExpr>,
        /// Grouping dimensions.
        group: Vec<String>,
        /// Aggregate name.
        agg: String,
        /// Aggregate argument.
        arg: AggArg,
    },
    /// `Sjoin(left, right, l.d = r.d …)`.
    Sjoin {
        /// Left input.
        left: Box<AExpr>,
        /// Right input.
        right: Box<AExpr>,
        /// Dimension pairs `(left_dim, right_dim)`.
        on: Vec<(String, String)>,
    },
    /// `Cjoin(left, right, value-predicate)`.
    Cjoin {
        /// Left input.
        left: Box<AExpr>,
        /// Right input.
        right: Box<AExpr>,
        /// Value predicate over the concatenated record (qualified names
        /// `L.attr` are resolved by the planner).
        pred: Expr,
    },
    /// `Apply(input, name, expr)`.
    Apply {
        /// Input.
        input: Box<AExpr>,
        /// New attribute name.
        name: String,
        /// Value expression.
        expr: Expr,
    },
    /// `Project(input, attrs…)`.
    Project {
        /// Input.
        input: Box<AExpr>,
        /// Attributes to keep.
        attrs: Vec<String>,
    },
    /// `Reshape(input, [dims…], [new = 1:n …])`.
    Reshape {
        /// Input.
        input: Box<AExpr>,
        /// Linearization order of the input dimensions.
        order: Vec<String>,
        /// New dimensions `(name, extent)`.
        new_dims: Vec<(String, i64)>,
    },
    /// `Regrid(input, [factors…], agg)`.
    Regrid {
        /// Input.
        input: Box<AExpr>,
        /// Per-dimension coarsening factors.
        factors: Vec<i64>,
        /// Aggregate name.
        agg: String,
    },
    /// `Concat(left, right, dim)`.
    Concat {
        /// Left input.
        left: Box<AExpr>,
        /// Right input.
        right: Box<AExpr>,
        /// Concatenation dimension.
        dim: String,
    },
    /// `Cross(left, right)`.
    Cross {
        /// Left input.
        left: Box<AExpr>,
        /// Right input.
        right: Box<AExpr>,
    },
    /// `AddDim(input, name)`.
    AddDim {
        /// Input.
        input: Box<AExpr>,
        /// New dimension name.
        name: String,
    },
    /// `Slice(input, dim, at)` — remove dimension.
    Slice {
        /// Input.
        input: Box<AExpr>,
        /// Dimension to remove.
        dim: String,
        /// Coordinate to slice at.
        at: i64,
    },
}

impl AExpr {
    /// Boxing helper.
    pub fn boxed(self) -> Box<AExpr> {
        Box::new(self)
    }
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `define [updatable] Name (attr = type, …) (dims…)`.
    DefineArray {
        /// Type name.
        name: String,
        /// §2.5 updatable flag.
        updatable: bool,
        /// `(attribute, type-name)` pairs.
        attrs: Vec<(String, String)>,
        /// Dimension specs.
        dims: Vec<DimSpec>,
    },
    /// `create [updatable] Name as Type [bounds…]`.
    CreateArray {
        /// Instance name.
        name: String,
        /// Defined type name.
        type_name: String,
        /// Per-dimension bounds; `None` = `*`.
        bounds: Vec<Option<i64>>,
    },
    /// `enhance Array with Function` (§2.1).
    Enhance {
        /// Target array.
        array: String,
        /// Registered enhancement function.
        function: String,
    },
    /// `shape Array with Function` (§2.1).
    Shape {
        /// Target array.
        array: String,
        /// Registered shape function.
        function: String,
    },
    /// `insert into A[coords] values (…)`.
    Insert {
        /// Target array.
        array: String,
        /// Cell coordinates.
        coords: Vec<i64>,
        /// Attribute values.
        values: Vec<Literal>,
    },
    /// `store <expr> into Name`.
    Store {
        /// Expression to materialize.
        expr: AExpr,
        /// Destination array name.
        into: String,
    },
    /// `drop array Name`.
    Drop {
        /// Array to drop.
        name: String,
    },
    /// `exists(A, coords…)` — scalar probe (§2.2.1).
    Exists {
        /// Array.
        array: String,
        /// Cell coordinates.
        coords: Vec<i64>,
    },
    /// A bare array expression: evaluate and return.
    Query(AExpr),
    /// `explain analyze <stmt>` — run the statement and return its
    /// rendered span tree instead of its result.
    ExplainAnalyze(Box<Stmt>),
}

// ---- canonical AQL rendering ------------------------------------------------

fn join<T: fmt::Display>(items: &[T], sep: &str) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(sep)
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
            Literal::Uncertain(m, s) => write!(f, "uncertain({m}, {s})"),
        }
    }
}

/// Renders a core expression in AQL syntax.
fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use scidb_core::expr::{BinOp, UnaryOp};
    match e {
        Expr::Attr(n) | Expr::Dim(n) => write!(f, "{n}"),
        // Literals must reparse to the same type: whole floats keep their
        // decimal point, uncertain values use the callable form.
        Expr::Const(scidb_core::value::Scalar::Float64(v)) if v.fract() == 0.0 && v.is_finite() => {
            write!(f, "{v:.1}")
        }
        Expr::Const(scidb_core::value::Scalar::Uncertain(u)) => {
            write!(f, "uncertain({}, {})", u.mean, u.sigma)
        }
        Expr::Const(s) => write!(f, "{s}"),
        Expr::Null => write!(f, "null"),
        Expr::IsNull(inner) => {
            fmt_expr(inner, f)?;
            write!(f, " is null")
        }
        Expr::Unary(UnaryOp::Neg, inner) => {
            write!(f, "-")?;
            fmt_expr(inner, f)
        }
        Expr::Unary(UnaryOp::Not, inner) => {
            write!(f, "not (")?;
            fmt_expr(inner, f)?;
            write!(f, ")")
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "and",
                BinOp::Or => "or",
            };
            write!(f, "(")?;
            fmt_expr(a, f)?;
            write!(f, " {sym} ")?;
            fmt_expr(b, f)?;
            write!(f, ")")
        }
        Expr::Func(name, args) => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(a, f)?;
            }
            write!(f, ")")
        }
    }
}

struct ExprDisplay<'a>(&'a Expr);
impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.0, f)
    }
}

impl fmt::Display for AExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AExpr::Scan(name) => write!(f, "scan({name})"),
            AExpr::Subsample { input, pred } => {
                write!(f, "subsample({input}, {})", ExprDisplay(pred))
            }
            AExpr::Filter { input, pred } => {
                write!(f, "filter({input}, {})", ExprDisplay(pred))
            }
            AExpr::Aggregate {
                input,
                group,
                agg,
                arg,
            } => {
                let arg = match arg {
                    AggArg::Star => "*".to_string(),
                    AggArg::Attr(a) => a.clone(),
                };
                write!(
                    f,
                    "aggregate({input}, {{{}}}, {agg}({arg}))",
                    join(group, ", ")
                )
            }
            AExpr::Sjoin { left, right, on } => {
                let conds: Vec<String> = on
                    .iter()
                    .map(|(l, r)| format!("left.{l} = right.{r}"))
                    .collect();
                write!(f, "sjoin({left}, {right}, {})", conds.join(" and "))
            }
            AExpr::Cjoin { left, right, pred } => {
                write!(f, "cjoin({left}, {right}, {})", ExprDisplay(pred))
            }
            AExpr::Apply { input, name, expr } => {
                write!(f, "apply({input}, {name}, {})", ExprDisplay(expr))
            }
            AExpr::Project { input, attrs } => {
                write!(f, "project({input}, {})", join(attrs, ", "))
            }
            AExpr::Reshape {
                input,
                order,
                new_dims,
            } => {
                let dims: Vec<String> = new_dims
                    .iter()
                    .map(|(n, e)| format!("{n} = 1:{e}"))
                    .collect();
                write!(
                    f,
                    "reshape({input}, [{}], [{}])",
                    join(order, ", "),
                    dims.join(", ")
                )
            }
            AExpr::Regrid {
                input,
                factors,
                agg,
            } => write!(f, "regrid({input}, [{}], {agg})", join(factors, ", ")),
            AExpr::Concat { left, right, dim } => {
                write!(f, "concat({left}, {right}, {dim})")
            }
            AExpr::Cross { left, right } => write!(f, "cross({left}, {right})"),
            AExpr::AddDim { input, name } => write!(f, "adddim({input}, {name})"),
            AExpr::Slice { input, dim, at } => write!(f, "slice({input}, {dim}, {at})"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::DefineArray {
                name,
                updatable,
                attrs,
                dims,
            } => {
                write!(f, "define ")?;
                if *updatable {
                    write!(f, "updatable ")?;
                }
                let attrs: Vec<String> = attrs.iter().map(|(n, t)| format!("{n} = {t}")).collect();
                let dims: Vec<String> = dims
                    .iter()
                    .map(|d| match (d.upper, d.chunk) {
                        (Some(u), None) => format!("{} = 1:{u}", d.name),
                        (Some(u), Some(c)) => format!("{} = 1:{u}:{c}", d.name),
                        (None, _) => d.name.clone(),
                    })
                    .collect();
                write!(f, "{name} ({}) ({})", attrs.join(", "), dims.join(", "))
            }
            Stmt::CreateArray {
                name,
                type_name,
                bounds,
            } => {
                let b: Vec<String> = bounds
                    .iter()
                    .map(|o| o.map_or("*".to_string(), |v| v.to_string()))
                    .collect();
                write!(f, "create {name} as {type_name} [{}]", b.join(", "))
            }
            Stmt::Enhance { array, function } => write!(f, "enhance {array} with {function}"),
            Stmt::Shape { array, function } => write!(f, "shape {array} with {function}"),
            Stmt::Insert {
                array,
                coords,
                values,
            } => write!(
                f,
                "insert into {array}[{}] values ({})",
                join(coords, ", "),
                join(values, ", ")
            ),
            Stmt::Store { expr, into } => write!(f, "store {expr} into {into}"),
            Stmt::Drop { name } => write!(f, "drop array {name}"),
            Stmt::Exists { array, coords } => {
                write!(f, "exists({array}, {})", join(coords, ", "))
            }
            Stmt::Query(e) => write!(f, "{e}"),
            Stmt::ExplainAnalyze(inner) => write!(f, "explain analyze {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidb_core::expr::Expr;

    #[test]
    fn renders_define() {
        let s = Stmt::DefineArray {
            name: "Remote".into(),
            updatable: false,
            attrs: vec![("s1".into(), "float".into()), ("s2".into(), "float".into())],
            dims: vec![
                DimSpec {
                    name: "I".into(),
                    upper: Some(1024),
                    chunk: None,
                },
                DimSpec {
                    name: "J".into(),
                    upper: None,
                    chunk: None,
                },
            ],
        };
        assert_eq!(
            s.to_string(),
            "define Remote (s1 = float, s2 = float) (I = 1:1024, J)"
        );
    }

    #[test]
    fn renders_create_with_star() {
        let s = Stmt::CreateArray {
            name: "My_remote_2".into(),
            type_name: "Remote".into(),
            bounds: vec![None, None],
        };
        assert_eq!(s.to_string(), "create My_remote_2 as Remote [*, *]");
    }

    #[test]
    fn renders_nested_algebra() {
        let e = AExpr::Aggregate {
            input: AExpr::Filter {
                input: AExpr::Scan("H".into()).boxed(),
                pred: Expr::attr("v").gt(Expr::lit(4.0)),
            }
            .boxed(),
            group: vec!["Y".into()],
            agg: "sum".into(),
            arg: AggArg::Star,
        };
        assert_eq!(
            e.to_string(),
            "aggregate(filter(scan(H), (v > 4.0)), {Y}, sum(*))"
        );
    }

    #[test]
    fn renders_reshape_like_paper() {
        let e = AExpr::Reshape {
            input: AExpr::Scan("G".into()).boxed(),
            order: vec!["X".into(), "Z".into(), "Y".into()],
            new_dims: vec![("U".into(), 8), ("V".into(), 3)],
        };
        assert_eq!(
            e.to_string(),
            "reshape(scan(G), [X, Z, Y], [U = 1:8, V = 1:3])"
        );
    }

    #[test]
    fn renders_literals() {
        assert_eq!(Literal::Int(3).to_string(), "3");
        assert_eq!(Literal::Float(3.0).to_string(), "3.0");
        assert_eq!(Literal::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Literal::Null.to_string(), "null");
        assert_eq!(
            Literal::Uncertain(1.0, 0.5).to_string(),
            "uncertain(1, 0.5)"
        );
    }
}
