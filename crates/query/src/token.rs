//! The AQL lexer.
//!
//! Tokenizes the array query language whose statements mirror the paper's
//! examples: `define Remote (s1 = float, …) (I, J)`, `create My_remote as
//! Remote [1024, 1024]`, `Enhance My_remote with Scale10`,
//! `Subsample(F, even(X))`, `Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])`, …

use scidb_core::error::{Error, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Token {
    /// True if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes AQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL-style comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::parse("unexpected '!'"));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::parse("unterminated string literal"));
                }
                out.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_digit() {
                        j += 1;
                    } else if cj == '.'
                        && !is_float
                        && j + 1 < bytes.len()
                        && (bytes[j + 1] as char).is_ascii_digit()
                    {
                        is_float = true;
                        j += 1;
                    } else if (cj == 'e' || cj == 'E')
                        && j + 1 < bytes.len()
                        && ((bytes[j + 1] as char).is_ascii_digit()
                            || bytes[j + 1] == b'-'
                            || bytes[j + 1] == b'+')
                    {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::parse(format!("bad integer literal '{text}'"))
                    })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => return Err(Error::parse(format!("unexpected character '{other}'"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_define_statement() {
        let toks = tokenize("define Remote (s1 = float) (I, J);").unwrap();
        assert_eq!(toks[0], Token::Ident("define".into()));
        assert_eq!(toks[2], Token::LParen);
        assert_eq!(toks[4], Token::Eq);
        assert!(toks.contains(&Token::Semi));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn tokenizes_numbers() {
        let toks = tokenize("42 3.25 1e3 2.5e-2").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        assert_eq!(toks[1], Token::Float(3.25));
        assert_eq!(toks[2], Token::Float(1000.0));
        assert_eq!(toks[3], Token::Float(0.025));
    }

    #[test]
    fn tokenizes_operators() {
        let toks = tokenize("a <= b >= c != d <> e < f > g = h").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
    }

    #[test]
    fn tokenizes_strings_and_comments() {
        let toks = tokenize("'pre-war Gibson banjo' -- a comment\n x").unwrap();
        assert_eq!(toks[0], Token::Str("pre-war Gibson banjo".into()));
        assert_eq!(toks[1], Token::Ident("x".into()));
    }

    #[test]
    fn reshape_statement_tokens() {
        let toks = tokenize("Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])").unwrap();
        assert!(toks.contains(&Token::LBracket));
        assert!(toks.contains(&Token::Colon));
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a ?").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("DEFINE").unwrap();
        assert!(toks[0].is_kw("define"));
        assert!(!toks[0].is_kw("create"));
    }
}
