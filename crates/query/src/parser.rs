//! Recursive-descent parser: AQL text → parse tree ([`crate::ast`]).

use crate::ast::{AExpr, AggArg, DimSpec, Literal, Stmt};
use crate::token::{tokenize, Token};
use scidb_core::error::{Error, Result};
use scidb_core::expr::{BinOp, Expr, UnaryOp};
use scidb_core::uncertain::Uncertain;
use scidb_core::value::Scalar;

/// Parses a semicolon-separated statement list.
pub fn parse(input: &str) -> Result<Vec<Stmt>> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.peek() == &Token::Eof {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parses a single statement.
pub fn parse_one(input: &str) -> Result<Stmt> {
    let mut stmts = parse(input)?;
    let n = stmts.len();
    match stmts.pop() {
        Some(stmt) if n == 1 => Ok(stmt),
        _ => Err(Error::parse(format!("expected one statement, got {n}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, ctx: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected {t:?} {ctx}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected keyword '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self, ctx: &str) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(Error::parse(format!(
                "expected identifier {ctx}, found {other:?}"
            ))),
        }
    }

    /// Extends an already-consumed array name with one optional dotted
    /// segment (`system.metrics`); multi-dot names stay a parse error.
    fn dotted_name(&mut self, first: String) -> Result<String> {
        if self.eat(&Token::Dot) {
            let second = self.ident("after '.' in array name")?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn int(&mut self, ctx: &str) -> Result<i64> {
        match self.next() {
            Token::Int(v) => Ok(v),
            other => Err(Error::parse(format!(
                "expected integer {ctx}, found {other:?}"
            ))),
        }
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        if self.peek().is_kw("explain") && self.peek2().is_kw("analyze") {
            self.next();
            self.next();
            let inner = self.statement()?;
            return Ok(Stmt::ExplainAnalyze(Box::new(inner)));
        }
        if self.peek().is_kw("define") {
            return self.define();
        }
        if self.peek().is_kw("create") {
            return self.create();
        }
        if self.peek().is_kw("enhance") {
            self.next();
            let array = self.ident("after enhance")?;
            self.expect_kw("with")?;
            let function = self.ident("after with")?;
            return Ok(Stmt::Enhance { array, function });
        }
        if self.peek().is_kw("shape") {
            self.next();
            let array = self.ident("after shape")?;
            self.expect_kw("with")?;
            let function = self.ident("after with")?;
            return Ok(Stmt::Shape { array, function });
        }
        if self.peek().is_kw("insert") {
            return self.insert();
        }
        if self.peek().is_kw("store") {
            self.next();
            let expr = self.aexpr()?;
            self.expect_kw("into")?;
            // A dotted target parses so a `store ... into system.x` reaches
            // the executor's reserved-namespace check (a schema error, not
            // a parse error).
            let name = self.ident("after into")?;
            let into = self.dotted_name(name)?;
            return Ok(Stmt::Store { expr, into });
        }
        if self.peek().is_kw("drop") {
            self.next();
            self.expect_kw("array")?;
            let name = self.ident("after drop array")?;
            return Ok(Stmt::Drop { name });
        }
        if self.peek().is_kw("exists") && self.peek2() == &Token::LParen {
            self.next();
            self.expect(&Token::LParen, "after exists")?;
            let array = self.ident("array name")?;
            let mut coords = Vec::new();
            while self.eat(&Token::Comma) {
                coords.push(self.signed_int()?);
            }
            self.expect(&Token::RParen, "closing exists")?;
            return Ok(Stmt::Exists { array, coords });
        }
        Ok(Stmt::Query(self.aexpr()?))
    }

    fn define(&mut self) -> Result<Stmt> {
        self.expect_kw("define")?;
        let updatable = self.eat_kw("updatable");
        // Optional noise word "array".
        if self.peek().is_kw("array") && matches!(self.peek2(), Token::Ident(_)) {
            self.next();
        }
        let name = self.ident("type name")?;
        self.expect(&Token::LParen, "before attributes")?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.ident("attribute name")?;
            self.expect(&Token::Eq, "after attribute name")?;
            let mut ty = self.ident("type name")?;
            // Two-word types: `uncertain float`.
            if ty.eq_ignore_ascii_case("uncertain") {
                if let Token::Ident(second) = self.peek() {
                    let second = second.clone();
                    self.next();
                    ty = format!("{ty} {second}");
                }
            }
            attrs.push((attr, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "after attributes")?;
        self.expect(&Token::LParen, "before dimensions")?;
        let mut dims = Vec::new();
        loop {
            let dname = self.ident("dimension name")?;
            let mut spec = DimSpec {
                name: dname,
                upper: None,
                chunk: None,
            };
            if self.eat(&Token::Eq) {
                let lo = self.int("dimension lower bound")?;
                if lo != 1 {
                    return Err(Error::parse("dimensions must start at 1"));
                }
                self.expect(&Token::Colon, "in dimension bounds")?;
                if self.eat(&Token::Star) {
                    spec.upper = None;
                } else {
                    spec.upper = Some(self.int("dimension upper bound")?);
                }
                if self.eat(&Token::Colon) {
                    spec.chunk = Some(self.int("chunk stride")?);
                }
            }
            dims.push(spec);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "after dimensions")?;
        Ok(Stmt::DefineArray {
            name,
            updatable,
            attrs,
            dims,
        })
    }

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        // Optional noise words: `create [updatable] [array]`.
        let _ = self.eat_kw("updatable");
        if self.peek().is_kw("array") && matches!(self.peek2(), Token::Ident(_)) {
            self.next();
        }
        // A dotted instance name parses so `create system.x ...` reaches
        // the executor's reserved-namespace check.
        let name = self.ident("instance name")?;
        let name = self.dotted_name(name)?;
        self.expect_kw("as")?;
        let type_name = self.ident("type name")?;
        self.expect(&Token::LBracket, "before bounds")?;
        let mut bounds = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                bounds.push(None);
            } else {
                bounds.push(Some(self.int("bound")?));
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RBracket, "after bounds")?;
        Ok(Stmt::CreateArray {
            name,
            type_name,
            bounds,
        })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let array = self.ident("array name")?;
        self.expect(&Token::LBracket, "before coordinates")?;
        let mut coords = vec![self.signed_int()?];
        while self.eat(&Token::Comma) {
            coords.push(self.signed_int()?);
        }
        self.expect(&Token::RBracket, "after coordinates")?;
        self.expect_kw("values")?;
        self.expect(&Token::LParen, "before values")?;
        let mut values = vec![self.literal()?];
        while self.eat(&Token::Comma) {
            values.push(self.literal()?);
        }
        self.expect(&Token::RParen, "after values")?;
        Ok(Stmt::Insert {
            array,
            coords,
            values,
        })
    }

    fn signed_int(&mut self) -> Result<i64> {
        if self.eat(&Token::Minus) {
            Ok(-self.int("after minus")?)
        } else {
            self.int("coordinate")
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        let negative = self.eat(&Token::Minus);
        let lit = match self.next() {
            Token::Int(v) => Literal::Int(if negative { -v } else { v }),
            Token::Float(v) => Literal::Float(if negative { -v } else { v }),
            Token::Str(s) if !negative => Literal::Str(s),
            Token::Ident(s) if !negative && s.eq_ignore_ascii_case("null") => Literal::Null,
            Token::Ident(s) if !negative && s.eq_ignore_ascii_case("true") => Literal::Bool(true),
            Token::Ident(s) if !negative && s.eq_ignore_ascii_case("false") => Literal::Bool(false),
            Token::Ident(s) if !negative && s.eq_ignore_ascii_case("uncertain") => {
                self.expect(&Token::LParen, "after uncertain")?;
                let mean = self.number()?;
                self.expect(&Token::Comma, "in uncertain literal")?;
                let sigma = self.number()?;
                self.expect(&Token::RParen, "closing uncertain")?;
                Literal::Uncertain(mean, sigma)
            }
            other => return Err(Error::parse(format!("expected literal, found {other:?}"))),
        };
        Ok(lit)
    }

    fn number(&mut self) -> Result<f64> {
        let negative = self.eat(&Token::Minus);
        let v = match self.next() {
            Token::Int(v) => v as f64,
            Token::Float(v) => v,
            other => return Err(Error::parse(format!("expected number, found {other:?}"))),
        };
        Ok(if negative { -v } else { v })
    }

    // ---- array expressions ----------------------------------------------

    fn aexpr(&mut self) -> Result<AExpr> {
        let name = match self.peek() {
            Token::Ident(s) => s.clone(),
            other => {
                return Err(Error::parse(format!(
                    "expected array expression, found {other:?}"
                )))
            }
        };
        let lower = name.to_ascii_lowercase();
        if self.peek2() != &Token::LParen {
            // Bare array name = scan; one dotted segment is allowed so the
            // `system.*` virtual arrays are addressable.
            self.next();
            return Ok(AExpr::Scan(self.dotted_name(name)?));
        }
        self.next(); // ident
        self.next(); // (
        let expr = match lower.as_str() {
            "scan" => {
                let n = self.ident("array name")?;
                AExpr::Scan(self.dotted_name(n)?)
            }
            "subsample" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in subsample")?;
                let pred = self.value_expr()?;
                AExpr::Subsample { input, pred }
            }
            "filter" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in filter")?;
                let pred = self.value_expr()?;
                AExpr::Filter { input, pred }
            }
            "aggregate" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in aggregate")?;
                self.expect(&Token::LBrace, "before grouping dims")?;
                let mut group = Vec::new();
                if !self.eat(&Token::RBrace) {
                    loop {
                        group.push(self.ident("grouping dimension")?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RBrace, "after grouping dims")?;
                }
                self.expect(&Token::Comma, "before aggregate")?;
                let agg = self.ident("aggregate name")?;
                self.expect(&Token::LParen, "after aggregate name")?;
                let arg = if self.eat(&Token::Star) {
                    AggArg::Star
                } else {
                    AggArg::Attr(self.ident("aggregate argument")?)
                };
                self.expect(&Token::RParen, "closing aggregate argument")?;
                AExpr::Aggregate {
                    input,
                    group,
                    agg,
                    arg,
                }
            }
            "sjoin" => {
                let left = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in sjoin")?;
                let right = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "before sjoin predicate")?;
                let mut on = Vec::new();
                loop {
                    let (_, ld) = self.qualified()?;
                    self.expect(&Token::Eq, "in sjoin predicate")?;
                    let (_, rd) = self.qualified()?;
                    on.push((ld, rd));
                    if !self.eat_kw("and") {
                        break;
                    }
                }
                AExpr::Sjoin { left, right, on }
            }
            "cjoin" => {
                let left = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in cjoin")?;
                let right = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "before cjoin predicate")?;
                let pred = self.value_expr()?;
                AExpr::Cjoin { left, right, pred }
            }
            "apply" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in apply")?;
                let name = self.ident("new attribute name")?;
                self.expect(&Token::Comma, "before apply expression")?;
                let expr = self.value_expr()?;
                AExpr::Apply { input, name, expr }
            }
            "project" => {
                let input = self.aexpr()?.boxed();
                let mut attrs = Vec::new();
                while self.eat(&Token::Comma) {
                    attrs.push(self.ident("attribute")?);
                }
                AExpr::Project { input, attrs }
            }
            "reshape" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in reshape")?;
                self.expect(&Token::LBracket, "before dimension order")?;
                let mut order = vec![self.ident("dimension")?];
                while self.eat(&Token::Comma) {
                    order.push(self.ident("dimension")?);
                }
                self.expect(&Token::RBracket, "after dimension order")?;
                self.expect(&Token::Comma, "before new dimensions")?;
                self.expect(&Token::LBracket, "before new dimensions")?;
                let mut new_dims = Vec::new();
                loop {
                    let n = self.ident("new dimension name")?;
                    self.expect(&Token::Eq, "in new dimension")?;
                    let lo = self.int("lower bound")?;
                    if lo != 1 {
                        return Err(Error::parse("new dimensions must start at 1"));
                    }
                    self.expect(&Token::Colon, "in new dimension")?;
                    let hi = self.int("upper bound")?;
                    new_dims.push((n, hi));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBracket, "after new dimensions")?;
                AExpr::Reshape {
                    input,
                    order,
                    new_dims,
                }
            }
            "regrid" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in regrid")?;
                self.expect(&Token::LBracket, "before factors")?;
                let mut factors = vec![self.int("factor")?];
                while self.eat(&Token::Comma) {
                    factors.push(self.int("factor")?);
                }
                self.expect(&Token::RBracket, "after factors")?;
                self.expect(&Token::Comma, "before aggregate")?;
                let agg = self.ident("aggregate name")?;
                AExpr::Regrid {
                    input,
                    factors,
                    agg,
                }
            }
            "concat" => {
                let left = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in concat")?;
                let right = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "before concat dimension")?;
                let dim = self.ident("dimension")?;
                AExpr::Concat { left, right, dim }
            }
            "cross" => {
                let left = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in cross")?;
                let right = self.aexpr()?.boxed();
                AExpr::Cross { left, right }
            }
            "adddim" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in adddim")?;
                let name = self.ident("dimension name")?;
                AExpr::AddDim { input, name }
            }
            "slice" => {
                let input = self.aexpr()?.boxed();
                self.expect(&Token::Comma, "in slice")?;
                let dim = self.ident("dimension name")?;
                self.expect(&Token::Comma, "before slice coordinate")?;
                let at = self.signed_int()?;
                AExpr::Slice { input, dim, at }
            }
            _ => {
                return Err(Error::parse(format!("unknown operator '{name}'")));
            }
        };
        self.expect(&Token::RParen, &format!("closing {lower}"))?;
        Ok(expr)
    }

    /// A possibly-qualified identifier `A.x` → `(Some("A"), "x")`.
    fn qualified(&mut self) -> Result<(Option<String>, String)> {
        let first = self.ident("identifier")?;
        if self.eat(&Token::Dot) {
            let second = self.ident("after '.'")?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    // ---- value expressions -----------------------------------------------

    fn value_expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        if self.peek().is_kw("is") {
            self.next();
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let e = left.is_null();
            return Ok(if negated { e.not() } else { e });
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.next();
        let right = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat(&Token::Plus) {
                e = e.add(self.mul_expr()?);
            } else if self.eat(&Token::Minus) {
                e = e.sub(self.mul_expr()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            if self.eat(&Token::Star) {
                e = e.mul(self.unary_expr()?);
            } else if self.eat(&Token::Slash) {
                e = e.div(self.unary_expr()?);
            } else if self.eat(&Token::Percent) {
                e = Expr::Binary(BinOp::Mod, Box::new(e), Box::new(self.unary_expr()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            // Fold negative numeric literals so `-0.5` round-trips as a
            // constant rather than a unary expression.
            match self.peek().clone() {
                Token::Int(v) => {
                    self.next();
                    return Ok(Expr::lit(-v));
                }
                Token::Float(v) => {
                    self.next();
                    return Ok(Expr::lit(-v));
                }
                _ => return Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary_expr()?))),
            }
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.next() {
            Token::Int(v) => Ok(Expr::lit(v)),
            Token::Float(v) => Ok(Expr::lit(v)),
            Token::Str(s) => Ok(Expr::Const(Scalar::String(s))),
            Token::LParen => {
                let e = self.value_expr()?;
                self.expect(&Token::RParen, "closing parenthesized expression")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Null);
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::lit(false));
                }
                if name.eq_ignore_ascii_case("uncertain") && self.peek() == &Token::LParen {
                    self.next();
                    let mean = self.number()?;
                    self.expect(&Token::Comma, "in uncertain literal")?;
                    let sigma = self.number()?;
                    self.expect(&Token::RParen, "closing uncertain")?;
                    return Ok(Expr::Const(Scalar::Uncertain(Uncertain::new(mean, sigma))));
                }
                if self.peek() == &Token::LParen {
                    // Function call.
                    self.next();
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.value_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen, "closing function call")?;
                    }
                    return Ok(Expr::func(name, args));
                }
                if self.eat(&Token::Dot) {
                    let attr = self.ident("after '.'")?;
                    // Qualified reference; resolved by the planner.
                    return Ok(Expr::attr(format!("{name}.{attr}")));
                }
                Ok(Expr::attr(name))
            }
            other => Err(Error::parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_define_remote() {
        let s = parse_one("define Remote (s1 = float, s2 = float, s3 = float) (I, J)").unwrap();
        match s {
            Stmt::DefineArray {
                name,
                updatable,
                attrs,
                dims,
            } => {
                assert_eq!(name, "Remote");
                assert!(!updatable);
                assert_eq!(attrs.len(), 3);
                assert_eq!(attrs[0], ("s1".to_string(), "float".to_string()));
                assert_eq!(dims.len(), 2);
                assert_eq!(dims[0].name, "I");
                assert_eq!(dims[0].upper, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_define_updatable_remote2() {
        let s = parse_one(
            "define updatable Remote_2 (s1 = float, s2 = float, s3 = float) (I, J, history)",
        )
        .unwrap();
        match s {
            Stmt::DefineArray {
                updatable, dims, ..
            } => {
                assert!(updatable);
                assert_eq!(dims[2].name, "history");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_with_bounds_and_star() {
        let s = parse_one("create My_remote as Remote [1024, 1024]").unwrap();
        assert_eq!(
            s,
            Stmt::CreateArray {
                name: "My_remote".into(),
                type_name: "Remote".into(),
                bounds: vec![Some(1024), Some(1024)],
            }
        );
        let s = parse_one("create My_remote_2 as Remote [*, *]").unwrap();
        assert_eq!(
            s,
            Stmt::CreateArray {
                name: "My_remote_2".into(),
                type_name: "Remote".into(),
                bounds: vec![None, None],
            }
        );
    }

    #[test]
    fn parses_enhance_and_shape() {
        assert_eq!(
            parse_one("Enhance My_remote with Scale10").unwrap(),
            Stmt::Enhance {
                array: "My_remote".into(),
                function: "Scale10".into()
            }
        );
        assert_eq!(
            parse_one("shape A with circle").unwrap(),
            Stmt::Shape {
                array: "A".into(),
                function: "circle".into()
            }
        );
    }

    #[test]
    fn parses_subsample_with_udf_predicate() {
        // The paper's Subsample(F, even(X)).
        let s = parse_one("Subsample(F, even(X))").unwrap();
        match s {
            Stmt::Query(AExpr::Subsample { input, pred }) => {
                assert_eq!(*input, AExpr::Scan("F".into()));
                assert_eq!(pred, Expr::func("even", vec![Expr::attr("X")]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_conjunctive_dim_predicate() {
        let s = parse_one("subsample(F, X = 3 and Y < 4)").unwrap();
        match s {
            Stmt::Query(AExpr::Subsample { pred, .. }) => {
                assert_eq!(
                    pred,
                    Expr::attr("X")
                        .eq(Expr::lit(3i64))
                        .and(Expr::attr("Y").lt(Expr::lit(4i64)))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_reshape_like_paper() {
        let s = parse_one("Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3])").unwrap();
        match s {
            Stmt::Query(AExpr::Reshape {
                order, new_dims, ..
            }) => {
                assert_eq!(order, vec!["X", "Z", "Y"]);
                assert_eq!(new_dims, vec![("U".to_string(), 8), ("V".to_string(), 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_joins() {
        let s = parse_one("Sjoin(A, B, A.x = B.x)").unwrap();
        match s {
            Stmt::Query(AExpr::Sjoin { on, .. }) => {
                assert_eq!(on, vec![("x".to_string(), "x".to_string())]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_one("Cjoin(A, B, A.val = B.val)").unwrap();
        match s {
            Stmt::Query(AExpr::Cjoin { pred, .. }) => {
                assert_eq!(pred, Expr::attr("A.val").eq(Expr::attr("B.val")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_aggregate_figure2() {
        let s = parse_one("Aggregate(H, {Y}, Sum(*))").unwrap();
        match s {
            Stmt::Query(AExpr::Aggregate {
                group, agg, arg, ..
            }) => {
                assert_eq!(group, vec!["Y"]);
                assert_eq!(agg, "Sum");
                assert_eq!(arg, AggArg::Star);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_pipeline() {
        let s = parse_one("aggregate(filter(scan(H), v > 4.0 and v is not null), {Y}, sum(v))")
            .unwrap();
        match s {
            Stmt::Query(AExpr::Aggregate { input, .. }) => {
                assert!(matches!(*input, AExpr::Filter { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_insert_and_store() {
        let s = parse_one("insert into A[2, 3] values (1.5, null, uncertain(2.0, 0.1))").unwrap();
        assert_eq!(
            s,
            Stmt::Insert {
                array: "A".into(),
                coords: vec![2, 3],
                values: vec![
                    Literal::Float(1.5),
                    Literal::Null,
                    Literal::Uncertain(2.0, 0.1)
                ],
            }
        );
        let s = parse_one("store filter(A, v > 0) into B").unwrap();
        assert!(matches!(s, Stmt::Store { .. }));
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse(
            "define T (v = int) (X); create A as T [4]; insert into A[1] values (7); scan(A);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn roundtrip_display_parse() {
        for q in [
            "subsample(scan(F), even(X))",
            "aggregate(filter(scan(H), (v > 4)), {Y}, sum(*))",
            "reshape(scan(G), [X, Z, Y], [U = 1:8, V = 1:3])",
            "regrid(scan(A), [4, 4], avg)",
            "cross(scan(A), scan(B))",
            "slice(adddim(scan(A), layer), layer, 1)",
        ] {
            let s1 = parse_one(q).unwrap();
            let s2 = parse_one(&s1.to_string()).unwrap();
            assert_eq!(s1, s2, "roundtrip of {q}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_one("create A as").is_err());
        assert!(parse_one("subsample(F)").is_err());
        assert!(parse_one("frobnicate(A, 1)").is_err());
        assert!(parse_one("insert into A[1] values ()").is_err());
        assert!(parse_one("define T (v = int) (X = 2:5)").is_err());
    }

    #[test]
    fn parses_exists_probe() {
        let s = parse_one("exists(A, 7, 7)").unwrap();
        assert_eq!(
            s,
            Stmt::Exists {
                array: "A".into(),
                coords: vec![7, 7]
            }
        );
    }
}
