//! # scidb-query
//!
//! The query layer of SciDB-rs (paper §2.4):
//!
//! * [`token`] / [`parser`] — the AQL text front end.
//! * [`ast`] — the parse-tree command representation all bindings lower
//!   to; `Display` renders canonical AQL.
//! * [`plan`] — name resolution, the §2.2.1 dimension-predicate legality
//!   rule, and structural-first rewrites (Subsample pushdown/merging).
//! * [`exec`] — the [`exec::Database`] catalog and executor.
//! * [`binding`] — the fluent Rust binding ([`binding::Q`]), demonstrating
//!   the paper's language-embedding approach (vs. ODBC/JDBC
//!   data-sublanguages).

#![warn(missing_docs)]

pub mod ast;
pub mod binding;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::{AExpr, AggArg, DimSpec, Literal, Stmt};
pub use binding::{scan, Q};
pub use exec::{
    is_system_array, ArrayRef, ArrayRefMut, Database, Prepared, RegistryRef, RegistryRefMut,
    Session, SessionStats, SharedDatabase, SlowLogRef, SlowLogRefMut, StatementProfile, StmtResult,
    StoredArray, SYSTEM_PREFIX,
};
pub use parser::{parse, parse_one};
