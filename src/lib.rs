//! # SciDB-rs
//!
//! A from-scratch Rust reproduction of the system specified in
//! *"Requirements for Science Data Bases and SciDB"* (Stonebraker et al.,
//! CIDR 2009): a multidimensional array DBMS with enhanced/ragged arrays,
//! a structural + content operator algebra, Postgres-style extendibility,
//! no-overwrite storage with a history dimension, named versions,
//! provenance, uncertainty, in-situ data access, a shared-nothing grid
//! layer, an AQL front end with a parse-tree command representation, and
//! the relational baseline + science benchmark needed to reproduce the
//! paper's quantitative claims.
//!
//! This crate is the facade: it re-exports every subsystem crate under one
//! namespace. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use scidb::query::Database;
//!
//! let mut db = Database::new();
//! db.run(
//!     "define Remote (s1 = float, s2 = float, s3 = float) (I = 1:16, J = 1:16);
//!      create My_remote as Remote [16, 16];
//!      insert into My_remote[7, 8] values (1.5, 2.5, 3.5);",
//! )
//! .unwrap();
//! let a = db.query("scan(My_remote)").unwrap();
//! assert_eq!(a.get_f64(0, &[7, 8]), Some(1.5));
//! ```

pub use scidb_core as core;
pub use scidb_grid as grid;
pub use scidb_insitu as insitu;
pub use scidb_obs as obs;
pub use scidb_provenance as provenance;
pub use scidb_query as query;
pub use scidb_relational as relational;
pub use scidb_server as server;
pub use scidb_ssdb as ssdb;
pub use scidb_storage as storage;

pub use scidb_core::{
    Array, ArraySchema, Error, ErrorCode, ExecContext, OpMetrics, QueryMetrics, Result, Scalar,
    ScalarType, SchemaBuilder, Uncertain, Value,
};
pub use scidb_query::{Database, Prepared, Session, SharedDatabase};
