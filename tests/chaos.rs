//! Chaos suite: deterministic fault injection against the shared-nothing
//! grid (§2.11 "node failure recovery").
//!
//! The invariant under test, from the Jepsen playbook adapted to a
//! deterministic simulator: **no wrong answers, ever**. For any
//! [`FaultPlan`] — crashes, restarts, slow nodes, flaky I/O in any order —
//! every distributed operation either returns a result *byte-identical* to
//! the fault-free run, or the typed [`Error::Unavailable`]; and
//! `Unavailable` appears exactly when an independent model of the
//! replicated placement says some requested cell has no readable copy this
//! operation. The model re-implements the failure semantics from the
//! public API only (placements, node states, retry budget), so a bug in
//! the cluster's failover path cannot hide in the oracle.
//!
//! `chaos_seeded_run` is the CI entry point: it sweeps a batch of
//! generated plans for one seed (`CHAOS_SEED`, default 1) and, on
//! violation, writes the minimal failing schedule to
//! `target/chaos-failure.json` so the workflow can upload it as an
//! artifact and anyone can replay it offline.

use proptest::prelude::*;
use scidb::core::error::Error;
use scidb::core::geometry::HyperRect;
use scidb::core::registry::Registry;
use scidb::core::value::{record, Value};
use scidb::grid::{
    Cluster, FaultKind, FaultPlan, NodeState, PartitionScheme, ReplicatedPlacement, MAX_RETRIES,
};
use scidb::{ArraySchema, ScalarType, SchemaBuilder};
use std::collections::{BTreeMap, BTreeSet};

const N_NODES: usize = 4;
const SIDE: i64 = 16;
const REPLICAS: usize = 2;

fn schema() -> ArraySchema {
    SchemaBuilder::new("A")
        .attr("v", ScalarType::Int64)
        .dim("I", SIDE)
        .dim("J", SIDE)
        .build()
        .unwrap()
}

fn scheme() -> PartitionScheme {
    let space = HyperRect::new(vec![1, 1], vec![SIDE, SIDE]).unwrap();
    PartitionScheme::grid(space, vec![2, 2], N_NODES).unwrap()
}

fn placement() -> ReplicatedPlacement {
    ReplicatedPlacement::with_replicas(scheme(), 0, REPLICAS)
}

fn dense_cells() -> Vec<(Vec<i64>, Vec<Value>)> {
    let mut cells = Vec::new();
    for i in 1..=SIDE {
        for j in 1..=SIDE {
            cells.push((vec![i, j], record([Value::from(i * 100 + j)])));
        }
    }
    cells
}

fn build_cluster() -> Cluster {
    let mut c = Cluster::new(N_NODES);
    c.create_replicated_array("A", schema(), placement())
        .unwrap();
    c.load_at("A", 0, dense_cells()).unwrap();
    c
}

/// One distributed operation of the fixed chaos history. Aggregates use
/// `count` and `sum` over an Int64 attribute: both are exact regardless of
/// merge order, so "byte-identical to the fault-free run" is well-defined
/// even when failover reshuffles which node serves which cell.
#[derive(Debug, Clone)]
enum Op {
    Query(HyperRect),
    Agg(&'static str),
}

fn history() -> Vec<Op> {
    let r = |lo: [i64; 2], hi: [i64; 2]| HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap();
    vec![
        Op::Query(r([1, 1], [SIDE, SIDE])),
        Op::Query(r([1, 1], [8, 8])),
        Op::Agg("count"),
        Op::Query(r([1, 1], [SIDE, 4])),
        Op::Agg("sum"),
        Op::Query(r([9, 1], [SIDE, 8])),
        Op::Query(r([9, 9], [SIDE, SIDE])),
        Op::Query(r([1, 1], [SIDE, SIDE])),
    ]
}

const N_OPS: u64 = 8;

#[derive(Debug, Clone, PartialEq)]
enum OpResult {
    Cells(Vec<(Vec<i64>, Vec<Value>)>),
    Value(Value),
}

fn run_op(c: &mut Cluster, op: &Op, reg: &Registry) -> Result<OpResult, Error> {
    match op {
        Op::Query(region) => {
            let (out, _) = c.query_region("A", region)?;
            let mut cells: Vec<_> = out.cells().collect();
            cells.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(OpResult::Cells(cells))
        }
        Op::Agg(name) => {
            let (v, _) = c.aggregate("A", name, "v", reg)?;
            Ok(OpResult::Value(v))
        }
    }
}

// ---------------------------------------------------------------------
// The independent model (oracle)
// ---------------------------------------------------------------------

/// Mirror of the cluster's failure semantics built on the *public*
/// placement API: per-cell holder sets, per-node state / slowdown / flaky
/// budget, and the same logical-operation clock.
struct Model {
    holders: BTreeMap<Vec<i64>, BTreeSet<usize>>,
    placements: BTreeMap<Vec<i64>, Vec<usize>>,
    lost: BTreeSet<Vec<i64>>,
    state: Vec<NodeState>,
    slow: Vec<u32>,
    flaky: Vec<u32>,
    cursor: usize,
    op: u64,
}

impl Model {
    fn new() -> Self {
        let rp = placement();
        let mut holders = BTreeMap::new();
        let mut placements = BTreeMap::new();
        for (coords, _) in dense_cells() {
            let p = rp.placements(&coords);
            holders.insert(coords.clone(), p.iter().copied().collect());
            placements.insert(coords, p);
        }
        Model {
            holders,
            placements,
            lost: BTreeSet::new(),
            state: vec![NodeState::Up; N_NODES],
            slow: vec![1; N_NODES],
            flaky: vec![0; N_NODES],
            cursor: 0,
            op: 0,
        }
    }

    fn crash(&mut self, node: usize) {
        self.state[node] = NodeState::Down;
        self.slow[node] = 1;
        self.flaky[node] = 0;
        for (coords, h) in self.holders.iter_mut() {
            h.remove(&node);
            if h.is_empty() {
                self.lost.insert(coords.clone());
            }
        }
    }

    fn restart(&mut self, node: usize) {
        self.state[node] = NodeState::Up;
        self.slow[node] = 1;
        self.flaky[node] = 0;
        // Re-replication: every surviving cell regains a copy on each live
        // placement node.
        for (coords, h) in self.holders.iter_mut() {
            if h.is_empty() {
                continue;
            }
            for &p in &self.placements[coords] {
                if self.state[p] != NodeState::Down {
                    h.insert(p);
                }
            }
        }
    }

    /// Advances one logical operation: fires due plan events, then
    /// computes the availability mask exactly as the coordinator does.
    fn step(&mut self, plan: &FaultPlan) -> Vec<bool> {
        self.op += 1;
        while let Some(e) = plan.events().get(self.cursor).copied() {
            if e.at_op > self.op {
                break;
            }
            self.cursor += 1;
            if e.node >= N_NODES {
                continue;
            }
            match e.kind {
                FaultKind::Crash => self.crash(e.node),
                FaultKind::Restart => self.restart(e.node),
                FaultKind::Slow { factor } => {
                    self.slow[e.node] = factor.max(1);
                    if self.state[e.node] != NodeState::Down && factor > 1 {
                        self.state[e.node] = NodeState::Degraded;
                    }
                }
                FaultKind::Flaky { failures } => {
                    self.flaky[e.node] += failures;
                    if self.state[e.node] != NodeState::Down && failures > 0 {
                        self.state[e.node] = NodeState::Degraded;
                    }
                }
            }
        }
        let mut avail = vec![false; N_NODES];
        for (n, up) in avail.iter_mut().enumerate() {
            match self.state[n] {
                NodeState::Down => {}
                NodeState::Up => *up = true,
                NodeState::Degraded => {
                    let consumed = self.flaky[n].min(MAX_RETRIES);
                    self.flaky[n] -= consumed;
                    if self.flaky[n] == 0 {
                        *up = true;
                        if self.slow[n] <= 1 {
                            self.state[n] = NodeState::Up;
                        }
                    }
                }
            }
        }
        avail
    }

    /// True when every cell of the operation's footprint has a readable
    /// copy under the availability mask.
    fn reachable(&self, region: Option<&HyperRect>, avail: &[bool]) -> bool {
        self.holders.iter().all(|(coords, h)| {
            if region.is_some_and(|r| !r.contains(coords)) {
                return true;
            }
            !self.lost.contains(coords) && h.iter().any(|&n| avail[n])
        })
    }
}

// ---------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------

/// Runs the fixed history under `plan` and checks every operation against
/// the fault-free run and the model's reachability verdict, then recovers
/// all down nodes and checks the cluster heals. Returns a description of
/// the first violation.
fn check_plan(plan: &FaultPlan) -> Result<(), String> {
    let reg = Registry::with_builtins();
    let ops = history();

    let mut clean = build_cluster();
    let clean_results: Vec<OpResult> = ops
        .iter()
        .map(|op| run_op(&mut clean, op, &reg).expect("fault-free run cannot fail"))
        .collect();

    let mut c = build_cluster();
    c.set_fault_plan(plan.clone());
    let mut model = Model::new();

    for (i, op) in ops.iter().enumerate() {
        let avail = model.step(plan);
        let region = match op {
            Op::Query(r) => Some(r),
            Op::Agg(_) => None,
        };
        let expect_ok = model.reachable(region, &avail);
        match run_op(&mut c, op, &reg) {
            Ok(got) => {
                if !expect_ok {
                    return Err(format!(
                        "op {i} ({op:?}): returned Ok but model says a cell is unreachable"
                    ));
                }
                if got != clean_results[i] {
                    return Err(format!(
                        "op {i} ({op:?}): result differs from fault-free run"
                    ));
                }
            }
            Err(Error::Unavailable { lost_cells }) => {
                if expect_ok {
                    return Err(format!(
                        "op {i} ({op:?}): Unavailable({lost_cells}) but model says every \
                         cell has a readable copy"
                    ));
                }
            }
            Err(other) => {
                return Err(format!("op {i} ({op:?}): unexpected error {other}"));
            }
        }
    }

    // Heal: recover every down node, then the final full query must match
    // the fault-free run — unless some cell lost every copy, in which case
    // it must stay Unavailable.
    for n in 0..N_NODES {
        if c.node_state(n) == Some(NodeState::Down) {
            c.recover_node(n)
                .map_err(|e| format!("recover_node({n}): {e}"))?;
            model.restart(n);
        }
    }
    let final_op = Op::Query(HyperRect::new(vec![1, 1], vec![SIDE, SIDE]).unwrap());
    let avail = model.step(plan);
    let expect_ok = model.reachable(None, &avail);
    match run_op(&mut c, &final_op, &reg) {
        Ok(got) => {
            if !expect_ok {
                return Err("post-recovery query succeeded despite lost cells".into());
            }
            if got != clean_results[0] {
                return Err("post-recovery query differs from fault-free run".into());
            }
        }
        Err(Error::Unavailable { .. }) => {
            if expect_ok {
                return Err("post-recovery query Unavailable despite full healing".into());
            }
        }
        Err(other) => return Err(format!("post-recovery query: unexpected error {other}")),
    }
    Ok(())
}

/// Dumps the failing plan where CI picks it up as an artifact.
fn dump_failure(plan: &FaultPlan) {
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/chaos-failure.json", plan.to_json());
}

// ---------------------------------------------------------------------
// Property: arbitrary hand-shaped plans
// ---------------------------------------------------------------------

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec(
        (
            1u64..=N_OPS,
            0usize..N_NODES,
            0u32..4,
            2u32..=6,
            1u32..=2 * MAX_RETRIES,
        ),
        0..6,
    )
    .prop_map(|events| {
        let mut plan = FaultPlan::new(0);
        for (at_op, node, kind, factor, failures) in events {
            plan = match kind {
                0 => plan.crash(at_op, node),
                1 => plan.restart(at_op, node),
                2 => plan.slow(at_op, node, factor),
                _ => plan.flaky(at_op, node, failures),
            };
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any fault plan: results are byte-identical to the fault-free
    /// run or typed-Unavailable, exactly as the model predicts; no panics.
    #[test]
    fn chaos_no_wrong_answers(plan in arb_plan()) {
        if let Err(msg) = check_plan(&plan) {
            dump_failure(&plan);
            prop_assert!(false, "{msg}\nplan: {}", plan.to_json());
        }
    }
}

// ---------------------------------------------------------------------
// Seeded batch runner (the CI chaos matrix entry point)
// ---------------------------------------------------------------------

#[test]
fn chaos_seeded_run() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for case in 0..50u64 {
        let plan = FaultPlan::random(seed.wrapping_mul(1000).wrapping_add(case), N_NODES, N_OPS);
        if let Err(msg) = check_plan(&plan) {
            dump_failure(&plan);
            panic!(
                "chaos invariant violated (CHAOS_SEED={seed}, case {case}): {msg}\nplan: {}",
                plan.to_json()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic pinned scenarios
// ---------------------------------------------------------------------

/// Losing both ring copies of a tile is a permanent, typed loss.
#[test]
fn losing_every_copy_is_unavailable() {
    let mut c = build_cluster();
    c.set_fault_plan(FaultPlan::new(0).crash(1, 0).crash(1, 1));
    let full = HyperRect::new(vec![1, 1], vec![SIDE, SIDE]).unwrap();
    match c.query_region("A", &full) {
        Err(Error::Unavailable { lost_cells }) => {
            assert!(lost_cells > 0, "tile homed at node 0 lost both copies")
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    // Even recovery cannot resurrect the data (the disks are gone).
    c.recover_node(0).unwrap();
    c.recover_node(1).unwrap();
    assert!(matches!(
        c.query_region("A", &full),
        Err(Error::Unavailable { .. })
    ));
    assert!(c.lost_cells("A").unwrap() > 0);
}

/// A single crash with k = 2 replication is fully survivable, and the
/// recovery pass restores the replication factor.
#[test]
fn single_crash_fully_survivable() {
    let plan = FaultPlan::new(0).crash(2, 3).restart(5, 3);
    assert_eq!(check_plan(&plan), Ok(()));
}

/// Slow and flaky nodes never change results, only cost.
#[test]
fn degraded_nodes_never_change_results() {
    let plan = FaultPlan::new(0)
        .slow(1, 0, 4)
        .flaky(2, 2, 2)
        .slow(4, 1, 8)
        .flaky(6, 3, MAX_RETRIES);
    assert_eq!(check_plan(&plan), Ok(()));
}
