//! Failure injection: corrupt files, truncated payloads, and byte flips
//! must surface as `Err` — never as panics or silently wrong data.

use proptest::prelude::*;
use scidb::insitu::{write_h5, write_netcdf, write_sddf, DatasetSpec};
use scidb::storage::{deserialize_chunk, serialize_chunk, CodecPolicy};
use scidb::{Array, ScalarType, SchemaBuilder, Value};

fn sample(n: i64) -> Array {
    let schema = SchemaBuilder::new("s")
        .attr("v", ScalarType::Float64)
        .attr("n", ScalarType::Int64)
        .dim_chunked("x", n, 8)
        .dim_chunked("y", n, 8)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    a.fill_with(|c| {
        vec![
            Value::from((c[0] * 100 + c[1]) as f64),
            Value::from(c[0] - c[1]),
        ]
    })
    .unwrap();
    a
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scidb_fi_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncated_buckets_error_at_every_length() {
    let a = sample(16);
    let chunk = a.chunks().values().next().unwrap();
    let bytes = serialize_chunk(chunk, CodecPolicy::default_policy()).unwrap();
    // Every strict prefix must fail to deserialize (no partial results).
    for len in 0..bytes.len() {
        assert!(
            deserialize_chunk(&bytes[..len]).is_err(),
            "prefix of {len} bytes must not deserialize"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single byte flip in a bucket payload either errors or decodes to
    /// *some* chunk — it never panics. (Bit flips in value payloads can be
    /// silent; headers and structure must stay robust.)
    #[test]
    fn bucket_byte_flips_never_panic(pos_frac in 0.0f64..1.0, delta in 1u8..=255) {
        let a = sample(8);
        let chunk = a.chunks().values().next().unwrap();
        let mut bytes = serialize_chunk(chunk, CodecPolicy::default_policy()).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = deserialize_chunk(&bytes);
    }

    /// The same property for every in-situ format reader.
    #[test]
    fn insitu_byte_flips_never_panic(
        which in 0usize..3,
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let dir = tmp_dir("flip");
        let a = {
            let schema = SchemaBuilder::new("f")
                .attr("v", ScalarType::Float64)
                .dim_chunked("x", 8, 8)
                .dim_chunked("y", 8, 8)
                .build()
                .unwrap();
            let mut a = Array::new(schema);
            a.fill_with(|c| vec![Value::from((c[0] + c[1]) as f64)]).unwrap();
            a
        };
        let path = dir.join(format!("flip_{which}.bin"));
        match which {
            0 => {
                write_netcdf(&path, &a, &[]).unwrap();
            }
            1 => {
                write_h5(&path, &[DatasetSpec { path: "/d".into(), array: &a }]).unwrap();
            }
            _ => {
                write_sddf(&path, &a, CodecPolicy::default_policy()).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        std::fs::write(&path, &bytes).unwrap();
        // Open + full read: any Err is fine; panics are not.
        if let Ok(mut src) = scidb::insitu::open(&path) {
            let _ = src.read_all();
        }
    }
}

/// Pinned regressions from `failure_injection.proptest-regressions`: the
/// shrunk byte-flip cases that once panicked in the h5 and sddf readers.
#[test]
fn pinned_insitu_byte_flip_regressions() {
    for (which, pos_frac, delta) in [
        (2usize, 0.14042798303070844f64, 128u8),
        (1, 0.9943464580828132, 1),
    ] {
        let dir = tmp_dir(&format!("flip_pin_{which}"));
        let schema = SchemaBuilder::new("f")
            .attr("v", ScalarType::Float64)
            .dim_chunked("x", 8, 8)
            .dim_chunked("y", 8, 8)
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.fill_with(|c| vec![Value::from((c[0] + c[1]) as f64)])
            .unwrap();
        let path = dir.join(format!("flip_{which}.bin"));
        match which {
            0 => {
                write_netcdf(&path, &a, &[]).unwrap();
            }
            1 => {
                write_h5(
                    &path,
                    &[DatasetSpec {
                        path: "/d".into(),
                        array: &a,
                    }],
                )
                .unwrap();
            }
            _ => {
                write_sddf(&path, &a, CodecPolicy::default_policy()).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(mut src) = scidb::insitu::open(&path) {
            let _ = src.read_all();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_insitu_files_error() {
    let dir = tmp_dir("trunc");
    let a = sample(16);
    let ncdf = dir.join("t.ncdf");
    let sddf = dir.join("t.sddf");
    write_netcdf(&ncdf, &a, &[]).unwrap();
    write_sddf(&sddf, &a, CodecPolicy::default_policy()).unwrap();
    for path in [&ncdf, &sddf] {
        let bytes = std::fs::read(path).unwrap();
        let cut = dir.join("cut.bin");
        std::fs::write(&cut, &bytes[..bytes.len() / 3]).unwrap();
        // Failing at open is equally acceptable.
        if let Ok(mut src) = scidb::insitu::open(&cut) {
            assert!(
                src.read_all().is_err(),
                "truncated {path:?} must not read fully"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn engine_errors_do_not_corrupt_state() {
    // A failed statement leaves the catalog exactly as before.
    let mut db = scidb::Database::new();
    db.run("define T (v = int) (X = 1:4); create A as T [4]; insert into A[1] values (7)")
        .unwrap();
    let before = db.query("scan(A)").unwrap();
    // Bad inserts, bad queries, bad DDL.
    assert!(db.run("insert into A[99] values (1)").is_err());
    assert!(db.run("insert into A[1] values ('wrong type')").is_err());
    assert!(db.run("store scan(A) into A").is_err());
    assert!(db.query("subsample(A, X = Y)").is_err());
    assert!(db.run("create A as T [4]").is_err());
    let after = db.query("scan(A)").unwrap();
    assert!(
        before.same_cells(&after),
        "failed statements must not mutate"
    );
}
