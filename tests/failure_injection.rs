//! Failure injection: corrupt files, truncated payloads, and byte flips
//! must surface as `Err` — never as panics or silently wrong data.

use proptest::prelude::*;
use scidb::insitu::{write_h5, write_netcdf, write_sddf, DatasetSpec};
use scidb::storage::{deserialize_chunk, serialize_chunk, CodecPolicy};
use scidb::{Array, ScalarType, SchemaBuilder, Value};

fn sample(n: i64) -> Array {
    let schema = SchemaBuilder::new("s")
        .attr("v", ScalarType::Float64)
        .attr("n", ScalarType::Int64)
        .dim_chunked("x", n, 8)
        .dim_chunked("y", n, 8)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    a.fill_with(|c| {
        vec![
            Value::from((c[0] * 100 + c[1]) as f64),
            Value::from(c[0] - c[1]),
        ]
    })
    .unwrap();
    a
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scidb_fi_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncated_buckets_error_at_every_length() {
    let a = sample(16);
    let chunk = a.chunks().values().next().unwrap();
    let bytes = serialize_chunk(chunk, CodecPolicy::default_policy()).unwrap();
    // Every strict prefix must fail to deserialize (no partial results).
    for len in 0..bytes.len() {
        assert!(
            deserialize_chunk(&bytes[..len]).is_err(),
            "prefix of {len} bytes must not deserialize"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single byte flip in a bucket payload either errors or decodes to
    /// *some* chunk — it never panics. (Bit flips in value payloads can be
    /// silent; headers and structure must stay robust.)
    #[test]
    fn bucket_byte_flips_never_panic(pos_frac in 0.0f64..1.0, delta in 1u8..=255) {
        let a = sample(8);
        let chunk = a.chunks().values().next().unwrap();
        let mut bytes = serialize_chunk(chunk, CodecPolicy::default_policy()).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = deserialize_chunk(&bytes);
    }

    /// The same property for every in-situ format reader.
    #[test]
    fn insitu_byte_flips_never_panic(
        which in 0usize..3,
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let dir = tmp_dir("flip");
        let a = {
            let schema = SchemaBuilder::new("f")
                .attr("v", ScalarType::Float64)
                .dim_chunked("x", 8, 8)
                .dim_chunked("y", 8, 8)
                .build()
                .unwrap();
            let mut a = Array::new(schema);
            a.fill_with(|c| vec![Value::from((c[0] + c[1]) as f64)]).unwrap();
            a
        };
        let path = dir.join(format!("flip_{which}.bin"));
        match which {
            0 => {
                write_netcdf(&path, &a, &[]).unwrap();
            }
            1 => {
                write_h5(&path, &[DatasetSpec { path: "/d".into(), array: &a }]).unwrap();
            }
            _ => {
                write_sddf(&path, &a, CodecPolicy::default_policy()).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        std::fs::write(&path, &bytes).unwrap();
        // Open + full read: any Err is fine; panics are not.
        if let Ok(mut src) = scidb::insitu::open(&path) {
            let _ = src.read_all();
        }
    }
}

/// Pinned regressions from `failure_injection.proptest-regressions`: the
/// shrunk byte-flip cases that once panicked in the h5 and sddf readers.
#[test]
fn pinned_insitu_byte_flip_regressions() {
    for (which, pos_frac, delta) in [
        (2usize, 0.14042798303070844f64, 128u8),
        (1, 0.9943464580828132, 1),
    ] {
        let dir = tmp_dir(&format!("flip_pin_{which}"));
        let schema = SchemaBuilder::new("f")
            .attr("v", ScalarType::Float64)
            .dim_chunked("x", 8, 8)
            .dim_chunked("y", 8, 8)
            .build()
            .unwrap();
        let mut a = Array::new(schema);
        a.fill_with(|c| vec![Value::from((c[0] + c[1]) as f64)])
            .unwrap();
        let path = dir.join(format!("flip_{which}.bin"));
        match which {
            0 => {
                write_netcdf(&path, &a, &[]).unwrap();
            }
            1 => {
                write_h5(
                    &path,
                    &[DatasetSpec {
                        path: "/d".into(),
                        array: &a,
                    }],
                )
                .unwrap();
            }
            _ => {
                write_sddf(&path, &a, CodecPolicy::default_policy()).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = bytes[pos].wrapping_add(delta);
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(mut src) = scidb::insitu::open(&path) {
            let _ = src.read_all();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_insitu_files_error() {
    let dir = tmp_dir("trunc");
    let a = sample(16);
    let ncdf = dir.join("t.ncdf");
    let sddf = dir.join("t.sddf");
    write_netcdf(&ncdf, &a, &[]).unwrap();
    write_sddf(&sddf, &a, CodecPolicy::default_policy()).unwrap();
    for path in [&ncdf, &sddf] {
        let bytes = std::fs::read(path).unwrap();
        let cut = dir.join("cut.bin");
        std::fs::write(&cut, &bytes[..bytes.len() / 3]).unwrap();
        // Failing at open is equally acceptable.
        if let Ok(mut src) = scidb::insitu::open(&cut) {
            assert!(
                src.read_all().is_err(),
                "truncated {path:?} must not read fully"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One materialized cell: coordinates plus the record's values.
type Cell = (Vec<i64>, Vec<Value>);

/// Builds a small durable database and returns its directory plus the
/// canonical committed state of array `A`.
fn durable_fixture(tag: &str) -> (std::path::PathBuf, Vec<Cell>) {
    let dir = std::env::temp_dir().join(format!("scidb_fi_dur_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = scidb::Database::open(&dir).unwrap();
    db.run("define T (v = int) (X = 1:4, Y = 1:4); create A as T [4, 4]")
        .unwrap();
    for k in 0..8i64 {
        db.run(&format!(
            "insert into A[{}, {}] values ({k})",
            k % 4 + 1,
            k / 4 + 1
        ))
        .unwrap();
    }
    let canon = match db.run("scan(A)").unwrap().pop() {
        Some(scidb::query::StmtResult::Array(a)) => a.cells().collect(),
        other => panic!("scan(A) did not return an array: {other:?}"),
    };
    (dir, canon)
}

/// Truncating the WAL at *any* byte offset must leave the store openable,
/// recovered to some committed prefix — never a panic, never a torn
/// half-applied statement.
#[test]
fn truncated_wal_recovers_a_committed_prefix_at_every_length() {
    let (dir, full) = durable_fixture("trunc");
    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    // Sample every 7th offset plus both endpoints: dense enough to hit
    // frame headers, payload middles, and CRC bytes, cheap enough for CI.
    let cuts: Vec<usize> = (0..=bytes.len())
        .filter(|i| i % 7 == 0 || *i == bytes.len())
        .collect();
    let kill = std::env::temp_dir().join(format!("scidb_fi_dur_kill_{}", std::process::id()));
    for cut in cuts {
        let _ = std::fs::remove_dir_all(&kill);
        std::fs::create_dir_all(&kill).unwrap();
        std::fs::write(kill.join("wal.log"), &bytes[..cut]).unwrap();
        let mut db = scidb::Database::open(&kill).unwrap();
        // The recovered state is a prefix: either A is absent (cut before
        // its create committed) or every surviving cell matches the full
        // run's value at those coordinates.
        if let Ok(mut results) = db.run("scan(A)") {
            if let Some(scidb::query::StmtResult::Array(a)) = results.pop() {
                for (coords, rec) in a.cells() {
                    assert!(
                        full.contains(&(coords.clone(), rec.clone())),
                        "cut {cut}: recovered cell {coords:?}={rec:?} not in the full run"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&kill);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip anywhere in the WAL must never panic on reopen: the CRC
/// rejects the frame and recovery stops at the last intact commit, or the
/// flip lands in already-valid data and replay simply proceeds.
#[test]
fn wal_bit_flips_never_panic_on_reopen() {
    let (dir, _) = durable_fixture("flip");
    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    let kill = std::env::temp_dir().join(format!("scidb_fi_dur_flip_kill_{}", std::process::id()));
    // Deterministic sweep: flip one bit at a spread of positions.
    for step in 0..24 {
        let pos = step * bytes.len() / 24;
        let pos = pos.min(bytes.len() - 1);
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << (step % 8);
        let _ = std::fs::remove_dir_all(&kill);
        std::fs::create_dir_all(&kill).unwrap();
        std::fs::write(kill.join("wal.log"), &mutated).unwrap();
        // Open + scan: Err is acceptable, a panic is not.
        if let Ok(mut db) = scidb::Database::open(&kill) {
            let _ = db.run("scan(A)");
        }
    }
    let _ = std::fs::remove_dir_all(&kill);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_errors_do_not_corrupt_state() {
    // A failed statement leaves the catalog exactly as before.
    let mut db = scidb::Database::new();
    db.run("define T (v = int) (X = 1:4); create A as T [4]; insert into A[1] values (7)")
        .unwrap();
    let before = db.query("scan(A)").unwrap();
    // Bad inserts, bad queries, bad DDL.
    assert!(db.run("insert into A[99] values (1)").is_err());
    assert!(db.run("insert into A[1] values ('wrong type')").is_err());
    assert!(db.run("store scan(A) into A").is_err());
    assert!(db.query("subsample(A, X = Y)").is_err());
    assert!(db.run("create A as T [4]").is_err());
    let after = db.query("scan(A)").unwrap();
    assert!(
        before.same_cells(&after),
        "failed statements must not mutate"
    );
}
