//! Recovery suite: a deterministic kill-at-every-op matrix for the durable
//! storage layer (WAL + buffer pool + ARIES-lite replay).
//!
//! The invariant under test: **crash anywhere, lose only the uncommitted
//! tail**. A seeded workload touching every WAL record variant runs to
//! completion; the resulting log is then truncated at every frame boundary
//! *and* at torn offsets inside frames. For each cut, reopening the
//! database must reproduce — byte-identically, over canonical sorted
//! scans — the state an uncrashed oracle reaches by running exactly the
//! committed prefix of the workload. A second reopen must be a no-op
//! (idempotent replay), and the recovered database must accept new writes.
//!
//! `recovery_kill_matrix_seeded` is the CI entry point (`RECOVERY_SEED`,
//! default 1). On violation it writes `target/recovery-failure.json` and a
//! hexdump of the offending log to `target/recovery-wal.hex` so the
//! workflow can upload both as artifacts and anyone can replay offline.

use scidb::core::value::{record, Value};
use scidb::query::Database;
use scidb::storage::wal;
use scidb::storage::WalRecord;
use scidb::{Array, ScalarType, SchemaBuilder};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Seeded workload: every `wal::Record` variant gets exercised
// ---------------------------------------------------------------------

/// Tiny deterministic generator (splitmix-style) so the workload depends
/// only on `RECOVERY_SEED`.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// One workload step; `adds`/`removes` track which catalog names exist so
/// the checker knows what to scan after any committed prefix.
enum Op {
    /// `Record::Stmt` (and `Record::DeltaAppend` for updatable inserts).
    Stmt {
        aql: String,
        adds: Option<&'static str>,
        removes: Option<&'static str>,
    },
    /// `Record::PutArray`.
    PutArray { name: &'static str, seed: u64 },
    /// `Record::PutArrayOnDisk` + `Record::BucketWrite`.
    PutArrayOnDisk { name: &'static str, seed: u64 },
    /// `Record::Merge` + `Record::BucketWrite` + `Record::BucketFree`.
    Merge { name: &'static str, factor: i64 },
}

/// A small in-memory array built from a seed.
fn gen_array(name: &str, seed: u64) -> Array {
    let mut g = Gen(seed);
    let schema = SchemaBuilder::new(name)
        .attr("v", ScalarType::Int64)
        .dim("I", 4)
        .dim("J", 4)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    for _ in 0..8 {
        let (i, j) = (g.in_range(1, 4), g.in_range(1, 4));
        a.set_cell(&[i, j], record([Value::from(g.in_range(-50, 50))]))
            .unwrap();
    }
    a
}

/// A chunked dense array: many chunks means many buckets on disk, so the
/// merge steps have real work (bucket writes *and* frees) to log.
fn gen_chunked_array(name: &str, seed: u64) -> Array {
    let mut g = Gen(seed);
    let schema = SchemaBuilder::new(name)
        .attr("v", ScalarType::Int64)
        .dim_chunked("I", 8, 2)
        .dim_chunked("J", 8, 2)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    for i in 1..=8 {
        for j in 1..=8 {
            a.set_cell(&[i, j], record([Value::from(g.in_range(-99, 99))]))
                .unwrap();
        }
    }
    a
}

/// The fixed op sequence (coords and values vary with the seed). Each op
/// commits exactly one WAL group, so "committed prefix of N groups" maps
/// 1:1 onto "first N ops".
fn workload(seed: u64) -> Vec<Op> {
    let mut g = Gen(seed);
    let stmt = |aql: String| Op::Stmt {
        aql,
        adds: None,
        removes: None,
    };
    let create = |aql: String, name: &'static str| Op::Stmt {
        aql,
        adds: Some(name),
        removes: None,
    };
    let mut ins_a = |a: &str| {
        format!(
            "insert into {a}[{}, {}] values ({})",
            g.in_range(1, 8),
            g.in_range(1, 8),
            g.in_range(-100, 100)
        )
    };
    let i1 = ins_a("A");
    let i2 = ins_a("A");
    let i3 = ins_a("A");
    let i4 = ins_a("A2");
    let u1 = format!(
        "insert into U[{}, {}] values ({})",
        g.in_range(1, 4),
        g.in_range(1, 4),
        g.in_range(0, 9)
    );
    let threshold = g.in_range(-50, 50);
    vec![
        stmt("define H (v = int) (X = 1:8, Y = 1:8)".into()),
        create("create A as H [8, 8]".into(), "A"),
        stmt(i1),
        stmt(i2),
        stmt("define updatable R (v = int) (I = 1:4, J = 1:4)".into()),
        create("create U as R [4, 4]".into(), "U"),
        stmt("insert into U[1, 2] values (7)".into()),
        stmt(u1),
        create(
            format!("store filter(scan(A), (v > {threshold})) into B"),
            "B",
        ),
        Op::PutArray {
            name: "P",
            seed: seed ^ 0xA5A5,
        },
        Op::PutArrayOnDisk {
            name: "D",
            seed: seed ^ 0x5A5A,
        },
        Op::Merge {
            name: "D",
            factor: 2,
        },
        Op::Stmt {
            aql: "drop array B".into(),
            adds: None,
            removes: Some("B"),
        },
        stmt(i3),
        create("create A2 as H [8, 8]".into(), "A2"),
        stmt(i4),
        Op::Merge {
            name: "D",
            factor: 4,
        },
        stmt("insert into U[3, 3] values (5)".into()),
    ]
}

/// Applies `ops` to a database, returning the set of live array names.
fn apply(db: &mut Database, ops: &[Op]) -> BTreeSet<&'static str> {
    let mut names: BTreeSet<&'static str> = BTreeSet::new();
    for op in ops {
        match op {
            Op::Stmt { aql, adds, removes } => {
                db.run(aql).unwrap();
                if let Some(n) = adds {
                    names.insert(n);
                }
                if let Some(n) = removes {
                    names.remove(n);
                }
            }
            Op::PutArray { name, seed } => {
                db.put_array(name, gen_array(name, *seed)).unwrap();
                names.insert(name);
            }
            Op::PutArrayOnDisk { name, seed } => {
                db.put_array_on_disk(name, &gen_chunked_array(name, *seed))
                    .unwrap();
                names.insert(name);
            }
            Op::Merge { name, factor } => {
                db.merge_on_disk(name, *factor).unwrap();
            }
        }
    }
    names
}

// ---------------------------------------------------------------------
// Canonical state + the oracle
// ---------------------------------------------------------------------

/// Canonical whole-database state: every live array scanned and rendered
/// as sorted `(name, coords, record)` lines.
fn canon_state(db: &mut Database, names: &BTreeSet<&'static str>) -> Vec<String> {
    let mut out = Vec::new();
    for name in names {
        let a = db.query(&format!("scan({name})")).unwrap();
        let mut cells: Vec<_> = a.cells().collect();
        cells.sort_by(|x, y| x.0.cmp(&y.0));
        for (coords, rec) in cells {
            out.push(format!("{name} {coords:?} {rec:?}"));
        }
        // An empty array still contributes its name, so a lost catalog
        // entry cannot masquerade as an empty one.
        out.push(format!("{name} <exists>"));
    }
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scidb_recovery_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the first `n` ops on a fresh durable database and returns the
/// canonical state (the uncrashed oracle for a prefix of `n` commits).
fn oracle_state(ops: &[Op], n: usize, tag: &str) -> Vec<String> {
    let dir = temp_dir(tag);
    let mut db = Database::open(&dir).unwrap();
    let names = apply(&mut db, &ops[..n]);
    let state = canon_state(&mut db, &names);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    state
}

/// Names live after the first `n` ops, without running anything.
fn names_after(ops: &[Op], n: usize) -> BTreeSet<&'static str> {
    let mut names = BTreeSet::new();
    for op in &ops[..n] {
        match op {
            Op::Stmt { adds, removes, .. } => {
                if let Some(a) = adds {
                    names.insert(*a);
                }
                if let Some(r) = removes {
                    names.remove(r);
                }
            }
            Op::PutArray { name, .. } | Op::PutArrayOnDisk { name, .. } => {
                names.insert(*name);
            }
            Op::Merge { .. } => {}
        }
    }
    names
}

// ---------------------------------------------------------------------
// Failure artifacts
// ---------------------------------------------------------------------

/// Dumps the failing cut + a hexdump of the truncated log where CI picks
/// them up as artifacts, then panics with the message.
fn fail(seed: u64, cut: u64, wal_path: &Path, msg: &str) -> ! {
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write(
        "target/recovery-failure.json",
        format!("{{\n  \"seed\": {seed},\n  \"cut\": {cut},\n  \"message\": {msg:?}\n}}\n"),
    );
    if let Ok(bytes) = std::fs::read(wal_path) {
        let mut hex = String::new();
        for (i, chunk) in bytes.chunks(16).enumerate() {
            hex.push_str(&format!("{:08x} ", i * 16));
            for b in chunk {
                hex.push_str(&format!(" {b:02x}"));
            }
            hex.push('\n');
        }
        let _ = std::fs::write("target/recovery-wal.hex", hex);
    }
    panic!("recovery invariant violated (RECOVERY_SEED={seed}, cut={cut}): {msg}");
}

// ---------------------------------------------------------------------
// The kill matrix (the CI entry point)
// ---------------------------------------------------------------------

#[test]
fn recovery_kill_matrix_seeded() {
    let seed: u64 = std::env::var("RECOVERY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let ops = workload(seed);

    // Full run: apply every op, keep the log.
    let full_dir = temp_dir("full");
    {
        let mut db = Database::open(&full_dir).unwrap();
        apply(&mut db, &ops);
    }
    let wal_path = full_dir.join("wal.log");
    let full_wal = std::fs::read(&wal_path).unwrap();
    let frames = wal::scan(&wal_path).unwrap();
    assert!(
        frames.len() > ops.len() * 2,
        "the workload must produce a non-trivial log"
    );

    // Oracle states for every committed prefix, built once.
    let oracles: Vec<Vec<String>> = (0..=ops.len())
        .map(|n| oracle_state(&ops, n, "oracle"))
        .collect();

    // Cut points: after every frame, plus torn cuts inside every frame
    // (mid-frame and one byte short of complete).
    let mut cuts: BTreeSet<u64> = BTreeSet::new();
    let mut prev = 0u64;
    for &(end, _) in &frames {
        cuts.insert(end);
        cuts.insert(end - 1);
        cuts.insert(prev + (end - prev) / 2);
        prev = end;
    }
    cuts.insert(0);

    let kill_dir = temp_dir("kill");
    for (i, &cut) in cuts.iter().enumerate() {
        // Rebuild the crashed directory: the page file is derived state
        // (reconstructed from the log on open), so the log alone defines
        // the crash image.
        let _ = std::fs::remove_dir_all(&kill_dir);
        std::fs::create_dir_all(&kill_dir).unwrap();
        std::fs::write(kill_dir.join("wal.log"), &full_wal[..cut as usize]).unwrap();

        // The oracle prefix: ops whose Commit frame survived the cut.
        let committed = frames
            .iter()
            .filter(|(end, rec)| *end <= cut && matches!(rec, WalRecord::Commit { .. }))
            .count();

        let mut db = match Database::open(&kill_dir) {
            Ok(db) => db,
            Err(e) => fail(
                seed,
                cut,
                &kill_dir.join("wal.log"),
                &format!("reopen failed after cut: {e}"),
            ),
        };
        let names = names_after(&ops, committed);
        let got = canon_state(&mut db, &names);
        if got != oracles[committed] {
            fail(
                seed,
                cut,
                &kill_dir.join("wal.log"),
                &format!(
                    "state after cut diverges from the {committed}-op oracle:\n got: {got:#?}\nwant: {:#?}",
                    oracles[committed]
                ),
            );
        }
        drop(db);

        // Idempotence: replay of the (now truncated-to-committed) log must
        // land on the same state again. Spot-check to bound wall time.
        if i % 5 == 0 {
            let mut db2 = Database::open(&kill_dir).unwrap();
            let again = canon_state(&mut db2, &names);
            if again != oracles[committed] {
                fail(
                    seed,
                    cut,
                    &kill_dir.join("wal.log"),
                    "second reopen diverged: replay is not idempotent",
                );
            }
        }
    }

    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

// ---------------------------------------------------------------------
// Pinned deterministic scenarios
// ---------------------------------------------------------------------

/// The workload's log covers every `wal::Record` variant, so the kill
/// matrix above replays each of them. Enforced by xtask rule R10: adding a
/// variant to the WAL without extending the workload fails this check.
#[test]
fn replay_covers_every_record_variant() {
    let dir = temp_dir("variants");
    {
        let mut db = Database::open(&dir).unwrap();
        apply(&mut db, &workload(1));
    }
    let frames = wal::scan(&dir.join("wal.log")).unwrap();
    let mut seen = BTreeSet::new();
    for (_, rec) in &frames {
        seen.insert(match rec {
            WalRecord::Begin { .. } => "Record::Begin",
            WalRecord::Commit { .. } => "Record::Commit",
            WalRecord::Stmt { .. } => "Record::Stmt",
            WalRecord::PutArray { .. } => "Record::PutArray",
            WalRecord::PutArrayOnDisk { .. } => "Record::PutArrayOnDisk",
            WalRecord::BucketWrite { .. } => "Record::BucketWrite",
            WalRecord::BucketFree { .. } => "Record::BucketFree",
            WalRecord::DeltaAppend { .. } => "Record::DeltaAppend",
            WalRecord::Merge { .. } => "Record::Merge",
        });
    }
    assert_eq!(
        seen.len(),
        9,
        "workload must exercise every WAL record variant, saw only: {seen:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final record (partial frame at the tail) is physically truncated
/// and the database recovers to the last commit.
#[test]
fn torn_final_record_recovers_to_last_commit() {
    let dir = temp_dir("torn");
    {
        let mut db = Database::open(&dir).unwrap();
        db.run("define H (v = int) (X = 1:2, Y = 1:2)").unwrap();
        db.run("create A as H [2, 2]").unwrap();
        db.run("insert into A[1, 1] values (1)").unwrap();
    }
    let wal_path = dir.join("wal.log");
    let full = std::fs::read(&wal_path).unwrap();
    // Tear the last frame: drop its final 3 bytes.
    std::fs::write(&wal_path, &full[..full.len() - 3]).unwrap();
    let mut db = Database::open(&dir).unwrap();
    // The torn group (the insert) is gone; the DDL prefix survives.
    let a = db.query("scan(A)").unwrap();
    assert_eq!(a.cell_count(), 0, "torn insert must not replay");
    // The truncated log is now clean: the tear was physically removed.
    assert!(std::fs::metadata(&wal_path).unwrap().len() < full.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered database keeps working: new writes after a crash-reopen
/// commit and survive another reopen.
#[test]
fn recovered_database_accepts_new_writes() {
    let dir = temp_dir("rewrites");
    {
        let mut db = Database::open(&dir).unwrap();
        db.run("define H (v = int) (X = 1:2, Y = 1:2)").unwrap();
        db.run("create A as H [2, 2]").unwrap();
        db.run("insert into A[1, 1] values (1)").unwrap();
    }
    // Crash: tear the insert off the tail.
    let wal_path = dir.join("wal.log");
    let full = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &full[..full.len() - 1]).unwrap();
    {
        let mut db = Database::open(&dir).unwrap();
        db.run("insert into A[2, 2] values (9)").unwrap();
    }
    let mut db = Database::open(&dir).unwrap();
    let a = db.query("scan(A)").unwrap();
    assert_eq!(a.cell_count(), 1);
    assert_eq!(a.get_cell(&[2, 2]), Some(vec![Value::from(9i64)]));
    let _ = std::fs::remove_dir_all(&dir);
}
