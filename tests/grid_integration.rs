//! Integration: distributed execution matches single-node semantics, and
//! the designer/epoch machinery improves skewed workloads end to end.

use scidb::core::geometry::HyperRect;
use scidb::core::ops;
use scidb::core::registry::Registry;
use scidb::grid::{
    design_range, evaluate, steerable_workload, Cluster, EpochPartitioning, PartitionScheme,
};
use scidb::{Array, ScalarType, SchemaBuilder, Value};

fn schema(n: i64) -> scidb::ArraySchema {
    SchemaBuilder::new("sky")
        .attr("v", ScalarType::Float64)
        .dim("I", n)
        .dim("J", n)
        .build()
        .unwrap()
}

fn local_array(n: i64) -> Array {
    let mut a = Array::new(schema(n));
    a.fill_with(|c| vec![Value::from((c[0] * 31 + c[1] * 7) as f64)])
        .unwrap();
    a
}

#[test]
fn distributed_aggregate_matches_local_aggregate() {
    let n = 32i64;
    let local = local_array(n);
    let registry = Registry::with_builtins();

    let mut cluster = Cluster::new(8);
    let scheme = PartitionScheme::Hash {
        dims: vec![0, 1],
        n_nodes: 8,
    };
    cluster
        .create_array("A", schema(n), EpochPartitioning::fixed(scheme))
        .unwrap();
    cluster.load_at("A", 0, local.cells()).unwrap();

    for agg in ["sum", "avg", "min", "max", "count", "stddev"] {
        let (dist_v, _) = cluster.aggregate("A", agg, "v", &registry).unwrap();
        let local_out =
            ops::aggregate(&local, &[], agg, ops::AggInput::Attr("v".into()), &registry).unwrap();
        let local_v = local_out.get_cell(&[1]).unwrap()[0].clone();
        match (dist_v.as_f64(), local_v.as_f64()) {
            (Some(d), Some(l)) => assert!((d - l).abs() < 1e-9, "{agg}: {d} vs {l}"),
            _ => assert_eq!(dist_v, local_v, "{agg}"),
        }
    }
}

#[test]
fn distributed_join_matches_core_sjoin() {
    let n = 16i64;
    let local = local_array(n);
    let mut cluster = Cluster::new(4);
    let space = HyperRect::new(vec![1, 1], vec![n, n]).unwrap();
    let grid = PartitionScheme::grid(space, vec![2, 2], 4).unwrap();
    let hash = PartitionScheme::Hash {
        dims: vec![0, 1],
        n_nodes: 4,
    };
    cluster
        .create_array("L", schema(n), EpochPartitioning::fixed(grid))
        .unwrap();
    cluster
        .create_array("R", schema(n), EpochPartitioning::fixed(hash))
        .unwrap();
    cluster.load_at("L", 0, local.cells()).unwrap();
    cluster.load_at("R", 0, local.cells()).unwrap();

    let (dist, stats) = cluster.sjoin("L", "R", &[("I", "I"), ("J", "J")]).unwrap();
    let core = ops::sjoin(&local, &local, &[("I", "I"), ("J", "J")]).unwrap();
    assert_eq!(dist.cell_count(), core.cell_count());
    assert!(dist.same_cells(&core));
    assert!(stats.cells_moved > 0, "hash side had to move");
}

#[test]
fn designer_epoch_rebalance_improves_skewed_workload_end_to_end() {
    let n = 64i64;
    let nodes = 8usize;
    let space = HyperRect::new(vec![1, 1], vec![n, n]).unwrap();
    let grid = PartitionScheme::grid(space.clone(), vec![4, 2], nodes).unwrap();
    let skew = steerable_workload(&space, 1, 16, 300.0, 99);

    let mut cluster = Cluster::new(nodes);
    cluster
        .create_array("A", schema(n), EpochPartitioning::fixed(grid.clone()))
        .unwrap();
    cluster.load_at("A", 0, local_array(n).cells()).unwrap();

    cluster.run_workload("A", &skew).unwrap();
    let before = cluster.imbalance();

    // The periodic designer runs on the observed workload and suggests a
    // new scheme; we install it as a new epoch and rebalance.
    let designed = design_range(&space, 0, nodes, &skew).unwrap();
    assert!(
        evaluate(&designed, &space, &skew).imbalance < evaluate(&grid, &space, &skew).imbalance
    );
    cluster.add_epoch("A", 1_000, designed).unwrap();
    let moved = cluster.rebalance("A").unwrap();
    assert!(moved > 0);

    cluster.reset_loads();
    cluster.run_workload("A", &skew).unwrap();
    let after = cluster.imbalance();
    assert!(
        after < before,
        "rebalancing must reduce measured imbalance: {before} -> {after}"
    );
    // No data lost in the move.
    assert_eq!(cluster.cell_count("A").unwrap(), (n * n) as usize);
}

#[test]
fn epoch_data_placement_follows_arrival_time() {
    let n = 8i64;
    let mut cluster = Cluster::new(2);
    let r1 = PartitionScheme::range(0, vec![4]).unwrap();
    let r2 = PartitionScheme::range(0, vec![1]).unwrap();
    let mut ep = EpochPartitioning::fixed(r1);
    ep.add_epoch(100, r2).unwrap();
    cluster.create_array("A", schema(n), ep).unwrap();

    // Arrived before T: split at 4. Arrived after T: split at 1.
    cluster
        .load_at("A", 0, vec![(vec![3, 1], vec![Value::from(1.0)])])
        .unwrap();
    cluster
        .load_at("A", 200, vec![(vec![3, 2], vec![Value::from(2.0)])])
        .unwrap();
    let dist = cluster.distribution("A").unwrap();
    assert_eq!(
        dist,
        vec![1, 1],
        "same row, different epochs, different nodes"
    );
}

// ---------------------------------------------------------------------
// Golden: explain analyze during injected failure
// ---------------------------------------------------------------------

/// The grid-layer `explain analyze` report during an injected failure is
/// byte-stable (`times: false`): the span tree shows the retry against the
/// flaky node, the per-node fan-out, and the failover from the dead node
/// to its surviving replica. Pinning the full report keeps the recovery
/// telemetry vocabulary honest — renaming an event or dropping an
/// attribute breaks this test, not just a dashboard.
#[test]
fn golden_explain_analyze_failover_report() {
    use scidb::core::value::record;
    use scidb::grid::{FaultPlan, ReplicatedPlacement};
    use scidb::obs::RenderOptions;

    let space = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
    let scheme = PartitionScheme::grid(space, vec![2, 2], 4).unwrap();
    let sch = SchemaBuilder::new("A")
        .attr("v", ScalarType::Int64)
        .dim("I", 8)
        .dim("J", 8)
        .build()
        .unwrap();
    let mut c = Cluster::new(4);
    c.create_replicated_array("A", sch, ReplicatedPlacement::with_replicas(scheme, 0, 2))
        .unwrap();
    let mut cells = Vec::new();
    for i in 1..=8i64 {
        for j in 1..=8i64 {
            cells.push((vec![i, j], record([Value::from(i * 10 + j)])));
        }
    }
    c.load_at("A", 0, cells).unwrap();
    c.fail_node(3).unwrap();
    c.set_fault_plan(FaultPlan::new(0).flaky(1, 0, 2));
    let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
    let (out, report) = c
        .explain_analyze_region(
            "A",
            &region,
            &RenderOptions {
                times: false,
                events: true,
            },
        )
        .unwrap();
    assert_eq!(out.cell_count(), 64);
    let expected = "\
statement [grid]
└─ grid.query_region [grid] array=\"A\" nodes_touched=3 cells_scanned=64 cells_returned=64 failovers=16
   · retry node=0 attempt=1 backoff=2
   · retry node=0 attempt=2 backoff=4
   · failover from=3 to=0 cells=16
   · node node=0 cells=32
   · node node=1 cells=16
   · node node=2 cells=16
";
    assert_eq!(report, expected, "got:\n{report}");
}

/// End-to-end durable seeding: an array persisted through the durable
/// query engine (WAL + page file) is read back after a process restart and
/// attached to the grid as a re-replication seed — cells that lost every
/// in-memory copy are resurrected from the on-disk state.
#[test]
fn durable_readback_seeds_grid_rereplication() {
    use scidb::grid::ReplicatedPlacement;
    use scidb::query::Database;

    let dir = std::env::temp_dir().join(format!("scidb_grid_seed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open(&dir).unwrap();
        db.run(
            "define H (v = int) (I = 1:8, J = 1:8);
             create A as H [8, 8];",
        )
        .unwrap();
        for i in 1..=8i64 {
            for j in 1..=8i64 {
                db.run(&format!("insert into A[{i}, {j}] values ({})", i * 10 + j))
                    .unwrap();
            }
        }
    }
    // "Restart": recover the array from the log, then hand its cells to a
    // fresh cluster as the durable seed.
    let mut db = Database::open(&dir).unwrap();
    let recovered = db.query("scan(A)").unwrap();
    assert_eq!(recovered.cell_count(), 64);

    let space = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
    let scheme = PartitionScheme::grid(space, vec![2, 2], 4).unwrap();
    let sch = SchemaBuilder::new("A")
        .attr("v", ScalarType::Int64)
        .dim("I", 8)
        .dim("J", 8)
        .build()
        .unwrap();
    let mut c = Cluster::new(4);
    c.create_replicated_array("A", sch, ReplicatedPlacement::with_replicas(scheme, 0, 2))
        .unwrap();
    c.load_at("A", 0, recovered.cells()).unwrap();

    // Lose both ring copies of a tile: without the seed this is permanent.
    c.fail_node(0).unwrap();
    c.fail_node(1).unwrap();
    assert!(c.lost_cells("A").unwrap() > 0);
    let recoverable = c.attach_durable_seed("A", recovered.cells()).unwrap();
    assert_eq!(recoverable, c.lost_cells("A").unwrap());
    c.recover_node(0).unwrap();
    c.recover_node(1).unwrap();
    assert_eq!(c.lost_cells("A").unwrap(), 0);

    let region = HyperRect::new(vec![1, 1], vec![8, 8]).unwrap();
    let (out, _) = c.query_region("A", &region).unwrap();
    assert!(recovered.same_cells(&out), "grid state matches the log");
    let _ = std::fs::remove_dir_all(&dir);
}
