//! Differential conformance: replay the pinned corpus and a fixed smoke
//! seed range through all four backends (serial, parallel, grid,
//! relational) and require byte-identical canonical results.
//!
//! Corpus cases live in `tests/conformance-corpus/*.json`; each is a
//! shrunk, replayable repro of a previously observed divergence, pinned
//! so the fix cannot regress. New failures found by `cargo xtask
//! conformance` (or the nightly fuzz job) land here the same way.

use scidb_conformance::case::Case;
use scidb_conformance::{Harness, Outcome};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("conformance-corpus")
}

#[test]
fn corpus_cases_replay_byte_identical() {
    let harness = Harness::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory missing")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "conformance corpus is empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let case = Case::from_json(&text)
            .unwrap_or_else(|e| panic!("bad corpus file {}: {e}", path.display()));
        match harness.run_case(&case) {
            Outcome::Match { .. } => {}
            Outcome::Diverged(d) => panic!(
                "corpus case {} diverged ({} vs {}): {}",
                path.display(),
                d.left,
                d.right,
                d.first_diff()
            ),
        }
    }
}

#[test]
fn corpus_cases_roundtrip_through_json() {
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory missing") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let case = Case::from_json(&text).expect("parseable corpus case");
        let reparsed = Case::from_json(&case.to_json()).expect("re-parseable");
        assert_eq!(case, reparsed, "lossy roundtrip for {}", path.display());
    }
}

#[test]
fn smoke_seed_range_matches_across_all_backends() {
    let harness = Harness::new();
    for seed in 1..=5 {
        let (case, outcome) = harness.run_seed(seed);
        assert!(
            outcome.is_match(),
            "seed {seed} diverged; case:\n{}",
            case.to_json()
        );
    }
}
