//! Differential conformance: replay the pinned corpus and a fixed smoke
//! seed range through all four backends (serial, parallel, grid,
//! relational) and require byte-identical canonical results.
//!
//! Corpus cases live in `tests/conformance-corpus/*.json`; each is a
//! shrunk, replayable repro of a previously observed divergence, pinned
//! so the fix cannot regress. New failures found by `cargo xtask
//! conformance` (or the nightly fuzz job) land here the same way.

use scidb_conformance::case::Case;
use scidb_conformance::{Harness, Outcome};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("conformance-corpus")
}

#[test]
fn corpus_cases_replay_byte_identical() {
    let harness = Harness::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory missing")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "conformance corpus is empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let case = Case::from_json(&text)
            .unwrap_or_else(|e| panic!("bad corpus file {}: {e}", path.display()));
        match harness.run_case(&case) {
            Outcome::Match { .. } => {}
            Outcome::Diverged(d) => panic!(
                "corpus case {} diverged ({} vs {}): {}",
                path.display(),
                d.left,
                d.right,
                d.first_diff()
            ),
        }
    }
}

#[test]
fn corpus_cases_roundtrip_through_json() {
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory missing") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let case = Case::from_json(&text).expect("parseable corpus case");
        let reparsed = Case::from_json(&case.to_json()).expect("re-parseable");
        assert_eq!(case, reparsed, "lossy roundtrip for {}", path.display());
    }
}

/// Introspection over the wire is self-consistent: `system.metrics`
/// queried twice in one session (bracketing real conformance work) is
/// monotone — counters never decrease and never disappear — so the
/// virtual arrays are safe to diff against themselves while the engine
/// is live, even though they are excluded from the seeded generator.
#[test]
fn system_metrics_is_monotone_across_reads_in_one_session() {
    use scidb::server::{Client, Server, ServerConfig};
    use scidb::{Database, Value};

    let mut db = Database::with_threads(2);
    db.run(
        "define G (v = int) (X = 1:4);
         create M as G [4];
         insert into M[1] values (7);",
    )
    .unwrap();
    let server = Server::start(db.share(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr(), "").unwrap();

    let name_of = |rec: &[Value]| match &rec[0] {
        Value::Scalar(scidb::Scalar::String(s)) => s.clone(),
        other => panic!("metric name must be a string, got {other:?}"),
    };
    let first = client.query("scan(system.metrics)").unwrap();
    client.query("scan(M)").unwrap();
    client.query("scan(M)").unwrap();
    let second = client.query("scan(system.metrics)").unwrap();

    assert!(first.cell_count() > 0, "metrics array must not be empty");
    for (_, rec) in first.cells() {
        let name = name_of(&rec);
        if rec[1] == Value::from("gauge".to_string()) {
            continue; // gauges may move either way
        }
        let later = second
            .cells()
            .find(|(_, r)| r[0] == rec[0])
            .unwrap_or_else(|| panic!("metric {name} must not disappear"))
            .1;
        for idx in [2, 3, 4] {
            if let (Some(a), Some(b)) = (rec[idx].as_i64(), later[idx].as_i64()) {
                assert!(b >= a, "{name}[{idx}] went backwards: {a} -> {b}");
            }
        }
    }
}

#[test]
fn smoke_seed_range_matches_across_all_backends() {
    let harness = Harness::new();
    for seed in 1..=5 {
        let (case, outcome) = harness.run_seed(seed);
        assert!(
            outcome.is_match(),
            "seed {seed} diverged; case:\n{}",
            case.to_json()
        );
    }
}
