//! Property-based tests on the query layer: the parser never panics on
//! arbitrary input, and every parse tree the Rust binding can build
//! round-trips through its canonical AQL rendering.

use proptest::prelude::*;
use scidb::core::expr::Expr;
use scidb::query::{parse, parse_one, scan, Q};

// ---- parser robustness -------------------------------------------------------

proptest! {
    /// Arbitrary garbage: tokenize+parse must return Ok or Err, never panic.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// AQL-shaped garbage: random keywords/symbols glued together.
    #[test]
    fn parser_never_panics_on_aql_shaped_input(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "define", "create", "insert", "store", "drop", "scan", "filter",
                "subsample", "aggregate", "sjoin", "cjoin", "reshape", "regrid",
                "A", "B", "v", "X", "(", ")", "[", "]", "{", "}", ",", ";", "=",
                "<", ">", "*", ":", "1", "2.5", "'s'", "and", "or", "null",
            ]),
            0..40,
        ),
    ) {
        let text = parts.join(" ");
        let _ = parse(&text);
    }
}

// ---- binding ⇄ text round trip --------------------------------------------------

/// A generator of random (but valid) operator pipelines via the binding.
fn arb_pipeline() -> impl Strategy<Value = Q> {
    let leaf = prop::sample::select(vec!["A", "B", "My_remote"]).prop_map(scan);
    leaf.prop_recursive(4, 16, 2, |inner| {
        prop_oneof![
            // Unary operators.
            (inner.clone(), 1i64..100)
                .prop_map(|(q, k)| { q.subsample(Expr::attr("X").le(Expr::lit(k))) }),
            (inner.clone(), -50.0f64..50.0)
                .prop_map(|(q, t)| { q.filter(Expr::attr("v").gt(Expr::lit(t))) }),
            (
                inner.clone(),
                prop::sample::select(vec!["sum", "avg", "count", "min", "max"])
            )
                .prop_map(|(q, agg)| q.aggregate(&["X"], agg, "v")),
            (inner.clone(), 1i64..8, 1i64..8).prop_map(|(q, fi, fj)| q.regrid(&[fi, fj], "avg")),
            (inner.clone()).prop_map(|q| q.apply(
                "w",
                Expr::attr("v").mul(Expr::lit(2.0)).add(Expr::lit(1i64)),
            )),
            (inner.clone()).prop_map(|q| q.project(&["v"])),
            (inner.clone()).prop_map(|q| q.add_dim("layer")),
            // Binary operators.
            (inner.clone(), prop::sample::select(vec!["A", "B"]))
                .prop_map(|(q, name)| { q.sjoin(scan(name), &[("X", "X")]) }),
            (inner.clone(), prop::sample::select(vec!["A", "B"])).prop_map(|(q, name)| {
                q.cjoin(scan(name), Expr::attr("v").eq(Expr::attr("v_r")))
            }),
            (inner, prop::sample::select(vec!["A", "B"])).prop_map(|(q, name)| q.cross(scan(name))),
        ]
    })
}

/// Pinned regressions from `proptest_query.proptest-regressions`: shrunk
/// pipelines whose canonical AQL once failed to round-trip.
#[test]
fn pinned_roundtrip_regressions() {
    let cases: Vec<Q> = vec![
        scan("A")
            .apply(
                "w",
                Expr::attr("v").mul(Expr::lit(2.0)).add(Expr::lit(1i64)),
            )
            .subsample(Expr::attr("X").le(Expr::lit(1i64)))
            .subsample(Expr::attr("X").le(Expr::lit(1i64))),
        scan("A").filter(Expr::attr("v").gt(Expr::lit(-0.8357318137472601))),
    ];
    for q in cases {
        let text = q.to_aql();
        let reparsed =
            parse_one(&text).unwrap_or_else(|e| panic!("canonical AQL must parse: {text}\n{e}"));
        assert_eq!(reparsed, q.into_stmt(), "{}", text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every binding-built tree renders to AQL that parses back to the
    /// same tree — the §2.4 "one parse tree, many bindings" invariant.
    #[test]
    fn binding_roundtrips_through_canonical_aql(q in arb_pipeline()) {
        let text = q.to_aql();
        let reparsed = parse_one(&text)
            .unwrap_or_else(|e| panic!("canonical AQL must parse: {text}\n{e}"));
        prop_assert_eq!(reparsed, q.into_stmt(), "{}", text);
    }
}
