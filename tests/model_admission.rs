//! Model checking for the admission hand-off in `scidb_server::admission`.
//!
//! `loom`/`shuttle` are unavailable in this hermetic build, so — like
//! `tests/model_exec.rs` — this file hand-rolls exhaustive schedule
//! enumeration at the algorithm's natural granularity. The admission
//! controller's shared state is three atomics (`active`, `queued`, and a
//! per-session `inflight`), and every transition in the real code
//! linearizes at a single CAS or `fetch_sub`, so a schedule is fully
//! described by which statement performs which atomic step next. The model
//! below DFS-enumerates every such schedule for small shapes — including
//! the hand-off window where a woken waiter has incremented `active` but
//! not yet decremented `queued` — and checks on every step:
//!
//! 1. `active <= max_active` and `queued <= max_queued` always hold,
//! 2. no counter underflows (a double release would panic the model),
//! 3. per-session `inflight` never exceeds the session limit,
//! 4. every terminal state has all counters back at zero and every
//!    statement resolved to exactly one outcome,
//! 5. with timeouts disabled, every statement that reached the queue is
//!    eventually admitted (the hand-off never strands a waiter).
//!
//! Real-thread stress tests then drive the actual [`Admission`] /
//! [`SessionGate`] to cross-check the model against the implementation,
//! including the debug lock-witness slot accounting.

use scidb_server::admission::{Admission, AdmissionConfig, SessionGate};
use std::time::Duration;

/// Where one modelled statement is in the admission protocol. Each variant
/// boundary is an atomic step in the real code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// About to CAS the session gate's `inflight`.
    SessionEnter,
    /// Holds a session slot; about to CAS `active`.
    TryAcquire,
    /// `active` was full; about to CAS `queued`.
    TryEnqueue,
    /// In the wait queue: may win a slot (CAS `active`) or time out.
    Waiting,
    /// Won a slot from the queue; about to `fetch_sub` `queued`.
    DequeueAdmit,
    /// Timed out; about to `fetch_sub` `queued`.
    DequeueReject,
    /// Executing; about to release the admission slot.
    Admitted,
    /// Released admission; about to release the session slot.
    ReleaseSession,
    /// Rejected (queue full / timeout); about to release the session slot.
    ReleaseSessionRejected,
    Done(Outcome),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Admitted,
    SessionRejected,
    QueueFull,
    TimedOut,
}

/// One statement: its session and protocol position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stmt {
    session: usize,
    pc: Pc,
    /// Set once the statement entered the wait queue (for invariant 5).
    was_queued: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Model {
    max_active: usize,
    max_queued: usize,
    session_limit: usize,
    active: usize,
    queued: usize,
    inflight: Vec<usize>,
    stmts: Vec<Stmt>,
    /// When false, the timeout branch is disabled (models a generous
    /// deadline) so liveness of the hand-off itself is observable.
    allow_timeout: bool,
}

/// A schedule step: statement `stmt` takes its atomic step; for `Waiting`
/// statements, `timeout` selects the deadline branch.
#[derive(Debug, Clone, Copy)]
struct Step {
    stmt: usize,
    timeout: bool,
}

impl Model {
    fn new(
        n_stmts: usize,
        n_sessions: usize,
        max_active: usize,
        max_queued: usize,
        session_limit: usize,
        allow_timeout: bool,
    ) -> Model {
        Model {
            max_active,
            max_queued,
            session_limit,
            active: 0,
            queued: 0,
            inflight: vec![0; n_sessions],
            stmts: (0..n_stmts)
                .map(|i| Stmt {
                    session: i % n_sessions,
                    pc: Pc::SessionEnter,
                    was_queued: false,
                })
                .collect(),
            allow_timeout,
        }
    }

    /// Every step any statement can take from this state.
    fn enabled(&self) -> Vec<Step> {
        let mut steps = Vec::new();
        for (i, s) in self.stmts.iter().enumerate() {
            match s.pc {
                Pc::Done(_) => {}
                Pc::Waiting => {
                    // A failed `try_acquire` retry leaves the state
                    // unchanged, so only the succeeding retry is a step.
                    if self.active < self.max_active {
                        steps.push(Step {
                            stmt: i,
                            timeout: false,
                        });
                    }
                    if self.allow_timeout {
                        steps.push(Step {
                            stmt: i,
                            timeout: true,
                        });
                    }
                }
                _ => steps.push(Step {
                    stmt: i,
                    timeout: false,
                }),
            }
        }
        steps
    }

    /// Applies one atomic step, asserting the step invariants.
    fn step(&mut self, step: Step) {
        let s = self.stmts[step.stmt];
        let next = match s.pc {
            Pc::SessionEnter => {
                if self.inflight[s.session] < self.session_limit {
                    self.inflight[s.session] += 1;
                    Pc::TryAcquire
                } else {
                    Pc::Done(Outcome::SessionRejected)
                }
            }
            Pc::TryAcquire => {
                if self.active < self.max_active {
                    self.active += 1;
                    Pc::Admitted
                } else {
                    Pc::TryEnqueue
                }
            }
            Pc::TryEnqueue => {
                if self.queued < self.max_queued {
                    self.queued += 1;
                    self.stmts[step.stmt].was_queued = true;
                    Pc::Waiting
                } else {
                    Pc::ReleaseSessionRejected
                }
            }
            Pc::Waiting => {
                if step.timeout {
                    Pc::DequeueReject
                } else {
                    assert!(self.active < self.max_active, "retry step while full");
                    self.active += 1;
                    Pc::DequeueAdmit
                }
            }
            Pc::DequeueAdmit => {
                self.queued = self.queued.checked_sub(1).expect("queued underflow");
                Pc::Admitted
            }
            Pc::DequeueReject => {
                self.queued = self.queued.checked_sub(1).expect("queued underflow");
                Pc::ReleaseSessionRejected
            }
            Pc::Admitted => {
                self.active = self.active.checked_sub(1).expect("active underflow");
                Pc::ReleaseSession
            }
            Pc::ReleaseSession => {
                self.inflight[s.session] = self.inflight[s.session]
                    .checked_sub(1)
                    .expect("inflight underflow");
                Pc::Done(Outcome::Admitted)
            }
            Pc::ReleaseSessionRejected => {
                self.inflight[s.session] = self.inflight[s.session]
                    .checked_sub(1)
                    .expect("inflight underflow");
                let outcome = if self.stmts[step.stmt].was_queued {
                    Outcome::TimedOut
                } else {
                    Outcome::QueueFull
                };
                Pc::Done(outcome)
            }
            Pc::Done(_) => unreachable!("stepped a finished statement"),
        };
        self.stmts[step.stmt].pc = next;

        // Invariants 1–3 hold after *every* atomic step, including the
        // hand-off window (active already bumped, queued not yet dropped).
        assert!(self.active <= self.max_active, "active overflow: {self:?}");
        assert!(self.queued <= self.max_queued, "queued overflow: {self:?}");
        assert!(
            self.inflight.iter().all(|&n| n <= self.session_limit),
            "session overflow: {self:?}"
        );
    }

    fn terminal(&self) -> bool {
        self.stmts.iter().all(|s| matches!(s.pc, Pc::Done(_)))
    }
}

/// DFS over every schedule; calls `check` on each terminal state. Returns
/// the number of distinct complete schedules explored.
fn explore(model: Model, check: &mut dyn FnMut(&Model)) -> u64 {
    let steps = model.enabled();
    if steps.is_empty() {
        assert!(model.terminal(), "deadlock: {model:?}");
        check(&model);
        return 1;
    }
    let mut schedules = 0;
    for step in steps {
        let mut next = model.clone();
        next.step(step);
        schedules += explore(next, check);
    }
    schedules
}

/// Invariant 4: terminal states leave no residue and resolve everything.
fn assert_terminal(m: &Model) {
    assert_eq!(m.active, 0, "leaked active slot: {m:?}");
    assert_eq!(m.queued, 0, "leaked queue slot: {m:?}");
    assert!(
        m.inflight.iter().all(|&n| n == 0),
        "leaked session slot: {m:?}"
    );
}

#[test]
fn model_exhaustive_small_schedules_hold_invariants() {
    // Shapes chosen to cover: saturation (max_active < stmts), queue
    // overflow (max_queued < overflow), session contention (two statements
    // per session with limit 1), and the degenerate zero-length queue.
    // Kept deliberately tiny: a statement takes up to 7 atomic steps, so
    // the schedule count grows multinomially in statements.
    let shapes: &[(usize, usize, usize, usize, usize)] = &[
        // (stmts, sessions, max_active, max_queued, session_limit)
        (2, 1, 1, 1, 2),
        (2, 2, 1, 1, 1),
        (2, 1, 1, 2, 2),
        (3, 2, 1, 0, 1),
        (3, 1, 1, 0, 3),
        (3, 3, 2, 1, 1),
    ];
    let mut total = 0u64;
    for &(stmts, sessions, max_active, max_queued, limit) in shapes {
        let mut seen = 0u64;
        let m = Model::new(stmts, sessions, max_active, max_queued, limit, true);
        let explored = explore(m, &mut |t| {
            assert_terminal(t);
            seen += 1;
        });
        assert_eq!(explored, seen);
        total += explored;
    }
    // The point of the test is breadth: many distinct interleavings,
    // including every timeout/hand-off race.
    assert!(total > 10_000, "explored only {total} schedules");
}

#[test]
fn model_without_timeouts_no_queued_waiter_is_stranded() {
    // Invariant 5: with the deadline branch disabled, the only way out of
    // the queue is winning a slot — so every schedule must hand a freed
    // slot to each waiter, and every queued statement ends admitted.
    for &(stmts, sessions, max_active, max_queued, limit) in
        &[(2usize, 1usize, 1usize, 2usize, 2usize), (3, 2, 1, 2, 2)]
    {
        let m = Model::new(stmts, sessions, max_active, max_queued, limit, false);
        let schedules = explore(m, &mut |t| {
            assert_terminal(t);
            for s in &t.stmts {
                if s.was_queued {
                    assert_eq!(s.pc, Pc::Done(Outcome::Admitted), "stranded waiter: {t:?}");
                }
            }
        });
        assert!(schedules > 0);
    }
}

#[test]
fn model_zero_queue_resolves_to_admit_or_reject_only() {
    // With `max_queued == 0` nothing ever waits: every statement is
    // admitted, session-rejected, or queue-full-rejected immediately.
    let m = Model::new(3, 2, 1, 0, 2, true);
    explore(m, &mut |t| {
        assert_terminal(t);
        for s in &t.stmts {
            assert!(!s.was_queued, "waiter despite zero queue: {t:?}");
            assert!(
                !matches!(s.pc, Pc::Done(Outcome::TimedOut)),
                "timeout despite zero queue: {t:?}"
            );
        }
    });
}

#[test]
fn model_single_statement_is_always_admitted() {
    let schedules = explore(Model::new(1, 1, 1, 0, 1, true), &mut |t| {
        assert_eq!(t.stmts[0].pc, Pc::Done(Outcome::Admitted), "{t:?}");
    });
    // enter → acquire → release admission → release session: one schedule.
    assert_eq!(schedules, 1);
}

/// Cross-check against the real implementation: hammer a small gate from
/// many threads; the bound must hold at every instant and all counters
/// must return to zero.
#[test]
fn real_threads_respect_bounds_and_drain() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let gate = Arc::new(Admission::new(AdmissionConfig {
        max_active: 2,
        max_queued: 16,
        max_wait: Duration::from_secs(10),
    }));
    let peak = Arc::new(AtomicUsize::new(0));
    let admitted = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let gate = Arc::clone(&gate);
            let peak = Arc::clone(&peak);
            let admitted = Arc::clone(&admitted);
            std::thread::spawn(move || {
                for _ in 0..6 {
                    let _permit = gate.admit().expect("generous deadline");
                    admitted.fetch_add(1, Ordering::SeqCst);
                    peak.fetch_max(gate.active(), Ordering::SeqCst);
                    std::thread::yield_now();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    assert_eq!(admitted.load(Ordering::SeqCst), 48);
    assert!(peak.load(Ordering::SeqCst) <= 2, "active bound violated");
    assert_eq!(gate.active(), 0, "active slot leaked");
    assert_eq!(gate.queued(), 0, "queue slot leaked");
}

/// The model's timeout branch, on real threads: waiters past the deadline
/// reject with the typed admission error and leave the queue clean.
#[test]
fn real_threads_timeout_leaves_no_queue_residue() {
    let gate = Admission::new(AdmissionConfig {
        max_active: 1,
        max_queued: 4,
        max_wait: Duration::from_millis(5),
    });
    let held = gate.admit().expect("first slot");
    std::thread::scope(|scope| {
        let waiters: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| gate.admit().map(drop)))
            .collect();
        for w in waiters {
            let err = w.join().expect("waiter").expect_err("must time out");
            assert_eq!(err.code().name(), "admission");
        }
    });
    drop(held);
    assert_eq!(gate.active(), 0);
    assert_eq!(gate.queued(), 0, "timed-out waiters left queue residue");
}

/// Permits participate in the lock-witness slot discipline: admissions are
/// counted, several same-rank permits may coexist on one thread, and
/// nothing is left held afterwards.
#[test]
fn witness_counts_permit_slots_and_releases_them() {
    use scidb_core::sync::witness;

    let before = witness::stats();
    let session = SessionGate::new(2);
    let gate = Admission::new(AdmissionConfig {
        max_active: 2,
        max_queued: 0,
        max_wait: Duration::from_millis(5),
    });
    {
        // Slot semantics: several same-rank permits may coexist on one
        // thread, but ranks still ascend — both SESSION slots before any
        // ADMISSION slot (SESSION = 10 < ADMISSION = 20).
        let _s1 = session.enter().expect("session slot");
        let _s2 = session.enter().expect("second session slot");
        assert!(session.enter().is_err(), "session limit of 2");
        let _p1 = gate.admit().expect("admission slot");
        let _p2 = gate.admit().expect("second admission slot");
    }
    let after = witness::stats();
    assert!(
        after.acquisitions >= before.acquisitions + 4,
        "permit acquisitions not counted: {before:?} -> {after:?}"
    );
    // Debug builds track the held stack per thread; everything released.
    assert!(
        witness::held().is_empty(),
        "witness leak: {:?}",
        witness::held()
    );
}
