//! Serial/parallel equivalence: every chunk-parallel kernel must produce an
//! array *identical* to its serial run — same chunks, same cells, bitwise
//! identical values (including floating-point aggregates, which rely on the
//! per-chunk partial + ordered-merge rule) — over randomized schemas,
//! chunk sizes, cell densities, and operator pipelines.

use proptest::prelude::*;
use scidb::core::exec::ExecContext;
use scidb::core::expr::Expr;
use scidb::core::ops::{self, AggInput, DimCond, DimPredicate};
use scidb::core::registry::Registry;
use scidb::{Array, ScalarType, SchemaBuilder, Value};

/// Builds a randomized array: `dims` gives (extent, chunk_len) per
/// dimension; `density_mod` drops every cell whose coordinate hash is
/// `0 (mod density_mod)`, exercising sparse chunks and absent chunks.
fn build_array(dims: &[(i64, i64)], salt: i64, density_mod: i64) -> Array {
    let mut b = SchemaBuilder::new("P")
        .attr("v", ScalarType::Float64)
        .attr("n", ScalarType::Int64);
    for (i, &(extent, chunk)) in dims.iter().enumerate() {
        b = b.dim_chunked(format!("d{i}"), extent, chunk);
    }
    let mut a = Array::new(b.build().unwrap());
    let mut full = Array::from_arc(a.schema_arc());
    full.fill_with(|_| vec![Value::Null, Value::Null]).unwrap();
    for (coords, _) in full.cells() {
        let h: i64 = coords
            .iter()
            .fold(salt, |acc, &c| acc.wrapping_mul(31).wrapping_add(c));
        if density_mod > 1 && h.rem_euclid(density_mod) == 0 {
            continue;
        }
        let v = (h % 1000) as f64 / 7.0;
        a.set_cell(&coords, vec![Value::from(v), Value::from(h % 97)])
            .unwrap();
    }
    a
}

/// One randomized chunk-separable operation, applied under a context.
#[derive(Debug, Clone)]
enum ParOp {
    Filter(f64),
    Subsample(i64),
    Apply,
    Project,
    Aggregate(usize, String),
    Regrid(i64, String),
}

fn run_op(a: &Array, op: &ParOp, reg: &Registry, ctx: &ExecContext) -> Array {
    match op {
        ParOp::Filter(t) => {
            ops::filter_with(a, &Expr::attr("v").gt(Expr::lit(*t)), Some(reg), ctx).unwrap()
        }
        ParOp::Subsample(hi) => {
            let pred = DimPredicate::new().with("d0", DimCond::Le(*hi));
            ops::subsample_with(a, &pred, Some(reg), ctx).unwrap()
        }
        ParOp::Apply => ops::apply_with(
            a,
            "w",
            &Expr::attr("v").mul(Expr::lit(3.0)),
            ScalarType::Float64,
            Some(reg),
            ctx,
        )
        .unwrap(),
        ParOp::Project => ops::project_with(a, &["v"], ctx).unwrap(),
        ParOp::Aggregate(gdim, agg) => {
            let name = format!("d{}", gdim % a.schema().rank());
            ops::aggregate_with(a, &[&name], agg, AggInput::Attr("v".into()), reg, ctx).unwrap()
        }
        ParOp::Regrid(f, agg) => {
            let factors: Vec<i64> = vec![*f; a.schema().rank()];
            ops::regrid_with(a, &factors, agg, reg, ctx).unwrap()
        }
    }
}

fn arb_dims() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((1i64..=12, 1i64..=5), 1..=3)
        .prop_map(|dims| dims.into_iter().map(|(e, c)| (e, c.min(e))).collect())
}

fn arb_op() -> impl Strategy<Value = ParOp> {
    let aggs = || prop::sample::select(vec!["sum", "avg", "count", "min", "max", "stddev"]);
    prop_oneof![
        (-100.0f64..100.0).prop_map(ParOp::Filter),
        (1i64..=12).prop_map(ParOp::Subsample),
        Just(ParOp::Apply),
        Just(ParOp::Project),
        (0usize..3, aggs()).prop_map(|(d, a)| ParOp::Aggregate(d, a.to_string())),
        (1i64..=4, aggs()).prop_map(|(f, a)| ParOp::Regrid(f, a.to_string())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single kernels: parallel output equals serial output exactly.
    #[test]
    fn kernel_parallel_equals_serial(
        dims in arb_dims(),
        salt in -1000i64..1000,
        density_mod in 1i64..5,
        op in arb_op(),
        threads in 2usize..=8,
    ) {
        let a = build_array(&dims, salt, density_mod);
        let reg = Registry::with_builtins();
        let serial = run_op(&a, &op, &reg, &ExecContext::serial());
        let parallel = run_op(&a, &op, &reg, &ExecContext::with_threads(threads));
        prop_assert_eq!(&serial, &parallel, "op {:?} diverged at {} threads", op, threads);
    }

    /// Whole pipelines (the composition the executor actually runs):
    /// Subsample → Filter → Apply → Aggregate over randomized schemas.
    #[test]
    fn pipeline_parallel_equals_serial(
        dims in arb_dims(),
        salt in -1000i64..1000,
        density_mod in 1i64..5,
        hi in 1i64..=12,
        thresh in -100.0f64..100.0,
        agg in prop::sample::select(vec!["sum", "avg", "count", "min", "max"]),
        threads in 2usize..=8,
    ) {
        let a = build_array(&dims, salt, density_mod);
        let reg = Registry::with_builtins();
        let pipeline = |ctx: &ExecContext| -> Array {
            let pred = DimPredicate::new().with("d0", DimCond::Le(hi));
            let s = ops::subsample_with(&a, &pred, Some(&reg), ctx).unwrap();
            let f = ops::filter_with(&s, &Expr::attr("v").gt(Expr::lit(thresh)), Some(&reg), ctx)
                .unwrap();
            let ap = ops::apply_with(
                &f,
                "w",
                &Expr::attr("v").add(Expr::attr("n")),
                ScalarType::Float64,
                Some(&reg),
                ctx,
            )
            .unwrap();
            ops::aggregate_with(&ap, &["d0"], agg, AggInput::Attr("w".into()), &reg, ctx).unwrap()
        };
        let serial = pipeline(&ExecContext::serial());
        let parallel = pipeline(&ExecContext::with_threads(threads));
        prop_assert_eq!(&serial, &parallel, "pipeline diverged at {} threads", threads);
    }
}

/// The executor-level equivalence: a `Database` with threads=1 and one with
/// threads=N answer every query identically (metrics aside).
#[test]
fn database_thread_count_is_unobservable_in_results() {
    let setup = "define H (v = float) (X = 1:16, Y = 1:16);
                 create A as H [16, 16];";
    let mut serial = scidb::Database::with_threads(1);
    let mut parallel = scidb::Database::with_threads(8);
    serial.run(setup).unwrap();
    parallel.run(setup).unwrap();
    for x in 1i64..=16 {
        for y in 1i64..=16 {
            if (x * 31 + y) % 3 == 0 {
                continue;
            }
            let ins = format!(
                "insert into A[{x}, {y}] values ({})",
                (x * 100 + y) as f64 / 3.0
            );
            serial.run(&ins).unwrap();
            parallel.run(&ins).unwrap();
        }
    }
    for q in [
        "filter(A, v > 200.0)",
        "subsample(A, even(X))",
        "project(apply(A, w, v * 2.0), w)",
        "aggregate(A, {Y}, avg(v))",
        "aggregate(A, {}, stddev(v))",
        "regrid(A, [4, 4], sum)",
    ] {
        let a = serial.query(q).unwrap();
        let b = parallel.query(q).unwrap();
        assert_eq!(a, b, "{q} must not observe the thread count");
    }
}
