//! Integration test: walks through every numbered requirement of the CIDR
//! 2009 paper against the public facade API, in paper order.

use scidb::core::enhance::{PseudoValue, Scale, WallClock};
use scidb::core::expr::Expr;
use scidb::core::history::{Transaction, UpdatableArray};
use scidb::core::ops;
use scidb::core::registry::Registry;
use scidb::core::shape::CircleShape;
use scidb::core::versions::VersionTree;
use scidb::query::Database;
use scidb::{ScalarType, SchemaBuilder, Uncertain, Value};
use std::sync::Arc;

#[test]
fn s2_1_data_model_nested_arrays_and_enhancements() {
    // define Remote (s1 = float, s2 = float, s3 = float) (I, J)
    let mut db = Database::new();
    db.run("define Remote (s1 = float, s2 = float, s3 = float) (I = 1:8, J = 1:8)")
        .unwrap();
    // create My_remote as Remote [1024,1024] → smaller here.
    db.run("create My_remote as Remote [8, 8]").unwrap();
    // Unbounded creation: create My_remote_2 as Remote [*, *].
    db.run("create My_remote_2 as Remote [*, *]").unwrap();
    db.run("insert into My_remote[7, 8] values (1.0, 2.0, 3.0)")
        .unwrap();
    let a = db.query("scan(My_remote)").unwrap();
    // A[7, 8] and A[7, 8].x addressing.
    assert_eq!(a.get_named("s2", &[7, 8]).unwrap(), Some(Value::from(2.0)));

    // Enhancement with Scale10: A{70, 80} == A[7, 8].
    db.registry_mut()
        .register_enhancement(Arc::new(Scale::scale10(2)))
        .unwrap();
    db.run("enhance My_remote with Scale10").unwrap();
    let stored = db.array("My_remote").unwrap();
    if let scidb::query::StoredArray::Plain(arr) = &*stored {
        let got = arr
            .get_enhanced(None, &[PseudoValue::Int(70), PseudoValue::Int(80)])
            .unwrap();
        assert_eq!(got.unwrap()[0], Value::from(1.0));
    } else {
        panic!("My_remote should be plain");
    }
}

#[test]
fn s2_1_shape_functions_digitize_circles() {
    let mut db = Database::new();
    db.registry_mut()
        .register_shape(Arc::new(CircleShape::new("disk", (8, 8), 5)))
        .unwrap();
    db.run("define Img (v = float) (x = 1:16, y = 1:16); create A as Img [16, 16]")
        .unwrap();
    db.run("shape A with disk").unwrap();
    // Writes outside the disk are rejected; inside succeed.
    assert!(db.run("insert into A[1, 1] values (1.0)").is_err());
    db.run("insert into A[8, 8] values (1.0)").unwrap();
    let r = db.run("exists(A, 8, 8); exists(A, 1, 1)").unwrap();
    assert!(matches!(r[0], scidb::query::StmtResult::Bool(true)));
    assert!(matches!(r[1], scidb::query::StmtResult::Bool(false)));
}

#[test]
fn s2_2_operator_suite_through_aql() {
    let mut db = Database::new();
    db.run(
        "define G (v = int) (X = 1:2, Y = 1:3, Z = 1:4);
         create G1 as G [2, 3, 4]",
    )
    .unwrap();
    for x in 1..=2 {
        for y in 1..=3 {
            for z in 1..=4 {
                db.run(&format!(
                    "insert into G1[{x}, {y}, {z}] values ({})",
                    100 * x + 10 * y + z
                ))
                .unwrap();
            }
        }
    }
    // Reshape(G, [X, Z, Y], [U = 1:8, V = 1:3]) — the paper's example.
    let r = db
        .query("reshape(G1, [X, Z, Y], [U = 1:8, V = 1:3])")
        .unwrap();
    assert_eq!(r.cell_count(), 24);
    assert_eq!(r.get_f64(0, &[1, 1]), Some(111.0));
    assert_eq!(r.get_f64(0, &[8, 3]), Some(234.0));
    // Subsample legality: X = Y must be rejected with the paper's rule.
    assert!(db.query("subsample(G1, X = Y)").is_err());
    // Filter + aggregate pipeline.
    let out = db
        .query("aggregate(filter(G1, v > 200), {X}, count(v))")
        .unwrap();
    assert_eq!(out.get_cell(&[2]).unwrap()[0], Value::from(12i64));
}

#[test]
fn s2_3_extendibility_udfs_in_queries() {
    let mut db = Database::new();
    db.registry_mut()
        .register_scalar_fn(Arc::new(scidb::core::udf::ClosureFn::new(
            "every_third",
            Some(1),
            |args| Ok(Value::from(args[0].as_i64().unwrap_or(0) % 3 == 0)),
        )))
        .unwrap();
    db.run("define T (v = int) (X = 1:9); create A as T [9]")
        .unwrap();
    for x in 1..=9 {
        db.run(&format!("insert into A[{x}] values ({x})")).unwrap();
    }
    let out = db.query("subsample(A, every_third(X))").unwrap();
    assert_eq!(out.cell_count(), 3);
}

#[test]
fn s2_5_no_overwrite_history() {
    // The paper's updatable Remote_2 with time travel via wall clock.
    let schema = SchemaBuilder::new("Remote_2")
        .attr("s1", ScalarType::Float64)
        .dim("I", 4)
        .dim("J", 4)
        .updatable()
        .build()
        .unwrap();
    let mut arr = UpdatableArray::new(schema).unwrap();
    arr.set_clock(Arc::new(WallClock::new("clock", 1_000, 60)))
        .unwrap();
    arr.commit_put(&[2, 2], vec![Value::from(1.0)]).unwrap();
    let mut t = Transaction::new();
    t.put(&[2, 2], vec![Value::from(2.0)]);
    t.delete(&[2, 2]);
    // put + delete in one txn: delete wins (flag is the later delta).
    arr.commit(t).unwrap();
    assert_eq!(arr.get_latest(&[2, 2]), None);
    assert_eq!(arr.get_at(&[2, 2], 1), Some(vec![Value::from(1.0)]));
    assert_eq!(
        arr.get_at_time(&[2, 2], 1_030, "clock").unwrap(),
        Some(vec![Value::from(1.0)])
    );
}

#[test]
fn s2_11_named_versions_tree() {
    let schema = SchemaBuilder::new("base")
        .attr("v", ScalarType::Float64)
        .dim("I", 4)
        .build()
        .unwrap();
    let mut tree = VersionTree::new(schema).unwrap();
    let mut t = Transaction::new();
    for i in 1..=4 {
        t.put(&[i], vec![Value::from(i as f64)]);
    }
    tree.base_mut().commit(t).unwrap();
    tree.create_version("a", None).unwrap();
    tree.create_version("b", Some("a")).unwrap();
    let mut t = Transaction::new();
    t.put(&[1], vec![Value::from(-1.0)]);
    tree.commit("b", t).unwrap();
    assert_eq!(tree.get("b", &[1]).unwrap(), Some(vec![Value::from(-1.0)]));
    assert_eq!(tree.get("b", &[2]).unwrap(), Some(vec![Value::from(2.0)]));
    assert_eq!(tree.get("a", &[1]).unwrap(), Some(vec![Value::from(1.0)]));
    assert_eq!(tree.chain_depth("b").unwrap(), 2);
}

#[test]
fn s2_13_uncertainty_in_queries() {
    let mut db = Database::new();
    db.run("define U (v = uncertain float) (X = 1:3); create A as U [3]")
        .unwrap();
    db.run(
        "insert into A[1] values (uncertain(10.0, 1.0));
         insert into A[2] values (uncertain(20.0, 2.0));
         insert into A[3] values (uncertain(30.0, 3.0));",
    )
    .unwrap();
    // Sum propagates sigma in quadrature: sqrt(1+4+9).
    let out = db.query("aggregate(A, {}, sum(v))").unwrap();
    match out.get_cell(&[1]).unwrap()[0].clone() {
        Value::Scalar(scidb::Scalar::Uncertain(u)) => {
            assert_eq!(u.mean, 60.0);
            assert!((u.sigma - 14f64.sqrt()).abs() < 1e-12);
        }
        other => panic!("expected uncertain sum, got {other}"),
    }
    // Uncertainty-aware filter via the prob_below builtin.
    let out = db.query("filter(A, prob_below(v, 15.0) > 0.95)").unwrap();
    assert!(!out.get_cell(&[1]).unwrap()[0].is_null());
    assert!(out.get_cell(&[3]).unwrap()[0].is_null());
}

#[test]
fn uncertain_arithmetic_in_apply() {
    let a = {
        let schema = SchemaBuilder::new("m")
            .attr("v", ScalarType::UncertainFloat64)
            .dim("i", 2)
            .build()
            .unwrap();
        let mut a = scidb::Array::new(schema);
        a.set_cell(&[1], vec![Value::from(Uncertain::new(3.0, 0.3))])
            .unwrap();
        a.set_cell(&[2], vec![Value::from(Uncertain::new(4.0, 0.4))])
            .unwrap();
        a
    };
    let registry = Registry::with_builtins();
    let out = ops::apply(
        &a,
        "double",
        &Expr::attr("v").mul(Expr::lit(2.0)),
        ScalarType::UncertainFloat64,
        Some(&registry),
    )
    .unwrap();
    match out.get_value(1, &[2]).unwrap() {
        Value::Scalar(scidb::Scalar::Uncertain(u)) => {
            assert_eq!(u.mean, 8.0);
            assert!((u.sigma - 0.8).abs() < 1e-12);
        }
        other => panic!("expected uncertain, got {other}"),
    }
}
