//! Integration: core arrays ⇄ storage manager ⇄ in-situ formats, spanning
//! scidb-core, scidb-storage, and scidb-insitu.

use scidb::core::geometry::HyperRect;
use scidb::insitu::{write_h5, write_netcdf, write_sddf, DatasetSpec};
use scidb::storage::{
    merge_pass, CodecPolicy, DeltaStore, FileDisk, MemDisk, ReadOptions, StorageManager,
    StreamLoader,
};
use scidb::{Array, ScalarType, SchemaBuilder, Value};
use std::sync::Arc;

fn sample(n: i64, chunk: i64) -> Array {
    let schema = SchemaBuilder::new("sample")
        .attr("v", ScalarType::Float64)
        .dim_chunked("x", n, chunk)
        .dim_chunked("y", n, chunk)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    a.fill_with(|c| vec![Value::from((c[0] * 1000 + c[1]) as f64)])
        .unwrap();
    a
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scidb_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn array_to_buckets_to_array_roundtrip_through_real_files() {
    let dir = tmp_dir("filedisk");
    let a = sample(32, 8);
    let mut mgr = StorageManager::new(
        Arc::new(FileDisk::open(dir.join("blocks")).unwrap()),
        a.schema_arc(),
        CodecPolicy::default_policy(),
    );
    mgr.store_array(&a).unwrap();
    merge_pass(&mut mgr, 2).unwrap();
    let (back, _) = mgr
        .read_region(
            &HyperRect::new(vec![1, 1], vec![32, 32]).unwrap(),
            ReadOptions::default(),
        )
        .unwrap();
    assert!(back.same_cells(&a));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn loader_then_merge_then_query_pipeline() {
    let schema = Arc::new(
        SchemaBuilder::new("ts")
            .attr("v", ScalarType::Float64)
            .dim_chunked("t", 8192, 256)
            .dim_chunked("s", 4, 4)
            .build()
            .unwrap(),
    );
    let mut mgr = StorageManager::new(
        Arc::new(MemDisk::new()),
        Arc::clone(&schema),
        CodecPolicy::default_policy(),
    );
    let mut loader = StreamLoader::new(&mut mgr, 32 << 10);
    for t in 1..=8192i64 {
        for s in 1..=4i64 {
            loader
                .push(&[t, s], vec![Value::from((t * 10 + s) as f64)])
                .unwrap();
        }
    }
    let stats = loader.finish().unwrap();
    assert_eq!(stats.cells, 8192 * 4);
    assert!(stats.flushes > 1);

    let before = mgr.bucket_count();
    merge_pass(&mut mgr, 4).unwrap();
    assert!(mgr.bucket_count() < before);

    let (out, rs) = mgr
        .read_region(
            &HyperRect::new(vec![1000, 1], vec![1127, 4]).unwrap(),
            ReadOptions::default(),
        )
        .unwrap();
    assert_eq!(out.cell_count(), 128 * 4);
    assert_eq!(out.get_f64(0, &[1050, 2]), Some(10502.0));
    assert!(rs.buckets >= 1);
}

#[test]
fn all_three_insitu_formats_agree_with_source() {
    let dir = tmp_dir("formats");
    let a = sample(24, 8);
    let ncdf = dir.join("a.ncdf");
    let h5 = dir.join("a.h5lt");
    let sddf = dir.join("a.sddf");
    write_netcdf(&ncdf, &a, &[("k", "v")]).unwrap();
    write_h5(
        &h5,
        &[DatasetSpec {
            path: "/img".into(),
            array: &a,
        }],
    )
    .unwrap();
    write_sddf(&sddf, &a, CodecPolicy::default_policy()).unwrap();

    let region = HyperRect::new(vec![5, 5], vec![12, 20]).unwrap();
    let expect: Vec<_> = a.cells_in(&region).collect();
    for path in [&ncdf, &h5, &sddf] {
        let mut src = scidb::insitu::open(path).unwrap();
        let out = src.read_region(&region).unwrap();
        assert_eq!(out.cell_count(), expect.len(), "{path:?}");
        for (coords, rec) in &expect {
            assert_eq!(
                out.get_f64(0, coords),
                rec[0].as_f64(),
                "{path:?} cell {coords:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn insitu_load_into_manager_then_requery() {
    // The "load" arm of E4 as an integration path: external file → bulk
    // load → native buckets → queries.
    let dir = tmp_dir("load");
    let a = sample(16, 8);
    let path = dir.join("src.ncdf");
    write_netcdf(&path, &a, &[]).unwrap();

    let mut src = scidb::insitu::open(&path).unwrap();
    let loaded = src.read_all().unwrap();
    let mut mgr = StorageManager::new(
        Arc::new(MemDisk::new()),
        loaded.schema_arc(),
        CodecPolicy::default_policy(),
    );
    mgr.store_array(&loaded).unwrap();
    let (out, _) = mgr
        .read_region(
            &HyperRect::new(vec![1, 1], vec![16, 16]).unwrap(),
            ReadOptions::default(),
        )
        .unwrap();
    assert!(out.same_cells(&a));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delta_store_time_travel_through_disk() {
    let schema = SchemaBuilder::new("U")
        .attr("v", ScalarType::Float64)
        .dim("I", 8)
        .dim("J", 8)
        .updatable()
        .build()
        .unwrap();
    let mut arr = scidb::core::history::UpdatableArray::new(schema).unwrap();
    let mut store = DeltaStore::new(
        Arc::new(MemDisk::new()),
        arr.array().schema(),
        CodecPolicy::default_policy(),
    )
    .unwrap();
    for h in 0..5i64 {
        arr.commit_put(&[1 + h % 8, 1], vec![Value::from(h as f64)])
            .unwrap();
        store.sync_from(&arr).unwrap();
    }
    assert_eq!(store.persisted_through(), 5);
    let snap = store.snapshot_at(3).unwrap();
    let mem = arr.snapshot_at(3).unwrap();
    assert!(snap.same_cells(&mem));
    let (v, _) = store.read_cell_at(&[1, 1], 5).unwrap();
    assert_eq!(v, Some(vec![Value::from(0.0)]));
}

/// A sparse array on an unbounded (`*`) first dimension: a handful of
/// cells, most chunks never touched.
fn unbounded_sparse() -> Array {
    let schema = SchemaBuilder::new("stream")
        .attr("v", ScalarType::Float64)
        .dim_unbounded("t")
        .dim_chunked("s", 4, 2)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    for (t, s) in [(1i64, 1i64), (7, 2), (19, 4), (64, 3)] {
        a.set_cell(&[t, s], vec![Value::from((t * 100 + s) as f64)])
            .unwrap();
    }
    a
}

/// Rebuilds `a` on a fully bounded schema whose uppers sit at each
/// dimension's high-water mark — the standard bridge for exporting an
/// unbounded array to a rectangular external format.
fn bounded_at_high_water(a: &Array) -> Array {
    let schema = a.schema();
    let mut b = SchemaBuilder::new(schema.name());
    for attr in schema.attrs() {
        b = b.attr(&attr.name, attr.ty.as_scalar().unwrap());
    }
    for (d, dim) in schema.dims().iter().enumerate() {
        b = b.dim_chunked(&dim.name, a.high_water(d).max(1), dim.chunk_len);
    }
    let mut out = Array::new(b.build().unwrap());
    for (coords, rec) in a.cells() {
        out.set_cell(&coords, rec).unwrap();
    }
    out
}

#[test]
fn insitu_writers_reject_unbounded_arrays() {
    let dir = tmp_dir("unbounded_reject");
    let a = unbounded_sparse();
    let err = write_netcdf(&dir.join("a.ncdf"), &a, &[]).unwrap_err();
    assert!(err.to_string().contains("bounded"), "{err}");
    let err = write_h5(
        &dir.join("a.h5lt"),
        &[DatasetSpec {
            path: "/img".into(),
            array: &a,
        }],
    )
    .unwrap_err();
    assert!(err.to_string().contains("bounded"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unbounded_array_roundtrips_via_high_water_view() {
    let dir = tmp_dir("unbounded_view");
    let a = unbounded_sparse();
    let bounded = bounded_at_high_water(&a);
    assert_eq!(bounded.cell_count(), a.cell_count());

    let ncdf = dir.join("a.ncdf");
    let h5 = dir.join("a.h5lt");
    write_netcdf(&ncdf, &bounded, &[]).unwrap();
    write_h5(
        &h5,
        &[DatasetSpec {
            path: "/img".into(),
            array: &bounded,
        }],
    )
    .unwrap();

    let expect: Vec<_> = a.cells().collect();
    for path in [&ncdf, &h5] {
        let mut src = scidb::insitu::open(path).unwrap();
        let out = src.read_all().unwrap();
        for (coords, rec) in &expect {
            assert_eq!(
                out.get_f64(0, coords),
                rec[0].as_f64(),
                "{path:?} cell {coords:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_cell_chunks_survive_both_adaptors() {
    // Only 2 of the 16 chunks are occupied; the adaptors must neither
    // materialize the 14 empty chunks nor lose the occupied ones.
    let schema = SchemaBuilder::new("sparse")
        .attr("v", ScalarType::Float64)
        .dim_chunked("x", 16, 4)
        .dim_chunked("y", 16, 4)
        .build()
        .unwrap();
    let mut a = Array::new(schema);
    a.set_cell(&[2, 3], vec![Value::from(23.0)]).unwrap();
    a.set_cell(&[15, 14], vec![Value::from(1514.0)]).unwrap();

    let dir = tmp_dir("zero_chunks");
    let ncdf = dir.join("a.ncdf");
    let h5 = dir.join("a.h5lt");
    write_netcdf(&ncdf, &a, &[]).unwrap();
    write_h5(
        &h5,
        &[DatasetSpec {
            path: "/img".into(),
            array: &a,
        }],
    )
    .unwrap();

    for path in [&ncdf, &h5] {
        let mut src = scidb::insitu::open(path).unwrap();
        let out = src.read_all().unwrap();
        assert_eq!(out.get_f64(0, &[2, 3]), Some(23.0), "{path:?}");
        assert_eq!(out.get_f64(0, &[15, 14]), Some(1514.0), "{path:?}");
        // A region over never-written chunks yields no cells.
        let empty = src
            .read_region(&HyperRect::new(vec![5, 5], vec![8, 8]).unwrap())
            .unwrap();
        assert_eq!(empty.cell_count(), 0, "{path:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fully_empty_array_roundtrips_as_empty() {
    let schema = SchemaBuilder::new("void")
        .attr("v", ScalarType::Float64)
        .dim_chunked("x", 8, 4)
        .dim_chunked("y", 8, 4)
        .build()
        .unwrap();
    let a = Array::new(schema);
    let dir = tmp_dir("empty");
    let ncdf = dir.join("a.ncdf");
    let h5 = dir.join("a.h5lt");
    write_netcdf(&ncdf, &a, &[]).unwrap();
    write_h5(
        &h5,
        &[DatasetSpec {
            path: "/img".into(),
            array: &a,
        }],
    )
    .unwrap();
    for path in [&ncdf, &h5] {
        let mut src = scidb::insitu::open(path).unwrap();
        let out = src.read_all().unwrap();
        assert_eq!(out.cell_count(), 0, "{path:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
