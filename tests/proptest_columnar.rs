//! Property tests for the columnar migration (proptest): codec roundtrips
//! under adversarial bit patterns, and columnar↔legacy chunk construction
//! equivalence — the two representations must be indistinguishable both to
//! `PartialEq` and to the bucket serializer, byte for byte.

use proptest::prelude::*;
use scidb::core::bitvec::BitVec;
use scidb::core::chunk::{Chunk, Column};
use scidb::core::geometry::HyperRect;
use scidb::core::schema::AttrType;
use scidb::storage::compress::{
    decode_bytes, decode_f64s, decode_i64s, encode_bytes, encode_f64s, encode_i64s, Codec,
};
use scidb::storage::{deserialize_chunk, serialize_chunk, CodecPolicy};
use scidb::{ScalarType, Value};
use std::collections::BTreeMap;

// ---- codec roundtrips under adversarial inputs -----------------------------

proptest! {
    /// encode∘decode = id for every int-capable codec, with max-varint
    /// values (`i64::MIN`/`MAX` zigzag to the widest possible varints)
    /// spliced into otherwise arbitrary data.
    #[test]
    fn int_codecs_roundtrip_adversarial(
        base in prop::collection::vec(any::<i64>(), 0..200),
        extremes in prop::collection::vec(
            prop::sample::select(vec![i64::MIN, i64::MAX, i64::MIN + 1, -1, 0, 1]),
            0..8,
        ),
    ) {
        let mut vals = base;
        vals.extend(extremes);
        for codec in [Codec::Raw, Codec::Rle, Codec::DeltaVarint] {
            let enc = encode_i64s(&vals, codec).unwrap();
            prop_assert_eq!(&decode_i64s(&enc, codec).unwrap(), &vals, "{:?}", codec);
        }
    }

    /// encode∘decode preserves every f64 *bit pattern* for every
    /// float-capable codec: arbitrary `u64` bit images cover all NaN
    /// payloads, and the pinned specials hit signaling NaNs, -0.0, and
    /// infinities even on runs where the random bits miss them.
    #[test]
    fn float_codecs_roundtrip_adversarial_bits(
        base in prop::collection::vec(any::<u64>(), 0..200),
        specials in prop::collection::vec(
            prop::sample::select(vec![
                0x7ff8_0000_0000_0001u64, // quiet NaN, payload 1
                0x7ff0_0000_0000_0001,    // signaling NaN
                0xfff8_dead_beef_cafe,    // negative NaN, full payload
                u64::MAX,
                (-0.0f64).to_bits(),
                f64::INFINITY.to_bits(),
                f64::NEG_INFINITY.to_bits(),
            ]),
            0..8,
        ),
    ) {
        let mut bits = base;
        bits.extend(specials);
        let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        for codec in [Codec::Raw, Codec::Rle, Codec::XorFloat] {
            let enc = encode_f64s(&vals, codec).unwrap();
            let dec = decode_f64s(&enc, codec).unwrap();
            let got: Vec<u64> = dec.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &bits, "{:?}", codec);
        }
    }

    #[test]
    fn byte_codecs_roundtrip_adversarial(data in prop::collection::vec(any::<u8>(), 0..400)) {
        for codec in [Codec::Raw, Codec::Rle] {
            let enc = encode_bytes(&data, codec).unwrap();
            prop_assert_eq!(&decode_bytes(&enc, codec).unwrap(), &data, "{:?}", codec);
        }
    }
}

// ---- columnar ↔ legacy construction equivalence -----------------------------

proptest! {
    /// The same cell set built two ways — row-at-a-time `set_record`
    /// (legacy, densifies on its own schedule) and direct columnar
    /// `from_parts` — must compare equal, serialize to identical bucket
    /// bytes under every policy, and roundtrip through the bucket codec.
    #[test]
    fn columnar_construction_equals_legacy_cell_writes(
        len in 1usize..=72,
        raw_cells in prop::collection::vec(
            (
                0usize..72,
                prop::option::of(any::<i64>()),
                prop::option::of(-1.0e300f64..1.0e300),
            ),
            1..72,
        ),
    ) {
        // Resolve duplicate offsets up front so both constructions see the
        // identical final cell state.
        let mut cells: BTreeMap<usize, (Option<i64>, Option<f64>)> = BTreeMap::new();
        for (o, iv, fv) in raw_cells {
            cells.insert(o % len, (iv, fv));
        }
        let rect = HyperRect::new(vec![1], vec![len as i64]).unwrap();
        let types = vec![
            AttrType::Scalar(ScalarType::Int64),
            AttrType::Scalar(ScalarType::Float64),
        ];

        let mut legacy = Chunk::new(rect.clone(), &types);
        for (&off, &(iv, fv)) in &cells {
            let rec = vec![
                iv.map(Value::from).unwrap_or(Value::Null),
                fv.map(Value::from).unwrap_or(Value::Null),
            ];
            legacy.set_record(&rect.delinearize(off), &rec).unwrap();
        }

        let mut present = BitVec::filled(len, false);
        let mut idata = vec![0i64; len];
        let mut inulls = BitVec::filled(len, true);
        let mut fdata = vec![0.0f64; len];
        let mut fnulls = BitVec::filled(len, true);
        for (&off, &(iv, fv)) in &cells {
            present.set(off, true);
            if let Some(v) = iv {
                idata[off] = v;
                inulls.set(off, false);
            }
            if let Some(v) = fv {
                fdata[off] = v;
                fnulls.set(off, false);
            }
        }
        let columnar = Chunk::from_parts(
            rect.clone(),
            types.clone(),
            present,
            vec![
                Column::Int64 { data: idata, nulls: inulls },
                Column::Float64 { data: fdata, nulls: fnulls },
            ],
        )
        .unwrap();

        prop_assert_eq!(&legacy, &columnar);
        prop_assert_eq!(legacy.present_count(), cells.len());

        // The representation must never leak into the stored bytes, and
        // the bytes must come back as the same chunk.
        for policy in [
            CodecPolicy::default_policy(),
            CodecPolicy::raw(),
            CodecPolicy::adaptive(),
        ] {
            let a = serialize_chunk(&legacy, policy).unwrap();
            let b = serialize_chunk(&columnar, policy).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&deserialize_chunk(&a).unwrap(), &columnar);
        }

        // Forcing the legacy chunk dense is also invisible.
        let mut densified = legacy.clone();
        densified.densify();
        prop_assert_eq!(&densified, &columnar);
    }
}
