//! Property-based tests on the core data structures and invariants
//! (proptest): geometry linearization, bit vectors, codecs, chunk
//! representations, operator algebra, history semantics, and uncertainty
//! arithmetic.

use proptest::prelude::*;
use scidb::core::bitvec::BitVec;
use scidb::core::geometry::HyperRect;
use scidb::core::history::{Transaction, UpdatableArray};
use scidb::core::ops;
use scidb::core::ops::structural::{DimCond, DimPredicate};
use scidb::core::registry::Registry;
use scidb::storage::compress::{
    decode_bytes, decode_f64s, decode_i64s, encode_bytes, encode_f64s, encode_i64s, Codec,
};
use scidb::storage::{deserialize_chunk, serialize_chunk, CodecPolicy};
use scidb::{Array, ScalarType, SchemaBuilder, Uncertain, Value};
use std::collections::HashMap;

// ---- geometry -----------------------------------------------------------

proptest! {
    #[test]
    fn rect_linearize_roundtrips(
        lows in prop::collection::vec(1i64..50, 1..4),
        lens in prop::collection::vec(1i64..6, 1..4),
    ) {
        let rank = lows.len().min(lens.len());
        let low = lows[..rank].to_vec();
        let high: Vec<i64> = (0..rank).map(|d| low[d] + lens[d] - 1).collect();
        let rect = HyperRect::new(low, high).unwrap();
        for (k, coords) in rect.iter_cells().enumerate() {
            prop_assert_eq!(rect.linearize(&coords), k, "row-major order is dense");
            prop_assert_eq!(rect.delinearize(k), coords);
        }
        prop_assert_eq!(rect.iter_cells().count() as u64, rect.volume());
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(
        a_low in prop::collection::vec(1i64..20, 2),
        a_len in prop::collection::vec(1i64..10, 2),
        b_low in prop::collection::vec(1i64..20, 2),
        b_len in prop::collection::vec(1i64..10, 2),
    ) {
        let a = HyperRect::new(
            a_low.clone(),
            vec![a_low[0] + a_len[0] - 1, a_low[1] + a_len[1] - 1],
        ).unwrap();
        let b = HyperRect::new(
            b_low.clone(),
            vec![b_low[0] + b_len[0] - 1, b_low[1] + b_len[1] - 1],
        ).unwrap();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(&ab, &ba);
        if let Some(i) = ab {
            for c in i.iter_cells() {
                prop_assert!(a.contains(&c) && b.contains(&c));
            }
        }
    }
}

// ---- bitvec ---------------------------------------------------------------

proptest! {
    #[test]
    fn bitvec_matches_model(ops in prop::collection::vec((0usize..200, any::<bool>()), 1..100)) {
        let mut bv = BitVec::filled(200, false);
        let mut model = [false; 200];
        for (i, v) in ops {
            bv.set(i, v);
            model[i] = v;
        }
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = bv.iter_ones().collect();
        let expect: Vec<usize> = model
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(ones, expect);
    }
}

// ---- codecs ----------------------------------------------------------------

proptest! {
    #[test]
    fn int_codecs_roundtrip(vals in prop::collection::vec(any::<i64>(), 0..300)) {
        for codec in [Codec::Raw, Codec::Rle, Codec::DeltaVarint] {
            let enc = encode_i64s(&vals, codec).unwrap();
            prop_assert_eq!(&decode_i64s(&enc, codec).unwrap(), &vals);
        }
    }

    #[test]
    fn float_codecs_roundtrip(vals in prop::collection::vec(any::<f64>(), 0..300)) {
        for codec in [Codec::Raw, Codec::Rle, Codec::XorFloat] {
            let enc = encode_f64s(&vals, codec).unwrap();
            let dec = decode_f64s(&enc, codec).unwrap();
            prop_assert_eq!(dec.len(), vals.len());
            for (d, v) in dec.iter().zip(&vals) {
                prop_assert_eq!(d.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn byte_codecs_roundtrip(data in prop::collection::vec(any::<u8>(), 0..500)) {
        for codec in [Codec::Raw, Codec::Rle] {
            let enc = encode_bytes(&data, codec).unwrap();
            prop_assert_eq!(&decode_bytes(&enc, codec).unwrap(), &data);
        }
    }
}

// ---- array vs model, bucket roundtrip ----------------------------------------

fn small_schema() -> scidb::ArraySchema {
    SchemaBuilder::new("P")
        .attr("v", ScalarType::Float64)
        .dim_chunked("i", 12, 4)
        .dim_chunked("j", 12, 4)
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn array_matches_hashmap_model(
        writes in prop::collection::vec(((1i64..=12, 1i64..=12), -100.0f64..100.0), 1..80),
        deletes in prop::collection::vec((1i64..=12, 1i64..=12), 0..20),
    ) {
        let mut a = Array::new(small_schema());
        let mut model: HashMap<(i64, i64), f64> = HashMap::new();
        for ((i, j), v) in writes {
            a.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
            model.insert((i, j), v);
        }
        for (i, j) in deletes {
            a.delete_cell(&[i, j]).unwrap();
            model.remove(&(i, j));
        }
        prop_assert_eq!(a.cell_count(), model.len());
        for ((i, j), v) in &model {
            prop_assert_eq!(a.get_f64(0, &[*i, *j]), Some(*v));
        }
        // Iteration yields exactly the model's cells.
        let mut seen = 0;
        for (coords, rec) in a.cells() {
            let key = (coords[0], coords[1]);
            prop_assert_eq!(rec[0].as_f64(), model.get(&key).copied());
            seen += 1;
        }
        prop_assert_eq!(seen, model.len());
    }

    #[test]
    fn bucket_serialization_roundtrips_arbitrary_chunks(
        writes in prop::collection::vec(((1i64..=12, 1i64..=12), -100.0f64..100.0), 0..60),
    ) {
        let mut a = Array::new(small_schema());
        for ((i, j), v) in writes {
            a.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
        }
        for chunk in a.chunks().values() {
            for policy in [CodecPolicy::default_policy(), CodecPolicy::raw()] {
                let bytes = serialize_chunk(chunk, policy).unwrap();
                let back = deserialize_chunk(&bytes).unwrap();
                prop_assert_eq!(chunk, &back);
            }
        }
    }
}

// ---- operator algebra ----------------------------------------------------------

proptest! {
    #[test]
    fn subsample_is_monotone_and_idempotent(
        writes in prop::collection::vec(((1i64..=12, 1i64..=12), -10.0f64..10.0), 1..60),
        lo in 1i64..=12,
        hi in 1i64..=12,
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut a = Array::new(small_schema());
        for ((i, j), v) in writes {
            a.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
        }
        let pred = DimPredicate::new().with("i", DimCond::Between(lo, hi));
        let once = ops::subsample(&a, &pred, None).unwrap();
        // Every output cell existed in the input with the same record.
        for (coords, rec) in once.cells() {
            prop_assert!(coords[0] >= lo && coords[0] <= hi);
            prop_assert_eq!(a.get_cell(&coords), Some(rec));
        }
        // Idempotent.
        let twice = ops::subsample(&once, &pred, None).unwrap();
        prop_assert!(once.same_cells(&twice));
    }

    #[test]
    fn reshape_preserves_value_multiset(
        lens in (1i64..=4, 1i64..=4, 1i64..=4),
    ) {
        let (a_len, b_len, c_len) = lens;
        let schema = SchemaBuilder::new("R")
            .attr("v", ScalarType::Int64)
            .dim("A", a_len)
            .dim("B", b_len)
            .dim("C", c_len)
            .build()
            .unwrap();
        let mut arr = Array::new(schema);
        arr.fill_with(|c| vec![Value::from(c[0] * 100 + c[1] * 10 + c[2])]).unwrap();
        let total = a_len * b_len * c_len;
        let out = ops::reshape(&arr, &["C", "A", "B"], &[("k".to_string(), total)]).unwrap();
        prop_assert_eq!(out.cell_count() as i64, total);
        let mut before: Vec<i64> = arr.cells().map(|(_, r)| r[0].as_i64().unwrap()).collect();
        let mut after: Vec<i64> = out.cells().map(|(_, r)| r[0].as_i64().unwrap()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn regrid_count_conserves_cells(
        writes in prop::collection::vec(((1i64..=12, 1i64..=12), 0.0f64..10.0), 1..60),
        fi in 1i64..=4,
        fj in 1i64..=4,
    ) {
        let mut a = Array::new(small_schema());
        for ((i, j), v) in writes {
            a.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
        }
        let registry = Registry::with_builtins();
        let out = ops::regrid(&a, &[fi, fj], "count", &registry).unwrap();
        let total: i64 = out.cells().map(|(_, r)| r[0].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, a.cell_count());
    }

    #[test]
    fn aligned_sjoin_agrees_with_generic_sjoin(
        writes_a in prop::collection::vec(((1i64..=12, 1i64..=12), -5.0f64..5.0), 0..40),
        writes_b in prop::collection::vec(((1i64..=12, 1i64..=12), -5.0f64..5.0), 0..40),
    ) {
        let mut a = Array::new(small_schema());
        let mut b = Array::new(small_schema().renamed("Q"));
        for ((i, j), v) in writes_a {
            a.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
        }
        for ((i, j), v) in writes_b {
            b.set_cell(&[i, j], vec![Value::from(v)]).unwrap();
        }
        let fast = ops::dense::aligned_sjoin(&a, &b).unwrap();
        let generic = ops::sjoin(&a, &b, &[("i", "i"), ("j", "j")]).unwrap();
        prop_assert!(fast.same_cells(&generic));
    }
}

// ---- history ----------------------------------------------------------------

proptest! {
    #[test]
    fn history_latest_matches_sequential_model(
        txns in prop::collection::vec(
            prop::collection::vec(((1i64..=6, 1i64..=6), prop::option::of(-10.0f64..10.0)), 1..5),
            1..12,
        ),
    ) {
        let schema = SchemaBuilder::new("H")
            .attr("v", ScalarType::Float64)
            .dim("I", 6)
            .dim("J", 6)
            .updatable()
            .build()
            .unwrap();
        let mut arr = UpdatableArray::new(schema).unwrap();
        let mut model: HashMap<(i64, i64), Option<f64>> = HashMap::new();
        let mut snapshots: Vec<HashMap<(i64, i64), Option<f64>>> = Vec::new();
        for txn_spec in &txns {
            let mut txn = Transaction::new();
            for ((i, j), val) in txn_spec {
                match val {
                    Some(v) => { txn.put(&[*i, *j], vec![Value::from(*v)]); }
                    None => { txn.delete(&[*i, *j]); }
                }
            }
            // Commit applies all puts, then all deletes: within one
            // transaction the last put wins among puts, and a delete of the
            // same cell wins over any put. Mirror that in the model.
            for ((i, j), val) in txn_spec {
                if val.is_some() {
                    model.insert((*i, *j), *val);
                }
            }
            for ((i, j), val) in txn_spec {
                if val.is_none() {
                    model.insert((*i, *j), None);
                }
            }
            arr.commit(txn).unwrap();
            snapshots.push(model.clone());
        }
        // Latest state matches the model.
        for i in 1..=6i64 {
            for j in 1..=6i64 {
                let expect = model.get(&(i, j)).copied().flatten();
                prop_assert_eq!(arr.get_latest(&[i, j]).map(|r| r[0].as_f64().unwrap()), expect);
            }
        }
        // Time travel matches every historical snapshot.
        for (h, snap) in snapshots.iter().enumerate() {
            let h = h as i64 + 1;
            for ((i, j), expect) in snap {
                prop_assert_eq!(
                    arr.get_at(&[*i, *j], h).map(|r| r[0].as_f64().unwrap()),
                    expect.to_owned(),
                    "history {} cell ({}, {})", h, i, j
                );
            }
        }
    }
}

// ---- grid replicated placement ---------------------------------------------

fn arb_scheme() -> impl Strategy<Value = scidb::grid::PartitionScheme> {
    use scidb::grid::PartitionScheme;
    (1usize..=9, 0u32..3).prop_map(|(n_nodes, kind)| {
        let space = HyperRect::new(vec![1, 1], vec![64, 64]).unwrap();
        match kind {
            0 => PartitionScheme::grid(space, vec![4, 4], n_nodes).unwrap(),
            1 => PartitionScheme::Hash {
                dims: vec![0, 1],
                n_nodes,
            },
            // n_nodes splits ⇒ n_nodes + 1 nodes; keep ≥ 1 split spacing.
            _ => PartitionScheme::range(0, (1..n_nodes as i64).map(|k| k * 7).collect()).unwrap(),
        }
    })
}

proptest! {
    /// Fault-tolerance placement invariants (§2.11): every coordinate has
    /// at least one placement, the home is always among the placements,
    /// and the copy count never exceeds the node count but always reaches
    /// the requested replication factor (clamped to the cluster size).
    #[test]
    fn replicated_placement_invariants(
        scheme in arb_scheme(),
        replicas in 1usize..6,
        margin in 0i64..4,
        x in 1i64..=64,
        y in 1i64..=64,
    ) {
        use scidb::grid::ReplicatedPlacement;
        let n = scheme.n_nodes();
        let p = ReplicatedPlacement::with_replicas(scheme, margin, replicas);
        prop_assert_eq!(p.replicas(), replicas.min(n), "factor clamped to cluster");
        let coords = vec![x, y];
        let placements = p.placements(&coords);
        prop_assert!(!placements.is_empty(), "every coordinate is placed somewhere");
        prop_assert!(placements.contains(&p.home(&coords)), "home ∈ placements");
        prop_assert!(placements.iter().all(|&node| node < n), "placements in range");
        prop_assert!(
            placements.windows(2).all(|w| w[0] < w[1]),
            "sorted and duplicate-free: {:?}", placements
        );
        let copies = p.copies(&coords);
        prop_assert_eq!(copies, placements.len());
        prop_assert!(copies <= n, "copies never exceed node count");
        prop_assert!(copies >= replicas.min(n), "k-copy floor holds");
        // Determinism: placement is a pure function of the coordinates.
        prop_assert_eq!(&placements, &p.placements(&coords));
    }
}

// ---- uncertainty -----------------------------------------------------------

proptest! {
    #[test]
    fn uncertain_addition_properties(
        m1 in -1e6f64..1e6, s1 in 0.0f64..1e3,
        m2 in -1e6f64..1e6, s2 in 0.0f64..1e3,
    ) {
        let a = Uncertain::new(m1, s1);
        let b = Uncertain::new(m2, s2);
        let ab = a + b;
        let ba = b + a;
        prop_assert_eq!(ab.mean.to_bits(), ba.mean.to_bits());
        prop_assert_eq!(ab.sigma.to_bits(), ba.sigma.to_bits());
        // Variance is additive: sigma² = s1² + s2² (within fp tolerance).
        let expect = (s1 * s1 + s2 * s2).sqrt();
        prop_assert!((ab.sigma - expect).abs() <= 1e-9 * (1.0 + expect));
        // Adding an exact zero is the identity on the mean.
        let id = a + Uncertain::exact(0.0);
        prop_assert_eq!(id.mean.to_bits(), a.mean.to_bits());
        prop_assert_eq!(id.sigma.to_bits(), a.sigma.to_bits());
    }

    #[test]
    fn uncertain_cdf_is_monotone(m in -100.0f64..100.0, s in 0.01f64..50.0, x in -200.0f64..200.0) {
        let u = Uncertain::new(m, s);
        let dx = 1.0;
        prop_assert!(u.cdf(x) <= u.cdf(x + dx) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&u.cdf(x)));
    }

    #[test]
    fn combine_is_between_inputs(m1 in -100.0f64..100.0, m2 in -100.0f64..100.0, s in 0.1f64..10.0) {
        let a = Uncertain::new(m1, s);
        let b = Uncertain::new(m2, s * 2.0);
        let c = a.combine(&b);
        let (lo, hi) = (m1.min(m2), m1.max(m2));
        prop_assert!(c.mean >= lo - 1e-9 && c.mean <= hi + 1e-9);
        prop_assert!(c.sigma <= a.sigma.min(b.sigma) + 1e-12, "combining never loses precision");
    }
}
